//! GLES2 semantics and error-path coverage beyond the happy path.

use mgpu_gles::{BufferUsage, DrawQuad, Gl, GlError, TextureFormat, VertexSource};
use mgpu_tbdr::{Platform, SimTime, SyncOp};

const COORD_PROG: &str = "
    varying vec2 v_coord;
    void main() { gl_FragColor = vec4(v_coord, 0.0, 1.0); }
";

fn gl() -> Gl {
    Gl::new(Platform::sgx_545(), 8, 8)
}

#[test]
fn texture_unit_out_of_range() {
    let mut gl = gl();
    let tex = gl.create_texture();
    gl.tex_image_2d(tex, 2, 2, TextureFormat::Rgba8, None)
        .unwrap();
    assert!(matches!(
        gl.bind_texture(99, Some(tex)).unwrap_err(),
        GlError::InvalidValue(_)
    ));
}

#[test]
fn binding_unknown_objects_fails() {
    let mut gl = gl();
    let tex = gl.create_texture();
    gl.delete_texture(tex).unwrap();
    assert!(gl.bind_texture(0, Some(tex)).is_err());

    // A second context's handles are not valid in the first (handles are
    // plain numbers, but deletion invalidates them).
    assert!(gl.texture_info(tex).is_err());
}

#[test]
fn wrong_size_upload_is_invalid_value() {
    let mut gl = gl();
    let tex = gl.create_texture();
    let err = gl
        .tex_image_2d(tex, 4, 4, TextureFormat::Rgba8, Some(&[0u8; 3]))
        .unwrap_err();
    assert!(matches!(err, GlError::InvalidValue(_)));

    // Rgb8 expects 3 bytes per texel.
    gl.tex_image_2d(tex, 2, 2, TextureFormat::Rgb8, Some(&[0u8; 12]))
        .unwrap();
    let err = gl.tex_sub_image_2d(tex, &[0u8; 16]).unwrap_err();
    assert!(matches!(err, GlError::InvalidValue(_)));
}

#[test]
fn sub_image_before_allocation_is_invalid_operation() {
    let mut gl = gl();
    let tex = gl.create_texture();
    assert!(matches!(
        gl.tex_sub_image_2d(tex, &[0u8; 4]).unwrap_err(),
        GlError::InvalidOperation(_)
    ));
}

#[test]
fn drawing_to_an_incomplete_framebuffer_fails() {
    let mut gl = gl();
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).unwrap();
    // No colour attachment yet.
    let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
    assert!(matches!(err, GlError::InvalidFramebufferOperation(_)));
}

#[test]
fn attaching_an_unallocated_texture_fails() {
    let mut gl = gl();
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).unwrap();
    let tex = gl.create_texture();
    assert!(matches!(
        gl.framebuffer_texture_2d(tex).unwrap_err(),
        GlError::InvalidOperation(_)
    ));
}

#[test]
fn attaching_without_a_bound_fbo_fails() {
    let mut gl = gl();
    let tex = gl.create_texture();
    gl.tex_image_2d(tex, 4, 4, TextureFormat::Rgba8, None)
        .unwrap();
    assert!(matches!(
        gl.framebuffer_texture_2d(tex).unwrap_err(),
        GlError::InvalidOperation(_)
    ));
}

#[test]
fn vbo_draw_requires_buffer_data() {
    let mut gl = gl();
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    let vbo = gl.create_buffer();
    let quad = DrawQuad::fullscreen().with_vertex_source(VertexSource::Vbo(vbo));
    assert!(matches!(
        gl.draw_quad(&quad).unwrap_err(),
        GlError::InvalidOperation(_)
    ));
    gl.buffer_data(vbo, 96, BufferUsage::StaticDraw).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&quad).unwrap();
}

#[test]
fn read_pixels_reflects_clear_color() {
    let mut gl = gl();
    gl.clear([1.0, 0.5, 0.0, 1.0]).unwrap();
    let px = gl.read_pixels().unwrap();
    assert_eq!(&px[..4], &[255, 128, 0, 255]);
}

#[test]
fn swap_cycles_back_buffers() {
    // Draw red, swap, draw green, swap: the two surfaces hold different
    // content, and rendering alternates between them.
    let mut gl = gl();
    let prog = gl
        .create_program(
            "uniform float u_r;\nvoid main() { gl_FragColor = vec4(u_r, 0.0, 0.0, 1.0); }",
        )
        .unwrap();
    gl.use_program(Some(prog)).unwrap();

    gl.set_uniform_scalar(prog, "u_r", 1.0).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let red = gl.read_pixels().unwrap();
    gl.swap_buffers().unwrap();

    gl.set_uniform_scalar(prog, "u_r", 0.0).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let black = gl.read_pixels().unwrap();

    assert_eq!(red[0], 255);
    assert_eq!(black[0], 0);
}

#[test]
fn discard_keeps_pixels_but_clear_overwrites_them() {
    let mut gl = gl();
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let drawn = gl.read_pixels().unwrap();

    // Discard invalidates for timing purposes but leaves bytes in place
    // (contents are undefined in real GL; the simulator keeps them).
    gl.discard_framebuffer().unwrap();
    assert_eq!(gl.read_pixels().unwrap(), drawn);

    gl.clear([0.0, 0.0, 0.0, 0.0]).unwrap();
    assert!(gl.read_pixels().unwrap().iter().all(|&b| b == 0));
}

#[test]
fn frame_recording_captures_work_descriptions() {
    let mut gl = gl();
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.set_frame_recording(true);
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen().with_label("recorded"))
        .unwrap();
    gl.finish();
    let frames = gl.recorded_frames();
    assert_eq!(frames.len(), 1);
    let (work, timing) = &frames[0];
    assert_eq!(work.label, "recorded");
    assert_eq!(work.fragment.fragments, 64);
    assert!(work.fragment.cleared);
    assert_eq!(work.sync, SyncOp::Finish);
    assert!(timing.frag_end > timing.frag_start);
}

#[test]
fn cpu_work_accounting_delays_the_next_frame() {
    let mut a = gl();
    let mut b = gl();
    for g in [&mut a, &mut b] {
        let prog = g.create_program(COORD_PROG).unwrap();
        g.use_program(Some(prog)).unwrap();
    }
    b.add_cpu_work(SimTime::from_millis(5));
    a.clear([0.0; 4]).unwrap();
    b.clear([0.0; 4]).unwrap();
    a.draw_quad(&DrawQuad::fullscreen()).unwrap();
    b.draw_quad(&DrawQuad::fullscreen()).unwrap();
    a.finish();
    b.finish();
    assert!(b.elapsed() >= a.elapsed() + SimTime::from_millis(5));
}

#[test]
fn program_validation_errors() {
    let mut gl = gl();
    // Syntax error surfaces with a line number in the info log.
    let err = gl
        .create_program("void main() { gl_FragColor = ; }")
        .unwrap_err();
    assert!(matches!(err, GlError::CompileFailed(_)));
    assert!(err.to_string().contains("line"));

    // Unknown uniform / sampler names are invalid values.
    let prog = gl.create_program(COORD_PROG).unwrap();
    assert!(matches!(
        gl.set_uniform_scalar(prog, "ghost", 1.0).unwrap_err(),
        GlError::InvalidValue(_)
    ));
    assert!(matches!(
        gl.set_sampler(prog, "ghost", 0).unwrap_err(),
        GlError::InvalidValue(_)
    ));
}

#[test]
fn use_program_none_then_draw_fails() {
    let mut gl = gl();
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.use_program(None).unwrap();
    assert!(gl.draw_quad(&DrawQuad::fullscreen()).is_err());
}

#[test]
fn linear_filtering_interpolates_between_texels() {
    use mgpu_gles::TextureFilter;
    let mut gl = Gl::new(Platform::videocore_iv(), 2, 1);
    // A program that samples the centre of the surface.
    let prog = gl
        .create_program(
            "uniform sampler2D u_t;\nvarying vec2 v_coord;\n\
             void main() { gl_FragColor = texture2D(u_t, vec2(0.5, 0.5)); }",
        )
        .unwrap();
    // 2x1 texture: black then white.
    let tex = gl.create_texture();
    gl.tex_image_2d(
        tex,
        2,
        1,
        TextureFormat::Rgba8,
        Some(&[0, 0, 0, 255, 255, 255, 255, 255]),
    )
    .unwrap();
    gl.bind_texture(0, Some(tex)).unwrap();
    gl.use_program(Some(prog)).unwrap();

    // Nearest at u=0.5 lands on the second texel.
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    assert_eq!(gl.read_pixels().unwrap()[0], 255);

    // Linear at u=0.5 sits exactly between the texel centres: 50% grey.
    gl.tex_parameter_filter(tex, TextureFilter::Linear).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let px = gl.read_pixels().unwrap();
    assert!((i16::from(px[0]) - 128).abs() <= 1, "got {}", px[0]);

    // Stale handles still error.
    gl.delete_texture(tex).unwrap();
    assert!(gl
        .tex_parameter_filter(tex, TextureFilter::Nearest)
        .is_err());
}

#[test]
fn linear_filtering_clamps_at_edges() {
    use mgpu_gles::TextureFilter;
    let mut gl = Gl::new(Platform::sgx_545(), 2, 1);
    let prog = gl
        .create_program(
            "uniform sampler2D u_t;\nvarying vec2 v_coord;\n\
             void main() { gl_FragColor = texture2D(u_t, vec2(0.0, 0.5)); }",
        )
        .unwrap();
    let tex = gl.create_texture();
    gl.tex_image_2d(
        tex,
        2,
        1,
        TextureFormat::Rgba8,
        Some(&[10, 0, 0, 255, 250, 0, 0, 255]),
    )
    .unwrap();
    gl.tex_parameter_filter(tex, TextureFilter::Linear).unwrap();
    gl.bind_texture(0, Some(tex)).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    // u=0.0 is half a texel left of the first centre: clamps to texel 0.
    assert_eq!(gl.read_pixels().unwrap()[0], 10);
}
