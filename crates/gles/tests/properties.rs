//! Property test: the GL state machine survives arbitrary sequences of
//! valid-ish API calls without panicking, corrupting state, or breaking
//! timing monotonicity. Errors are allowed; crashes and inconsistent
//! state are not.

use mgpu_gles::{BufferUsage, DrawQuad, Gl, TextureFormat, VertexSource};
use mgpu_prop::{run_cases, Rng};
use mgpu_tbdr::{Platform, SimTime};

/// One API call in the generated sequence.
#[derive(Debug, Clone)]
enum Call {
    CreateTexture,
    TexImage {
        tex: usize,
        size: u8,
        rgb: bool,
        with_data: bool,
    },
    TexSubImage {
        tex: usize,
    },
    BindTexture {
        unit: u8,
        tex: usize,
    },
    DeleteTexture {
        tex: usize,
    },
    CreateFramebuffer,
    BindFramebuffer {
        fbo: Option<usize>,
    },
    AttachTexture {
        tex: usize,
    },
    CreateBuffer,
    BufferData {
        buf: usize,
        usage: u8,
    },
    Clear,
    Discard,
    Draw {
        vbo: Option<usize>,
    },
    CopyTexImage {
        tex: usize,
    },
    CopyTexSubImage {
        tex: usize,
    },
    SwapBuffers,
    SwapInterval {
        interval: u8,
    },
    Finish,
    Flush,
    ReadPixels,
}

fn gen_call(rng: &mut Rng) -> Call {
    match rng.u32_in(0, 20) {
        0 => Call::CreateTexture,
        1 => Call::TexImage {
            tex: rng.usize_in(0, 8),
            size: rng.u32_in(1, 4) as u8,
            rgb: rng.bool(),
            with_data: rng.bool(),
        },
        2 => Call::TexSubImage {
            tex: rng.usize_in(0, 8),
        },
        3 => Call::BindTexture {
            unit: rng.u32_in(0, 10) as u8,
            tex: rng.usize_in(0, 8),
        },
        4 => Call::DeleteTexture {
            tex: rng.usize_in(0, 8),
        },
        5 => Call::CreateFramebuffer,
        6 => Call::BindFramebuffer {
            fbo: rng.bool().then(|| rng.usize_in(0, 4)),
        },
        7 => Call::AttachTexture {
            tex: rng.usize_in(0, 8),
        },
        8 => Call::CreateBuffer,
        9 => Call::BufferData {
            buf: rng.usize_in(0, 4),
            usage: rng.u32_in(0, 3) as u8,
        },
        10 => Call::Clear,
        11 => Call::Discard,
        12 => Call::Draw {
            vbo: rng.bool().then(|| rng.usize_in(0, 4)),
        },
        13 => Call::CopyTexImage {
            tex: rng.usize_in(0, 8),
        },
        14 => Call::CopyTexSubImage {
            tex: rng.usize_in(0, 8),
        },
        15 => Call::SwapBuffers,
        16 => Call::SwapInterval {
            interval: rng.u32_in(0, 3) as u8,
        },
        17 => Call::Finish,
        18 => Call::Flush,
        _ => Call::ReadPixels,
    }
}

const PROG: &str = "
    uniform sampler2D u_t;
    varying vec2 v_coord;
    void main() { gl_FragColor = texture2D(u_t, v_coord); }
";

#[test]
fn random_call_sequences_never_corrupt_the_context() {
    run_cases(48, |rng| {
        let n_calls = rng.usize_in(1, 60);
        let calls: Vec<Call> = (0..n_calls).map(|_| gen_call(rng)).collect();
        let platform = if rng.bool() {
            Platform::videocore_iv()
        } else {
            Platform::sgx_545()
        };
        let mut gl = Gl::new(platform, 16, 16);
        let prog = gl.create_program(PROG).expect("program compiles");
        gl.use_program(Some(prog)).expect("program binds");

        let mut textures = Vec::new();
        let mut fbos = Vec::new();
        let mut buffers = Vec::new();
        let mut last_elapsed = SimTime::ZERO;

        for call in calls {
            // Every call either succeeds or returns a structured error;
            // nothing may panic, and simulated time may never go backward.
            match call {
                Call::CreateTexture => textures.push(gl.create_texture()),
                Call::TexImage {
                    tex,
                    size,
                    rgb,
                    with_data,
                } => {
                    if let Some(&t) = textures.get(tex) {
                        let n = 4u32 << size.min(2);
                        let fmt = if rgb {
                            TextureFormat::Rgb8
                        } else {
                            TextureFormat::Rgba8
                        };
                        let data = vec![7u8; (n * n) as usize * fmt.channels()];
                        let _ = gl.tex_image_2d(t, n, n, fmt, with_data.then_some(&data[..]));
                    }
                }
                Call::TexSubImage { tex } => {
                    if let Some(&t) = textures.get(tex) {
                        if let Ok((w, h, fmt)) = gl.texture_info(t) {
                            let data = vec![3u8; (w * h) as usize * fmt.channels()];
                            let _ = gl.tex_sub_image_2d(t, &data);
                        }
                    }
                }
                Call::BindTexture { unit, tex } => {
                    if let Some(&t) = textures.get(tex) {
                        let _ = gl.bind_texture(u32::from(unit), Some(t));
                    }
                }
                Call::DeleteTexture { tex } => {
                    if tex < textures.len() {
                        let t = textures.swap_remove(tex);
                        let _ = gl.delete_texture(t);
                    }
                }
                Call::CreateFramebuffer => fbos.push(gl.create_framebuffer()),
                Call::BindFramebuffer { fbo } => {
                    let target = fbo.and_then(|i| fbos.get(i).copied());
                    let _ = gl.bind_framebuffer(target);
                }
                Call::AttachTexture { tex } => {
                    if let Some(&t) = textures.get(tex) {
                        let _ = gl.framebuffer_texture_2d(t);
                    }
                }
                Call::CreateBuffer => buffers.push(gl.create_buffer()),
                Call::BufferData { buf, usage } => {
                    if let Some(&b) = buffers.get(buf) {
                        let usage = [
                            BufferUsage::StaticDraw,
                            BufferUsage::DynamicDraw,
                            BufferUsage::StreamDraw,
                        ][usage as usize % 3];
                        let _ = gl.buffer_data(b, 96, usage);
                    }
                }
                Call::Clear => {
                    let _ = gl.clear([0.5, 0.5, 0.5, 1.0]);
                }
                Call::Discard => {
                    let _ = gl.discard_framebuffer();
                }
                Call::Draw { vbo } => {
                    let mut quad = DrawQuad::fullscreen();
                    if let Some(b) = vbo.and_then(|i| buffers.get(i).copied()) {
                        quad = quad.with_vertex_source(VertexSource::Vbo(b));
                    }
                    let _ = gl.draw_quad(&quad);
                }
                Call::CopyTexImage { tex } => {
                    if let Some(&t) = textures.get(tex) {
                        let _ = gl.copy_tex_image_2d(t, TextureFormat::Rgba8);
                    }
                }
                Call::CopyTexSubImage { tex } => {
                    if let Some(&t) = textures.get(tex) {
                        let _ = gl.copy_tex_sub_image_2d(t);
                    }
                }
                Call::SwapBuffers => {
                    let _ = gl.swap_buffers();
                }
                Call::SwapInterval { interval } => gl.swap_interval(u32::from(interval)),
                Call::Finish => gl.finish(),
                Call::Flush => gl.flush(),
                Call::ReadPixels => {
                    if let Ok(px) = gl.read_pixels() {
                        assert!(!px.is_empty());
                    }
                }
            }
            let now = gl.elapsed();
            assert!(now >= last_elapsed, "time went backwards");
            last_elapsed = now;
        }

        // The context is still usable for a clean draw afterwards.
        gl.bind_framebuffer(None)
            .expect("window surface always bindable");
        let tex = gl.create_texture();
        let data = vec![1u8; 16 * 16 * 4];
        gl.tex_image_2d(tex, 16, 16, TextureFormat::Rgba8, Some(&data))
            .expect("upload");
        gl.bind_texture(0, Some(tex)).expect("bind");
        gl.use_program(Some(prog)).expect("program survives");
        gl.clear([0.0; 4]).expect("clear");
        gl.draw_quad(&DrawQuad::fullscreen())
            .expect("draw still works");
        let px = gl.read_pixels().expect("read");
        assert_eq!(px[0], 1);
    });
}
