//! `MGPU_THREADS=0` (and non-numeric values) must fail context creation
//! with a typed error. Own binary: the knob snapshot is process-global.

use mgpu_gles::{Gl, GlError};
use mgpu_tbdr::Platform;

#[test]
fn zero_thread_count_fails_context_creation() {
    std::env::set_var("MGPU_THREADS", "0");
    let err = match Gl::try_new(Platform::videocore_iv(), 8, 8) {
        Err(e) => e,
        Ok(_) => panic!("MGPU_THREADS=0 must not create a context"),
    };
    std::env::remove_var("MGPU_THREADS");
    let GlError::InvalidEnv(e) = &err else {
        panic!("expected InvalidEnv, got {err}");
    };
    assert_eq!(e.var, "MGPU_THREADS");
    assert_eq!(e.value, "0");
    assert!(err.to_string().contains("positive"), "{err}");
}
