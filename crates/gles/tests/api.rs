//! Behavioural tests of the GL state machine: GLES error semantics,
//! functional rendering, and the timing side effects of each API choice.

use mgpu_gles::{BufferUsage, DrawQuad, Gl, GlError, TextureFormat, VertexSource};
use mgpu_tbdr::{Platform, SimTime, SyncOp};

fn gl(width: u32, height: u32) -> Gl {
    Gl::new(Platform::videocore_iv(), width, height)
}

const COPY_PROG: &str = "
    uniform sampler2D u_src;
    varying vec2 v_coord;
    void main() { gl_FragColor = texture2D(u_src, v_coord); }
";

const COORD_PROG: &str = "
    varying vec2 v_coord;
    void main() { gl_FragColor = vec4(v_coord, 0.0, 1.0); }
";

#[test]
fn draw_without_program_is_invalid_operation() {
    let mut gl = gl(16, 16);
    let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation(_)));
}

#[test]
fn texture_copy_kernel_round_trips_pixels() {
    let mut gl = gl(8, 8);
    let prog = gl.create_program(COPY_PROG).unwrap();
    let src = gl.create_texture();
    let data: Vec<u8> = (0..8 * 8 * 4).map(|i| (i % 251) as u8).collect();
    gl.tex_image_2d(src, 8, 8, TextureFormat::Rgba8, Some(&data))
        .unwrap();
    gl.bind_texture(0, Some(src)).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let out = gl.read_pixels().unwrap();
    assert_eq!(out, data);
}

#[test]
fn feedback_loop_is_rejected() {
    let mut gl = gl(8, 8);
    let prog = gl.create_program(COPY_PROG).unwrap();
    let tex = gl.create_texture();
    gl.tex_image_2d(tex, 8, 8, TextureFormat::Rgba8, None)
        .unwrap();
    // Bind the same texture as both input and render target.
    gl.bind_texture(0, Some(tex)).unwrap();
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).unwrap();
    gl.framebuffer_texture_2d(tex).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
    assert!(matches!(err, GlError::InvalidOperation(_)), "{err}");
    assert!(err.to_string().contains("feedback"));
}

#[test]
fn render_to_texture_then_sample_works_with_two_textures() {
    let mut gl = gl(4, 4);
    let prog = gl.create_program(COORD_PROG).unwrap();
    let rtt = gl.create_texture();
    gl.tex_image_2d(rtt, 4, 4, TextureFormat::Rgba8, None)
        .unwrap();
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).unwrap();
    gl.framebuffer_texture_2d(rtt).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();

    // Second pass samples the texture rendered by the first.
    let copy = gl.create_program(COPY_PROG).unwrap();
    let out_tex = gl.create_texture();
    gl.tex_image_2d(out_tex, 4, 4, TextureFormat::Rgba8, None)
        .unwrap();
    gl.framebuffer_texture_2d(out_tex).unwrap();
    gl.bind_texture(0, Some(rtt)).unwrap();
    gl.use_program(Some(copy)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let out = gl.read_pixels().unwrap();
    // Fragment (0,0) of a 4x4 grid has coords (0.125, 0.125) -> 32/255.
    assert_eq!(out[0], 32);
    assert_eq!(out[1], 32);
    assert_eq!(out[3], 255);
}

#[test]
fn copy_tex_image_copies_framebuffer_contents() {
    let mut gl = gl(4, 4);
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let dst = gl.create_texture();
    gl.copy_tex_image_2d(dst, TextureFormat::Rgba8).unwrap();
    gl.finish();
    let fb = gl.read_pixels().unwrap();
    assert_eq!(gl.texture_data(dst).unwrap(), fb.as_slice());
}

#[test]
fn copy_tex_sub_image_requires_allocated_matching_storage() {
    let mut gl = gl(4, 4);
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();

    let dst = gl.create_texture();
    // No storage yet: must fail.
    assert!(matches!(
        gl.copy_tex_sub_image_2d(dst).unwrap_err(),
        GlError::InvalidOperation(_)
    ));
    // Wrong size: must fail.
    gl.tex_image_2d(dst, 2, 2, TextureFormat::Rgba8, None)
        .unwrap();
    assert!(matches!(
        gl.copy_tex_sub_image_2d(dst).unwrap_err(),
        GlError::InvalidOperation(_)
    ));
    // Right size: succeeds.
    gl.tex_image_2d(dst, 4, 4, TextureFormat::Rgba8, None)
        .unwrap();
    gl.copy_tex_sub_image_2d(dst).unwrap();
}

#[test]
fn rgb8_target_stores_three_bytes_per_texel() {
    let mut gl = gl(4, 4);
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let dst = gl.create_texture();
    gl.copy_tex_image_2d(dst, TextureFormat::Rgb8).unwrap();
    gl.finish();
    assert_eq!(gl.texture_data(dst).unwrap().len(), 4 * 4 * 3);
    let (w, h, fmt) = gl.texture_info(dst).unwrap();
    assert_eq!((w, h, fmt), (4, 4, TextureFormat::Rgb8));
}

#[test]
fn shader_limit_failure_surfaces_as_compile_error() {
    // Block-32-style kernel: 64 fetches exceeds both platforms' limits.
    let mut src =
        String::from("uniform sampler2D t;\nvarying vec2 v;\nvoid main() {\n  float acc = 0.0;\n");
    src.push_str(
        "  for (float i = 0.0; i < 64.0; i += 1.0) {\n\
         \x20   acc += texture2D(t, vec2(i / 64.0, v.y)).x;\n\
         \x20   acc += texture2D(t, vec2(v.x, i / 64.0)).x;\n\
         \x20 }\n  gl_FragColor = vec4(acc);\n}\n",
    );
    let mut gl = gl(4, 4);
    let err = gl.create_program(&src).unwrap_err();
    assert!(err.is_shader_limit(), "{err}");
}

#[test]
fn swap_buffers_waits_for_vsync_and_interval_zero_does_not() {
    let platform = Platform::videocore_iv();

    let measure = |interval: u32| {
        let mut gl = Gl::new(platform.clone(), 64, 64);
        let prog = gl.create_program(COORD_PROG).unwrap();
        gl.use_program(Some(prog)).unwrap();
        gl.swap_interval(interval);
        for _ in 0..20 {
            gl.clear([0.0; 4]).unwrap();
            gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
            gl.swap_buffers().unwrap();
        }
        gl.elapsed()
    };

    let vsync = measure(1);
    let free = measure(0);
    // 20 frames at 60 Hz is at least 19 refresh periods.
    assert!(vsync >= SimTime::from_millis(19 * 16));
    assert!(free < vsync / 4);
}

#[test]
fn no_swap_pipelines_faster_than_finish() {
    let platform = Platform::sgx_545();
    let run = |finish_each: bool| {
        let mut gl = Gl::new(platform.clone(), 256, 256);
        gl.set_functional(false);
        let prog = gl.create_program(COORD_PROG).unwrap();
        gl.use_program(Some(prog)).unwrap();
        for _ in 0..50 {
            gl.clear([0.0; 4]).unwrap();
            gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
            if finish_each {
                gl.finish();
            }
        }
        gl.finish();
        gl.elapsed()
    };
    let serial = run(true);
    let pipelined = run(false);
    assert!(
        pipelined < serial,
        "pipelined {pipelined} should beat serial {serial}"
    );
}

#[test]
fn clear_skips_the_preserve_reload() {
    let platform = Platform::sgx_545();
    let run = |clear_each: bool| {
        let mut gl = Gl::new(platform.clone(), 512, 512);
        gl.set_functional(false);
        let prog = gl.create_program(COORD_PROG).unwrap();
        gl.use_program(Some(prog)).unwrap();
        for _ in 0..10 {
            if clear_each {
                gl.discard_framebuffer().unwrap();
            }
            gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
            gl.finish();
        }
        gl.elapsed()
    };
    let cleared = run(true);
    let preserved = run(false);
    assert!(
        cleared < preserved,
        "cleared {cleared} should beat preserved {preserved}"
    );
}

#[test]
fn tex_sub_image_reuse_vs_fresh_alloc_tradeoff_is_visible() {
    // On VideoCore (expensive allocation, no reuse stall) reuse must win.
    let run = |platform: &Platform, reuse: bool| {
        let mut gl = Gl::new(platform.clone(), 128, 128);
        gl.set_functional(false);
        let prog = gl.create_program(COPY_PROG).unwrap();
        let tex = gl.create_texture();
        let data = vec![0u8; 128 * 128 * 4];
        gl.tex_image_2d(tex, 128, 128, TextureFormat::Rgba8, Some(&data))
            .unwrap();
        gl.bind_texture(0, Some(tex)).unwrap();
        gl.use_program(Some(prog)).unwrap();
        for _ in 0..30 {
            if reuse {
                gl.tex_sub_image_2d(tex, &data).unwrap();
            } else {
                gl.tex_image_2d(tex, 128, 128, TextureFormat::Rgba8, Some(&data))
                    .unwrap();
            }
            gl.clear([0.0; 4]).unwrap();
            gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
        }
        gl.finish();
        gl.elapsed()
    };
    let vc = Platform::videocore_iv();
    assert!(run(&vc, true) < run(&vc, false));
}

#[test]
fn vbo_draws_cost_no_more_than_client_arrays() {
    let platform = Platform::videocore_iv();
    let run = |source: VertexSource| {
        let mut gl = Gl::new(platform.clone(), 64, 64);
        gl.set_functional(false);
        let prog = gl.create_program(COORD_PROG).unwrap();
        gl.use_program(Some(prog)).unwrap();
        let quad = DrawQuad::fullscreen().with_vertex_source(source);
        for _ in 0..50 {
            gl.clear([0.0; 4]).unwrap();
            gl.draw_quad(&quad).unwrap();
            gl.finish();
        }
        gl.elapsed()
    };
    let mut setup = Gl::new(platform.clone(), 64, 64);
    let vbo = setup.create_buffer();
    setup.buffer_data(vbo, 96, BufferUsage::StaticDraw).unwrap();

    // Recreate in each run's context: buffers are per-context, so create
    // the VBO inside the closure instead.
    let run_vbo = |usage: BufferUsage| {
        let mut gl = Gl::new(platform.clone(), 64, 64);
        gl.set_functional(false);
        let prog = gl.create_program(COORD_PROG).unwrap();
        gl.use_program(Some(prog)).unwrap();
        let vbo = gl.create_buffer();
        gl.buffer_data(vbo, 96, usage).unwrap();
        let quad = DrawQuad::fullscreen().with_vertex_source(VertexSource::Vbo(vbo));
        for _ in 0..50 {
            gl.clear([0.0; 4]).unwrap();
            gl.draw_quad(&quad).unwrap();
            gl.finish();
        }
        gl.elapsed()
    };

    let client = run(VertexSource::ClientArrays);
    let static_vbo = run_vbo(BufferUsage::StaticDraw);
    let dynamic_vbo = run_vbo(BufferUsage::DynamicDraw);
    assert!(static_vbo < client);
    assert!(static_vbo <= dynamic_vbo);
}

#[test]
fn uniforms_affect_rendering() {
    let mut gl = gl(2, 2);
    let prog = gl
        .create_program("uniform float u_v;\n void main() { gl_FragColor = vec4(u_v); }")
        .unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.set_uniform_scalar(prog, "u_v", 1.0).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    assert_eq!(gl.read_pixels().unwrap()[0], 255);

    gl.set_uniform_scalar(prog, "u_v", 0.0).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    assert_eq!(gl.read_pixels().unwrap()[0], 0);

    assert!(gl.set_uniform_scalar(prog, "nope", 1.0).is_err());
}

#[test]
fn custom_varying_corners_change_interpolation() {
    let mut gl = gl(2, 2);
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    // Constant varying: all corners the same value.
    let quad = DrawQuad::fullscreen().with_varying("v_coord", [[0.5, 0.5, 0.0, 0.0]; 4]);
    gl.draw_quad(&quad).unwrap();
    let px = gl.read_pixels().unwrap();
    for p in px.chunks_exact(4) {
        assert_eq!(p[0], 128);
        assert_eq!(p[1], 128);
    }
}

#[test]
fn unknown_varying_override_is_rejected() {
    let mut gl = gl(2, 2);
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    let quad = DrawQuad::fullscreen().with_varying("ghost", [[0.0; 4]; 4]);
    assert!(matches!(
        gl.draw_quad(&quad).unwrap_err(),
        GlError::InvalidValue(_)
    ));
}

#[test]
fn frame_timings_are_recorded_per_draw() {
    let mut gl = gl(8, 8);
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    for _ in 0..3 {
        gl.clear([0.0; 4]).unwrap();
        gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    }
    gl.finish();
    let report = gl.report();
    assert_eq!(report.frames.len(), 3);
    assert!(report.frames[0].label.starts_with("draw#"));
    assert_eq!(report.frames[2].next_cpu_free, report.total_time);
}

#[test]
fn sync_only_swap_still_costs_a_vsync_wait() {
    let mut gl = gl(8, 8);
    gl.swap_interval(1);
    gl.swap_buffers().unwrap();
    let t = gl.last_frame_timing().unwrap();
    assert_eq!(t.label, "sync-only");
    let report = gl.report();
    assert_eq!(report.frames.len(), 1);
}

#[test]
fn deleted_texture_unbinds_and_errors() {
    let mut gl = gl(4, 4);
    let tex = gl.create_texture();
    gl.tex_image_2d(tex, 4, 4, TextureFormat::Rgba8, None)
        .unwrap();
    gl.bind_texture(0, Some(tex)).unwrap();
    gl.delete_texture(tex).unwrap();
    assert!(gl.delete_texture(tex).is_err());
    assert!(gl.texture_data(tex).is_err());
    // Unit 0 no longer has the texture: a sampling draw must fail.
    let prog = gl.create_program(COPY_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    assert!(gl.draw_quad(&DrawQuad::fullscreen()).is_err());
}

#[test]
fn non_functional_mode_matches_functional_timing() {
    let run = |functional: bool| {
        let mut gl = gl(32, 32);
        gl.set_functional(functional);
        let prog = gl.create_program(COORD_PROG).unwrap();
        gl.use_program(Some(prog)).unwrap();
        for _ in 0..5 {
            gl.clear([0.0; 4]).unwrap();
            gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
        }
        gl.finish();
        gl.elapsed()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn empty_sync_op_variants_cover_gl_finish_and_flush() {
    let mut gl = gl(8, 8);
    gl.flush(); // nothing pending: no frame submitted
    assert_eq!(gl.report().frames.len(), 0);
    gl.finish(); // a finish with nothing pending still syncs
    assert_eq!(gl.report().frames.len(), 1);
    assert_eq!(gl.report().frames[0].label, "sync-only");
    let _ = SyncOp::Finish; // silence unused-import style drift
}
