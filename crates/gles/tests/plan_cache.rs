//! Property suite for the per-context draw-plan cache.
//!
//! The cache invalidates *by keying*: every input a plan captures is part
//! of its key, so mutating any of them (uniforms, program, engine, target
//! geometry, varying corners) must produce a miss, while draws that only
//! change non-captured state (texture contents, row bands) must hit and
//! still render correctly. A scripted mutation sequence is replayed under
//! cache-on, cache-off and legacy-dispatch configurations and must be
//! byte-identical throughout, with the simulated-time report unchanged.

use mgpu_gles::raster::texcoord_corners;
use mgpu_gles::{DrawQuad, Engine, ExecConfig, Gl, TextureFormat};
use mgpu_tbdr::Platform;

const SCALE_PROG: &str = "
    uniform float u_k;
    varying vec2 v_coord;
    void main() { gl_FragColor = vec4(v_coord.x * u_k, v_coord.y, u_k, 1.0); }
";

const SAMPLE_PROG: &str = "
    uniform sampler2D u_t;
    varying vec2 v_coord;
    void main() { gl_FragColor = texture2D(u_t, v_coord); }
";

/// A pooled, plan-cached 8×8 context at 2 threads.
fn cached_gl() -> Gl {
    let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
    gl.set_exec_config(ExecConfig::with_threads(2).with_pool(true));
    gl.set_plan_cache_enabled(true);
    gl
}

fn draw(gl: &mut Gl) -> Vec<u8> {
    gl.clear([0.0; 4]).expect("clear");
    gl.draw_quad(&DrawQuad::fullscreen()).expect("draw");
    gl.read_pixels().expect("read")
}

#[test]
fn repeat_draws_hit_and_uniform_changes_rekey() {
    let mut gl = cached_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");

    let first = draw(&mut gl);
    let second = draw(&mut gl);
    let third = draw(&mut gl);
    assert_eq!(first, second);
    assert_eq!(first, third);
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits, s.entries), (1, 2, 1));

    // A uniform change re-keys: miss, new entry alongside the old one.
    gl.set_uniform_scalar(prog, "u_k", 0.5).expect("sets");
    let halved = draw(&mut gl);
    assert_ne!(halved, first);
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits, s.entries), (2, 2, 2));

    // Restoring the uniform hits the original, still-cached plan.
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    assert_eq!(draw(&mut gl), first);
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits, s.entries), (2, 3, 2));
}

#[test]
fn program_identity_and_source_both_key() {
    let mut gl = cached_gl();
    let a = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(a)).expect("uses");
    gl.set_uniform_scalar(a, "u_k", 1.0).expect("sets");
    let via_a = draw(&mut gl);

    // A second program linked from the *same source* still misses: plans
    // are keyed by program handle, and handles are never reused.
    let twin = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(twin)).expect("uses");
    gl.set_uniform_scalar(twin, "u_k", 1.0).expect("sets");
    assert_eq!(draw(&mut gl), via_a);
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits), (2, 0));

    // Different source ⇒ different shader hash ⇒ miss, and the draw
    // reflects the new program immediately.
    let other = gl
        .create_program("varying vec2 v_coord;\nvoid main() { gl_FragColor = vec4(1.0); }")
        .expect("compiles");
    gl.use_program(Some(other)).expect("uses");
    let white = draw(&mut gl);
    assert!(white.iter().all(|&b| b == 255));
    assert_eq!(gl.plan_cache_stats().misses, 3);
}

#[test]
fn engine_target_and_corners_each_rekey() {
    let mut gl = cached_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    let golden = draw(&mut gl);

    // Engine tier is part of the key; output must not change. (The
    // golden draw above ran on the default batched tier, so scalar and
    // compiled each add a fresh miss.)
    gl.set_exec_config(
        ExecConfig::with_threads(2)
            .with_pool(true)
            .with_engine(Engine::Scalar),
    );
    assert_eq!(draw(&mut gl), golden);
    gl.set_exec_config(
        ExecConfig::with_threads(2)
            .with_pool(true)
            .with_engine(Engine::Compiled),
    );
    assert_eq!(draw(&mut gl), golden);
    let after_engines = gl.plan_cache_stats();
    assert!(after_engines.misses >= 3, "engine change must re-key");

    // Target geometry: rendering into a 4×4 FBO texture re-keys.
    let tex = gl.create_texture();
    gl.tex_image_2d(tex, 4, 4, TextureFormat::Rgba8, None)
        .expect("allocates");
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).expect("binds");
    gl.framebuffer_texture_2d(tex).expect("attaches");
    gl.draw_quad(&DrawQuad::fullscreen()).expect("draws");
    let misses_after_fbo = gl.plan_cache_stats().misses;
    assert!(
        misses_after_fbo > after_engines.misses,
        "target dims must re-key"
    );
    gl.bind_framebuffer(None).expect("unbinds");

    // Varying-corner overrides re-key by content hash.
    let mut corners = texcoord_corners();
    corners[3][0] = 0.25;
    gl.clear([0.0; 4]).expect("clears");
    gl.draw_quad(&DrawQuad::fullscreen().with_varying("v_coord", corners))
        .expect("draws");
    assert!(
        gl.plan_cache_stats().misses > misses_after_fbo,
        "corners must re-key"
    );
}

#[test]
fn band_draws_reuse_the_fullscreen_plan() {
    let mut gl = cached_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    let full = draw(&mut gl);

    // Plans are band-agnostic: re-rendering the surface as two row bands
    // hits the cached fullscreen plan and reassembles identical bytes.
    gl.clear([0.0; 4]).expect("clears");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(0, 3))
        .expect("draws");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(3, 8))
        .expect("draws");
    assert_eq!(gl.read_pixels().expect("reads"), full);
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits), (1, 2));
}

#[test]
fn texture_respec_serves_fresh_texels_from_a_warm_plan() {
    let mut gl = cached_gl();
    let prog = gl.create_program(SAMPLE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_sampler(prog, "u_t", 0).expect("binds sampler");
    let tex = gl.create_texture();
    gl.tex_image_2d(tex, 8, 8, TextureFormat::Rgba8, Some(&[10u8; 8 * 8 * 4]))
        .expect("uploads");
    gl.bind_texture(0, Some(tex)).expect("binds");

    let dim = draw(&mut gl);
    assert!(dim.iter().all(|&b| b == 10));

    // Respecify the texture's contents: plans cache no texel data, so the
    // warm plan must sample the new bytes.
    gl.tex_image_2d(tex, 8, 8, TextureFormat::Rgba8, Some(&[200u8; 8 * 8 * 4]))
        .expect("respecs");
    let bright = draw(&mut gl);
    assert!(bright.iter().all(|&b| b == 200));
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits), (1, 1), "respec must not re-key");
}

#[test]
fn recreate_drops_every_plan() {
    let mut gl = cached_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    let before = draw(&mut gl);
    assert_eq!(gl.plan_cache_stats().entries, 1);

    gl.recreate();
    assert_eq!(gl.plan_cache_stats().entries, 0, "recreate clears plans");

    // Rebuild the world, as a resilient runner would; the first draw is a
    // miss (fresh handle, fresh cache) but renders identically.
    let prog = gl.create_program(SCALE_PROG).expect("recompiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    assert_eq!(draw(&mut gl), before);
    assert_eq!(gl.plan_cache_stats().entries, 1);
}

#[test]
fn disabling_the_cache_mid_stream_is_transparent() {
    let mut gl = cached_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    let golden = draw(&mut gl);

    gl.set_plan_cache_enabled(false);
    assert_eq!(gl.plan_cache_stats().entries, 0);
    assert_eq!(draw(&mut gl), golden);

    gl.set_plan_cache_enabled(true);
    assert_eq!(draw(&mut gl), golden);
}

/// Regression-pins the exact counter arithmetic at the FIFO capacity
/// boundary (cap = 128) under scripted uniform churn. Every number here
/// is load-bearing: a change to hit accounting, eviction order or the
/// stale-entry skip (a reinserted plan must be evicted on its *newest*
/// queue position, not its stale one) shows up as an exact-counter
/// mismatch, not a flaky threshold.
#[test]
fn churn_at_the_capacity_boundary_has_exact_counters() {
    let mut gl = cached_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    let set_and_draw = |gl: &mut Gl, k: u32| {
        gl.set_uniform_scalar(prog, "u_k", k as f32).expect("sets");
        draw(gl);
    };

    // Fill to exactly the 128-plan capacity: all misses, no eviction.
    for k in 0..128 {
        set_and_draw(&mut gl, k);
    }
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits, s.evictions, s.entries), (128, 0, 0, 128));

    // A full warm sweep at capacity: all hits, and every hit refreshes
    // the plan's queue position (take + reinsert).
    for k in 0..128 {
        set_and_draw(&mut gl, k);
    }
    let s = gl.plan_cache_stats();
    assert_eq!(
        (s.misses, s.hits, s.evictions, s.entries),
        (128, 128, 0, 128)
    );

    // The 129th distinct key evicts exactly one plan — the least recently
    // refreshed (key 0), not the stale front-of-queue entries.
    set_and_draw(&mut gl, 128);
    let s = gl.plan_cache_stats();
    assert_eq!(
        (s.misses, s.hits, s.evictions, s.entries),
        (129, 128, 1, 128)
    );

    // Key 0 was the victim: re-drawing it misses and evicts key 1.
    set_and_draw(&mut gl, 0);
    let s = gl.plan_cache_stats();
    assert_eq!(
        (s.misses, s.hits, s.evictions, s.entries),
        (130, 128, 2, 128)
    );

    // Key 2 survived and its hit refreshes it past the next eviction.
    set_and_draw(&mut gl, 2);
    let s = gl.plan_cache_stats();
    assert_eq!(
        (s.misses, s.hits, s.evictions, s.entries),
        (130, 129, 2, 128)
    );

    // Key 1 (evicted above) misses; the victim must be key 3 — key 2's
    // refresh protected it even though its stale entry sits further
    // forward in the queue.
    set_and_draw(&mut gl, 1);
    let s = gl.plan_cache_stats();
    assert_eq!(
        (s.misses, s.hits, s.evictions, s.entries),
        (131, 129, 3, 128)
    );

    // Proof of the victim's identity: key 2 still hits, key 3 misses.
    set_and_draw(&mut gl, 2);
    let s = gl.plan_cache_stats();
    assert_eq!((s.misses, s.hits), (131, 130), "key 2 must have survived");
    set_and_draw(&mut gl, 3);
    let s = gl.plan_cache_stats();
    assert_eq!(
        (s.misses, s.hits, s.evictions, s.entries),
        (132, 130, 4, 128)
    );
}

/// Replays one scripted mutation sequence and returns the pixel snapshot
/// after every draw plus the final simulation report.
fn run_script(
    platform: &Platform,
    engine: Engine,
    pool: bool,
    cache: bool,
) -> (Vec<Vec<u8>>, mgpu_tbdr::SimReport) {
    let mut gl = Gl::new(platform.clone(), 8, 8);
    gl.set_exec_config(
        ExecConfig::with_threads(3)
            .with_engine(engine)
            .with_pool(pool),
    );
    gl.set_plan_cache_enabled(cache);
    let mut shots = Vec::new();

    let scale = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(scale)).expect("uses");
    gl.set_uniform_scalar(scale, "u_k", 1.0).expect("sets");
    shots.push(draw(&mut gl));
    shots.push(draw(&mut gl)); // warm repeat
    gl.set_uniform_scalar(scale, "u_k", 0.25).expect("sets");
    shots.push(draw(&mut gl)); // re-keyed
    gl.set_uniform_scalar(scale, "u_k", 1.0).expect("sets");
    shots.push(draw(&mut gl)); // warm again

    let sample = gl.create_program(SAMPLE_PROG).expect("compiles");
    gl.use_program(Some(sample)).expect("uses");
    gl.set_sampler(sample, "u_t", 0).expect("samplers");
    let tex = gl.create_texture();
    let ramp: Vec<u8> = (0..8 * 8 * 4).map(|i| (i % 251) as u8).collect();
    gl.tex_image_2d(tex, 8, 8, TextureFormat::Rgba8, Some(&ramp))
        .expect("uploads");
    gl.bind_texture(0, Some(tex)).expect("binds");
    shots.push(draw(&mut gl));
    let inv: Vec<u8> = ramp.iter().map(|&b| 255 - b).collect();
    gl.tex_image_2d(tex, 8, 8, TextureFormat::Rgba8, Some(&inv))
        .expect("respecs");
    shots.push(draw(&mut gl)); // warm plan, fresh texels

    gl.use_program(Some(scale)).expect("uses");
    gl.clear([0.0; 4]).expect("clears");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(0, 5))
        .expect("bands");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(5, 8))
        .expect("bands");
    shots.push(gl.read_pixels().expect("reads"));

    gl.recreate();
    let scale = gl.create_program(SCALE_PROG).expect("recompiles");
    gl.use_program(Some(scale)).expect("uses");
    gl.set_uniform_scalar(scale, "u_k", 1.0).expect("sets");
    shots.push(draw(&mut gl));

    gl.finish();
    (shots, gl.report())
}

/// The headline property: for every platform × engine, the cached pooled
/// dispatcher replays the whole mutation script byte-for-byte like the
/// uncached pooled path *and* the legacy scope-spawn path, with identical
/// simulated-time reports.
#[test]
fn cache_is_invisible_across_the_mutation_script() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        for engine in [Engine::Scalar, Engine::Batched, Engine::Compiled] {
            let legacy = run_script(&platform, engine, false, false);
            let pooled = run_script(&platform, engine, true, false);
            let cached = run_script(&platform, engine, true, true);
            assert_eq!(
                pooled, legacy,
                "pooled dispatch diverged ({engine:?} on {})",
                platform.name
            );
            assert_eq!(
                cached, legacy,
                "plan cache changed output ({engine:?} on {})",
                platform.name
            );
        }
    }
}
