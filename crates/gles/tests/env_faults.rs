//! `MGPU_FAULTS` is read exactly once per process, at the first context
//! creation. This binary holds the single test that exercises that path —
//! it must be alone here, because the snapshot is process-global and a
//! sibling test creating a context first would freeze the unset default.

use mgpu_gles::{DrawQuad, Gl, GlError};
use mgpu_tbdr::Platform;

const COPY_PROG: &str = "
    varying vec2 v_coord;
    void main() { gl_FragColor = vec4(v_coord, 0.0, 1.0); }
";

#[test]
fn env_spec_installs_plan_on_context_creation() {
    // Set before the first Gl is created: the process-wide knob snapshot
    // resolves lazily on first use and never again.
    std::env::set_var("MGPU_FAULTS", "seed=9,ctx@0");
    let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
    std::env::remove_var("MGPU_FAULTS");
    assert!(gl.fault_injector().is_some());
    let prog = gl.create_program(COPY_PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
    assert!(matches!(err, GlError::ContextLost));

    // The snapshot is sticky: clearing the variable afterwards does not
    // resurrect a fault-free context.
    let gl2 = Gl::new(Platform::videocore_iv(), 8, 8);
    assert!(gl2.fault_injector().is_some());
}
