//! Shared-executor semantics: many `Gl` contexts multiplexed over one
//! worker pool must render byte-identically to contexts with private
//! pools, and an installed executor must survive reconfiguration.

use mgpu_gles::{DrawQuad, Executor, Gl, TextureFormat};
use mgpu_tbdr::Platform;

const COPY_PROG: &str = "
    uniform sampler2D u_src;
    varying vec2 v_coord;
    void main() { gl_FragColor = texture2D(u_src, v_coord); }
";

/// Renders a texture copy and returns the surface bytes.
fn draw_copy(gl: &mut Gl) -> Vec<u8> {
    let prog = gl.create_program(COPY_PROG).unwrap();
    let src = gl.create_texture();
    let data: Vec<u8> = (0..32 * 32 * 4).map(|i| (i % 239) as u8).collect();
    gl.tex_image_2d(src, 32, 32, TextureFormat::Rgba8, Some(&data))
        .unwrap();
    gl.bind_texture(0, Some(src)).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    gl.read_pixels().unwrap()
}

#[test]
fn shared_executor_matches_private_pools_bytewise() {
    let exec = Executor::new(3);
    for platform in Platform::paper_pair() {
        let mut private = Gl::new(platform.clone(), 32, 32);
        let mut shared = Gl::new(platform, 32, 32);
        shared.install_executor(exec.clone());
        assert_eq!(draw_copy(&mut shared), draw_copy(&mut private));
        assert_eq!(
            shared.report().total_time,
            private.report().total_time,
            "sharing an executor must not perturb simulated timing"
        );
    }
}

#[test]
fn installed_executor_survives_thread_count_changes() {
    let mut gl = Gl::new(Platform::videocore_iv(), 32, 32);
    let exec = Executor::new(2);
    gl.install_executor(exec.clone());
    // 1 (the installing context) + 1 (our handle).
    assert_eq!(exec.handles(), 2);

    let cfg = gl.exec_config().with_thread_count(7);
    gl.set_exec_config(cfg);
    assert_eq!(
        exec.handles(),
        2,
        "a pinned executor must not be retired by a thread-count change"
    );
    // Draws still work and stay correct with participation clamped.
    let bytes = draw_copy(&mut gl);
    let mut reference = Gl::new(Platform::videocore_iv(), 32, 32);
    assert_eq!(bytes, draw_copy(&mut reference));
}

#[test]
fn executor_accessor_creates_then_shares() {
    let mut a = Gl::new(Platform::videocore_iv(), 16, 16);
    let handle = a.executor();
    // Cloning the handle into a second context shares the same pool.
    let mut b = Gl::new(Platform::sgx_545(), 16, 16);
    b.install_executor(handle.clone());
    assert!(handle.handles() >= 3, "a + b + local handle");
    assert_eq!(draw_copy(&mut b), {
        let mut reference = Gl::new(Platform::sgx_545(), 16, 16);
        draw_copy(&mut reference)
    });
}
