//! Error-path audit of the (parallel) draw path: every failure mode of
//! `draw_quad` must surface as a `GlError` and leave the context fully
//! usable — no lost texture data, no poisoned state, no unwinds.

use mgpu_gles::{DrawQuad, ExecConfig, Gl, GlError, TextureFormat};
use mgpu_tbdr::Platform;

const COPY_PROG: &str = "
    uniform sampler2D u_src;
    varying vec2 v_coord;
    void main() { gl_FragColor = texture2D(u_src, v_coord); }
";

const COORD_PROG: &str = "
    varying vec2 v_coord;
    void main() { gl_FragColor = vec4(v_coord, 0.0, 1.0); }
";

/// A kernel whose uniform is never set: compilation succeeds, execution
/// fails on the very first fragment.
const NEEDS_UNIFORM_PROG: &str = "
    uniform float u_k;
    varying vec2 v_coord;
    void main() { gl_FragColor = vec4(v_coord.x * u_k); }
";

fn gl_with_threads(threads: usize) -> Gl {
    let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
    gl.set_exec_config(ExecConfig::with_threads(threads));
    gl
}

/// After any failed draw, the context must complete a valid draw and
/// read back correct pixels.
fn assert_still_usable(gl: &mut Gl) {
    let prog = gl.create_program(COORD_PROG).unwrap();
    gl.bind_framebuffer(None).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let px = gl.read_pixels().unwrap();
    // Fragment (0,0) of an 8x8 grid has coords (0.0625, 0.0625) -> 16/255.
    assert_eq!(px[0], 16);
    assert_eq!(px[3], 255);
}

#[test]
fn feedback_loop_failure_preserves_texture_contents() {
    for threads in [1, 4] {
        let mut gl = gl_with_threads(threads);
        let prog = gl.create_program(COPY_PROG).unwrap();
        let tex = gl.create_texture();
        let data: Vec<u8> = (0..8 * 8 * 4).map(|i| (i % 251) as u8).collect();
        gl.tex_image_2d(tex, 8, 8, TextureFormat::Rgba8, Some(&data))
            .unwrap();
        gl.bind_texture(0, Some(tex)).unwrap();
        let fbo = gl.create_framebuffer();
        gl.bind_framebuffer(Some(fbo)).unwrap();
        gl.framebuffer_texture_2d(tex).unwrap();
        gl.use_program(Some(prog)).unwrap();
        let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
        assert!(matches!(err, GlError::InvalidOperation(_)), "{err}");
        // The rejected draw must not have touched the texture.
        assert_eq!(gl.texture_data(tex).unwrap(), &data[..]);
        assert_still_usable(&mut gl);
    }
}

#[test]
fn incomplete_framebuffer_is_a_framebuffer_error() {
    for threads in [1, 4] {
        let mut gl = gl_with_threads(threads);
        let prog = gl.create_program(COORD_PROG).unwrap();
        let fbo = gl.create_framebuffer();
        gl.bind_framebuffer(Some(fbo)).unwrap();
        gl.use_program(Some(prog)).unwrap();
        let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
        assert!(
            matches!(err, GlError::InvalidFramebufferOperation(_)),
            "{err}"
        );
        assert_still_usable(&mut gl);
    }
}

#[test]
fn kernel_execution_failure_restores_render_target_data() {
    for threads in [1, 4] {
        let mut gl = gl_with_threads(threads);
        let prog = gl.create_program(NEEDS_UNIFORM_PROG).unwrap();

        // Render into a texture that already has recognisable contents.
        let target = gl.create_texture();
        let data: Vec<u8> = (0..8 * 8 * 4).map(|i| (i % 97) as u8).collect();
        gl.tex_image_2d(target, 8, 8, TextureFormat::Rgba8, Some(&data))
            .unwrap();
        let fbo = gl.create_framebuffer();
        gl.bind_framebuffer(Some(fbo)).unwrap();
        gl.framebuffer_texture_2d(target).unwrap();
        gl.use_program(Some(prog)).unwrap();

        let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
        assert!(matches!(err, GlError::InvalidOperation(_)), "{err}");
        assert!(err.to_string().contains("kernel execution"), "{err}");
        // The taken-out target data must have been put back even though
        // execution failed partway — the texture is not lost or emptied.
        assert_eq!(gl.texture_data(target).unwrap().len(), data.len());
        assert_still_usable(&mut gl);
    }
}

#[test]
fn serial_and_parallel_report_the_same_execution_error() {
    let errs: Vec<String> = [1, 4]
        .iter()
        .map(|&threads| {
            let mut gl = gl_with_threads(threads);
            let prog = gl.create_program(NEEDS_UNIFORM_PROG).unwrap();
            gl.use_program(Some(prog)).unwrap();
            gl.draw_quad(&DrawQuad::fullscreen())
                .unwrap_err()
                .to_string()
        })
        .collect();
    assert_eq!(errs[0], errs[1]);
}
