//! Integration tests of deterministic fault injection at the GL layer:
//! context loss, allocation failure, transient compile failure, watchdog
//! kills, storage corruption — and the no-plan no-op guarantee.

use mgpu_gles::{DrawQuad, FaultKind, FaultPlan, FaultSite, Gl, GlError, TextureFormat};
use mgpu_tbdr::{Platform, SimTime};

const COPY_PROG: &str = "
    uniform sampler2D u_src;
    varying vec2 v_coord;
    void main() { gl_FragColor = texture2D(u_src, v_coord); }
";

fn gl() -> Gl {
    Gl::new(Platform::videocore_iv(), 8, 8)
}

/// Sets up a copy kernel reading `src` and returns `(gl, src)`.
fn copy_setup(mut gl: Gl) -> (Gl, mgpu_gles::TextureId) {
    let prog = gl.create_program(COPY_PROG).unwrap();
    let src = gl.create_texture();
    let data: Vec<u8> = (0..8 * 8 * 4).map(|i| (i % 251) as u8).collect();
    gl.tex_image_2d(src, 8, 8, TextureFormat::Rgba8, Some(&data))
        .unwrap();
    gl.bind_texture(0, Some(src)).unwrap();
    gl.use_program(Some(prog)).unwrap();
    (gl, src)
}

#[test]
fn context_loss_fires_at_scheduled_draw_and_poisons_calls() {
    let (mut gl, _src) = copy_setup(gl());
    gl.install_faults(FaultPlan::seeded(1).ctx_loss_at_draw(1));

    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap(); // draw #0 fine
    let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
    assert!(matches!(err, GlError::ContextLost), "{err}");
    assert!(gl.context_lost());

    // Every subsequent call fails until recreate, including readback.
    assert!(matches!(gl.read_pixels(), Err(GlError::ContextLost)));
    assert!(matches!(gl.clear([0.0; 4]), Err(GlError::ContextLost)));

    // The trail names the event precisely.
    let trail = gl.fault_trail();
    assert_eq!(trail.len(), 1);
    assert_eq!(trail[0].kind, FaultKind::ContextLoss);
    assert_eq!(trail[0].site, FaultSite::Draw);
    assert_eq!(trail[0].index, 1);
}

#[test]
fn recreate_restores_service_but_objects_are_gone() {
    let (mut gl, src) = copy_setup(gl());
    gl.install_faults(FaultPlan::seeded(1).ctx_loss_at_draw(0));
    let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
    assert!(matches!(err, GlError::ContextLost));

    gl.recreate();
    assert!(!gl.context_lost());
    // Old objects died with the context.
    assert!(gl.texture_data(src).is_err());
    // A rebuilt scene works: draw #1 is not scheduled for loss.
    let (mut gl, _src) = copy_setup(gl);
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    gl.read_pixels().unwrap();
}

#[test]
fn recreate_charges_simulated_time() {
    // Identical scenes; the only difference is one context recreation.
    // Its cost is billed to the next submitted frame, so the recreated
    // run must finish strictly later.
    let run = |recreate: bool| {
        let mut gl = gl();
        if recreate {
            gl.recreate();
        }
        let (mut gl, _src) = copy_setup(gl);
        gl.clear([0.0; 4]).unwrap();
        gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
        gl.finish();
        gl.elapsed()
    };
    assert!(run(true) > run(false));
}

#[test]
fn oom_fails_the_scheduled_upload_only() {
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(2).oom_at_upload(1));
    let t0 = gl.create_texture();
    let t1 = gl.create_texture();
    let data = vec![0u8; 8 * 8 * 4];
    gl.tex_image_2d(t0, 8, 8, TextureFormat::Rgba8, Some(&data))
        .unwrap();
    let err = gl
        .tex_image_2d(t1, 8, 8, TextureFormat::Rgba8, Some(&data))
        .unwrap_err();
    assert!(matches!(err, GlError::OutOfMemory(_)), "{err}");
    assert!(err.is_transient());
    // The context survives an OOM; retrying the upload (attempt #2) works.
    gl.tex_image_2d(t1, 8, 8, TextureFormat::Rgba8, Some(&data))
        .unwrap();
}

#[test]
fn transient_compile_failure_succeeds_on_retry() {
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(3).compile_fail_at(0));
    let err = gl.create_program(COPY_PROG).unwrap_err();
    assert!(matches!(err, GlError::OutOfMemory(_)), "{err}");
    // Same source, next attempt: fine.
    gl.create_program(COPY_PROG).unwrap();
}

/// An ALU-heavy kernel: per-fragment cost dominates the fixed per-draw
/// cost, so row-band splitting meaningfully lowers the estimate (a cheap
/// copy kernel's later bands pay a tile-reload that eats the saving).
const HEAVY_PROG: &str = "
    uniform sampler2D u_src;
    varying vec2 v_coord;
    void main() {
        vec4 t = texture2D(u_src, v_coord);
        vec4 acc = vec4(0.0);
        for (float i = 0.0; i < 32.0; i += 1.0) { acc = acc * 0.5 + t * 0.25; }
        gl_FragColor = clamp(acc, 0.0, 1.0);
    }
";

fn heavy_setup() -> Gl {
    let mut gl = gl();
    let prog = gl.create_program(HEAVY_PROG).unwrap();
    let src = gl.create_texture();
    let data: Vec<u8> = (0..8 * 8 * 4).map(|i| (i % 251) as u8).collect();
    gl.tex_image_2d(src, 8, 8, TextureFormat::Rgba8, Some(&data))
        .unwrap();
    gl.bind_texture(0, Some(src)).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl
}

#[test]
fn watchdog_kills_expensive_draws_and_row_bands_slip_under() {
    // Probe the simulator's own estimates with an impossible budget: the
    // watchdog error reports what each draw shape would cost. The worst
    // band is a late one, which pays a tile reload instead of a clear.
    let estimate_with = |pre_draw: bool, quad: &DrawQuad| -> SimTime {
        let mut gl = heavy_setup();
        gl.clear([0.0; 4]).unwrap();
        if pre_draw {
            gl.draw_quad(&DrawQuad::fullscreen().with_row_band(0, 4))
                .unwrap();
        }
        gl.install_faults(FaultPlan::seeded(4).watchdog_budget(SimTime::from_nanos(1)));
        match gl.draw_quad(quad).unwrap_err() {
            GlError::WatchdogTimeout { estimated, .. } => estimated,
            other => panic!("expected watchdog timeout, got {other}"),
        }
    };
    let full = estimate_with(false, &DrawQuad::fullscreen());
    let worst_band = estimate_with(true, &DrawQuad::fullscreen().with_row_band(4, 8));
    assert!(
        worst_band < full,
        "band estimate {worst_band:?} must undercut full draw {full:?}"
    );
    // Budget strictly between: the full draw is killed, every band fits.
    let budget = SimTime::from_nanos((worst_band.as_nanos() + full.as_nanos()) / 2);

    let mut gl = heavy_setup();
    gl.install_faults(FaultPlan::seeded(4).watchdog_budget(budget));
    gl.clear([0.0; 4]).unwrap();
    let err = gl.draw_quad(&DrawQuad::fullscreen()).unwrap_err();
    match err {
        GlError::WatchdogTimeout {
            estimated,
            budget: b,
        } => {
            assert!(estimated > b);
            assert_eq!(b, budget);
        }
        other => panic!("expected watchdog timeout, got {other}"),
    }
    assert!(err.is_transient());
    // The same work split into row bands fits the per-draw budget.
    for (y0, y1) in [(0u32, 4u32), (4, 8)] {
        gl.draw_quad(&DrawQuad::fullscreen().with_row_band(y0, y1))
            .unwrap();
    }
    let out = gl.read_pixels().unwrap();
    assert_eq!(out.len(), 8 * 8 * 4);
}

#[test]
fn banded_draws_reassemble_the_full_draw_bytes() {
    let (mut gl_full, _src) = copy_setup(gl());
    gl_full.clear([0.0; 4]).unwrap();
    gl_full.draw_quad(&DrawQuad::fullscreen()).unwrap();
    let want = gl_full.read_pixels().unwrap();

    let (mut gl_bands, _src) = copy_setup(gl());
    gl_bands.clear([0.0; 4]).unwrap();
    for (y0, y1) in [(0u32, 3u32), (3, 4), (4, 8)] {
        gl_bands
            .draw_quad(&DrawQuad::fullscreen().with_row_band(y0, y1))
            .unwrap();
    }
    assert_eq!(gl_bands.read_pixels().unwrap(), want);
}

#[test]
fn corruption_flips_bits_silently_and_deterministically() {
    let run = |plan: Option<FaultPlan>| {
        let (mut gl, _src) = copy_setup(gl());
        if let Some(p) = plan {
            gl.install_faults(p);
        }
        gl.clear([0.0; 4]).unwrap();
        gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
        gl.read_pixels().unwrap()
    };
    let clean = run(None);
    let plan = FaultPlan::seeded(5).corrupt_at_draw(0);
    let dirty_a = run(Some(plan.clone()));
    let dirty_b = run(Some(plan));
    // Silent: the draw succeeded, bytes differ.
    assert_ne!(clean, dirty_a);
    // Deterministic: same plan, same flips.
    assert_eq!(dirty_a, dirty_b);
    // Bounded: at most 8 single-bit flips.
    let diffs = clean.iter().zip(&dirty_a).filter(|(c, d)| c != d).count();
    assert!((1..=8).contains(&diffs), "{diffs} bytes differ");
}

#[test]
fn same_seed_same_trail_across_probabilistic_runs() {
    let run = || {
        let (mut gl, _src) = copy_setup(gl());
        gl.install_faults(FaultPlan::seeded(77).p_corrupt(0.5));
        gl.clear([0.0; 4]).unwrap();
        for _ in 0..8 {
            gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
        }
        gl.fault_trail().to_vec()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(!a.is_empty(), "p=0.5 over 8 draws should fire");
}

#[test]
fn no_plan_means_no_timing_or_byte_change() {
    let run = |with_empty_plan: bool| {
        let (mut gl, _src) = copy_setup(gl());
        if with_empty_plan {
            gl.install_faults(FaultPlan::seeded(123));
        }
        gl.clear([0.0; 4]).unwrap();
        gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
        let bytes = gl.read_pixels().unwrap();
        gl.finish();
        (bytes, gl.elapsed())
    };
    let (bytes_none, t_none) = run(false);
    let (bytes_empty, t_empty) = run(true);
    assert_eq!(bytes_none, bytes_empty);
    assert_eq!(t_none, t_empty, "an empty plan must not perturb timing");
}

// The `MGPU_FAULTS` env-var path lives in tests/env_faults.rs: the knob
// snapshot is resolved once per process, so it needs a binary to itself.
