//! `MGPU_ENGINE=compiled` selects the compiled tier at context creation,
//! and its framebuffer bytes are identical to the scalar reference. Own
//! binary: the knob snapshot is process-global.

use mgpu_gles::{DrawQuad, Engine, ExecConfig, Gl};
use mgpu_tbdr::Platform;

const PROG: &str = "
    uniform vec4 u_scale;
    varying vec2 v_coord;
    void main() {
        vec4 acc = vec4(v_coord, 0.25, 1.0) * u_scale;
        gl_FragColor = acc + vec4(0.125, 0.0625, 0.03125, 0.0);
    }
";

fn draw(gl: &mut Gl) -> Vec<u8> {
    let prog = gl.create_program(PROG).unwrap();
    gl.use_program(Some(prog)).unwrap();
    gl.set_uniform_vec(prog, "u_scale", [0.75, 0.5, 1.5, 1.0])
        .unwrap();
    gl.clear([0.0; 4]).unwrap();
    gl.draw_quad(&DrawQuad::fullscreen()).unwrap();
    gl.read_pixels().unwrap()
}

#[test]
fn compiled_engine_resolves_from_env_and_matches_scalar() {
    std::env::set_var("MGPU_ENGINE", "compiled");
    let mut gl = Gl::try_new(Platform::sgx_545(), 16, 16).unwrap();
    std::env::remove_var("MGPU_ENGINE");
    assert_eq!(gl.exec_config().engine(), Engine::Compiled);
    let compiled = draw(&mut gl);

    let mut reference = Gl::new(Platform::sgx_545(), 16, 16);
    reference.set_exec_config(ExecConfig::serial().with_engine(Engine::Scalar));
    let scalar = draw(&mut reference);
    assert_eq!(compiled, scalar, "compiled tier must be byte-identical");
}
