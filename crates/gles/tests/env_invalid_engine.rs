//! An invalid `MGPU_ENGINE` value must surface as a typed error at
//! context creation, not fall back to a default. Lives in its own binary:
//! the knob snapshot is process-global, so this test owns the process.

use mgpu_gles::{Gl, GlError};
use mgpu_tbdr::Platform;

#[test]
fn invalid_engine_value_fails_context_creation() {
    std::env::set_var("MGPU_ENGINE", "typo");
    let err = match Gl::try_new(Platform::sgx_545(), 8, 8) {
        Err(e) => e,
        Ok(_) => panic!("MGPU_ENGINE=typo must not create a context"),
    };
    let GlError::InvalidEnv(e) = &err else {
        panic!("expected InvalidEnv, got {err}");
    };
    assert_eq!(e.var, "MGPU_ENGINE");
    assert_eq!(e.value, "typo");
    let msg = err.to_string();
    assert!(msg.contains("MGPU_ENGINE"), "{msg}");
    assert!(
        msg.contains("scalar") && msg.contains("batched") && msg.contains("compiled"),
        "the error must teach the grammar: {msg}"
    );

    // The snapshot latches the first resolution — the error is stable
    // even after the variable is fixed, because configuration is
    // once-per-process by design.
    std::env::set_var("MGPU_ENGINE", "scalar");
    assert!(Gl::try_new(Platform::sgx_545(), 8, 8).is_err());
    std::env::remove_var("MGPU_ENGINE");
}
