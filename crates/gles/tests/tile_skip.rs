//! Property suite for tile-signature redundancy elimination
//! (`MGPU_TILE_SKIP`).
//!
//! The signature cache invalidates two ways: *by keying* (anything a
//! draw-plan captures — program, uniforms, engine, target geometry,
//! corners — plus the tile rectangle itself re-keys the tile), and *by
//! signature* (texture contents are digested, so a content change makes
//! the stored signature mismatch and the entry is invalidated in place).
//! Render-target identity is deliberately **not** part of the key: the
//! paper's double-buffered multi-pass loops ping-pong between two chain
//! textures while re-shading identical tiles, and those replays are the
//! whole point. This suite regression-pins the exact counter arithmetic
//! of every one of those paths on the SGX's 16×16 tile grid, where a
//! 32×32 surface is exactly four tiles.

use mgpu_gles::{DrawQuad, Engine, ExecConfig, Gl, TextureFormat};
use mgpu_tbdr::Platform;

const SCALE_PROG: &str = "
    uniform float u_k;
    varying vec2 v_coord;
    void main() { gl_FragColor = vec4(v_coord.x * u_k, v_coord.y, u_k, 1.0); }
";

const SAMPLE_PROG: &str = "
    uniform sampler2D u_t;
    varying vec2 v_coord;
    void main() { gl_FragColor = texture2D(u_t, v_coord); }
";

/// Bytes one replayed 16×16 RGBA tile contributes to `bytes_replayed`.
const TILE_BYTES: u64 = 16 * 16 * 4;

/// A serial 32×32 context on the SGX's 16×16 tile grid (four tiles per
/// fullscreen draw) with tile skipping on.
fn skipping_gl() -> Gl {
    let mut gl = Gl::new(Platform::sgx_545(), 32, 32);
    gl.set_exec_config(ExecConfig::serial().with_tile_skip(true));
    gl
}

fn draw(gl: &mut Gl) -> Vec<u8> {
    gl.clear([0.0; 4]).expect("clear");
    gl.draw_quad(&DrawQuad::fullscreen()).expect("draw");
    gl.read_pixels().expect("read")
}

fn counters(gl: &Gl) -> (u64, u64, u64, u64, usize) {
    let s = gl.tile_skip_stats();
    (
        s.hits,
        s.misses,
        s.invalidations,
        s.bytes_replayed,
        s.entries,
    )
}

#[test]
fn repeat_draws_replay_whole_tiles_with_exact_counters() {
    let mut gl = skipping_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");

    let first = draw(&mut gl);
    assert_eq!(counters(&gl), (0, 4, 0, 0, 4), "cold draw misses all tiles");

    let second = draw(&mut gl);
    assert_eq!(second, first);
    assert_eq!(counters(&gl), (4, 4, 0, 4 * TILE_BYTES, 4));

    let third = draw(&mut gl);
    assert_eq!(third, first);
    assert_eq!(counters(&gl), (8, 4, 0, 8 * TILE_BYTES, 4));

    // A uniform change re-keys every tile: four fresh misses, the old
    // entries stay warm alongside.
    gl.set_uniform_scalar(prog, "u_k", 0.5).expect("sets");
    let halved = draw(&mut gl);
    assert_ne!(halved, first);
    assert_eq!(counters(&gl), (8, 8, 0, 8 * TILE_BYTES, 8));

    // Restoring the uniform replays the original tiles byte-for-byte.
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    assert_eq!(draw(&mut gl), first);
    assert_eq!(counters(&gl), (12, 8, 0, 12 * TILE_BYTES, 8));
}

#[test]
fn ping_pong_targets_share_tiles() {
    // The steady-state multi-pass shape: identical draws into alternating
    // render targets. Target identity is excluded from the tile key (no
    // blending, full overwrite), so the second target's draw replays the
    // first target's tiles.
    let mut gl = skipping_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");

    let make_target = |gl: &mut Gl| {
        let tex = gl.create_texture();
        gl.tex_image_2d(tex, 32, 32, TextureFormat::Rgba8, None)
            .expect("allocates");
        tex
    };
    let tex_a = make_target(&mut gl);
    let tex_b = make_target(&mut gl);
    let fbo = gl.create_framebuffer();
    gl.bind_framebuffer(Some(fbo)).expect("binds");

    gl.framebuffer_texture_2d(tex_a).expect("attaches");
    draw(&mut gl);
    assert_eq!(counters(&gl), (0, 4, 0, 0, 4));

    gl.framebuffer_texture_2d(tex_b).expect("attaches");
    draw(&mut gl);
    assert_eq!(
        counters(&gl),
        (4, 4, 0, 4 * TILE_BYTES, 4),
        "second target must replay the first target's tiles"
    );
    assert_eq!(
        gl.read_texture(tex_a).expect("reads"),
        gl.read_texture(tex_b).expect("reads"),
        "replayed tiles must be byte-identical to shaded ones"
    );

    gl.framebuffer_texture_2d(tex_a).expect("attaches");
    draw(&mut gl);
    assert_eq!(counters(&gl), (8, 4, 0, 8 * TILE_BYTES, 4));
}

#[test]
fn band_draws_replay_the_fullscreen_draws_tiles() {
    let mut gl = skipping_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    let full = draw(&mut gl);
    assert_eq!(counters(&gl), (0, 4, 0, 0, 4));

    // Tile rectangles are clipped to the band, and a tile-aligned band's
    // rectangles coincide exactly with the fullscreen draw's — so both
    // half-surface bands replay two warm tiles each.
    gl.clear([0.0; 4]).expect("clears");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(0, 16))
        .expect("bands");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(16, 32))
        .expect("bands");
    assert_eq!(gl.read_pixels().expect("reads"), full);
    assert_eq!(counters(&gl), (4, 4, 0, 4 * TILE_BYTES, 4));

    // A tile-misaligned band clips its rectangles mid-tile: distinct tile
    // keys, so it shades fresh entries instead of corrupting warm ones.
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(8, 16))
        .expect("bands");
    assert_eq!(gl.read_pixels().expect("reads"), full);
    let s = gl.tile_skip_stats();
    assert_eq!((s.hits, s.misses, s.entries), (4, 6, 6));
}

#[test]
fn texture_writes_invalidate_by_signature_not_by_key() {
    let mut gl = skipping_gl();
    let prog = gl.create_program(SAMPLE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_sampler(prog, "u_t", 0).expect("samplers");
    let tex = gl.create_texture();
    let ramp: Vec<u8> = (0..32 * 32 * 4).map(|i| (i % 251) as u8).collect();
    gl.tex_image_2d(tex, 32, 32, TextureFormat::Rgba8, Some(&ramp))
        .expect("uploads");
    gl.bind_texture(0, Some(tex)).expect("binds");

    let dim = draw(&mut gl);
    draw(&mut gl);
    assert_eq!(counters(&gl), (4, 4, 0, 4 * TILE_BYTES, 4));

    // Re-uploading the *same* texels bumps the content version, but the
    // digest revalidates: the tiles still hit.
    gl.tex_image_2d(tex, 32, 32, TextureFormat::Rgba8, Some(&ramp))
        .expect("respecs");
    assert_eq!(draw(&mut gl), dim);
    assert_eq!(counters(&gl), (8, 4, 0, 8 * TILE_BYTES, 4));

    // New contents: every tile's stored signature mismatches — counted as
    // an invalidation *and* a miss — and the fresh bytes are served.
    let inv: Vec<u8> = ramp.iter().map(|&b| 255 - b).collect();
    gl.tex_image_2d(tex, 32, 32, TextureFormat::Rgba8, Some(&inv))
        .expect("respecs");
    let bright = draw(&mut gl);
    assert_ne!(bright, dim);
    assert_eq!(counters(&gl), (8, 8, 4, 8 * TILE_BYTES, 4));

    // And the replacement entries are immediately warm.
    assert_eq!(draw(&mut gl), bright);
    assert_eq!(counters(&gl), (12, 8, 4, 12 * TILE_BYTES, 4));
}

#[test]
fn engine_switch_and_recreate_flush_the_cache() {
    let mut gl = skipping_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    let golden = draw(&mut gl);
    draw(&mut gl);
    assert_eq!(counters(&gl), (4, 4, 0, 4 * TILE_BYTES, 4));

    // Switching the fragment engine (serial() pins Scalar, so Batched is
    // a real switch) flushes: engine is part of the plan key anyway, but
    // stale entries must not pin memory. The switch must not change
    // pixels.
    gl.set_exec_config(
        ExecConfig::serial()
            .with_engine(Engine::Batched)
            .with_tile_skip(true),
    );
    assert_eq!(gl.tile_skip_stats().entries, 0, "engine switch flushes");
    assert_eq!(gl.tile_skip_stats().invalidations, 4);
    assert_eq!(draw(&mut gl), golden);

    // Context recreation drops every entry: replays from a pre-loss cache
    // would resurrect destroyed-context state.
    let filled = gl.tile_skip_stats().entries;
    assert!(filled > 0);
    gl.recreate();
    assert_eq!(gl.tile_skip_stats().entries, 0, "recreate flushes");

    let prog = gl.create_program(SCALE_PROG).expect("recompiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    assert_eq!(draw(&mut gl), golden);
}

#[test]
fn disabling_skip_flushes_and_leaves_no_trace() {
    let mut gl = skipping_gl();
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    let golden = draw(&mut gl);
    assert_eq!(gl.tile_skip_stats().entries, 4);

    // Turning the knob off flushes and stops all signature work.
    gl.set_exec_config(ExecConfig::serial());
    assert_eq!(gl.tile_skip_stats().entries, 0);
    let after_off = gl.tile_skip_stats();
    assert_eq!(draw(&mut gl), golden);
    assert_eq!(
        gl.tile_skip_stats(),
        after_off,
        "skip-off draws must not touch the counters"
    );

    // Turning it back on starts cold.
    gl.set_exec_config(ExecConfig::serial().with_tile_skip(true));
    assert_eq!(draw(&mut gl), golden);
    assert_eq!(gl.tile_skip_stats().hits, after_off.hits);
}

#[test]
fn skip_off_contexts_never_record_stats() {
    let mut gl = Gl::new(Platform::sgx_545(), 32, 32);
    gl.set_exec_config(ExecConfig::serial());
    let prog = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(prog)).expect("uses");
    gl.set_uniform_scalar(prog, "u_k", 1.0).expect("sets");
    for _ in 0..3 {
        draw(&mut gl);
    }
    assert_eq!(counters(&gl), (0, 0, 0, 0, 0));
}

/// Replays a mutation script and snapshots every draw, at one skip
/// setting and dispatcher.
fn run_script(platform: &Platform, engine: Engine, pool: bool, skip: bool) -> Vec<Vec<u8>> {
    let mut gl = Gl::new(platform.clone(), 32, 32);
    gl.set_exec_config(
        ExecConfig::with_threads(3)
            .with_engine(engine)
            .with_pool(pool)
            .with_tile_skip(skip),
    );
    let mut shots = Vec::new();

    let scale = gl.create_program(SCALE_PROG).expect("compiles");
    gl.use_program(Some(scale)).expect("uses");
    gl.set_uniform_scalar(scale, "u_k", 1.0).expect("sets");
    shots.push(draw(&mut gl));
    shots.push(draw(&mut gl)); // warm repeat
    gl.set_uniform_scalar(scale, "u_k", 0.25).expect("sets");
    shots.push(draw(&mut gl)); // re-keyed
    gl.set_uniform_scalar(scale, "u_k", 1.0).expect("sets");
    shots.push(draw(&mut gl)); // warm again

    let sample = gl.create_program(SAMPLE_PROG).expect("compiles");
    gl.use_program(Some(sample)).expect("uses");
    gl.set_sampler(sample, "u_t", 0).expect("samplers");
    let tex = gl.create_texture();
    let ramp: Vec<u8> = (0..32 * 32 * 4).map(|i| (i % 251) as u8).collect();
    gl.tex_image_2d(tex, 32, 32, TextureFormat::Rgba8, Some(&ramp))
        .expect("uploads");
    gl.bind_texture(0, Some(tex)).expect("binds");
    shots.push(draw(&mut gl));
    shots.push(draw(&mut gl)); // warm sampled repeat
    let inv: Vec<u8> = ramp.iter().map(|&b| 255 - b).collect();
    gl.tex_image_2d(tex, 32, 32, TextureFormat::Rgba8, Some(&inv))
        .expect("respecs");
    shots.push(draw(&mut gl)); // signature-invalidated

    gl.use_program(Some(scale)).expect("uses");
    gl.clear([0.0; 4]).expect("clears");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(0, 20))
        .expect("bands");
    gl.draw_quad(&DrawQuad::fullscreen().with_row_band(20, 32))
        .expect("bands");
    shots.push(gl.read_pixels().expect("reads"));

    gl.recreate();
    let scale = gl.create_program(SCALE_PROG).expect("recompiles");
    gl.use_program(Some(scale)).expect("uses");
    gl.set_uniform_scalar(scale, "u_k", 1.0).expect("sets");
    shots.push(draw(&mut gl));

    gl.finish();
    shots
}

/// The headline property: for every platform × engine × dispatcher, the
/// skipping run replays the whole mutation script byte-for-byte like the
/// skip-off run. (Simulated reports legitimately differ — that is the
/// optimisation — so only pixels are compared here; report grouping is
/// the conformance oracle's job.)
#[test]
fn skip_is_pixel_invisible_across_the_mutation_script() {
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        for engine in [Engine::Scalar, Engine::Batched, Engine::Compiled] {
            for pool in [false, true] {
                let plain = run_script(&platform, engine, pool, false);
                let skipping = run_script(&platform, engine, pool, true);
                assert_eq!(
                    skipping, plain,
                    "tile skip changed pixels ({engine:?}, pool={pool} on {})",
                    platform.name
                );
            }
        }
    }
}
