//! A persistent, condvar-parked worker pool for the functional rasteriser.
//!
//! The legacy execution path spawns fresh OS threads inside a
//! [`std::thread::scope`] on **every draw**; on multi-pass GPGPU pipelines
//! (a block-16 sgemm at 1024² issues 64 draws per multiply) thread spawn
//! and join dominate per-draw overhead. This pool spawns its workers once,
//! parks them on a condvar between draws, and hands each draw out as a
//! borrowed job closure — the steady-state cost of a dispatch is one mutex
//! round-trip and a `notify_all`.
//!
//! ## Lifecycle
//!
//! The pool is owned by the [`Gl`](crate::Gl) context and sized by its
//! [`ExecConfig`](crate::exec::ExecConfig). Workers are spawned **lazily**
//! on the first parallel dispatch — *not* in `set_exec_config` — because
//! the auto-tuner builds many short-lived, timing-only contexts that never
//! rasterise in parallel; eager spawning would tax them for nothing. A
//! resize (or shrink-to-zero) happens by dropping and rebuilding the pool.
//! The pool deliberately **survives** [`Gl::recreate`](crate::Gl::recreate)
//! after fault injection: context loss destroys GPU state, not host
//! threads, and re-spawning on every recovery would hand the resilience
//! layer a needless penalty.
//!
//! ## Soundness of the borrowed-job handoff
//!
//! `run` lends workers a `&(dyn Fn(usize) + Sync)` whose lifetime is the
//! `run` call itself, type-erased to a raw pointer so it can sit in the
//! shared slot (a `'static` closure would force the caller to move or
//! clone its borrows — the rasteriser's jobs borrow the framebuffer).
//! The erasure is sound because `run` **does not return** until every
//! participant has finished the job: the caller participates as seat 0,
//! then blocks on the `done` condvar until `remaining == 0`. No worker can
//! touch the pointer after `run` returns, so the pointee outlives every
//! dereference. The only `unsafe` in the workspace lives in this module:
//! the lifetime-erasing transmute in [`WorkerPool::run`], the worker's
//! dereference of the erased pointer, and the `Send` impl shipping it —
//! all three legs of that one argument.
//!
//! Worker panics are caught per-seat, recorded, and reported by `run`'s
//! return value — a panicking job poisons no state and the pool stays
//! usable for the next draw.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A type-erased borrowed job: `usize` is the participant seat index.
///
/// Holds a raw pointer to a `dyn Fn` that lives on `run`'s caller's stack;
/// see the module docs for why workers may dereference it.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared-call-safe from any thread) and
// `run`'s completion barrier guarantees it outlives every dereference, so
// shipping the pointer to worker threads is safe.
unsafe impl Send for Job {}

/// Shared pool state behind the mutex.
struct State {
    /// The job of the current dispatch, if one is in flight.
    job: Option<Job>,
    /// Bumped once per dispatch so parked workers can tell a fresh job
    /// from the one they just finished.
    generation: u64,
    /// Seats participating in the current dispatch (caller is seat 0).
    participants: usize,
    /// Participants that have not yet finished the current job.
    remaining: usize,
    /// Whether any participant panicked during the current dispatch.
    panicked: bool,
    /// Set once, at pool drop, to release the workers for join.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between dispatches.
    work: Condvar,
    /// The dispatching caller parks here until `remaining == 0`.
    done: Condvar,
}

/// Locks poison-tolerantly: a panic in a *job* is already caught per-seat,
/// so a poisoned mutex only means some thread panicked while holding the
/// lock for bookkeeping — the counters it protects are still the best
/// information available, and refusing to proceed would deadlock `drop`.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A persistent pool of `size` worker threads executing borrowed jobs.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `size` parked workers (0 is valid: a pool that never helps).
    ///
    /// A failed spawn is tolerated — the pool just ends up smaller, and
    /// `run` clamps participation to the seats that exist, so every chunk
    /// still executes (work-stealing redistributes the load).
    pub(crate) fn new(size: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                participants: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let mut handles = Vec::with_capacity(size);
        for index in 0..size {
            let shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("mgpu-raster-{index}"))
                .spawn(move || worker_loop(&shared, index));
            if let Ok(handle) = spawned {
                handles.push(handle);
            }
        }
        WorkerPool { shared, handles }
    }

    /// Worker threads in the pool (may be fewer than requested).
    #[cfg(test)]
    pub(crate) fn size(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job` once per participant seat — the calling thread takes
    /// seat 0, up to `participants - 1` workers take seats 1.. — and
    /// returns after **all** seats have finished. Returns `true` if any
    /// seat panicked (the job's side effects may then be incomplete; the
    /// pool itself remains usable).
    ///
    /// `participants` is clamped to the seats that actually exist
    /// (workers + the caller). The job must treat seats symmetrically:
    /// with work-stealing dispatch, any seat may execute any chunk.
    pub(crate) fn run(&self, participants: usize, job: &(dyn Fn(usize) + Sync)) -> bool {
        let participants = participants.clamp(1, self.handles.len() + 1);
        // SAFETY: pure lifetime erasure (identical layout); the completion
        // barrier below keeps `job` alive past every use of the erased
        // pointer — see the module docs.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        {
            let mut state = lock(&self.shared.state);
            state.job = Some(Job(erased as *const _));
            state.generation = state.generation.wrapping_add(1);
            state.participants = participants;
            state.remaining = participants;
            state.panicked = false;
        }
        self.shared.work.notify_all();

        // The caller is seat 0; its panic must not skip the completion
        // barrier below, or workers could outlive the job borrow.
        let caller_result = catch_unwind(AssertUnwindSafe(|| job(0)));

        let panicked = {
            let mut state = lock(&self.shared.state);
            if caller_result.is_err() {
                state.panicked = true;
            }
            state.remaining -= 1;
            if state.remaining == 0 {
                state.job = None;
                self.shared.done.notify_all();
            }
            while state.remaining > 0 {
                state = match self.shared.done.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            state.panicked
        };
        panicked
    }
}

/// A cloneable handle to a shared [`WorkerPool`]: the executor that
/// multiplexes rasterisation work from any number of `Gl` contexts over
/// one set of host threads.
///
/// Historically every `Gl` context owned its own pool, so a fleet of N
/// simulated devices cost N × threads parked OS threads. An `Executor` is
/// an `Arc` around one pool plus a dispatch lock: clone the handle from
/// one context ([`Gl::executor`](crate::Gl::executor)) and install it on
/// the others ([`Gl::install_executor`](crate::Gl::install_executor)) and
/// they all draw through the same workers. Concurrent dispatches from
/// different contexts serialise on the lock — `WorkerPool::run` supports
/// one job in flight at a time — so sharing is safe from any thread,
/// and byte-determinism is unaffected because chunk→bytes assignment is
/// index-based regardless of which seat executes a chunk.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<ExecutorInner>,
}

struct ExecutorInner {
    /// Serialises dispatches: the pool supports one job in flight.
    dispatch: Mutex<()>,
    pool: WorkerPool,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers())
            .field("handles", &Arc::strong_count(&self.inner))
            .finish()
    }
}

impl Executor {
    /// Spawns an executor backed by `workers` parked worker threads (the
    /// dispatching caller always participates as seat 0, so `workers = 0`
    /// is a valid, caller-only executor).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Executor {
            inner: Arc::new(ExecutorInner {
                dispatch: Mutex::new(()),
                pool: WorkerPool::new(workers),
            }),
        }
    }

    /// Worker threads backing this executor (may be fewer than requested
    /// if spawning failed; dispatch clamps participation accordingly).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.inner.pool.handles.len()
    }

    /// Live handles to this executor, this one included — i.e. how many
    /// contexts (or other owners) currently share the pool.
    #[must_use]
    pub fn handles(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    /// Dispatches `job` across `participants` seats; see
    /// [`WorkerPool::run`]. Takes the dispatch lock so overlapping calls
    /// from different contexts serialise instead of corrupting the
    /// in-flight job slot.
    pub(crate) fn run(&self, participants: usize, job: &(dyn Fn(usize) + Sync)) -> bool {
        let _guard = match self.inner.dispatch.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        self.inner.pool.run(participants, job)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen_generation && state.job.is_some() {
                    break;
                }
                state = match shared.work.wait(state) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            seen_generation = state.generation;
            if index + 1 >= state.participants {
                // Not a seat in this dispatch; go back to sleep without
                // touching the job or the remaining count.
                continue;
            }
            match state.job {
                Some(job) => job,
                // Unreachable (checked above), but never panic here.
                None => continue,
            }
        };

        // SAFETY: `run` does not return until `remaining` hits zero, and
        // this worker only decrements `remaining` *after* the call below
        // completes — so the closure behind the pointer is still alive on
        // the caller's stack for the whole call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index + 1) }));

        let mut state = lock(&shared.state);
        if result.is_err() {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            state.job = None;
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_seat_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.size(), 3);
        let seats: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let panicked = pool.run(4, &|seat| {
            seats[seat].fetch_add(1, Ordering::SeqCst);
        });
        assert!(!panicked);
        for seat in &seats {
            assert_eq!(seat.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn dispatches_can_repeat_and_vary_participation() {
        let pool = WorkerPool::new(4);
        for participants in [1, 3, 5, 2, 5] {
            let count = AtomicUsize::new(0);
            let panicked = pool.run(participants, &|_seat| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            assert!(!panicked);
            assert_eq!(count.load(Ordering::SeqCst), participants);
        }
    }

    #[test]
    fn participation_is_clamped_to_existing_seats() {
        let pool = WorkerPool::new(2);
        let count = AtomicUsize::new(0);
        pool.run(64, &|_seat| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3, "2 workers + the caller");
    }

    #[test]
    fn zero_sized_pool_still_runs_on_the_caller() {
        let pool = WorkerPool::new(0);
        let count = AtomicUsize::new(0);
        let panicked = pool.run(8, &|seat| {
            assert_eq!(seat, 0);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!panicked);
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_panic_is_reported_and_pool_survives() {
        // Keep the panic message out of test output.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = WorkerPool::new(2);
        let panicked = pool.run(3, &|seat| {
            if seat == 1 {
                panic!("injected worker failure");
            }
        });
        std::panic::set_hook(prev_hook);
        assert!(panicked);

        // The pool is still fully usable afterwards.
        let count = AtomicUsize::new(0);
        let panicked = pool.run(3, &|_seat| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert!(!panicked);
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn caller_panic_is_reported_and_pool_survives() {
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(3, &|seat| {
                if seat == 0 {
                    panic!("injected caller failure");
                }
            })
        }));
        std::panic::set_hook(prev_hook);
        // run() reports rather than unwinding: the caller's panic is
        // caught so the completion barrier always executes.
        assert_eq!(result.ok(), Some(true));
        assert!(!pool.run(2, &|_| {}));
    }

    #[test]
    fn executor_counts_workers_and_handles() {
        let exec = Executor::new(2);
        assert_eq!(exec.workers(), 2);
        assert_eq!(exec.handles(), 1);
        let clone = exec.clone();
        assert_eq!(exec.handles(), 2);
        assert_eq!(clone.workers(), 2);
        drop(clone);
        assert_eq!(exec.handles(), 1);
    }

    #[test]
    fn executor_serialises_concurrent_dispatches() {
        // Two threads dispatching through the same executor at once must
        // not corrupt each other's job slot: every dispatch still runs
        // once per seat.
        let exec = Executor::new(3);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                let exec = exec.clone();
                let total = &total;
                s.spawn(move || {
                    for _ in 0..50 {
                        let panicked = exec.run(4, &|_seat| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                        assert!(!panicked);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 2 * 50 * 4);
    }

    #[test]
    fn jobs_may_borrow_the_callers_stack() {
        let pool = WorkerPool::new(3);
        let mut data = vec![0u32; 64];
        let chunks: Vec<Mutex<Option<&mut [u32]>>> =
            data.chunks_mut(16).map(|c| Mutex::new(Some(c))).collect();
        let ticket = AtomicUsize::new(0);
        pool.run(4, &|_seat| loop {
            let i = ticket.fetch_add(1, Ordering::Relaxed);
            if i >= chunks.len() {
                break;
            }
            let taken = match chunks[i].lock() {
                Ok(mut slot) => slot.take(),
                Err(_) => None,
            };
            if let Some(chunk) = taken {
                // Which seat claims chunk `i` varies run to run; the bytes
                // written for chunk `i` must not.
                for v in chunk.iter_mut() {
                    *v = (i as u32) * 100;
                }
            }
        });
        for (i, chunk) in data.chunks(16).enumerate() {
            assert!(chunk.iter().all(|&v| v == (i as u32) * 100));
        }
    }
}
