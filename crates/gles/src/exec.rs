//! Execution configuration for the functional fragment engine.
//!
//! The timing simulation in [`mgpu_tbdr`] models the *GPU's* parallelism
//! and is always single-threaded and bit-exact. This module only controls
//! how many **host** threads the functional rasteriser uses to compute
//! fragment colours. Because every fragment of a GPGPU quad is a pure
//! function of its coordinates, the parallel schedule cannot change any
//! output byte — it only changes wall-clock time.
//!
//! The thread count comes from, in priority order:
//!
//! 1. an explicit [`Gl::set_exec_config`](crate::Gl::set_exec_config) call,
//! 2. the `MGPU_THREADS` environment variable (a positive integer;
//!    anything unparsable falls back to the default),
//! 3. [`std::thread::available_parallelism`].
//!
//! `MGPU_THREADS=1` (or [`ExecConfig::serial`]) selects the original
//! serial path exactly.

use std::num::NonZeroUsize;

/// Environment variable overriding the functional thread count.
pub const THREADS_ENV: &str = "MGPU_THREADS";

/// Environment variable selecting the fragment engine (`scalar` or
/// `batched`; anything else falls back to the default, batched).
pub const ENGINE_ENV: &str = "MGPU_ENGINE";

/// Which functional fragment interpreter computes fragment colours.
///
/// Both engines are bit-exact with each other — the scalar engine is the
/// reference semantics, the batched engine a lane-parallel reformulation
/// of the same f32 expressions — so this knob only changes wall-clock
/// time, never an output byte. The determinism tests at the workspace
/// root hold the two engines against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The original per-fragment scalar interpreter, uniforms resolved at
    /// bind time but no shader specialisation: the reference path.
    Scalar,
    /// The lane-batched SoA interpreter with bind-time uniform
    /// specialisation: the throughput path, and the default.
    #[default]
    Batched,
}

impl Engine {
    /// Reads `MGPU_ENGINE`, falling back to [`Engine::Batched`] when unset
    /// or unrecognised.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(ENGINE_ENV) {
            Ok(s) if s.trim().eq_ignore_ascii_case("scalar") => Engine::Scalar,
            _ => Engine::Batched,
        }
    }
}

/// Fixed row-chunk granularity of the parallel rasteriser.
///
/// The framebuffer is partitioned into chunks of this many rows; chunks
/// are assigned to workers round-robin by index, so the partition — and
/// therefore every byte each worker writes — depends only on the target
/// size, never on scheduling.
pub const CHUNK_ROWS: u32 = 16;

/// How the functional fragment engine executes kernels on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecConfig {
    threads: usize,
    engine: Engine,
}

impl ExecConfig {
    /// The original single-threaded scalar execution path.
    #[must_use]
    pub const fn serial() -> Self {
        ExecConfig {
            threads: 1,
            engine: Engine::Scalar,
        }
    }

    /// Executes fragments on `threads` worker threads (clamped to ≥ 1),
    /// with the environment-selected engine.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
            engine: Engine::from_env(),
        }
    }

    /// Reads `MGPU_THREADS` and `MGPU_ENGINE`, falling back to the
    /// machine's available parallelism and the batched engine.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => ExecConfig::with_threads(n),
            _ => ExecConfig::with_threads(
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// This configuration with the thread count replaced (clamped to ≥ 1).
    #[must_use]
    pub fn with_thread_count(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// This configuration with the fragment engine replaced.
    #[must_use]
    pub const fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// The configured worker-thread count (≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured fragment engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Whether this configuration takes the serial path.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for ExecConfig {
    /// The environment-driven configuration ([`ExecConfig::from_env`]).
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(ExecConfig::serial().threads(), 1);
        assert!(ExecConfig::serial().is_serial());
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecConfig::with_threads(8).threads(), 8);
        assert!(!ExecConfig::with_threads(8).is_serial());
    }

    #[test]
    fn from_env_is_at_least_one() {
        // Whatever the environment says, the result is a usable config.
        assert!(ExecConfig::from_env().threads() >= 1);
        assert!(ExecConfig::default().threads() >= 1);
    }

    #[test]
    fn serial_uses_the_scalar_reference_engine() {
        assert_eq!(ExecConfig::serial().engine(), Engine::Scalar);
    }

    #[test]
    fn engine_builder_round_trips() {
        let cfg = ExecConfig::with_threads(4).with_engine(Engine::Scalar);
        assert_eq!(cfg.engine(), Engine::Scalar);
        assert_eq!(cfg.threads(), 4);
        let cfg = cfg.with_engine(Engine::Batched).with_thread_count(2);
        assert_eq!(cfg.engine(), Engine::Batched);
        assert_eq!(cfg.threads(), 2);
    }
}
