//! Execution configuration for the functional fragment engine.
//!
//! The timing simulation in [`mgpu_tbdr`] models the *GPU's* parallelism
//! and is always single-threaded and bit-exact. This module only controls
//! how many **host** threads the functional rasteriser uses to compute
//! fragment colours. Because every fragment of a GPGPU quad is a pure
//! function of its coordinates, the parallel schedule cannot change any
//! output byte — it only changes wall-clock time.
//!
//! The thread count comes from, in priority order:
//!
//! 1. an explicit [`Gl::set_exec_config`](crate::Gl::set_exec_config) call,
//! 2. the `MGPU_THREADS` environment variable (a positive integer),
//! 3. [`std::thread::available_parallelism`].
//!
//! `MGPU_THREADS=1` (or [`ExecConfig::serial`]) selects the original
//! serial path exactly.
//!
//! **Every** `MGPU_*` knob (`MGPU_ENGINE`, `MGPU_POOL`, `MGPU_PLAN_CACHE`,
//! `MGPU_SPEC`, `MGPU_TILE_SKIP`, `MGPU_THREADS`, `MGPU_FAULTS`) is
//! resolved **once per
//! process** into a single cached snapshot: mutating the environment
//! mid-run can never flip the engine, pool, plan cache, thread default or
//! fault plan between draws or desynchronise two configs built at
//! different times. An explicit builder call ([`ExecConfig::with_engine`],
//! [`ExecConfig::with_pool`]) is the supported way to change them at run
//! time.
//!
//! Invalid knob values are **errors**, not silent fallbacks: the snapshot
//! records a typed [`EnvKnobError`] naming the variable, the offending
//! value and the grammar it violated, and context creation
//! ([`Gl::try_new`](crate::Gl::try_new)) surfaces it as
//! [`GlError::InvalidEnv`](crate::GlError::InvalidEnv).

use crate::fault::FaultPlan;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Environment variable overriding the functional thread count.
pub const THREADS_ENV: &str = "MGPU_THREADS";

/// Environment variable selecting the fragment engine (`scalar`,
/// `batched` or `compiled`; anything else is an [`EnvKnobError`] at
/// context creation).
pub const ENGINE_ENV: &str = "MGPU_ENGINE";

/// Environment variable installing a deterministic fault plan on every
/// context created by the process (see
/// [`FaultPlan::parse`](crate::FaultPlan::parse) for the grammar).
/// Resolved once per process like every other knob; a malformed spec is
/// an [`EnvKnobError`] at context creation.
pub const FAULTS_ENV: &str = "MGPU_FAULTS";

/// Environment variable disabling the persistent worker pool
/// (`off`/`0`/`false`/`no`): the rasteriser then uses the legacy
/// per-draw `thread::scope` spawn path with round-robin chunk dealing,
/// and the draw-plan cache is bypassed. The escape hatch for comparing
/// against (or falling back to) the pre-pool execution path.
pub const POOL_ENV: &str = "MGPU_POOL";

/// Environment variable disabling the per-context draw-plan cache
/// (`off`/`0`/`false`/`no`) while keeping the worker pool: every draw
/// then rebuilds its specialised shader, column table and engine seats.
pub const PLAN_CACHE_ENV: &str = "MGPU_PLAN_CACHE";

/// Environment variable enabling tile-level redundancy elimination
/// (`on`/`1`/`true`/`yes`; **default off**, unlike the other switches):
/// draws then consult the per-context tile-signature cache and replay the
/// cached bytes of any tile whose inputs are provably unchanged instead of
/// shading it, and the timing simulation charges skipped tiles their
/// signature reads instead of fragment shading. Outputs are byte-identical
/// either way (the conformance lattice holds skip-on against skip-off);
/// simulated timing legitimately improves.
pub const TILE_SKIP_ENV: &str = "MGPU_TILE_SKIP";

/// Environment variable disabling bind-time uniform specialisation
/// (`off`/`0`/`false`/`no`): the batched engine then interprets the
/// original shader with uniforms resolved at seat bind time, exactly like
/// the scalar tier. A pure wall-clock knob — the conformance lattice holds
/// spec-on and spec-off byte-identical — and the isolation lever when a
/// divergence needs attributing to specialisation vs the batch engine.
pub const SPEC_ENV: &str = "MGPU_SPEC";

/// Which functional fragment interpreter computes fragment colours.
///
/// All three engines are bit-exact with each other — the scalar engine is
/// the reference semantics, the batched engine a lane-parallel
/// reformulation of the same f32 expressions, and the compiled engine a
/// bind-time lowering of those expressions into fused native closures —
/// so this knob only changes wall-clock time, never an output byte. The
/// determinism tests at the workspace root and the conformance lattice
/// hold the three engines against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The original per-fragment scalar interpreter, uniforms resolved at
    /// bind time but no shader specialisation: the reference path.
    Scalar,
    /// The lane-batched SoA interpreter with bind-time uniform
    /// specialisation: the throughput path, and the default.
    #[default]
    Batched,
    /// The straight-line IR lowered at bind time into a chain of fused,
    /// monomorphised native closures (`mgpu_shader::compile`): no
    /// per-instruction decode or scratch traffic at all — the fastest
    /// tier on unrolled GPGPU kernels.
    Compiled,
}

/// An invalid `MGPU_*` environment-knob value, recorded in the
/// process-wide snapshot and surfaced as
/// [`GlError::InvalidEnv`](crate::GlError::InvalidEnv) at context
/// creation. Carries the variable, the offending value and the grammar it
/// violated, so harness typos (`MGPU_ENGINE=typo`, `MGPU_THREADS=0`)
/// fail loudly instead of silently falling back to defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnobError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// Its verbatim value.
    pub value: String,
    /// What the grammar expected.
    pub reason: String,
}

impl EnvKnobError {
    fn new(var: &'static str, value: &str, reason: impl Into<String>) -> Self {
        EnvKnobError {
            var,
            value: value.to_owned(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for EnvKnobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {} value `{}`: {}",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for EnvKnobError {}

/// Process-wide snapshot of **every** `MGPU_*` environment knob, read and
/// validated exactly once. Engine/pool/cache/spec selection must stay
/// constant across a run for the byte-identity and plan-reuse invariants
/// to be meaningful; caching the thread default and fault plan alongside
/// them means two configs (or contexts) built at different times can
/// never desynchronise through a mid-process `set_var`.
#[derive(Debug, Clone)]
struct EnvKnobs {
    engine: Engine,
    pool: bool,
    plan_cache: bool,
    spec: bool,
    /// `MGPU_TILE_SKIP` — the only switch that defaults **off**: tile
    /// skipping changes simulated timing (that is its point), so it must
    /// be asked for.
    tile_skip: bool,
    /// `MGPU_THREADS`, when set (explicit configs still override it).
    threads: Option<usize>,
    /// `MGPU_FAULTS`, when set and non-empty.
    faults: Option<FaultPlan>,
}

impl EnvKnobs {
    /// Resolves the knob snapshot through `get` (the environment in
    /// production, a table in the grammar property tests).
    fn resolve(get: impl Fn(&'static str) -> Option<String>) -> Result<EnvKnobs, EnvKnobError> {
        let engine = match get(ENGINE_ENV) {
            Some(s) => {
                parse_engine(&s).ok_or_else(|| EnvKnobError::new(ENGINE_ENV, &s, ENGINE_GRAMMAR))?
            }
            None => Engine::default(),
        };
        let threads = match get(THREADS_ENV) {
            Some(s) => Some(
                parse_thread_count(&s)
                    .ok_or_else(|| EnvKnobError::new(THREADS_ENV, &s, THREADS_GRAMMAR))?,
            ),
            None => None,
        };
        let faults = match get(FAULTS_ENV) {
            Some(s) if !s.trim().is_empty() => Some(
                FaultPlan::parse(&s)
                    .map_err(|e| EnvKnobError::new(FAULTS_ENV, &s, e.to_string()))?,
            ),
            _ => None,
        };
        Ok(EnvKnobs {
            engine,
            pool: resolve_switch(&get, POOL_ENV)?,
            plan_cache: resolve_switch(&get, PLAN_CACHE_ENV)?,
            spec: resolve_switch(&get, SPEC_ENV)?,
            tile_skip: resolve_switch_or(&get, TILE_SKIP_ENV, false)?,
            threads,
            faults,
        })
    }
}

const ENGINE_GRAMMAR: &str = "expected `scalar`, `batched` or `compiled`";
const THREADS_GRAMMAR: &str = "expected a positive integer";
const SWITCH_GRAMMAR: &str = "expected `on`/`1`/`true`/`yes` or `off`/`0`/`false`/`no`";

/// `scalar`/`batched`/`compiled`, case-insensitive and trimmed.
fn parse_engine(value: &str) -> Option<Engine> {
    let v = value.trim();
    if v.eq_ignore_ascii_case("scalar") {
        Some(Engine::Scalar)
    } else if v.eq_ignore_ascii_case("batched") {
        Some(Engine::Batched)
    } else if v.eq_ignore_ascii_case("compiled") {
        Some(Engine::Compiled)
    } else {
        None
    }
}

/// `on`/`1`/`true`/`yes` or `off`/`0`/`false`/`no`, case-insensitive and
/// trimmed. Anything else is a grammar error — an `MGPU_POOL=offf` typo
/// must not silently leave the pool on.
fn parse_switch(value: &str) -> Option<bool> {
    match value.trim().to_ascii_lowercase().as_str() {
        "on" | "1" | "true" | "yes" => Some(true),
        "off" | "0" | "false" | "no" => Some(false),
        _ => None,
    }
}

/// A positive integer, trimmed. Zero is a grammar error (a thread count
/// of zero is meaningless, and silently clamping it would mask the typo).
fn parse_thread_count(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

fn resolve_switch(
    get: &impl Fn(&'static str) -> Option<String>,
    var: &'static str,
) -> Result<bool, EnvKnobError> {
    resolve_switch_or(get, var, true)
}

fn resolve_switch_or(
    get: &impl Fn(&'static str) -> Option<String>,
    var: &'static str,
    default: bool,
) -> Result<bool, EnvKnobError> {
    match get(var) {
        Some(s) => parse_switch(&s).ok_or_else(|| EnvKnobError::new(var, &s, SWITCH_GRAMMAR)),
        None => Ok(default),
    }
}

/// The once-per-process knob snapshot (or the first validation error).
fn env_knobs() -> &'static Result<EnvKnobs, EnvKnobError> {
    static KNOBS: OnceLock<Result<EnvKnobs, EnvKnobError>> = OnceLock::new();
    KNOBS.get_or_init(|| EnvKnobs::resolve(|var| std::env::var(var).ok()))
}

/// The snapshot, panicking on an invalid environment — for the infallible
/// legacy constructors; fallible paths go through
/// [`ExecConfig::try_from_env`].
fn env_knobs_or_panic() -> &'static EnvKnobs {
    match env_knobs() {
        Ok(knobs) => knobs,
        Err(e) => panic!("mgpu-gles: {e}"),
    }
}

impl Engine {
    /// The engine selected by `MGPU_ENGINE`, defaulting to
    /// [`Engine::Batched`] when unset. Resolved **once** per process and
    /// cached thereafter, so a mid-run environment mutation can never
    /// flip engines between draws.
    ///
    /// # Panics
    ///
    /// Panics if `MGPU_ENGINE` (or any other `MGPU_*` knob) holds an
    /// invalid value; use [`ExecConfig::try_from_env`] /
    /// [`Gl::try_new`](crate::Gl::try_new) to handle that as a typed
    /// error instead.
    #[must_use]
    pub fn from_env() -> Self {
        env_knobs_or_panic().engine
    }
}

/// The process-wide `MGPU_PLAN_CACHE` default (resolved once; an invalid
/// environment reports through context creation, so default to on here).
pub(crate) fn plan_cache_default() -> bool {
    env_knobs().as_ref().map(|k| k.plan_cache).unwrap_or(true)
}

/// The process-wide `MGPU_FAULTS` plan (resolved once), or the knob error
/// context creation should surface.
pub(crate) fn env_fault_plan() -> Result<Option<FaultPlan>, EnvKnobError> {
    match env_knobs() {
        Ok(knobs) => Ok(knobs.faults.clone()),
        Err(e) => Err(e.clone()),
    }
}

/// Fixed row-chunk granularity of the parallel rasteriser.
///
/// The framebuffer is partitioned into chunks of this many rows; the
/// chunk→rows (and therefore chunk→bytes) mapping depends only on the
/// target size and band, never on scheduling — whether chunks are dealt
/// round-robin (legacy scope path) or claimed by work-stealing (pool
/// path), every byte each chunk writes is the same.
pub const CHUNK_ROWS: u32 = 16;

/// How the functional fragment engine executes kernels on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecConfig {
    threads: usize,
    engine: Engine,
    pool: bool,
    spec: bool,
    tile_skip: bool,
}

impl ExecConfig {
    /// The original single-threaded scalar execution path (worker pool,
    /// plan cache and bind-time specialisation bypassed).
    #[must_use]
    pub const fn serial() -> Self {
        ExecConfig {
            threads: 1,
            engine: Engine::Scalar,
            pool: false,
            spec: false,
            tile_skip: false,
        }
    }

    /// Executes fragments on `threads` worker threads (clamped to ≥ 1),
    /// with the environment-selected engine, pool and specialisation
    /// modes.
    ///
    /// # Panics
    ///
    /// Panics if any `MGPU_*` knob holds an invalid value (see
    /// [`ExecConfig::try_from_env`] for the fallible path).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        let knobs = env_knobs_or_panic();
        ExecConfig {
            threads: threads.max(1),
            engine: knobs.engine,
            pool: knobs.pool,
            spec: knobs.spec,
            tile_skip: knobs.tile_skip,
        }
    }

    /// The environment-driven configuration: `MGPU_THREADS` (falling back
    /// to the machine's available parallelism), `MGPU_ENGINE`, `MGPU_POOL`
    /// and `MGPU_SPEC`, all from the once-per-process snapshot.
    ///
    /// # Errors
    ///
    /// Returns the [`EnvKnobError`] recorded in the snapshot when any
    /// `MGPU_*` knob holds an invalid value.
    pub fn try_from_env() -> Result<Self, EnvKnobError> {
        let knobs = match env_knobs() {
            Ok(knobs) => knobs,
            Err(e) => return Err(e.clone()),
        };
        let threads = knobs.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        Ok(ExecConfig {
            threads: threads.max(1),
            engine: knobs.engine,
            pool: knobs.pool,
            spec: knobs.spec,
            tile_skip: knobs.tile_skip,
        })
    }

    /// [`ExecConfig::try_from_env`] for infallible call sites.
    ///
    /// # Panics
    ///
    /// Panics if any `MGPU_*` knob holds an invalid value; prefer
    /// [`ExecConfig::try_from_env`] (or
    /// [`Gl::try_new`](crate::Gl::try_new)) where the error can be
    /// handled.
    #[must_use]
    pub fn from_env() -> Self {
        match ExecConfig::try_from_env() {
            Ok(cfg) => cfg,
            Err(e) => panic!("mgpu-gles: {e}"),
        }
    }

    /// This configuration with the thread count replaced (clamped to ≥ 1).
    #[must_use]
    pub fn with_thread_count(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// This configuration with the fragment engine replaced.
    #[must_use]
    pub const fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// This configuration with the persistent-pool dispatcher switched on
    /// or off. With it off, draws use the legacy per-draw `thread::scope`
    /// spawn path with round-robin chunk dealing and no plan caching —
    /// byte-identical output, pre-pool wall-clock behaviour.
    #[must_use]
    pub const fn with_pool(mut self, pool: bool) -> Self {
        self.pool = pool;
        self
    }

    /// This configuration with bind-time uniform specialisation switched
    /// on or off. Specialisation only applies on the batched and compiled
    /// tiers (the scalar tier is always the pristine reference
    /// interpreter); with it off, those engines run the original shader
    /// with uniforms resolved at bind time. Byte-identical either way — this knob
    /// exists so the conformance lattice can attribute a divergence to
    /// specialisation as opposed to lane batching.
    #[must_use]
    pub const fn with_specialization(mut self, spec: bool) -> Self {
        self.spec = spec;
        self
    }

    /// This configuration with tile-level redundancy elimination switched
    /// on or off. Unlike the other knobs this is **not** purely a
    /// wall-clock switch: skipped tiles legitimately change the simulated
    /// timing (signature reads instead of fragment shading) — the promise
    /// is byte-identical *outputs*, held by the conformance lattice.
    #[must_use]
    pub const fn with_tile_skip(mut self, tile_skip: bool) -> Self {
        self.tile_skip = tile_skip;
        self
    }

    /// The configured worker-thread count (≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured fragment engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Whether draws dispatch through the persistent worker pool (and may
    /// use the draw-plan cache) rather than the legacy scope-spawn path.
    #[must_use]
    pub fn pool_enabled(&self) -> bool {
        self.pool
    }

    /// Whether the batched tier specialises shaders against their bound
    /// uniforms at bind time (always `false` on the scalar tier).
    #[must_use]
    pub fn specialization(&self) -> bool {
        self.spec
    }

    /// Whether draws consult the per-context tile-signature cache and
    /// replay provably-unchanged tiles instead of shading them.
    #[must_use]
    pub fn tile_skip(&self) -> bool {
        self.tile_skip
    }

    /// Whether this configuration takes the serial path.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for ExecConfig {
    /// The environment-driven configuration ([`ExecConfig::from_env`]).
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(ExecConfig::serial().threads(), 1);
        assert!(ExecConfig::serial().is_serial());
        assert!(!ExecConfig::serial().pool_enabled());
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecConfig::with_threads(8).threads(), 8);
        assert!(!ExecConfig::with_threads(8).is_serial());
    }

    #[test]
    fn from_env_is_at_least_one() {
        // Whatever the environment says, the result is a usable config.
        assert!(ExecConfig::from_env().threads() >= 1);
        assert!(ExecConfig::default().threads() >= 1);
    }

    #[test]
    fn serial_uses_the_scalar_reference_engine() {
        assert_eq!(ExecConfig::serial().engine(), Engine::Scalar);
    }

    #[test]
    fn engine_builder_round_trips() {
        let cfg = ExecConfig::with_threads(4).with_engine(Engine::Scalar);
        assert_eq!(cfg.engine(), Engine::Scalar);
        assert_eq!(cfg.threads(), 4);
        let cfg = cfg.with_engine(Engine::Batched).with_thread_count(2);
        assert_eq!(cfg.engine(), Engine::Batched);
        assert_eq!(cfg.threads(), 2);
    }

    #[test]
    fn pool_builder_round_trips() {
        let cfg = ExecConfig::with_threads(4).with_pool(false);
        assert!(!cfg.pool_enabled());
        assert!(cfg.with_pool(true).pool_enabled());
        // Toggling the pool leaves the other knobs alone.
        assert_eq!(cfg.threads(), 4);
    }

    #[test]
    fn tile_skip_builder_round_trips() {
        assert!(!ExecConfig::serial().tile_skip());
        let cfg = ExecConfig::with_threads(4).with_tile_skip(true);
        assert!(cfg.tile_skip());
        assert!(!cfg.with_tile_skip(false).tile_skip());
        // Toggling tile skipping leaves the other knobs alone.
        assert_eq!(cfg.threads(), 4);
        assert_eq!(cfg.engine(), ExecConfig::with_threads(4).engine());
    }

    #[test]
    fn specialization_builder_round_trips() {
        assert!(!ExecConfig::serial().specialization());
        let cfg = ExecConfig::with_threads(4).with_specialization(false);
        assert!(!cfg.specialization());
        assert!(cfg.with_specialization(true).specialization());
        // Toggling specialisation leaves the other knobs alone.
        assert_eq!(cfg.threads(), 4);
        assert_eq!(
            cfg.pool_enabled(),
            ExecConfig::with_threads(4).pool_enabled()
        );
    }

    /// Resolves a snapshot in which exactly one knob is set.
    fn resolve_one(var: &'static str, value: &str) -> Result<EnvKnobs, EnvKnobError> {
        let value = value.to_owned();
        EnvKnobs::resolve(move |v| (v == var).then(|| value.clone()))
    }

    /// Every case/whitespace spelling of every valid token parses, for
    /// every knob — the property the old ad-hoc readers only held for a
    /// few hard-coded strings.
    #[test]
    fn knob_grammar_accepts_every_valid_spelling() {
        let spellings = |token: &str| -> Vec<String> {
            vec![
                token.to_owned(),
                token.to_uppercase(),
                format!("{}{}", token[..1].to_uppercase(), token[1..].to_lowercase()),
                format!("  {token} "),
                format!("\t{}\n", token.to_uppercase()),
            ]
        };
        for (token, engine) in [
            ("scalar", Engine::Scalar),
            ("batched", Engine::Batched),
            ("compiled", Engine::Compiled),
        ] {
            for s in spellings(token) {
                assert_eq!(parse_engine(&s), Some(engine), "engine `{s}`");
                let knobs = resolve_one(ENGINE_ENV, &s).unwrap();
                assert_eq!(knobs.engine, engine);
            }
        }
        for (token, on) in [
            ("on", true),
            ("1", true),
            ("true", true),
            ("yes", true),
            ("off", false),
            ("0", false),
            ("false", false),
            ("no", false),
        ] {
            for s in spellings(token) {
                assert_eq!(parse_switch(&s), Some(on), "switch `{s}`");
                for var in [POOL_ENV, PLAN_CACHE_ENV, SPEC_ENV, TILE_SKIP_ENV] {
                    let knobs = resolve_one(var, &s).unwrap();
                    let got = match var {
                        POOL_ENV => knobs.pool,
                        PLAN_CACHE_ENV => knobs.plan_cache,
                        SPEC_ENV => knobs.spec,
                        _ => knobs.tile_skip,
                    };
                    assert_eq!(got, on, "{var}=`{s}`");
                }
            }
        }
        for n in [1usize, 2, 7, 64, 10_000] {
            let s = format!(" {n} ");
            assert_eq!(parse_thread_count(&s), Some(n));
            assert_eq!(resolve_one(THREADS_ENV, &s).unwrap().threads, Some(n));
        }
        let knobs = resolve_one(FAULTS_ENV, "seed=9,ctx@3").unwrap();
        assert_eq!(knobs.faults, Some(FaultPlan::seeded(9).ctx_loss_at_draw(3)));
        // Unset and empty both mean "no plan", not an error.
        assert_eq!(resolve_one(FAULTS_ENV, "  ").unwrap().faults, None);
        let defaults = EnvKnobs::resolve(|_| None).unwrap();
        assert_eq!(defaults.engine, Engine::Batched);
        assert!(defaults.pool && defaults.plan_cache && defaults.spec);
        assert!(!defaults.tile_skip, "tile skipping must default off");
        assert_eq!(defaults.threads, None);
        assert_eq!(defaults.faults, None);
    }

    /// Everything outside the grammar is a typed error naming the
    /// variable and its verbatim value — never a silent default.
    #[test]
    fn knob_grammar_rejects_invalid_values_with_typed_errors() {
        let engine_bad = ["typo", "vliw", "scalarr", "batched compiled", "2", ""];
        for v in engine_bad {
            assert_eq!(parse_engine(v), None, "engine `{v}`");
            let err = resolve_one(ENGINE_ENV, v).unwrap_err();
            assert_eq!(err.var, ENGINE_ENV);
            assert_eq!(err.value, v);
            assert!(err.to_string().contains(ENGINE_ENV), "{err}");
        }
        let switch_bad = ["offf", "enabled", "2", "-1", "o n", ""];
        for v in switch_bad {
            assert_eq!(parse_switch(v), None, "switch `{v}`");
            for var in [POOL_ENV, PLAN_CACHE_ENV, SPEC_ENV, TILE_SKIP_ENV] {
                let err = resolve_one(var, v).unwrap_err();
                assert_eq!((err.var, err.value.as_str()), (var, v));
            }
        }
        let threads_bad = ["0", "-3", "two", "1.5", "1e3", "", "0x8"];
        for v in threads_bad {
            assert_eq!(parse_thread_count(v), None, "threads `{v}`");
            let err = resolve_one(THREADS_ENV, v).unwrap_err();
            assert_eq!((err.var, err.value.as_str()), (THREADS_ENV, v));
        }
        let err = resolve_one(FAULTS_ENV, "seed=bogus").unwrap_err();
        assert_eq!(err.var, FAULTS_ENV);
        assert!(err.reason.contains("seed=bogus"), "{err}");
        let err = resolve_one(FAULTS_ENV, "frobnicate@1").unwrap_err();
        assert_eq!(err.var, FAULTS_ENV);
    }

    /// The first invalid knob wins even when several are set, and valid
    /// knobs resolve together.
    #[test]
    fn snapshot_resolves_all_knobs_together() {
        let knobs = EnvKnobs::resolve(|var| {
            let v = match var {
                ENGINE_ENV => "compiled",
                THREADS_ENV => "3",
                POOL_ENV => "on",
                PLAN_CACHE_ENV => "off",
                SPEC_ENV => "no",
                TILE_SKIP_ENV => "yes",
                FAULTS_ENV => "seed=4",
                _ => return None,
            };
            Some(v.to_owned())
        })
        .unwrap();
        assert_eq!(knobs.engine, Engine::Compiled);
        assert_eq!(knobs.threads, Some(3));
        assert!(knobs.pool && !knobs.plan_cache && !knobs.spec);
        assert!(knobs.tile_skip);
        assert_eq!(knobs.faults, Some(FaultPlan::seeded(4)));

        let err = EnvKnobs::resolve(|var| match var {
            ENGINE_ENV => Some("compiled".to_owned()),
            THREADS_ENV => Some("zero".to_owned()),
            _ => None,
        })
        .unwrap_err();
        assert_eq!(err.var, THREADS_ENV);
    }

    #[test]
    fn engine_resolution_is_stable_across_calls() {
        // The env snapshot is taken once: two configs built at different
        // times always agree on engine and pool mode.
        let a = ExecConfig::with_threads(2);
        let b = ExecConfig::with_threads(7);
        assert_eq!(a.engine(), b.engine());
        assert_eq!(a.pool_enabled(), b.pool_enabled());
        assert_eq!(Engine::from_env(), a.engine());
    }
}
