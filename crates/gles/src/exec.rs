//! Execution configuration for the functional fragment engine.
//!
//! The timing simulation in [`mgpu_tbdr`] models the *GPU's* parallelism
//! and is always single-threaded and bit-exact. This module only controls
//! how many **host** threads the functional rasteriser uses to compute
//! fragment colours. Because every fragment of a GPGPU quad is a pure
//! function of its coordinates, the parallel schedule cannot change any
//! output byte — it only changes wall-clock time.
//!
//! The thread count comes from, in priority order:
//!
//! 1. an explicit [`Gl::set_exec_config`](crate::Gl::set_exec_config) call,
//! 2. the `MGPU_THREADS` environment variable (a positive integer;
//!    anything unparsable falls back to the default),
//! 3. [`std::thread::available_parallelism`].
//!
//! `MGPU_THREADS=1` (or [`ExecConfig::serial`]) selects the original
//! serial path exactly.

use std::num::NonZeroUsize;

/// Environment variable overriding the functional thread count.
pub const THREADS_ENV: &str = "MGPU_THREADS";

/// Fixed row-chunk granularity of the parallel rasteriser.
///
/// The framebuffer is partitioned into chunks of this many rows; chunks
/// are assigned to workers round-robin by index, so the partition — and
/// therefore every byte each worker writes — depends only on the target
/// size, never on scheduling.
pub const CHUNK_ROWS: u32 = 16;

/// How the functional fragment engine executes kernels on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecConfig {
    threads: usize,
}

impl ExecConfig {
    /// The original single-threaded execution path.
    #[must_use]
    pub const fn serial() -> Self {
        ExecConfig { threads: 1 }
    }

    /// Executes fragments on `threads` worker threads (clamped to ≥ 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
        }
    }

    /// Reads `MGPU_THREADS`, falling back to the machine's available
    /// parallelism when unset or unparsable.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => ExecConfig::with_threads(n),
            _ => ExecConfig::with_threads(
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// The configured worker-thread count (≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this configuration takes the serial path.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for ExecConfig {
    /// The environment-driven configuration ([`ExecConfig::from_env`]).
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(ExecConfig::serial().threads(), 1);
        assert!(ExecConfig::serial().is_serial());
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecConfig::with_threads(8).threads(), 8);
        assert!(!ExecConfig::with_threads(8).is_serial());
    }

    #[test]
    fn from_env_is_at_least_one() {
        // Whatever the environment says, the result is a usable config.
        assert!(ExecConfig::from_env().threads() >= 1);
        assert!(ExecConfig::default().threads() >= 1);
    }
}
