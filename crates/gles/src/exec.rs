//! Execution configuration for the functional fragment engine.
//!
//! The timing simulation in [`mgpu_tbdr`] models the *GPU's* parallelism
//! and is always single-threaded and bit-exact. This module only controls
//! how many **host** threads the functional rasteriser uses to compute
//! fragment colours. Because every fragment of a GPGPU quad is a pure
//! function of its coordinates, the parallel schedule cannot change any
//! output byte — it only changes wall-clock time.
//!
//! The thread count comes from, in priority order:
//!
//! 1. an explicit [`Gl::set_exec_config`](crate::Gl::set_exec_config) call,
//! 2. the `MGPU_THREADS` environment variable (a positive integer;
//!    anything unparsable falls back to the default),
//! 3. [`std::thread::available_parallelism`].
//!
//! `MGPU_THREADS=1` (or [`ExecConfig::serial`]) selects the original
//! serial path exactly.
//!
//! All environment knobs (`MGPU_ENGINE`, `MGPU_POOL`, `MGPU_PLAN_CACHE`)
//! are resolved **once per process** and cached: mutating the environment
//! mid-run can never flip the engine, pool or plan cache between draws.
//! An explicit builder call ([`ExecConfig::with_engine`],
//! [`ExecConfig::with_pool`]) is the supported way to change them at run
//! time.

use std::num::NonZeroUsize;
use std::sync::OnceLock;

/// Environment variable overriding the functional thread count.
pub const THREADS_ENV: &str = "MGPU_THREADS";

/// Environment variable selecting the fragment engine (`scalar` or
/// `batched`; anything else falls back to the default, batched).
pub const ENGINE_ENV: &str = "MGPU_ENGINE";

/// Environment variable disabling the persistent worker pool
/// (`off`/`0`/`false`/`no`): the rasteriser then uses the legacy
/// per-draw `thread::scope` spawn path with round-robin chunk dealing,
/// and the draw-plan cache is bypassed. The escape hatch for comparing
/// against (or falling back to) the pre-pool execution path.
pub const POOL_ENV: &str = "MGPU_POOL";

/// Environment variable disabling the per-context draw-plan cache
/// (`off`/`0`/`false`/`no`) while keeping the worker pool: every draw
/// then rebuilds its specialised shader, column table and engine seats.
pub const PLAN_CACHE_ENV: &str = "MGPU_PLAN_CACHE";

/// Environment variable disabling bind-time uniform specialisation
/// (`off`/`0`/`false`/`no`): the batched engine then interprets the
/// original shader with uniforms resolved at seat bind time, exactly like
/// the scalar tier. A pure wall-clock knob — the conformance lattice holds
/// spec-on and spec-off byte-identical — and the isolation lever when a
/// divergence needs attributing to specialisation vs the batch engine.
pub const SPEC_ENV: &str = "MGPU_SPEC";

/// Which functional fragment interpreter computes fragment colours.
///
/// Both engines are bit-exact with each other — the scalar engine is the
/// reference semantics, the batched engine a lane-parallel reformulation
/// of the same f32 expressions — so this knob only changes wall-clock
/// time, never an output byte. The determinism tests at the workspace
/// root hold the two engines against each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The original per-fragment scalar interpreter, uniforms resolved at
    /// bind time but no shader specialisation: the reference path.
    Scalar,
    /// The lane-batched SoA interpreter with bind-time uniform
    /// specialisation: the throughput path, and the default.
    #[default]
    Batched,
}

/// Process-wide snapshot of the boolean/engine environment knobs, read
/// exactly once. `MGPU_THREADS` is intentionally *not* cached — thread
/// count is a pure wall-clock knob that tests and harnesses legitimately
/// vary per [`ExecConfig`], and it is always pinned explicitly anyway —
/// while engine/pool/cache selection must stay constant across a run for
/// the byte-identity and plan-reuse invariants to be meaningful.
#[derive(Debug, Clone, Copy)]
struct EnvDefaults {
    engine: Engine,
    pool: bool,
    plan_cache: bool,
    spec: bool,
}

fn env_defaults() -> EnvDefaults {
    static DEFAULTS: OnceLock<EnvDefaults> = OnceLock::new();
    *DEFAULTS.get_or_init(|| EnvDefaults {
        engine: match std::env::var(ENGINE_ENV) {
            Ok(s) if s.trim().eq_ignore_ascii_case("scalar") => Engine::Scalar,
            _ => Engine::Batched,
        },
        pool: switch_enabled(POOL_ENV),
        plan_cache: switch_enabled(PLAN_CACHE_ENV),
        spec: switch_enabled(SPEC_ENV),
    })
}

/// `off`/`0`/`false`/`no` (case-insensitive) disables a boolean knob;
/// unset or anything else leaves it on.
fn switch_enabled(var: &str) -> bool {
    match std::env::var(var) {
        Ok(s) => !matches!(
            s.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "no"
        ),
        Err(_) => true,
    }
}

impl Engine {
    /// The engine selected by `MGPU_ENGINE`, falling back to
    /// [`Engine::Batched`] when unset or unrecognised. Resolved **once**
    /// per process and cached thereafter, so a mid-run environment
    /// mutation can never flip engines between draws.
    #[must_use]
    pub fn from_env() -> Self {
        env_defaults().engine
    }
}

/// The process-wide `MGPU_PLAN_CACHE` default (resolved once).
pub(crate) fn plan_cache_default() -> bool {
    env_defaults().plan_cache
}

/// Fixed row-chunk granularity of the parallel rasteriser.
///
/// The framebuffer is partitioned into chunks of this many rows; the
/// chunk→rows (and therefore chunk→bytes) mapping depends only on the
/// target size and band, never on scheduling — whether chunks are dealt
/// round-robin (legacy scope path) or claimed by work-stealing (pool
/// path), every byte each chunk writes is the same.
pub const CHUNK_ROWS: u32 = 16;

/// How the functional fragment engine executes kernels on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecConfig {
    threads: usize,
    engine: Engine,
    pool: bool,
    spec: bool,
}

impl ExecConfig {
    /// The original single-threaded scalar execution path (worker pool,
    /// plan cache and bind-time specialisation bypassed).
    #[must_use]
    pub const fn serial() -> Self {
        ExecConfig {
            threads: 1,
            engine: Engine::Scalar,
            pool: false,
            spec: false,
        }
    }

    /// Executes fragments on `threads` worker threads (clamped to ≥ 1),
    /// with the environment-selected engine, pool and specialisation
    /// modes.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        let defaults = env_defaults();
        ExecConfig {
            threads: threads.max(1),
            engine: defaults.engine,
            pool: defaults.pool,
            spec: defaults.spec,
        }
    }

    /// Reads `MGPU_THREADS`, `MGPU_ENGINE` and `MGPU_POOL`, falling back
    /// to the machine's available parallelism, the batched engine and the
    /// pooled dispatcher.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
        {
            Some(n) if n >= 1 => ExecConfig::with_threads(n),
            _ => ExecConfig::with_threads(
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1),
            ),
        }
    }

    /// This configuration with the thread count replaced (clamped to ≥ 1).
    #[must_use]
    pub fn with_thread_count(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// This configuration with the fragment engine replaced.
    #[must_use]
    pub const fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// This configuration with the persistent-pool dispatcher switched on
    /// or off. With it off, draws use the legacy per-draw `thread::scope`
    /// spawn path with round-robin chunk dealing and no plan caching —
    /// byte-identical output, pre-pool wall-clock behaviour.
    #[must_use]
    pub const fn with_pool(mut self, pool: bool) -> Self {
        self.pool = pool;
        self
    }

    /// This configuration with bind-time uniform specialisation switched
    /// on or off. Specialisation only applies on the batched tier (the
    /// scalar tier is always the pristine reference interpreter); with it
    /// off, the batched engine runs the original shader with uniforms
    /// resolved at seat bind time. Byte-identical either way — this knob
    /// exists so the conformance lattice can attribute a divergence to
    /// specialisation as opposed to lane batching.
    #[must_use]
    pub const fn with_specialization(mut self, spec: bool) -> Self {
        self.spec = spec;
        self
    }

    /// The configured worker-thread count (≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured fragment engine.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Whether draws dispatch through the persistent worker pool (and may
    /// use the draw-plan cache) rather than the legacy scope-spawn path.
    #[must_use]
    pub fn pool_enabled(&self) -> bool {
        self.pool
    }

    /// Whether the batched tier specialises shaders against their bound
    /// uniforms at bind time (always `false` on the scalar tier).
    #[must_use]
    pub fn specialization(&self) -> bool {
        self.spec
    }

    /// Whether this configuration takes the serial path.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }
}

impl Default for ExecConfig {
    /// The environment-driven configuration ([`ExecConfig::from_env`]).
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_is_one_thread() {
        assert_eq!(ExecConfig::serial().threads(), 1);
        assert!(ExecConfig::serial().is_serial());
        assert!(!ExecConfig::serial().pool_enabled());
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecConfig::with_threads(8).threads(), 8);
        assert!(!ExecConfig::with_threads(8).is_serial());
    }

    #[test]
    fn from_env_is_at_least_one() {
        // Whatever the environment says, the result is a usable config.
        assert!(ExecConfig::from_env().threads() >= 1);
        assert!(ExecConfig::default().threads() >= 1);
    }

    #[test]
    fn serial_uses_the_scalar_reference_engine() {
        assert_eq!(ExecConfig::serial().engine(), Engine::Scalar);
    }

    #[test]
    fn engine_builder_round_trips() {
        let cfg = ExecConfig::with_threads(4).with_engine(Engine::Scalar);
        assert_eq!(cfg.engine(), Engine::Scalar);
        assert_eq!(cfg.threads(), 4);
        let cfg = cfg.with_engine(Engine::Batched).with_thread_count(2);
        assert_eq!(cfg.engine(), Engine::Batched);
        assert_eq!(cfg.threads(), 2);
    }

    #[test]
    fn pool_builder_round_trips() {
        let cfg = ExecConfig::with_threads(4).with_pool(false);
        assert!(!cfg.pool_enabled());
        assert!(cfg.with_pool(true).pool_enabled());
        // Toggling the pool leaves the other knobs alone.
        assert_eq!(cfg.threads(), 4);
    }

    #[test]
    fn specialization_builder_round_trips() {
        assert!(!ExecConfig::serial().specialization());
        let cfg = ExecConfig::with_threads(4).with_specialization(false);
        assert!(!cfg.specialization());
        assert!(cfg.with_specialization(true).specialization());
        // Toggling specialisation leaves the other knobs alone.
        assert_eq!(cfg.threads(), 4);
        assert_eq!(
            cfg.pool_enabled(),
            ExecConfig::with_threads(4).pool_enabled()
        );
    }

    #[test]
    fn engine_resolution_is_stable_across_calls() {
        // The env snapshot is taken once: two configs built at different
        // times always agree on engine and pool mode.
        let a = ExecConfig::with_threads(2);
        let b = ExecConfig::with_threads(7);
        assert_eq!(a.engine(), b.engine());
        assert_eq!(a.pool_enabled(), b.pool_enabled());
        assert_eq!(Engine::from_env(), a.engine());
    }
}
