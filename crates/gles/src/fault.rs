//! Deterministic fault injection for the GL layer.
//!
//! Real GPGPU deployments on low-end mobile GPUs fight driver failures the
//! happy path never shows: EGL context loss on compositor churn, watchdog
//! kills of long fragment passes, texture-allocation failure under memory
//! pressure, transient shader-compiler hiccups, and silent bit corruption
//! in RGBA8 round-trips. This module lets tests and benchmarks schedule
//! exactly those failures, **deterministically**: a [`FaultPlan`] names the
//! operation indices (or per-operation probabilities) at which each fault
//! class fires, and the [`FaultInjector`] installed on a
//! [`Gl`](crate::Gl) context replays the plan from a seeded SplitMix64
//! stream, recording every injected fault in an ordered trail.
//!
//! Determinism contract: the same plan over the same sequence of GL calls
//! produces the same faults and the same [`FaultEvent`] trail — retries
//! included, because indices count *attempts*, not successes. With no plan
//! installed every hook is a no-op and the context behaves (and times)
//! bit-identically to a build without this module.
//!
//! Plans can also come from the environment: `MGPU_FAULTS` holds a compact
//! spec parsed by [`FaultPlan::parse`], e.g.
//! `MGPU_FAULTS="seed=7,ctx@5,oom@3,compile@0,corrupt@9,watchdog=800us,p_ctx=0.01"`.

use std::fmt;

use mgpu_prop::Rng;
use mgpu_tbdr::SimTime;

/// The failure classes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The EGL context is lost; every GL object dies with it and all calls
    /// fail with [`GlError::ContextLost`](crate::GlError::ContextLost)
    /// until [`Gl::recreate`](crate::Gl::recreate).
    ContextLoss,
    /// An allocation (texture storage or buffer data) fails.
    Oom,
    /// The shader compiler fails transiently (driver hiccup, not a source
    /// error) — retrying the same source may succeed.
    CompileFail,
    /// A draw's estimated GPU time exceeded the per-draw watchdog budget
    /// and the driver killed it before execution.
    Watchdog,
    /// Bits in the just-rendered target storage were flipped after the
    /// draw completed (silent corruption; only checksums can see it).
    Corruption,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::ContextLoss => "context-loss",
            FaultKind::Oom => "oom",
            FaultKind::CompileFail => "compile-fail",
            FaultKind::Watchdog => "watchdog",
            FaultKind::Corruption => "corruption",
        };
        f.write_str(s)
    }
}

/// Where in the GL call stream a fault fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A `draw_quad` call.
    Draw,
    /// A `tex_image_2d` / `tex_sub_image_2d` / `buffer_data` call.
    Upload,
    /// A `create_program*` call.
    Compile,
    /// A `read_texture` / `read_pixels` call.
    Readback,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::Draw => "draw",
            FaultSite::Upload => "upload",
            FaultSite::Compile => "compile",
            FaultSite::Readback => "readback",
        };
        f.write_str(s)
    }
}

/// One injected fault: what fired, where, and at which operation index.
///
/// Displays as `kind@site#index`, e.g. `context-loss@draw#5`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultEvent {
    /// The failure class.
    pub kind: FaultKind,
    /// The call site category.
    pub site: FaultSite,
    /// Zero-based index of the *attempt* within that site category
    /// (retries advance the index, keeping replay deterministic).
    pub index: u64,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}#{}", self.kind, self.site, self.index)
    }
}

/// A structured parse error for the `MGPU_FAULTS` grammar.
///
/// Each variant carries the offending directive token verbatim, so callers
/// can surface exactly which part of the spec was rejected (and tests can
/// assert the failure *class*, not just "some error").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// The directive matched no known prefix.
    UnknownDirective(String),
    /// An `@<n>` or `seed=<n>` operand was not a `u64`.
    BadInteger(String),
    /// A `p_*=<f64>` operand was not a float.
    BadProbability(String),
    /// A `p_*` value fell outside `[0, 1]`.
    ProbabilityRange(String),
    /// A `watchdog=<time>` operand was not a number (with optional
    /// `ns`/`us`/`ms`/`s` suffix).
    BadDuration(String),
    /// A `watchdog=<time>` operand was negative or non-finite.
    DurationRange(String),
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::UnknownDirective(tok) => {
                write!(f, "unknown MGPU_FAULTS directive `{tok}`")
            }
            FaultSpecError::BadInteger(tok) => {
                write!(f, "bad integer in MGPU_FAULTS directive `{tok}`")
            }
            FaultSpecError::BadProbability(tok) => {
                write!(f, "bad probability in MGPU_FAULTS directive `{tok}`")
            }
            FaultSpecError::ProbabilityRange(tok) => {
                write!(f, "probability out of [0,1] in `{tok}`")
            }
            FaultSpecError::BadDuration(tok) => {
                write!(
                    f,
                    "bad duration in MGPU_FAULTS directive `{tok}` (use e.g. 800us)"
                )
            }
            FaultSpecError::DurationRange(tok) => {
                write!(f, "negative or non-finite duration in `{tok}`")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A deterministic schedule of faults to inject into one [`Gl`](crate::Gl)
/// context.
///
/// Faults trigger at explicit operation indices (zero-based, counted per
/// call-site category, attempts included) and/or probabilistically per
/// operation from the seeded stream. The default plan injects nothing.
///
/// # Examples
///
/// ```
/// use mgpu_gles::FaultPlan;
/// use mgpu_tbdr::SimTime;
///
/// let plan = FaultPlan::seeded(7)
///     .ctx_loss_at_draw(5)
///     .oom_at_upload(3)
///     .watchdog_budget(SimTime::from_micros(800));
/// assert_eq!(plan, FaultPlan::parse("seed=7,ctx@5,oom@3,watchdog=800us").unwrap());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the probabilistic and corruption-pattern streams.
    pub seed: u64,
    /// Draw indices at which the context is lost.
    pub ctx_loss_draws: Vec<u64>,
    /// Upload indices at which allocation fails.
    pub oom_uploads: Vec<u64>,
    /// Compile indices at which the compiler fails transiently.
    pub compile_fails: Vec<u64>,
    /// Draw indices after which the rendered target storage is corrupted.
    pub corrupt_draws: Vec<u64>,
    /// Per-draw GPU-time budget; draws estimated above it are killed.
    pub watchdog: Option<SimTime>,
    /// Per-draw context-loss probability.
    pub p_ctx_loss: f64,
    /// Per-upload allocation-failure probability.
    pub p_oom: f64,
    /// Per-draw corruption probability.
    pub p_corrupt: f64,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Loses the context at the given draw index.
    #[must_use]
    pub fn ctx_loss_at_draw(mut self, index: u64) -> Self {
        self.ctx_loss_draws.push(index);
        self
    }

    /// Fails allocation at the given upload index.
    #[must_use]
    pub fn oom_at_upload(mut self, index: u64) -> Self {
        self.oom_uploads.push(index);
        self
    }

    /// Fails shader compilation transiently at the given compile index.
    #[must_use]
    pub fn compile_fail_at(mut self, index: u64) -> Self {
        self.compile_fails.push(index);
        self
    }

    /// Corrupts the rendered target storage after the given draw index.
    #[must_use]
    pub fn corrupt_at_draw(mut self, index: u64) -> Self {
        self.corrupt_draws.push(index);
        self
    }

    /// Kills draws whose estimated GPU time exceeds `budget`.
    #[must_use]
    pub fn watchdog_budget(mut self, budget: SimTime) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Loses the context with probability `p` per draw.
    #[must_use]
    pub fn p_ctx_loss(mut self, p: f64) -> Self {
        self.p_ctx_loss = p;
        self
    }

    /// Fails allocation with probability `p` per upload.
    #[must_use]
    pub fn p_oom(mut self, p: f64) -> Self {
        self.p_oom = p;
        self
    }

    /// Corrupts the rendered target with probability `p` per draw.
    #[must_use]
    pub fn p_corrupt(mut self, p: f64) -> Self {
        self.p_corrupt = p;
        self
    }

    /// Whether the plan can inject anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ctx_loss_draws.is_empty()
            && self.oom_uploads.is_empty()
            && self.compile_fails.is_empty()
            && self.corrupt_draws.is_empty()
            && self.watchdog.is_none()
            && self.p_ctx_loss <= 0.0
            && self.p_oom <= 0.0
            && self.p_corrupt <= 0.0
    }

    /// Parses the compact `MGPU_FAULTS` spec: comma-separated directives
    /// from the grammar
    ///
    /// ```text
    /// seed=<u64>        stream seed (default 0)
    /// ctx@<n>           context loss at draw n        (repeatable)
    /// oom@<n>           allocation failure at upload n (repeatable)
    /// compile@<n>       transient compile failure at compile n (repeatable)
    /// corrupt@<n>       storage corruption after draw n (repeatable)
    /// watchdog=<time>   per-draw budget; suffix ns|us|ms|s (e.g. 800us)
    /// p_ctx=<f64>       per-draw context-loss probability
    /// p_oom=<f64>       per-upload allocation-failure probability
    /// p_corrupt=<f64>   per-draw corruption probability
    /// ```
    ///
    /// The inverse of [`FaultPlan::parse`]: any plan formats to a spec
    /// string that parses back to an equal plan (`Display` is canonical —
    /// watchdog budgets render in nanoseconds, zero seeds and zero
    /// probabilities are omitted).
    ///
    /// # Errors
    ///
    /// Returns a [`FaultSpecError`] naming the offending directive.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for raw in spec.split(',') {
            let tok = raw.trim();
            if tok.is_empty() {
                continue;
            }
            if let Some(v) = tok.strip_prefix("seed=") {
                plan.seed = parse_u64(v, tok)?;
            } else if let Some(v) = tok.strip_prefix("ctx@") {
                plan.ctx_loss_draws.push(parse_u64(v, tok)?);
            } else if let Some(v) = tok.strip_prefix("oom@") {
                plan.oom_uploads.push(parse_u64(v, tok)?);
            } else if let Some(v) = tok.strip_prefix("compile@") {
                plan.compile_fails.push(parse_u64(v, tok)?);
            } else if let Some(v) = tok.strip_prefix("corrupt@") {
                plan.corrupt_draws.push(parse_u64(v, tok)?);
            } else if let Some(v) = tok.strip_prefix("watchdog=") {
                plan.watchdog = Some(parse_time(v, tok)?);
            } else if let Some(v) = tok.strip_prefix("p_ctx=") {
                plan.p_ctx_loss = parse_prob(v, tok)?;
            } else if let Some(v) = tok.strip_prefix("p_oom=") {
                plan.p_oom = parse_prob(v, tok)?;
            } else if let Some(v) = tok.strip_prefix("p_corrupt=") {
                plan.p_corrupt = parse_prob(v, tok)?;
            } else {
                return Err(FaultSpecError::UnknownDirective(tok.to_owned()));
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `MGPU_FAULTS` environment variable.
    ///
    /// Unset or empty means no plan. This is a **direct, uncached** read
    /// for ad-hoc tooling; context creation goes through the
    /// once-per-process knob snapshot instead (see
    /// [`Gl::try_new`](crate::Gl::try_new)), so mutating the variable
    /// after the first context exists cannot change later contexts.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::parse`] errors.
    pub fn from_env() -> Result<Option<Self>, FaultSpecError> {
        match std::env::var("MGPU_FAULTS") {
            Ok(s) if !s.trim().is_empty() => FaultPlan::parse(&s).map(Some),
            _ => Ok(None),
        }
    }
}

impl fmt::Display for FaultPlan {
    /// Renders the canonical `MGPU_FAULTS` spec for this plan, such that
    /// `FaultPlan::parse(&plan.to_string())` reproduces `plan` exactly.
    ///
    /// Defaults are omitted (`seed=0`, zero probabilities, no watchdog);
    /// the empty plan renders as the empty string. Watchdog budgets render
    /// as whole nanoseconds, which survive the f64 duration parser for any
    /// budget below 2^53 ns (~104 days of simulated time).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if self.seed != 0 {
            parts.push(format!("seed={}", self.seed));
        }
        for i in &self.ctx_loss_draws {
            parts.push(format!("ctx@{i}"));
        }
        for i in &self.oom_uploads {
            parts.push(format!("oom@{i}"));
        }
        for i in &self.compile_fails {
            parts.push(format!("compile@{i}"));
        }
        for i in &self.corrupt_draws {
            parts.push(format!("corrupt@{i}"));
        }
        if let Some(w) = self.watchdog {
            parts.push(format!("watchdog={}ns", w.as_nanos()));
        }
        // `{:?}` prints the shortest decimal that parses back to the same
        // f64, so probabilities round-trip bit-exactly through the grammar.
        if self.p_ctx_loss > 0.0 {
            parts.push(format!("p_ctx={:?}", self.p_ctx_loss));
        }
        if self.p_oom > 0.0 {
            parts.push(format!("p_oom={:?}", self.p_oom));
        }
        if self.p_corrupt > 0.0 {
            parts.push(format!("p_corrupt={:?}", self.p_corrupt));
        }
        f.write_str(&parts.join(","))
    }
}

fn parse_u64(v: &str, tok: &str) -> Result<u64, FaultSpecError> {
    v.parse::<u64>()
        .map_err(|_| FaultSpecError::BadInteger(tok.to_owned()))
}

fn parse_prob(v: &str, tok: &str) -> Result<f64, FaultSpecError> {
    let p: f64 = v
        .parse()
        .map_err(|_| FaultSpecError::BadProbability(tok.to_owned()))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultSpecError::ProbabilityRange(tok.to_owned()));
    }
    Ok(p)
}

fn parse_time(v: &str, tok: &str) -> Result<SimTime, FaultSpecError> {
    let (num, scale_ns) = if let Some(n) = v.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = v.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1e9)
    } else {
        // Bare numbers are nanoseconds.
        (v, 1.0)
    };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| FaultSpecError::BadDuration(tok.to_owned()))?;
    if !(x >= 0.0 && x.is_finite()) {
        return Err(FaultSpecError::DurationRange(tok.to_owned()));
    }
    Ok(SimTime::from_nanos((x * scale_ns).round() as u64))
}

/// Replays a [`FaultPlan`] against one context's call stream.
///
/// Owned by [`Gl`](crate::Gl) once installed; survives
/// [`Gl::recreate`](crate::Gl::recreate) so the trail and operation
/// counters span context losses.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng_ctx: Rng,
    rng_oom: Rng,
    rng_corrupt: Rng,
    draws: u64,
    uploads: u64,
    compiles: u64,
    readbacks: u64,
    trail: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Creates an injector replaying `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        // Independent decorrelated streams per fault class, so adding a
        // probabilistic knob for one class never shifts another's draws.
        let stream = |tag: u64| Rng::new(Rng::new(plan.seed ^ tag).next_u64());
        FaultInjector {
            rng_ctx: stream(0x11),
            rng_oom: stream(0x22),
            rng_corrupt: stream(0x33),
            plan,
            draws: 0,
            uploads: 0,
            compiles: 0,
            readbacks: 0,
            trail: Vec::new(),
        }
    }

    /// The plan being replayed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Every fault injected so far, in order.
    #[must_use]
    pub fn trail(&self) -> &[FaultEvent] {
        &self.trail
    }

    /// Operation counts seen so far as `(draws, uploads, compiles,
    /// readbacks)` — attempts, not successes.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (self.draws, self.uploads, self.compiles, self.readbacks)
    }

    pub(crate) fn record(&mut self, kind: FaultKind, site: FaultSite, index: u64) {
        self.trail.push(FaultEvent { kind, site, index });
    }

    /// Registers a draw attempt and returns its index.
    pub(crate) fn next_draw(&mut self) -> u64 {
        let i = self.draws;
        self.draws += 1;
        i
    }

    /// Registers an upload attempt and returns its index.
    pub(crate) fn next_upload(&mut self) -> u64 {
        let i = self.uploads;
        self.uploads += 1;
        i
    }

    /// Registers a compile attempt and returns its index.
    pub(crate) fn next_compile(&mut self) -> u64 {
        let i = self.compiles;
        self.compiles += 1;
        i
    }

    /// Registers a readback attempt and returns its index.
    pub(crate) fn next_readback(&mut self) -> u64 {
        let i = self.readbacks;
        self.readbacks += 1;
        i
    }

    /// Whether the context is lost at draw `index`.
    pub(crate) fn ctx_loss_at(&mut self, index: u64) -> bool {
        let mut hit = self.plan.ctx_loss_draws.contains(&index);
        if self.plan.p_ctx_loss > 0.0 {
            // Always consume exactly one decision draw per attempt so the
            // stream stays aligned with the attempt counter.
            hit |= self.rng_ctx.f64(0.0, 1.0) < self.plan.p_ctx_loss;
        }
        hit
    }

    /// Whether allocation fails at upload `index`.
    pub(crate) fn oom_at(&mut self, index: u64) -> bool {
        let mut hit = self.plan.oom_uploads.contains(&index);
        if self.plan.p_oom > 0.0 {
            hit |= self.rng_oom.f64(0.0, 1.0) < self.plan.p_oom;
        }
        hit
    }

    /// Whether compilation fails transiently at compile `index`.
    pub(crate) fn compile_fail_at(&self, index: u64) -> bool {
        self.plan.compile_fails.contains(&index)
    }

    /// The per-draw watchdog budget, if armed.
    pub(crate) fn watchdog_budget(&self) -> Option<SimTime> {
        self.plan.watchdog
    }

    /// If draw `index` is scheduled for corruption, returns the seeded bit
    /// flips to apply to the `len`-byte target storage as `(offset, xor
    /// mask)` pairs.
    pub(crate) fn corruption_at(&mut self, index: u64, len: usize) -> Option<Vec<(usize, u8)>> {
        let mut hit = self.plan.corrupt_draws.contains(&index);
        if self.plan.p_corrupt > 0.0 {
            hit |= self.rng_corrupt.f64(0.0, 1.0) < self.plan.p_corrupt;
        }
        if !hit || len == 0 {
            return None;
        }
        let flips = self.rng_corrupt.usize_in(1, 9);
        let mut out = Vec::with_capacity(flips);
        for _ in 0..flips {
            let offset = self.rng_corrupt.usize_in(0, len);
            let mask = 1u8 << self.rng_corrupt.u32_in(0, 8);
            out.push((offset, mask));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_builder() {
        let plan = FaultPlan::seeded(7)
            .ctx_loss_at_draw(5)
            .oom_at_upload(3)
            .compile_fail_at(0)
            .corrupt_at_draw(9)
            .watchdog_budget(SimTime::from_micros(800))
            .p_ctx_loss(0.01);
        let parsed =
            FaultPlan::parse("seed=7,ctx@5,oom@3,compile@0,corrupt@9,watchdog=800us,p_ctx=0.01")
                .unwrap();
        assert_eq!(plan, parsed);
    }

    #[test]
    fn parse_time_suffixes() {
        let p = |s: &str| FaultPlan::parse(s).unwrap().watchdog.unwrap();
        assert_eq!(p("watchdog=100ns"), SimTime::from_nanos(100));
        assert_eq!(p("watchdog=2us"), SimTime::from_micros(2));
        assert_eq!(p("watchdog=3ms"), SimTime::from_millis(3));
        assert_eq!(p("watchdog=1s"), SimTime::from_secs_f64(1.0));
        assert_eq!(p("watchdog=1.5us"), SimTime::from_nanos(1500));
        assert_eq!(p("watchdog=250"), SimTime::from_nanos(250));
    }

    #[test]
    fn parse_rejects_garbage_with_typed_errors() {
        assert_eq!(
            FaultPlan::parse("ctx@x"),
            Err(FaultSpecError::BadInteger("ctx@x".into()))
        );
        assert_eq!(
            FaultPlan::parse("seed=-1"),
            Err(FaultSpecError::BadInteger("seed=-1".into()))
        );
        assert_eq!(
            FaultPlan::parse("frobnicate=1"),
            Err(FaultSpecError::UnknownDirective("frobnicate=1".into()))
        );
        assert_eq!(
            FaultPlan::parse("p_ctx=maybe"),
            Err(FaultSpecError::BadProbability("p_ctx=maybe".into()))
        );
        assert_eq!(
            FaultPlan::parse("p_ctx=1.5"),
            Err(FaultSpecError::ProbabilityRange("p_ctx=1.5".into()))
        );
        assert_eq!(
            FaultPlan::parse("watchdog=fast"),
            Err(FaultSpecError::BadDuration("watchdog=fast".into()))
        );
        assert_eq!(
            FaultPlan::parse("watchdog=-5us"),
            Err(FaultSpecError::DurationRange("watchdog=-5us".into()))
        );
        // An error anywhere poisons the whole spec, even after valid
        // directives.
        assert_eq!(
            FaultPlan::parse("seed=7,ctx@2,bogus"),
            Err(FaultSpecError::UnknownDirective("bogus".into()))
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ").unwrap().is_empty());
    }

    #[test]
    fn display_emits_canonical_spec() {
        let plan = FaultPlan::seeded(7)
            .ctx_loss_at_draw(5)
            .oom_at_upload(3)
            .compile_fail_at(0)
            .corrupt_at_draw(9)
            .watchdog_budget(SimTime::from_micros(800))
            .p_ctx_loss(0.01);
        assert_eq!(
            plan.to_string(),
            "seed=7,ctx@5,oom@3,compile@0,corrupt@9,watchdog=800000ns,p_ctx=0.01"
        );
        assert_eq!(FaultPlan::default().to_string(), "");
    }

    /// Grammar property: `parse` is a left inverse of `Display` over the
    /// whole plan space (structured equality, not just string agreement).
    #[test]
    fn spec_format_parse_round_trips() {
        mgpu_prop::run_cases(512, |rng| {
            let mut plan = FaultPlan::seeded(if rng.bool() { rng.next_u64() } else { 0 });
            for _ in 0..rng.usize_in(0, 4) {
                plan = plan.ctx_loss_at_draw(rng.u64_in(0, 1_000));
            }
            for _ in 0..rng.usize_in(0, 4) {
                plan = plan.oom_at_upload(rng.u64_in(0, 1_000));
            }
            for _ in 0..rng.usize_in(0, 4) {
                plan = plan.compile_fail_at(rng.u64_in(0, 1_000));
            }
            for _ in 0..rng.usize_in(0, 4) {
                plan = plan.corrupt_at_draw(rng.u64_in(0, 1_000));
            }
            if rng.bool() {
                // Anything below 2^53 ns survives the f64 duration parser.
                plan = plan.watchdog_budget(SimTime::from_nanos(rng.u64_in(0, 1 << 53)));
            }
            if rng.bool() {
                plan = plan.p_ctx_loss(rng.f64(0.0, 1.0));
            }
            if rng.bool() {
                plan = plan.p_oom(rng.f64(0.0, 1.0));
            }
            if rng.bool() {
                plan = plan.p_corrupt(rng.f64(0.0, 1.0));
            }
            let spec = plan.to_string();
            let parsed =
                FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("`{spec}` rejected: {e}"));
            assert_eq!(parsed, plan, "spec `{spec}` did not round-trip");
        });
    }

    /// Grammar property: malformed operands are rejected with the error
    /// variant matching the directive class, never a panic or silent skip.
    #[test]
    fn malformed_operands_map_to_typed_errors() {
        mgpu_prop::run_cases(256, |rng| {
            // Letters that can never assemble into a parseable float
            // ("inf"/"nan") or a known directive name.
            const JUNK: [char; 8] = ['g', 'h', 'j', 'k', 'q', 'r', 'w', 'z'];
            let junk: String = (0..rng.usize_in(1, 6)).map(|_| *rng.pick(&JUNK)).collect();
            let (spec, want) = match rng.u32_in(0, 5) {
                0 => {
                    let tok = format!(
                        "{}@{junk}",
                        *rng.pick(&["ctx", "oom", "compile", "corrupt"])
                    );
                    (tok.clone(), FaultSpecError::BadInteger(tok))
                }
                1 => {
                    let tok = format!("p_ctx={junk}");
                    (tok.clone(), FaultSpecError::BadProbability(tok))
                }
                2 => {
                    let out = if rng.bool() {
                        rng.f64(1.0, 100.0) + 1e-9
                    } else {
                        -rng.f64(1e-9, 100.0)
                    };
                    let tok = format!("p_oom={out:?}");
                    (tok.clone(), FaultSpecError::ProbabilityRange(tok))
                }
                3 => {
                    let tok = format!("watchdog={junk}ms");
                    (tok.clone(), FaultSpecError::BadDuration(tok))
                }
                _ => {
                    let tok = format!("{junk}=1");
                    (tok.clone(), FaultSpecError::UnknownDirective(tok))
                }
            };
            assert_eq!(FaultPlan::parse(&spec), Err(want), "spec `{spec}`");
        });
    }

    #[test]
    fn injector_replays_indices_deterministically() {
        let plan = FaultPlan::seeded(3).ctx_loss_at_draw(2).oom_at_upload(1);
        let run = || {
            let mut inj = FaultInjector::new(plan.clone());
            let mut hits = Vec::new();
            for _ in 0..5 {
                let i = inj.next_draw();
                if inj.ctx_loss_at(i) {
                    inj.record(FaultKind::ContextLoss, FaultSite::Draw, i);
                    hits.push(i);
                }
            }
            for _ in 0..3 {
                let i = inj.next_upload();
                if inj.oom_at(i) {
                    inj.record(FaultKind::Oom, FaultSite::Upload, i);
                }
            }
            (hits, inj.trail().to_vec())
        };
        let (hits_a, trail_a) = run();
        let (hits_b, trail_b) = run();
        assert_eq!(hits_a, vec![2]);
        assert_eq!(hits_a, hits_b);
        assert_eq!(trail_a, trail_b);
        assert_eq!(trail_a.len(), 2);
        assert_eq!(trail_a[0].to_string(), "context-loss@draw#2");
        assert_eq!(trail_a[1].to_string(), "oom@upload#1");
    }

    #[test]
    fn probabilistic_faults_are_seed_deterministic() {
        let plan = FaultPlan::seeded(99).p_ctx_loss(0.3);
        let decisions = |plan: &FaultPlan| {
            let mut inj = FaultInjector::new(plan.clone());
            (0..64)
                .map(|_| {
                    let i = inj.next_draw();
                    inj.ctx_loss_at(i)
                })
                .collect::<Vec<_>>()
        };
        let a = decisions(&plan);
        let b = decisions(&plan);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x), "p=0.3 over 64 draws should fire");
        assert!(!a.iter().all(|&x| x));
        let c = decisions(&FaultPlan::seeded(100).p_ctx_loss(0.3));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn corruption_flips_are_seeded_and_bounded() {
        let plan = FaultPlan::seeded(5).corrupt_at_draw(0);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        let ia = a.next_draw();
        let fa = a.corruption_at(ia, 256).unwrap();
        let ib = b.next_draw();
        let fb = b.corruption_at(ib, 256).unwrap();
        assert_eq!(fa, fb);
        assert!(!fa.is_empty() && fa.len() <= 8);
        for &(off, mask) in &fa {
            assert!(off < 256);
            assert_eq!(mask.count_ones(), 1);
        }
        let ia2 = a.next_draw();
        assert!(a.corruption_at(ia2, 256).is_none());
    }
}
