//! Tile-level redundancy elimination: the per-context tile-signature cache.
//!
//! Multi-pass GPGPU loops re-shade enormous numbers of tiles whose inputs
//! have not changed since the previous pass: an iterative reduction re-runs
//! the same kernel over the same source texture every frame, and a repeated
//! sgemm re-seeds the same accumulator and re-reads the same operands. On a
//! TBDR GPU each such tile costs full fragment-unit shading plus a tile
//! writeback over the memory bus, even though the bytes it produces are
//! identical to the previous pass — the *Rendering Elimination* observation
//! applied to GPGPU kernels.
//!
//! [`TileSigCache`] keys cached tile outputs exactly like the
//! [plan cache](crate::plan_cache) keys draw plans — (program, shader hash,
//! uniform hash, engine, spec, target geometry, corners) — refined to one
//! entry per platform tile rect. Each entry carries a 128-bit *input
//! signature* covering everything the tile's fragments can observe:
//!
//! * the column-table slice of every varying over the tile's columns,
//! * the tile's row range and the target height (the row interpolation
//!   factor is `(y + 0.5) / height`),
//! * per sampled texture: dimensions, format channels, filter, and a
//!   content digest of the sampled texel region — the exact footprint when
//!   the kernel's fetches are all streaming (resolvable from the hoisted
//!   coordinate table), conservatively the whole texture when any fetch is
//!   dependent (data-driven coordinates are unresolvable ahead of shading).
//!
//! A draw consults the cache per tile: signature match ⇒ the cached bytes
//! are replayed (byte-identical by construction — fragments are pure
//! functions of position, varyings, uniforms and texture contents, and
//! GLES 2 GPGPU draws blend nothing); mismatch ⇒ the entry is invalidated,
//! the tile shades, and the fresh bytes + signature replace it.
//!
//! ## Invalidation
//!
//! Like the plan cache, most state changes invalidate *by keying*: a new
//! uniform value, engine tier, spec mode or corner set simply misses. The
//! render-target's identity is deliberately **not** part of the key — a
//! ping-pong pipeline alternates two textures while shading identical
//! bytes, and replaying them into either target is exact because every
//! covered pixel is overwritten. Content changes invalidate by *signature*:
//! any texture write (upload, copy, draw write-back, injected corruption)
//! changes the sampled-region digest and forces a re-shade. Context loss,
//! recreation and engine/spec reconfiguration flush the cache outright.
//!
//! Capacity is bounded by entry count and held bytes, FIFO with
//! reinsertion-on-hit (approximate LRU), mirroring the plan cache.

use std::collections::{HashMap, VecDeque};

use mgpu_shader::hash::Fnv64;
use mgpu_tbdr::TileRect;

use crate::plan_cache::PlanKey;

/// Maximum cached tiles per context.
///
/// Sized for the paper-scale pipelines the bench suite runs: a 10-pass
/// 512² reduction holds ~400 tiles across its pass keys on VideoCore's
/// 64×64 grid, and a block-16 sgemm at 256² holds one tile set per
/// `blk` uniform value. (A 1024² 64-pass uniform cycle exceeds any sane
/// bound — those runs simply stay cold, they do not break.)
pub(crate) const TILE_CACHE_ENTRY_CAP: usize = 8192;

/// Maximum bytes of cached tile output per context (64 MiB).
pub(crate) const TILE_CACHE_BYTE_CAP: usize = 64 << 20;

/// Modelled bus bytes to fetch + compare one skipped tile's signature
/// descriptor (key digest, texture versions, match flags).
pub(crate) const SIG_DESCRIPTOR_BYTES: u64 = 64;

/// Modelled bus bytes per varying slot per tile column: the comparator
/// streams the column-table slice digest (8 bytes per column per slot)
/// instead of shading. Signatures are maintained at write time by the
/// modelled hardware, so skipped tiles never re-read their full inputs.
pub(crate) const SIG_BYTES_PER_SLOT_COLUMN: u64 = 8;

/// Identity of one cached tile: the owning draw-plan key plus the clipped
/// tile rect. Hash collisions on the embedded content hashes are tolerated
/// for the same reason as in the plan cache; the 128-bit input signature is
/// checked on every hit besides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct TileKey {
    /// The draw-plan identity (program, shader/uniform hashes, engine,
    /// spec, target geometry, corners). Note the *render target* is
    /// absent: ping-pong passes share entries on purpose.
    pub plan: PlanKey,
    /// Clipped tile rect, `x0..x1` × `y0..y1` in target pixels.
    pub x0: u32,
    /// Exclusive right edge.
    pub x1: u32,
    /// Top row.
    pub y0: u32,
    /// Exclusive bottom row.
    pub y1: u32,
}

impl TileKey {
    pub(crate) fn new(plan: PlanKey, r: &TileRect) -> Self {
        TileKey {
            plan,
            x0: r.x0,
            x1: r.x1,
            y0: r.y0,
            y1: r.y1,
        }
    }
}

/// What one sampled texture contributes to a tile's input signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TexSig {
    /// Texture width in texels.
    pub width: u32,
    /// Texture height in texels.
    pub height: u32,
    /// Bytes per texel.
    pub channels: usize,
    /// Whether the texture samples with bilinear filtering.
    pub linear: bool,
    /// The texel region the digest covers: `Some((x0, x1, y0, y1))` when
    /// the sampling footprint was resolved from the coordinate table,
    /// `None` when the digest covers the whole texture (dependent
    /// fetches, or no resolvable varying hull).
    pub region: Option<(u32, u32, u32, u32)>,
    /// Content digest of the covered region.
    pub crc: u64,
}

/// Content digest over a full byte buffer (the whole-texture fallback).
pub(crate) fn content_hash(data: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(data.len() as u64);
    h.write(data);
    h.finish()
}

/// Content digest over the texel rect `x0..x1` × `y0..y1` of a texture's
/// backing bytes (row-major, `channels` bytes per texel).
pub(crate) fn region_hash(
    data: &[u8],
    tex_width: u32,
    channels: usize,
    region: (u32, u32, u32, u32),
) -> u64 {
    let (x0, x1, y0, y1) = region;
    let mut h = Fnv64::new();
    h.write_u32(x0);
    h.write_u32(x1);
    h.write_u32(y0);
    h.write_u32(y1);
    let row = tex_width as usize;
    for y in y0..y1 {
        let start = (y as usize * row + x0 as usize) * channels;
        let end = (y as usize * row + x1 as usize) * channels;
        if let Some(slice) = data.get(start..end) {
            h.write(slice);
        }
    }
    h.finish()
}

/// Maps a varying hull (`lo..hi` in normalised texture coordinates) to the
/// conservative texel footprint it can sample on a `width`×`height`
/// texture: ±2 texels of margin covers nearest rounding and the bilinear
/// 2×2 neighbourhood on both platforms' clamp-to-edge sampling.
///
/// Clamp-to-edge maps *every* coordinate — however far outside [0, 1] —
/// onto a border texel, so the footprint of a non-degenerate texture is
/// never empty: a hull entirely beyond one edge still covers the texel
/// column/row it clamps onto. (An empty footprint here would let border
/// content changes slip past the signature and replay stale tiles.)
pub(crate) fn sample_footprint(
    lo: [f32; 2],
    hi: [f32; 2],
    width: u32,
    height: u32,
) -> (u32, u32, u32, u32) {
    let axis = |lo: f32, hi: f32, limit: u32| -> (u32, u32) {
        if limit == 0 {
            return (0, 0);
        }
        let clamp = |t: f64, max: u32| -> u32 {
            let t = if t.is_finite() { t } else { f64::from(max) };
            (t as i64).clamp(0, i64::from(max)) as u32
        };
        let a = clamp((f64::from(lo) * f64::from(limit)).floor() - 2.0, limit - 1);
        let b = clamp((f64::from(hi) * f64::from(limit)).ceil() + 2.0, limit).max(a + 1);
        (a, b)
    };
    let (x0, x1) = axis(lo[0], hi[0], width);
    let (y0, y1) = axis(lo[1], hi[1], height);
    (x0, x1, y0, y1)
}

/// The 128-bit input signature of one tile: two independent FNV passes
/// (differentiated by a prefix byte) over the column-table slice digest,
/// the tile's row range, the target height and every sampled texture's
/// contribution.
pub(crate) fn tile_signature(
    column_hash: u64,
    target_height: u32,
    r: &TileRect,
    texes: &[TexSig],
) -> (u64, u64) {
    let pass = |prefix: u8| -> u64 {
        let mut h = Fnv64::new();
        h.write_u8(prefix);
        h.write_u64(column_hash);
        h.write_u32(r.y0);
        h.write_u32(r.y1);
        h.write_u32(target_height);
        h.write_u64(texes.len() as u64);
        for t in texes {
            h.write_u32(t.width);
            h.write_u32(t.height);
            h.write_u64(t.channels as u64);
            h.write_u8(u8::from(t.linear));
            match t.region {
                Some((x0, x1, y0, y1)) => {
                    h.write_u8(1);
                    h.write_u32(x0);
                    h.write_u32(x1);
                    h.write_u32(y0);
                    h.write_u32(y1);
                }
                None => h.write_u8(0),
            }
            h.write_u64(t.crc);
        }
        h.finish()
    };
    (pass(0xA5), pass(0x5A))
}

/// Copies a tile-local byte block (`r.width()` × `r.height()` texels) into
/// its rect of a `target_width`-wide row-major target buffer.
pub(crate) fn blit_tile(
    src: &[u8],
    r: &TileRect,
    target_width: u32,
    channels: usize,
    out: &mut [u8],
) {
    let row = r.width() as usize * channels;
    for (i, y) in (r.y0..r.y1).enumerate() {
        let dst = (y as usize * target_width as usize + r.x0 as usize) * channels;
        out[dst..dst + row].copy_from_slice(&src[i * row..(i + 1) * row]);
    }
}

/// Extracts a tile's rect from a row-major target buffer into a
/// tile-local byte block (the harvest step after a full-band shade).
pub(crate) fn extract_tile(
    out: &[u8],
    r: &TileRect,
    target_width: u32,
    channels: usize,
) -> Vec<u8> {
    let row = r.width() as usize * channels;
    let mut bytes = Vec::with_capacity(row * r.height() as usize);
    for y in r.y0..r.y1 {
        let start = (y as usize * target_width as usize + r.x0 as usize) * channels;
        bytes.extend_from_slice(&out[start..start + row]);
    }
    bytes
}

/// Counters exposed for tests, benches and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileSkipStats {
    /// Tiles replayed from cache instead of shading.
    pub hits: u64,
    /// Tiles that had to shade (absent or signature-mismatched entries).
    pub misses: u64,
    /// Entries dropped because their inputs changed (signature mismatch)
    /// or the cache was flushed (context loss, engine/spec switch).
    pub invalidations: u64,
    /// Total output bytes served from cache.
    pub bytes_replayed: u64,
    /// Tiles currently cached.
    pub entries: usize,
}

struct TileEntry {
    sig: (u64, u64),
    bytes: Vec<u8>,
}

/// A bounded map from [`TileKey`] to signed tile outputs.
pub(crate) struct TileSigCache {
    tiles: HashMap<TileKey, TileEntry>,
    /// Eviction order, oldest first; may hold stale keys exactly like the
    /// plan cache's queue (skipped on eviction, compacted at 4× growth).
    order: VecDeque<TileKey>,
    held_bytes: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
    bytes_replayed: u64,
}

impl std::fmt::Debug for TileSigCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileSigCache")
            .field("entries", &self.tiles.len())
            .field("held_bytes", &self.held_bytes)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("invalidations", &self.invalidations)
            .finish()
    }
}

impl TileSigCache {
    pub(crate) fn new() -> Self {
        TileSigCache {
            tiles: HashMap::new(),
            order: VecDeque::new(),
            held_bytes: 0,
            hits: 0,
            misses: 0,
            invalidations: 0,
            bytes_replayed: 0,
        }
    }

    /// Consults the cache for one tile. A present entry with a matching
    /// signature is a hit and returns the cached bytes; a present entry
    /// with a different signature is invalidated (its inputs changed under
    /// the same identity — it can never match again) and counts a miss; an
    /// absent entry is a plain miss.
    pub(crate) fn lookup(&mut self, key: &TileKey, sig: (u64, u64)) -> Option<&[u8]> {
        let stale = matches!(self.tiles.get(key), Some(e) if e.sig != sig);
        if stale {
            if let Some(e) = self.tiles.remove(key) {
                self.held_bytes -= e.bytes.len();
            }
            self.invalidations += 1;
            self.misses += 1;
            return None;
        }
        if !self.tiles.contains_key(key) {
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        // Reinsertion-on-hit: the replayed tile goes to the back of the
        // eviction queue (approximate LRU, as in the plan cache).
        self.order.push_back(*key);
        self.compact();
        match self.tiles.get(key) {
            Some(e) => {
                self.bytes_replayed += e.bytes.len() as u64;
                Some(e.bytes.as_slice())
            }
            None => None,
        }
    }

    /// Stores one freshly shaded tile, evicting oldest entries beyond the
    /// entry or byte bound.
    pub(crate) fn insert(&mut self, key: TileKey, sig: (u64, u64), bytes: Vec<u8>) {
        self.held_bytes += bytes.len();
        if let Some(old) = self.tiles.insert(key, TileEntry { sig, bytes }) {
            self.held_bytes -= old.bytes.len();
        }
        self.order.push_back(key);
        while (self.tiles.len() > TILE_CACHE_ENTRY_CAP || self.held_bytes > TILE_CACHE_BYTE_CAP)
            && self.tiles.len() > 1
        {
            match self.order.pop_front() {
                Some(old) => {
                    // Same stale-front protection as the plan cache: a
                    // reinserted key's newest queue slot is further back.
                    if self.order.contains(&old) {
                        continue;
                    }
                    if let Some(e) = self.tiles.remove(&old) {
                        self.held_bytes -= e.bytes.len();
                    }
                }
                None => break,
            }
        }
        self.compact();
    }

    /// Drops every cached tile, counting each as an invalidation (context
    /// loss/recreation, engine or spec reconfiguration, skip disable).
    pub(crate) fn flush(&mut self) {
        self.invalidations += self.tiles.len() as u64;
        self.tiles.clear();
        self.order.clear();
        self.held_bytes = 0;
    }

    pub(crate) fn stats(&self) -> TileSkipStats {
        TileSkipStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            bytes_replayed: self.bytes_replayed,
            entries: self.tiles.len(),
        }
    }

    fn compact(&mut self) {
        if self.order.len() > 4 * TILE_CACHE_ENTRY_CAP.max(self.tiles.len()) {
            let tiles = &self.tiles;
            let mut seen = std::collections::HashSet::new();
            let mut kept: Vec<TileKey> = self
                .order
                .iter()
                .rev()
                .filter(|k| tiles.contains_key(*k) && seen.insert(**k))
                .copied()
                .collect();
            kept.reverse();
            self.order = kept.into();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Engine;
    use crate::plan_cache::corners_hash;
    use crate::raster::texcoord_corners;

    fn plan_key(program: u32, uniform_hash: u64) -> PlanKey {
        PlanKey {
            program,
            shader_hash: 1,
            uniform_hash,
            engine: Engine::Scalar,
            spec: false,
            width: 64,
            height: 64,
            channels: 4,
            corners_hash: corners_hash(&[texcoord_corners()]),
        }
    }

    fn rect(x0: u32, y0: u32) -> TileRect {
        TileRect {
            col: x0 / 16,
            row: y0 / 16,
            x0,
            x1: x0 + 16,
            y0,
            y1: y0 + 16,
        }
    }

    fn key(program: u32, x0: u32, y0: u32) -> TileKey {
        TileKey::new(plan_key(program, 0), &rect(x0, y0))
    }

    #[test]
    fn lookup_counts_hits_misses_and_replayed_bytes() {
        let mut cache = TileSigCache::new();
        let k = key(1, 0, 0);
        assert!(cache.lookup(&k, (7, 8)).is_none());
        cache.insert(k, (7, 8), vec![0xAB; 1024]);
        assert_eq!(cache.lookup(&k, (7, 8)), Some(&[0xAB; 1024][..]));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 1, 0));
        assert_eq!(s.bytes_replayed, 1024);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn signature_mismatch_invalidates_and_misses() {
        let mut cache = TileSigCache::new();
        let k = key(1, 16, 0);
        cache.insert(k, (1, 2), vec![0u8; 64]);
        assert!(cache.lookup(&k, (3, 4)).is_none(), "changed inputs miss");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 1, 1));
        assert_eq!(s.entries, 0, "mismatched entry is dropped");
        // Re-storing under the new signature serves again.
        cache.insert(k, (3, 4), vec![1u8; 64]);
        assert!(cache.lookup(&k, (3, 4)).is_some());
    }

    #[test]
    fn flush_invalidates_every_entry() {
        let mut cache = TileSigCache::new();
        cache.insert(key(1, 0, 0), (0, 0), vec![0u8; 8]);
        cache.insert(key(1, 16, 0), (0, 0), vec![0u8; 8]);
        cache.flush();
        let s = cache.stats();
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.entries, 0);
        assert!(cache.lookup(&key(1, 0, 0), (0, 0)).is_none());
    }

    #[test]
    fn byte_budget_evicts_oldest_first() {
        let mut cache = TileSigCache::new();
        let chunk = TILE_CACHE_BYTE_CAP / 4;
        for i in 0..5u32 {
            cache.insert(key(i + 1, 0, 0), (0, 0), vec![0u8; chunk]);
        }
        assert!(cache.held_bytes <= TILE_CACHE_BYTE_CAP);
        assert!(
            cache.lookup(&key(1, 0, 0), (0, 0)).is_none(),
            "oldest entry evicted by byte budget"
        );
        assert!(cache.lookup(&key(5, 0, 0), (0, 0)).is_some());
    }

    #[test]
    fn entry_cap_is_bounded() {
        let mut cache = TileSigCache::new();
        for i in 0..(TILE_CACHE_ENTRY_CAP as u32 + 10) {
            cache.insert(key(i, 0, 0), (0, 0), vec![0u8; 4]);
        }
        assert_eq!(cache.stats().entries, TILE_CACHE_ENTRY_CAP);
    }

    #[test]
    fn footprint_clamps_and_pads() {
        // A hull inside the texture pads ±2 texels.
        assert_eq!(
            sample_footprint([0.25, 0.5], [0.5, 0.75], 64, 64),
            (14, 34, 30, 50)
        );
        // Hulls beyond the edges clamp to the texture.
        assert_eq!(
            sample_footprint([-3.0, -1.0], [4.0, 2.0], 32, 16),
            (0, 32, 0, 16)
        );
        // Non-finite hulls fall back to a full-extent edge.
        let (x0, x1, ..) = sample_footprint([f32::NAN, 0.0], [f32::NAN, 1.0], 8, 8);
        assert!(x1 <= 8 && x0 < x1);
        // A hull entirely beyond an edge still covers the border texel it
        // clamps onto — clamp-to-edge sampling reads it, so an empty
        // footprint would hide border content changes.
        assert_eq!(
            sample_footprint([-5.0, -4.0], [-2.0, -3.0], 8, 8),
            (0, 1, 0, 1)
        );
        assert_eq!(sample_footprint([3.0, 2.0], [5.0, 4.0], 8, 8), (7, 8, 7, 8));
        // Degenerate textures keep a degenerate footprint.
        assert_eq!(sample_footprint([0.0, 0.0], [1.0, 1.0], 0, 0), (0, 0, 0, 0));
    }

    #[test]
    fn signatures_see_every_component() {
        let r = rect(0, 0);
        let t = TexSig {
            width: 64,
            height: 64,
            channels: 4,
            linear: false,
            region: Some((0, 16, 0, 16)),
            crc: 99,
        };
        let base = tile_signature(1, 64, &r, &[t]);
        assert_eq!(base, tile_signature(1, 64, &r, &[t]), "deterministic");
        assert_ne!(base, tile_signature(2, 64, &r, &[t]), "column hash");
        assert_ne!(base, tile_signature(1, 128, &r, &[t]), "target height");
        assert_ne!(
            base,
            tile_signature(1, 64, &r, &[TexSig { crc: 100, ..t }]),
            "texture content"
        );
        assert_ne!(
            base,
            tile_signature(1, 64, &r, &[TexSig { region: None, ..t }]),
            "footprint mode"
        );
        assert_ne!(
            base,
            tile_signature(1, 64, &r, &[TexSig { linear: true, ..t }]),
            "filter"
        );
        assert_ne!(base, tile_signature(1, 64, &r, &[]), "texture count");
    }

    #[test]
    fn region_hash_covers_exactly_the_rect() {
        // 8x4 single-channel texture, bytes = y*8 + x.
        let data: Vec<u8> = (0..32u8).collect();
        let a = region_hash(&data, 8, 1, (2, 5, 1, 3));
        // Mutating inside the rect changes the digest...
        let mut inside = data.clone();
        inside[8 + 3] = 0xFF; // row 1, column 3
        assert_ne!(a, region_hash(&inside, 8, 1, (2, 5, 1, 3)));
        // ...mutating outside does not.
        let mut outside = data.clone();
        outside[0] = 0xFF;
        outside[3 * 8 + 7] = 0xFF;
        assert_eq!(a, region_hash(&outside, 8, 1, (2, 5, 1, 3)));
    }

    #[test]
    fn blit_and_extract_round_trip() {
        let width = 10u32;
        let r = TileRect {
            col: 0,
            row: 0,
            x0: 3,
            x1: 7,
            y0: 2,
            y1: 5,
        };
        let out: Vec<u8> = (0..width as usize * 6 * 2).map(|i| i as u8).collect();
        let tile = extract_tile(&out, &r, width, 2);
        assert_eq!(tile.len(), 4 * 3 * 2);
        let mut replay = vec![0u8; out.len()];
        blit_tile(&tile, &r, width, 2, &mut replay);
        for y in 0..6u32 {
            for x in 0..width {
                let i = (y as usize * width as usize + x as usize) * 2;
                let inside = (r.x0..r.x1).contains(&x) && (r.y0..r.y1).contains(&y);
                if inside {
                    assert_eq!(&replay[i..i + 2], &out[i..i + 2]);
                } else {
                    assert_eq!(&replay[i..i + 2], &[0, 0]);
                }
            }
        }
    }
}
