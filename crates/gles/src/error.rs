//! Error type of the GL layer.
//!
//! The C API latches error codes behind `glGetError`; as an idiomatic Rust
//! library we return `Result` instead, keeping the original error-category
//! names so driver-savvy readers recognise the failure classes.

use std::error::Error;
use std::fmt;

use mgpu_shader::CompileError;

/// Errors produced by GL-layer calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlError {
    /// `GL_INVALID_VALUE`: a numeric argument is out of range.
    InvalidValue(String),
    /// `GL_INVALID_OPERATION`: the call is not allowed in the current state
    /// (e.g. sampling a texture that is bound as the render target — the
    /// OpenGL ES 2 feedback-loop rule central to the paper's §III).
    InvalidOperation(String),
    /// `GL_INVALID_FRAMEBUFFER_OPERATION`: the framebuffer is incomplete.
    InvalidFramebufferOperation(String),
    /// An unknown object handle.
    UnknownObject(String),
    /// Shader compilation or linking failed; carries the driver-style info
    /// log. Resource-limit failures (the paper's Fig. 4b wall) appear here
    /// with [`CompileError::is_limit_exceeded`] set.
    CompileFailed(CompileError),
}

impl GlError {
    /// Whether this failure is a shader resource-limit rejection.
    #[must_use]
    pub fn is_shader_limit(&self) -> bool {
        matches!(self, GlError::CompileFailed(e) if e.is_limit_exceeded())
    }
}

impl fmt::Display for GlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlError::InvalidValue(m) => write!(f, "invalid value: {m}"),
            GlError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            GlError::InvalidFramebufferOperation(m) => {
                write!(f, "invalid framebuffer operation: {m}")
            }
            GlError::UnknownObject(m) => write!(f, "unknown object: {m}"),
            GlError::CompileFailed(e) => write!(f, "shader compilation failed: {e}"),
        }
    }
}

impl Error for GlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GlError::CompileFailed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for GlError {
    fn from(e: CompileError) -> Self {
        GlError::CompileFailed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_shader::CompileErrorKind;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GlError::InvalidOperation("texture bound for read and write".into());
        assert!(e.to_string().starts_with("invalid operation"));
    }

    #[test]
    fn shader_limit_detection() {
        let limit = GlError::CompileFailed(CompileError::new(
            CompileErrorKind::LimitExceeded,
            "too many instructions",
            None,
        ));
        assert!(limit.is_shader_limit());
        let parse = GlError::CompileFailed(CompileError::new(
            CompileErrorKind::Parse,
            "bad token",
            None,
        ));
        assert!(!parse.is_shader_limit());
        assert!(!GlError::InvalidValue("x".into()).is_shader_limit());
    }
}
