//! Error type of the GL layer.
//!
//! The C API latches error codes behind `glGetError`; as an idiomatic Rust
//! library we return `Result` instead, keeping the original error-category
//! names so driver-savvy readers recognise the failure classes.

use std::error::Error;
use std::fmt;

use mgpu_shader::CompileError;
use mgpu_tbdr::SimTime;

/// Errors produced by GL-layer calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlError {
    /// `GL_INVALID_VALUE`: a numeric argument is out of range.
    InvalidValue(String),
    /// `GL_INVALID_OPERATION`: the call is not allowed in the current state
    /// (e.g. sampling a texture that is bound as the render target — the
    /// OpenGL ES 2 feedback-loop rule central to the paper's §III).
    InvalidOperation(String),
    /// `GL_INVALID_FRAMEBUFFER_OPERATION`: the framebuffer is incomplete.
    InvalidFramebufferOperation(String),
    /// An unknown object handle.
    UnknownObject(String),
    /// Shader compilation or linking failed; carries the driver-style info
    /// log. Resource-limit failures (the paper's Fig. 4b wall) appear here
    /// with [`CompileError::is_limit_exceeded`] set.
    CompileFailed(CompileError),
    /// `EGL_CONTEXT_LOST`: the context died (compositor churn, power
    /// event, injected fault). Every GL object it owned is gone; all calls
    /// keep failing with this error until [`Gl::recreate`](crate::Gl::recreate).
    ContextLost,
    /// `GL_OUT_OF_MEMORY`: an allocation (texture storage, buffer data, or
    /// a transient driver resource such as shader-compiler scratch) failed.
    /// Transient by nature — retrying may succeed.
    OutOfMemory(String),
    /// The driver's per-draw watchdog killed the draw before execution:
    /// its estimated GPU time exceeded the configured budget. Splitting
    /// the draw into smaller pieces may get under the budget.
    WatchdogTimeout {
        /// Estimated GPU occupancy of the rejected draw.
        estimated: SimTime,
        /// The watchdog budget it exceeded.
        budget: SimTime,
    },
    /// A driver invariant was violated — a bug in this library surfacing
    /// as a typed error instead of a panic on the draw/upload/readback
    /// paths.
    Internal(String),
    /// An `MGPU_*` environment knob holds an invalid value
    /// (`MGPU_ENGINE=typo`, `MGPU_THREADS=0`, a malformed `MGPU_FAULTS`
    /// spec, …). Raised by [`Gl::try_new`](crate::Gl::try_new) at context
    /// creation — configuration typos fail loudly instead of silently
    /// running with defaults.
    InvalidEnv(crate::exec::EnvKnobError),
}

impl GlError {
    /// Whether this failure is a shader resource-limit rejection.
    #[must_use]
    pub fn is_shader_limit(&self) -> bool {
        matches!(self, GlError::CompileFailed(e) if e.is_limit_exceeded())
    }

    /// Whether this is a context loss (recoverable only via
    /// [`Gl::recreate`](crate::Gl::recreate) plus object re-creation).
    #[must_use]
    pub fn is_context_loss(&self) -> bool {
        matches!(self, GlError::ContextLost)
    }

    /// Whether retrying the same call (possibly after backoff or
    /// splitting the work) may succeed: out-of-memory and watchdog kills.
    /// Context loss is *not* transient — the context must be recreated
    /// first.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            GlError::OutOfMemory(_) | GlError::WatchdogTimeout { .. }
        )
    }
}

impl fmt::Display for GlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlError::InvalidValue(m) => write!(f, "invalid value: {m}"),
            GlError::InvalidOperation(m) => write!(f, "invalid operation: {m}"),
            GlError::InvalidFramebufferOperation(m) => {
                write!(f, "invalid framebuffer operation: {m}")
            }
            GlError::UnknownObject(m) => write!(f, "unknown object: {m}"),
            GlError::CompileFailed(e) => write!(f, "shader compilation failed: {e}"),
            GlError::ContextLost => write!(f, "context lost: recreate the context"),
            GlError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
            GlError::WatchdogTimeout { estimated, budget } => write!(
                f,
                "watchdog timeout: draw estimated at {estimated} exceeds budget {budget}"
            ),
            GlError::Internal(m) => write!(f, "internal driver error: {m}"),
            GlError::InvalidEnv(e) => write!(f, "invalid environment: {e}"),
        }
    }
}

impl Error for GlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GlError::CompileFailed(e) => Some(e),
            GlError::InvalidEnv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::exec::EnvKnobError> for GlError {
    fn from(e: crate::exec::EnvKnobError) -> Self {
        GlError::InvalidEnv(e)
    }
}

impl From<CompileError> for GlError {
    fn from(e: CompileError) -> Self {
        GlError::CompileFailed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_shader::CompileErrorKind;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = GlError::InvalidOperation("texture bound for read and write".into());
        assert!(e.to_string().starts_with("invalid operation"));
    }

    #[test]
    fn shader_limit_detection() {
        let limit = GlError::CompileFailed(CompileError::new(
            CompileErrorKind::LimitExceeded,
            "too many instructions",
            None,
        ));
        assert!(limit.is_shader_limit());
        let parse = GlError::CompileFailed(CompileError::new(
            CompileErrorKind::Parse,
            "bad token",
            None,
        ));
        assert!(!parse.is_shader_limit());
        assert!(!GlError::InvalidValue("x".into()).is_shader_limit());
    }
}
