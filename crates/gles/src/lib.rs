//! # mgpu-gles — a software OpenGL ES 2.0 + EGL subset with a driver model
//!
//! This crate is the "driver" of the mgpu stack: a from-scratch
//! implementation of the OpenGL ES 2.0 + EGL surface area the DATE 2017
//! paper's GPGPU pipelines exercise, running on top of the
//! [`mgpu_tbdr`] timing simulator and the [`mgpu_shader`] kernel compiler.
//!
//! Every optimisation point of the paper corresponds to a visible API
//! choice here:
//!
//! | Paper §II optimisation | API surface |
//! |---|---|
//! | Vertex buffer objects + usage hints | [`Gl::buffer_data`], [`VertexSource`] |
//! | Texture upload reuse | [`Gl::tex_image_2d`] vs [`Gl::tex_sub_image_2d`] |
//! | Render-to-texture vs framebuffer+copy | [`Gl::framebuffer_texture_2d`] vs [`Gl::copy_tex_image_2d`] |
//! | Copy-destination reuse | [`Gl::copy_tex_image_2d`] vs [`Gl::copy_tex_sub_image_2d`] |
//! | Framebuffer invalidation | [`Gl::clear`], [`Gl::discard_framebuffer`] |
//! | Windowing-system sync | [`Gl::swap_buffers`], [`Gl::swap_interval`], [`Gl::flush`] |
//! | Kernel code / fp24 | [`Gl::create_program_with`], [`TextureFormat::Rgb8`] |
//!
//! Draws are validated with GLES error semantics — including the
//! feedback-loop rule (a texture cannot be sampled while bound as the
//! render target) that forces the paper's double-buffered multi-pass
//! scheme.
//!
//! # Examples
//!
//! ```
//! use mgpu_gles::{DrawQuad, Gl, TextureFormat};
//! use mgpu_tbdr::Platform;
//!
//! # fn main() -> Result<(), mgpu_gles::GlError> {
//! let mut gl = Gl::new(Platform::sgx_545(), 32, 32);
//! let prog = gl.create_program(
//!     "varying vec2 v_coord;
//!      void main() { gl_FragColor = vec4(v_coord, 0.0, 1.0); }",
//! )?;
//! gl.use_program(Some(prog))?;
//! gl.clear([0.0; 4])?;
//! gl.draw_quad(&DrawQuad::fullscreen())?;
//! let pixels = gl.read_pixels()?;
//! assert_eq!(pixels.len(), 32 * 32 * 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

mod context;
mod error;
pub mod exec;
pub mod fault;
mod plan_cache;
mod pool;
pub mod raster;
mod tile_skip;
mod types;

pub use context::{DrawQuad, Gl};
pub use error::GlError;
pub use exec::{Engine, EnvKnobError, ExecConfig};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSite, FaultSpecError};
pub use plan_cache::PlanCacheStats;
pub use pool::Executor;
pub use tile_skip::TileSkipStats;
pub use types::{
    BufferId, BufferUsage, FramebufferId, ProgramId, TextureFilter, TextureFormat, TextureId,
    VertexSource,
};
