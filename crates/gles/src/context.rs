//! The GL context: an OpenGL ES 2.0 + EGL subset as a safe Rust API.
//!
//! A [`Gl`] owns the full driver state — textures, buffers, framebuffer
//! objects, programs, texture units, the double-buffered window surface —
//! and two execution engines:
//!
//! * a **functional** engine (the [`raster`](crate::raster) module plus the
//!   shader VM) that computes actual pixel values, and
//! * a **timing** engine (the [`PipelineSim`](mgpu_tbdr::PipelineSim)) fed
//!   one [`FrameWork`] per kernel invocation.
//!
//! API calls map 1:1 onto the GLES calls the paper discusses
//! (`tex_image_2d` ↔ `glTexImage2D`, and so on), with GLES error semantics
//! surfaced as `Result`s. Frame boundaries follow GL's: uploads accumulate
//! until a draw; a draw opens a frame; `copy_tex_image_2d` attaches to it;
//! the next draw, `swap_buffers`, `finish` or `flush` closes it.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mgpu_shader::ir::Shader;
use mgpu_shader::{compile_with, cost, CompileOptions, Limits, OptOptions, Sampler, UniformValues};
use mgpu_tbdr::{
    AllocKind, CopyOut, FragmentProfile, FragmentWork, FrameTiming, FrameWork, PipelineSim,
    Platform, RenderTarget, ResourceId, SimReport, SimTime, SkipWork, SyncOp, TileRect, Upload,
    VertexWork,
};

use crate::error::GlError;
use crate::exec::{plan_cache_default, ExecConfig};
use crate::fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan, FaultSite};
use crate::plan_cache::{corners_hash, PlanCache, PlanCacheStats, PlanKey};
use crate::pool::Executor;
use crate::raster::{
    execute_plan, execute_plan_rect, panic_message, quantize_rgba8, rasterize_quad_rows_into,
    texcoord_corners, DrawPlan, RasterTarget, VaryingCorners,
};
use crate::tile_skip::{
    blit_tile, content_hash, extract_tile, region_hash, sample_footprint, tile_signature, TexSig,
    TileKey, TileSigCache, TileSkipStats, SIG_BYTES_PER_SLOT_COLUMN, SIG_DESCRIPTOR_BYTES,
};
use crate::types::{
    BufferId, BufferUsage, FramebufferId, ProgramId, TextureFilter, TextureFormat, TextureId,
    VertexSource,
};

/// Driver CPU cost of sourcing vertex data from client arrays (per draw):
/// validation plus copy into the driver's ring buffer, before per-byte cost.
const CLIENT_ARRAY_BASE: SimTime = SimTime::from_micros(25);
/// Per-draw consistency cost of a `StreamDraw` VBO.
const VBO_STREAM_COST: SimTime = SimTime::from_micros(3);
/// Per-draw consistency cost of a `DynamicDraw` VBO (the driver must check
/// for CPU writes each draw).
const VBO_DYNAMIC_COST: SimTime = SimTime::from_micros(7);
/// CPU cost of recreating a lost EGL context (eglCreateContext +
/// eglMakeCurrent + driver state rebuild), charged to the first frame
/// submitted after [`Gl::recreate`].
const CONTEXT_RECREATE_COST: SimTime = SimTime::from_millis(2);

#[derive(Debug)]
struct Texture {
    storage: ResourceId,
    width: u32,
    height: u32,
    format: TextureFormat,
    filter: TextureFilter,
    data: Vec<u8>,
    allocated: bool,
    /// Storage allocated and not yet rendered into / copied into.
    storage_fresh: bool,
    /// Bumped on every content mutation (upload, copy, draw write-back,
    /// clear, injected corruption) so the whole-texture content digest can
    /// be memoised per version for the tile-signature cache.
    version: u64,
    /// `(version, digest)` memo for [`Texture::content_crc`].
    crc_memo: Option<(u64, u64)>,
}

impl Texture {
    /// Marks the texture's contents changed.
    fn touch(&mut self) {
        self.version = self.version.wrapping_add(1);
    }

    /// Whole-texture content digest, memoised per content version.
    fn content_crc(&mut self) -> u64 {
        if let Some((v, crc)) = self.crc_memo {
            if v == self.version {
                return crc;
            }
        }
        let crc = content_hash(&self.data);
        self.crc_memo = Some((self.version, crc));
        crc
    }
}

#[derive(Debug)]
struct Buffer {
    usage: BufferUsage,
    size: u64,
    allocated: bool,
}

#[derive(Debug, Default)]
struct Framebuffer {
    color: Option<TextureId>,
}

#[derive(Debug)]
struct Program {
    /// Shared so draw plans can hold the compiled shader without cloning
    /// it; a relink creates a whole new `Program`, never mutates this.
    shader: Arc<Shader>,
    /// [`Shader::stable_hash`] computed once at link, part of every plan
    /// cache key (catches a handle relinked to different source).
    shader_hash: u64,
    uniforms: UniformValues,
    /// shader sampler unit → GL texture unit (glUniform1i on a sampler).
    unit_bindings: HashMap<u8, u32>,
}

/// Identifies a render target for clear/content tracking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TargetKey {
    Surface(u32),
    Storage(ResourceId),
}

/// A draw call: a quad covering the render target.
///
/// Every `vec2` varying defaults to the standard GPGPU texcoords (fragment
/// (x, y) reads texel (x, y)); use [`DrawQuad::with_varying`] to override a
/// varying's corner values.
#[derive(Debug, Clone, Default)]
pub struct DrawQuad {
    overrides: Vec<(String, VaryingCorners)>,
    /// Shade only rows `y0..y1` of the target (a row-band sub-draw).
    rows: Option<(u32, u32)>,
    /// Where vertex data comes from (client arrays vs a VBO).
    pub vertex_source: VertexSource,
    /// Label recorded on the frame for traces.
    pub label: String,
}

impl DrawQuad {
    /// A fullscreen quad with default texcoords on every varying.
    #[must_use]
    pub fn fullscreen() -> Self {
        DrawQuad::default()
    }

    /// Overrides one varying's corner values
    /// (corner order: (0,0), (1,0), (0,1), (1,1)).
    #[must_use]
    pub fn with_varying(mut self, name: &str, corners: VaryingCorners) -> Self {
        self.overrides.push((name.to_owned(), corners));
        self
    }

    /// Sets the vertex source.
    #[must_use]
    pub fn with_vertex_source(mut self, source: VertexSource) -> Self {
        self.vertex_source = source;
        self
    }

    /// Sets the trace label.
    #[must_use]
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_owned();
        self
    }

    /// Restricts the draw to target rows `y0..y1` — a row-band sub-draw.
    ///
    /// Fragment positions stay global, so a full-target draw split into
    /// bands produces bytes identical to the unsplit draw while each
    /// sub-draw's simulated GPU time covers only its band (how a resilient
    /// runner ducks under a per-draw watchdog budget).
    #[must_use]
    pub fn with_row_band(mut self, y0: u32, y1: u32) -> Self {
        self.rows = Some((y0, y1));
        self
    }

    /// The row band this draw covers, if restricted.
    #[must_use]
    pub fn row_band(&self) -> Option<(u32, u32)> {
        self.rows
    }
}

/// What one sampled texture contributes to a tile's input signature:
/// the exact sampled-texel region digest when the kernel's fetches are all
/// streaming (footprint resolved from the plan's varying hull), else the
/// memoised whole-texture digest.
fn tile_texture_sigs(
    plan: &DrawPlan,
    r: &TileRect,
    height: u32,
    streaming_only: bool,
    views: &[TexView<'_>],
    whole_crcs: &[u64],
) -> Vec<TexSig> {
    let hull = if streaming_only {
        plan.varying_hull(r.x0, r.x1, r.y0, r.y1, height)
    } else {
        None
    };
    views
        .iter()
        .zip(whole_crcs)
        .map(|(v, &whole)| {
            let (region, crc) = match hull {
                Some((lo, hi)) => {
                    let fp = sample_footprint(lo, hi, v.width, v.height);
                    (Some(fp), region_hash(v.data, v.width, v.channels, fp))
                }
                None => (None, whole),
            };
            TexSig {
                width: v.width,
                height: v.height,
                channels: v.channels,
                linear: v.filter == TextureFilter::Linear,
                region,
                crc,
            }
        })
        .collect()
}

/// Filtering view over texture bytes (nearest or bilinear, clamp-to-edge).
struct TexView<'a> {
    data: &'a [u8],
    width: u32,
    height: u32,
    channels: usize,
    filter: TextureFilter,
}

impl TexView<'_> {
    #[inline]
    fn texel(&self, x: i64, y: i64) -> [f32; 4] {
        let x = x.clamp(0, i64::from(self.width) - 1);
        let y = y.clamp(0, i64::from(self.height) - 1);
        let idx = (y as usize * self.width as usize + x as usize) * self.channels;
        let mut out = [0.0f32, 0.0, 0.0, 1.0];
        for (c, o) in out.iter_mut().enumerate().take(self.channels.min(4)) {
            *o = mgpu_shader::u8_to_unorm(self.data[idx + c]);
        }
        out
    }

    /// Nearest lookup with pre-converted dimension factors (the values of
    /// `self.width as f32`/`self.height as f32`), hoisted by the batch
    /// path so the conversions happen once per batch, not once per lane.
    #[inline]
    fn fetch_nearest_scaled(&self, u: f32, v: f32, wf: f32, hf: f32) -> [f32; 4] {
        self.texel((u * wf).floor() as i64, (v * hf).floor() as i64)
    }
}

impl Sampler for TexView<'_> {
    fn fetch(&self, u: f32, v: f32) -> [f32; 4] {
        match self.filter {
            TextureFilter::Nearest => {
                self.fetch_nearest_scaled(u, v, self.width as f32, self.height as f32)
            }
            TextureFilter::Linear => {
                // Sample positions relative to texel centres.
                let x = u * self.width as f32 - 0.5;
                let y = v * self.height as f32 - 0.5;
                let (x0, y0) = (x.floor(), y.floor());
                let (fx, fy) = (x - x0, y - y0);
                let (x0, y0) = (x0 as i64, y0 as i64);
                let t00 = self.texel(x0, y0);
                let t10 = self.texel(x0 + 1, y0);
                let t01 = self.texel(x0, y0 + 1);
                let t11 = self.texel(x0 + 1, y0 + 1);
                let mut out = [0.0f32; 4];
                for c in 0..4 {
                    let top = t00[c] * (1.0 - fx) + t10[c] * fx;
                    let bottom = t01[c] * (1.0 - fx) + t11[c] * fx;
                    out[c] = top * (1.0 - fy) + bottom * fy;
                }
                out
            }
        }
    }

    fn fetch_batch(&self, us: &[f32], vs: &[f32], out: &mut [[f32; 4]]) {
        match self.filter {
            TextureFilter::Nearest => {
                // The GPGPU hot path: statically dispatched nearest
                // lookups with the texel-scale factors hoisted out of the
                // lane loop.
                let (wf, hf) = (self.width as f32, self.height as f32);
                for ((o, u), v) in out.iter_mut().zip(us).zip(vs) {
                    *o = self.fetch_nearest_scaled(*u, *v, wf, hf);
                }
            }
            TextureFilter::Linear => {
                for ((o, u), v) in out.iter_mut().zip(us).zip(vs) {
                    *o = self.fetch(*u, *v);
                }
            }
        }
    }

    fn fetch_row_batch(&self, us: &[f32], v: f32, out: &mut [[f32; 4]]) {
        match self.filter {
            TextureFilter::Nearest => {
                // Row term resolved once: `(y*w + x) == (row + x)` exactly.
                let (wf, hf) = (self.width as f32, self.height as f32);
                let y = ((v * hf).floor() as i64).clamp(0, i64::from(self.height) - 1);
                for (o, u) in out.iter_mut().zip(us) {
                    *o = self.texel(
                        ((*u * wf).floor() as i64).clamp(0, i64::from(self.width) - 1),
                        y,
                    );
                }
            }
            TextureFilter::Linear => {
                for (o, u) in out.iter_mut().zip(us) {
                    *o = self.fetch(*u, v);
                }
            }
        }
    }

    fn raw_rgba8(&self) -> Option<(&[u8], u32, u32)> {
        // Only a full-RGBA8 nearest view matches the raw-gather contract
        // (`u8_to_unorm` over `data[(y*w + x)*4..][..4]`).
        (self.channels == 4 && self.filter == TextureFilter::Nearest).then_some((
            self.data,
            self.width,
            self.height,
        ))
    }
}

/// An OpenGL ES 2.0 context bound to a window surface on a simulated
/// platform.
///
/// # Examples
///
/// ```
/// use mgpu_gles::{DrawQuad, Gl, TextureFormat};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gles::GlError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 64, 64);
/// let prog = gl.create_program(
///     "uniform sampler2D u_src;
///      varying vec2 v_coord;
///      void main() { gl_FragColor = texture2D(u_src, v_coord); }",
/// )?;
/// let src = gl.create_texture();
/// gl.tex_image_2d(src, 64, 64, TextureFormat::Rgba8, Some(&[128u8; 64 * 64 * 4]))?;
/// gl.bind_texture(0, Some(src))?;
/// gl.use_program(Some(prog))?;
/// gl.clear([0.0; 4])?;
/// gl.draw_quad(&DrawQuad::fullscreen())?;
/// gl.swap_buffers()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gl {
    platform: Platform,
    sim: PipelineSim,
    functional: bool,
    exec: ExecConfig,

    next_handle: u32,
    resource_counter: u64,
    textures: HashMap<u32, Texture>,
    buffers: HashMap<u32, Buffer>,
    framebuffers: HashMap<u32, Framebuffer>,
    programs: HashMap<u32, Program>,

    texture_units: Vec<Option<TextureId>>,
    bound_framebuffer: Option<FramebufferId>,
    current_program: Option<ProgramId>,
    swap_interval: u32,

    surface_width: u32,
    surface_height: u32,
    surfaces: Vec<Vec<u8>>,
    back_surface: u32,

    pending: Option<FrameWork>,
    pending_uploads: Vec<Upload>,
    pending_cpu_extra: SimTime,
    cleared_targets: HashSet<TargetKey>,
    has_content: HashSet<TargetKey>,

    draw_counter: u64,
    last_timing: Option<FrameTiming>,
    record_frames: bool,
    recorded: Vec<(FrameWork, FrameTiming)>,

    /// Deterministic fault injection, if installed (`MGPU_FAULTS` or
    /// [`Gl::install_faults`]). `None` means every hook is a no-op and the
    /// context behaves bit-identically to a fault-free build.
    injector: Option<FaultInjector>,
    /// Set by an injected context loss; every call fails with
    /// [`GlError::ContextLost`] until [`Gl::recreate`].
    context_lost: bool,

    /// Persistent rasteriser executor, spawned lazily on the first draw
    /// that dispatches in parallel with the pool enabled — or installed
    /// from outside via [`Gl::install_executor`] to share one set of host
    /// threads across many contexts. Deliberately survives
    /// [`Gl::recreate`]: context loss destroys GPU objects, not host
    /// threads.
    executor: Option<Executor>,
    /// Whether `executor` was installed from outside. Installed executors
    /// are pinned: a thread-count change must not retire a pool other
    /// contexts still share (dispatch clamps participation instead).
    executor_installed: bool,
    /// Per-context draw-plan cache (cleared on context loss/recreation).
    plan_cache: PlanCache,
    /// When the plan cache is disabled, the last draw's plan is parked
    /// here so the next build can recycle its allocations.
    scratch_plan: Option<DrawPlan>,
    /// Per-context tile-signature cache for redundancy elimination
    /// (`MGPU_TILE_SKIP=on`; flushed on context loss and engine/spec
    /// reconfiguration).
    tile_cache: TileSigCache,
}

impl Gl {
    /// Creates a context with a `width`×`height` double-buffered window
    /// surface, at the platform's default swap interval.
    ///
    /// # Panics
    ///
    /// Panics if any `MGPU_*` environment knob holds an invalid value
    /// (`MGPU_ENGINE=typo`, `MGPU_THREADS=0`, a malformed `MGPU_FAULTS`
    /// spec, …). Use [`Gl::try_new`] to surface that as a typed
    /// [`GlError::InvalidEnv`] instead.
    #[must_use]
    pub fn new(platform: Platform, width: u32, height: u32) -> Self {
        match Gl::try_new(platform, width, height) {
            Ok(gl) => gl,
            Err(e) => panic!("mgpu-gles: {e}"),
        }
    }

    /// [`Gl::new`], with environment-knob validation surfaced as a typed
    /// error: all `MGPU_*` knobs come from the once-per-process snapshot,
    /// and an invalid value (unknown engine name, zero/non-numeric thread
    /// count, malformed fault spec) is a [`GlError::InvalidEnv`] here
    /// instead of a silent fallback to defaults.
    ///
    /// # Errors
    ///
    /// Returns [`GlError::InvalidEnv`] when any `MGPU_*` knob fails to
    /// parse.
    pub fn try_new(platform: Platform, width: u32, height: u32) -> Result<Self, GlError> {
        let exec = ExecConfig::try_from_env()?;
        let env_faults = crate::exec::env_fault_plan()?;
        let surfaces = (0..platform.framebuffer_surfaces.max(1))
            .map(|_| vec![0u8; width as usize * height as usize * 4])
            .collect();
        let swap_interval = platform.default_swap_interval;
        Ok(Gl {
            sim: PipelineSim::new(platform.clone()),
            platform,
            functional: true,
            exec,
            next_handle: 1,
            resource_counter: 1,
            textures: HashMap::new(),
            buffers: HashMap::new(),
            framebuffers: HashMap::new(),
            programs: HashMap::new(),
            texture_units: vec![None; 8],
            bound_framebuffer: None,
            current_program: None,
            swap_interval,
            surface_width: width,
            surface_height: height,
            surfaces,
            back_surface: 0,
            pending: None,
            pending_uploads: Vec::new(),
            pending_cpu_extra: SimTime::ZERO,
            cleared_targets: HashSet::new(),
            has_content: HashSet::new(),
            draw_counter: 0,
            last_timing: None,
            record_frames: false,
            recorded: Vec::new(),
            injector: env_faults.map(FaultInjector::new),
            context_lost: false,
            executor: None,
            executor_installed: false,
            plan_cache: PlanCache::new(plan_cache_default()),
            scratch_plan: None,
            tile_cache: TileSigCache::new(),
        })
    }

    /// The simulated platform.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Enables or disables functional pixel execution. With it off, only
    /// the timing model runs — how the benchmark harness simulates the
    /// paper's 10 000-iteration protocol at full 1024×1024 size cheaply.
    pub fn set_functional(&mut self, functional: bool) {
        self.functional = functional;
    }

    /// Sets how the functional fragment engine executes on the host
    /// (thread count, engine tier, pooled vs scope-spawn dispatch).
    /// Purely a wall-clock knob: outputs and simulated timing are
    /// identical for every setting.
    ///
    /// Changing the thread count retires a privately created executor; a
    /// correctly sized one is spawned lazily by the next parallel draw
    /// (never here — timing-only contexts must not pay for threads they
    /// will not use). An executor installed via [`Gl::install_executor`]
    /// is pinned and survives: other contexts share its threads, and
    /// dispatch clamps participation to the seats that exist. Cached draw
    /// plans stay valid: they grow seats on demand.
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        if exec.threads() != self.exec.threads() && !self.executor_installed {
            self.executor = None;
        }
        // Cached tile signatures embed the engine/spec identity; an
        // engine or spec switch can never hit them again, and turning
        // skipping off must not pin stale tile bytes alive.
        if exec.engine() != self.exec.engine()
            || exec.specialization() != self.exec.specialization()
            || !exec.tile_skip()
        {
            self.tile_cache.flush();
        }
        self.exec = exec;
    }

    /// The current host-execution configuration.
    #[must_use]
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }

    /// The executor backing this context's parallel draws, spawning one
    /// sized for the current thread count if none exists yet. Clone the
    /// returned handle into [`Gl::install_executor`] on other contexts to
    /// multiplex a whole fleet of simulated devices over one set of host
    /// threads.
    pub fn executor(&mut self) -> Executor {
        let threads = self.exec.threads();
        self.executor
            .get_or_insert_with(|| Executor::new(threads.saturating_sub(1)))
            .clone()
    }

    /// Installs a shared executor: this context's parallel draws dispatch
    /// through `executor`'s workers instead of spawning a private pool.
    /// Installed executors are pinned — they survive thread-count changes
    /// in [`Gl::set_exec_config`] (participation is clamped to the
    /// executor's seats) and, like private pools, survive
    /// [`Gl::recreate`]. Purely a wall-clock knob: outputs and simulated
    /// timing are identical however draws are dispatched.
    pub fn install_executor(&mut self, executor: Executor) {
        self.executor = Some(executor);
        self.executor_installed = true;
    }

    /// Whether functional pixel execution is on.
    #[must_use]
    pub fn functional(&self) -> bool {
        self.functional
    }

    /// Enables or disables the per-context draw-plan cache (draw setup —
    /// uniform specialisation, interpolation hoisting, engine state — is
    /// then redone every draw). Disabling drops every cached plan. Only
    /// consulted on the pooled dispatch path; with the pool off the
    /// legacy per-draw path never caches. Purely a wall-clock knob.
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        self.plan_cache.set_enabled(enabled);
        if enabled {
            self.scratch_plan = None;
        }
    }

    /// Hit/miss/eviction counters of the draw-plan cache.
    #[must_use]
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Hit/miss/invalidation/replay counters of the tile-signature cache
    /// (`MGPU_TILE_SKIP`). All zero while skipping is off.
    #[must_use]
    pub fn tile_skip_stats(&self) -> TileSkipStats {
        self.tile_cache.stats()
    }

    // ---- fault injection & context lifecycle --------------------------

    /// Installs a fault plan on this context, replacing any previous one
    /// (its trail and counters restart from zero).
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
    }

    /// Removes the fault plan; subsequent calls behave fault-free.
    pub fn clear_faults(&mut self) {
        self.injector = None;
    }

    /// The installed fault injector, if any.
    #[must_use]
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Every fault injected on this context so far, in order (empty when
    /// no plan is installed). Survives [`Gl::recreate`].
    #[must_use]
    pub fn fault_trail(&self) -> &[FaultEvent] {
        self.injector.as_ref().map_or(&[], FaultInjector::trail)
    }

    /// Whether the context is currently lost (all calls fail with
    /// [`GlError::ContextLost`] until [`Gl::recreate`]).
    #[must_use]
    pub fn context_lost(&self) -> bool {
        self.context_lost
    }

    /// Recreates a lost context, as an application would via
    /// `eglCreateContext` + `eglMakeCurrent` after `EGL_CONTEXT_LOST`.
    ///
    /// Every GL object (textures, buffers, FBOs, programs) is gone and
    /// must be recreated by the application; the window surface is
    /// re-cleared and the swap interval reset to the platform default.
    /// The simulated timeline, the fault injector (trail and operation
    /// counters) and the frame recorder carry over, and the recreation's
    /// CPU cost is charged to the next submitted frame. Safe to call on a
    /// live context (same semantics: a full teardown).
    pub fn recreate(&mut self) {
        self.textures.clear();
        self.buffers.clear();
        self.framebuffers.clear();
        self.programs.clear();
        self.texture_units = vec![None; 8];
        self.bound_framebuffer = None;
        self.current_program = None;
        self.swap_interval = self.platform.default_swap_interval;
        for s in &mut self.surfaces {
            s.iter_mut().for_each(|b| *b = 0);
        }
        self.back_surface = 0;
        self.pending = None;
        self.pending_uploads.clear();
        self.pending_cpu_extra = CONTEXT_RECREATE_COST;
        self.cleared_targets.clear();
        self.has_content.clear();
        self.context_lost = false;
        // Every cached plan references a program object that no longer
        // exists. The worker pool, by contrast, survives: recovery should
        // not pay a thread-respawn tax on top of object recreation.
        self.plan_cache.clear();
        self.scratch_plan = None;
        // Cached tile bytes likewise belong to dead objects; recovered
        // runs must re-shade (and re-sign) from scratch.
        self.tile_cache.flush();
    }

    /// Marks the context lost: pending (unsubmitted) work dies with it.
    fn lose_context(&mut self) {
        self.context_lost = true;
        self.pending = None;
        self.pending_uploads.clear();
        self.pending_cpu_extra = SimTime::ZERO;
        self.plan_cache.clear();
        self.scratch_plan = None;
        self.tile_cache.flush();
    }

    /// Fails with [`GlError::ContextLost`] while the context is lost.
    fn ensure_live(&self) -> Result<(), GlError> {
        if self.context_lost {
            Err(GlError::ContextLost)
        } else {
            Ok(())
        }
    }

    /// Counts one upload attempt and fails it with
    /// [`GlError::OutOfMemory`] if the plan says so. A no-op without an
    /// injector. Runs before any state mutation, so a failed upload
    /// leaves the context exactly as it was.
    fn inject_upload_fault(&mut self, what: &str) -> Result<(), GlError> {
        if let Some(inj) = self.injector.as_mut() {
            let i = inj.next_upload();
            if inj.oom_at(i) {
                inj.record(FaultKind::Oom, FaultSite::Upload, i);
                return Err(GlError::OutOfMemory(format!(
                    "{what} allocation failed (injected at upload #{i})"
                )));
            }
        }
        Ok(())
    }

    fn handle(&mut self) -> u32 {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }

    fn storage(&mut self) -> ResourceId {
        ResourceId::next(&mut self.resource_counter)
    }

    // ---- textures ----------------------------------------------------

    /// Creates a texture object (no storage yet), like `glGenTextures`.
    pub fn create_texture(&mut self) -> TextureId {
        let h = self.handle();
        let storage = self.storage();
        self.textures.insert(
            h,
            Texture {
                storage,
                width: 0,
                height: 0,
                format: TextureFormat::Rgba8,
                filter: TextureFilter::Nearest,
                data: Vec::new(),
                allocated: false,
                storage_fresh: false,
                version: 0,
                crc_memo: None,
            },
        );
        TextureId(h)
    }

    /// Deletes a texture object.
    ///
    /// # Errors
    ///
    /// [`GlError::UnknownObject`] if the handle is stale.
    pub fn delete_texture(&mut self, tex: TextureId) -> Result<(), GlError> {
        self.ensure_live()?;
        self.textures
            .remove(&tex.0)
            .map(|_| ())
            .ok_or_else(|| GlError::UnknownObject(tex.to_string()))?;
        for unit in &mut self.texture_units {
            if *unit == Some(tex) {
                *unit = None;
            }
        }
        Ok(())
    }

    /// `glTexImage2D`: (re)allocates texture storage and optionally fills
    /// it. Fresh storage lets the driver rename, so this never stalls on
    /// in-flight GPU work — at the price of the allocation cost the paper's
    /// texture-reuse optimisation removes.
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidValue`] when `data` has the wrong size;
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn tex_image_2d(
        &mut self,
        tex: TextureId,
        width: u32,
        height: u32,
        format: TextureFormat,
        data: Option<&[u8]>,
    ) -> Result<(), GlError> {
        self.ensure_live()?;
        self.inject_upload_fault("texture storage")?;
        let expected = width as usize * height as usize * format.channels();
        if let Some(d) = data {
            if d.len() != expected {
                return Err(GlError::InvalidValue(format!(
                    "texture data is {} bytes, expected {expected}",
                    d.len()
                )));
            }
        }
        let storage = self.storage();
        let functional = self.functional;
        let t = self
            .textures
            .get_mut(&tex.0)
            .ok_or_else(|| GlError::UnknownObject(tex.to_string()))?;
        t.storage = storage;
        t.width = width;
        t.height = height;
        t.format = format;
        t.allocated = true;
        t.storage_fresh = true;
        t.data = if functional {
            data.map_or_else(|| vec![0u8; expected], <[u8]>::to_vec)
        } else {
            Vec::new()
        };
        t.touch();
        self.pending_uploads.push(Upload {
            resource: storage,
            alloc_bytes: expected as u64,
            copy_bytes: data.map_or(0, |d| d.len() as u64),
            alloc: AllocKind::Fresh,
        });
        Ok(())
    }

    /// `glTexSubImage2D` over the full image: rewrites existing storage in
    /// place. No allocation cost, but the CPU may stall until the deferred
    /// GPU is done with the storage (the paper's Fig. 5a trade-off).
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidOperation`] when the texture has no storage;
    /// [`GlError::InvalidValue`] on size mismatch.
    pub fn tex_sub_image_2d(&mut self, tex: TextureId, data: &[u8]) -> Result<(), GlError> {
        self.ensure_live()?;
        self.inject_upload_fault("texture upload staging")?;
        let functional = self.functional;
        let t = self
            .textures
            .get_mut(&tex.0)
            .ok_or_else(|| GlError::UnknownObject(tex.to_string()))?;
        if !t.allocated {
            return Err(GlError::InvalidOperation(format!(
                "{tex} has no storage; call tex_image_2d first"
            )));
        }
        let expected = t.width as usize * t.height as usize * t.format.channels();
        if data.len() != expected {
            return Err(GlError::InvalidValue(format!(
                "texture data is {} bytes, expected {expected}",
                data.len()
            )));
        }
        if functional {
            t.data.clear();
            t.data.extend_from_slice(data);
        }
        t.touch();
        self.pending_uploads
            .push(Upload::reuse(t.storage, data.len() as u64));
        Ok(())
    }

    /// Binds a texture to a texture unit (`glActiveTexture` +
    /// `glBindTexture` combined).
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidValue`] for out-of-range units,
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn bind_texture(&mut self, unit: u32, tex: Option<TextureId>) -> Result<(), GlError> {
        self.ensure_live()?;
        let slot = self
            .texture_units
            .get_mut(unit as usize)
            .ok_or_else(|| GlError::InvalidValue(format!("texture unit {unit} out of range")))?;
        if let Some(t) = tex {
            if !self.textures.contains_key(&t.0) {
                return Err(GlError::UnknownObject(t.to_string()));
            }
        }
        *slot = tex;
        Ok(())
    }

    /// `glTexParameteri(GL_TEXTURE_MIN/MAG_FILTER)`: sets the sampling
    /// filter used when this texture is fetched by a kernel.
    ///
    /// # Errors
    ///
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn tex_parameter_filter(
        &mut self,
        tex: TextureId,
        filter: TextureFilter,
    ) -> Result<(), GlError> {
        self.ensure_live()?;
        self.textures
            .get_mut(&tex.0)
            .map(|t| t.filter = filter)
            .ok_or_else(|| GlError::UnknownObject(tex.to_string()))
    }

    /// Host-side accessor for a texture's current bytes (a debug/test
    /// convenience; real GLES has no texture readback, which is why the
    /// paper's pipeline reads results via the framebuffer).
    ///
    /// # Errors
    ///
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn texture_data(&self, tex: TextureId) -> Result<&[u8], GlError> {
        self.ensure_live()?;
        self.textures
            .get(&tex.0)
            .map(|t| t.data.as_slice())
            .ok_or_else(|| GlError::UnknownObject(tex.to_string()))
    }

    /// A texture's (width, height, format), if allocated.
    ///
    /// # Errors
    ///
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn texture_info(&self, tex: TextureId) -> Result<(u32, u32, TextureFormat), GlError> {
        self.ensure_live()?;
        self.textures
            .get(&tex.0)
            .map(|t| (t.width, t.height, t.format))
            .ok_or_else(|| GlError::UnknownObject(tex.to_string()))
    }

    // ---- buffers -------------------------------------------------------

    /// Creates a buffer object (VBO).
    pub fn create_buffer(&mut self) -> BufferId {
        let h = self.handle();
        self.buffers.insert(
            h,
            Buffer {
                usage: BufferUsage::default(),
                size: 0,
                allocated: false,
            },
        );
        BufferId(h)
    }

    /// `glBufferData`: allocates buffer storage with a usage hint and
    /// uploads `size` bytes.
    ///
    /// # Errors
    ///
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn buffer_data(
        &mut self,
        buf: BufferId,
        size: u64,
        usage: BufferUsage,
    ) -> Result<(), GlError> {
        self.ensure_live()?;
        self.inject_upload_fault("buffer storage")?;
        let storage = self.storage();
        let b = self
            .buffers
            .get_mut(&buf.0)
            .ok_or_else(|| GlError::UnknownObject(buf.to_string()))?;
        b.usage = usage;
        b.size = size;
        b.allocated = true;
        self.pending_uploads.push(Upload {
            resource: storage,
            alloc_bytes: size,
            copy_bytes: size,
            alloc: AllocKind::Fresh,
        });
        Ok(())
    }

    // ---- framebuffer objects -------------------------------------------

    /// Creates a framebuffer object.
    pub fn create_framebuffer(&mut self) -> FramebufferId {
        let h = self.handle();
        self.framebuffers.insert(h, Framebuffer::default());
        FramebufferId(h)
    }

    /// Binds a framebuffer object (`None` = the window surface).
    ///
    /// # Errors
    ///
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn bind_framebuffer(&mut self, fbo: Option<FramebufferId>) -> Result<(), GlError> {
        self.ensure_live()?;
        if let Some(f) = fbo {
            if !self.framebuffers.contains_key(&f.0) {
                return Err(GlError::UnknownObject(f.to_string()));
            }
        }
        self.bound_framebuffer = fbo;
        Ok(())
    }

    /// `glFramebufferTexture2D`: attaches a texture as the colour target of
    /// the bound FBO — the render-to-texture path (step 5 of the paper's
    /// Fig. 1).
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidOperation`] when no FBO is bound or the texture has
    /// no storage.
    pub fn framebuffer_texture_2d(&mut self, tex: TextureId) -> Result<(), GlError> {
        self.ensure_live()?;
        let t = self
            .textures
            .get(&tex.0)
            .ok_or_else(|| GlError::UnknownObject(tex.to_string()))?;
        if !t.allocated {
            return Err(GlError::InvalidOperation(format!(
                "{tex} has no storage; allocate before attaching"
            )));
        }
        let fbo = self
            .bound_framebuffer
            .ok_or_else(|| GlError::InvalidOperation("no framebuffer object bound".to_owned()))?;
        self.framebuffers
            .get_mut(&fbo.0)
            .ok_or_else(|| GlError::Internal(format!("bound {fbo} missing from FBO table")))?
            .color = Some(tex);
        Ok(())
    }

    // ---- programs --------------------------------------------------------

    /// Compiles and links a fragment kernel against the platform's shader
    /// limits (the vertex stage is the fixed passthrough GPGPU quad
    /// pipeline).
    ///
    /// # Errors
    ///
    /// [`GlError::CompileFailed`] carrying the driver-style info log; check
    /// [`GlError::is_shader_limit`] for resource-limit rejections.
    pub fn create_program(&mut self, fragment_source: &str) -> Result<ProgramId, GlError> {
        self.create_program_with(fragment_source, &OptOptions::full())
    }

    /// Like [`Gl::create_program`] with explicit optimiser settings, for
    /// the kernel-code ablations.
    ///
    /// # Errors
    ///
    /// See [`Gl::create_program`].
    pub fn create_program_with(
        &mut self,
        fragment_source: &str,
        opt: &OptOptions,
    ) -> Result<ProgramId, GlError> {
        self.ensure_live()?;
        if let Some(inj) = self.injector.as_mut() {
            let i = inj.next_compile();
            if inj.compile_fail_at(i) {
                inj.record(FaultKind::CompileFail, FaultSite::Compile, i);
                return Err(GlError::OutOfMemory(format!(
                    "shader compiler scratch allocation failed \
                     (injected transient failure at compile #{i})"
                )));
            }
        }
        let sl = &self.platform.shader_limits;
        let options = CompileOptions {
            opt: *opt,
            limits: Limits {
                max_instructions: sl.max_instructions,
                max_texture_fetches: sl.max_texture_fetches,
                max_uniform_vectors: sl.max_uniform_vectors,
                max_varying_vectors: sl.max_varying_vectors,
            },
        };
        let shader = compile_with(fragment_source, &options)?;
        let shader_hash = shader.stable_hash();
        let h = self.handle();
        self.programs.insert(
            h,
            Program {
                shader: Arc::new(shader),
                shader_hash,
                uniforms: UniformValues::new(),
                unit_bindings: HashMap::new(),
            },
        );
        Ok(ProgramId(h))
    }

    /// Selects the program used by subsequent draws.
    ///
    /// # Errors
    ///
    /// [`GlError::UnknownObject`] for stale handles.
    pub fn use_program(&mut self, prog: Option<ProgramId>) -> Result<(), GlError> {
        self.ensure_live()?;
        if let Some(p) = prog {
            if !self.programs.contains_key(&p.0) {
                return Err(GlError::UnknownObject(p.to_string()));
            }
        }
        self.current_program = prog;
        Ok(())
    }

    /// Sets a scalar float uniform.
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidValue`] when the program declares no such uniform.
    pub fn set_uniform_scalar(
        &mut self,
        prog: ProgramId,
        name: &str,
        value: f32,
    ) -> Result<(), GlError> {
        self.set_uniform_vec(prog, name, [value, 0.0, 0.0, 0.0])
    }

    /// Sets a (possibly vector) uniform; extra components are ignored.
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidValue`] when the program declares no such uniform.
    pub fn set_uniform_vec(
        &mut self,
        prog: ProgramId,
        name: &str,
        value: [f32; 4],
    ) -> Result<(), GlError> {
        self.ensure_live()?;
        let p = self
            .programs
            .get_mut(&prog.0)
            .ok_or_else(|| GlError::UnknownObject(prog.to_string()))?;
        if !p.shader.uniform_slots().any(|s| s.name == name) {
            return Err(GlError::InvalidValue(format!(
                "program declares no uniform `{name}`"
            )));
        }
        p.uniforms.set(name, value);
        Ok(())
    }

    /// Binds a sampler uniform to a GL texture unit (`glUniform1i`).
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidValue`] when the program declares no such sampler.
    pub fn set_sampler(&mut self, prog: ProgramId, name: &str, unit: u32) -> Result<(), GlError> {
        self.ensure_live()?;
        let p = self
            .programs
            .get_mut(&prog.0)
            .ok_or_else(|| GlError::UnknownObject(prog.to_string()))?;
        let shader_unit = p.shader.sampler_unit(name).ok_or_else(|| {
            GlError::InvalidValue(format!("program declares no sampler `{name}`"))
        })?;
        p.unit_bindings.insert(shader_unit, unit);
        Ok(())
    }

    // ---- target helpers --------------------------------------------------

    fn current_target(&self) -> Result<(TargetKey, u32, u32, TextureFormat), GlError> {
        match self.bound_framebuffer {
            None => Ok((
                TargetKey::Surface(self.back_surface),
                self.surface_width,
                self.surface_height,
                TextureFormat::Rgba8,
            )),
            Some(fbo) => {
                let f = self
                    .framebuffers
                    .get(&fbo.0)
                    .ok_or_else(|| GlError::UnknownObject(fbo.to_string()))?;
                let tex = f.color.ok_or_else(|| {
                    GlError::InvalidFramebufferOperation(
                        "framebuffer has no colour attachment".to_owned(),
                    )
                })?;
                let t = self
                    .textures
                    .get(&tex.0)
                    .ok_or_else(|| GlError::UnknownObject(tex.to_string()))?;
                Ok((TargetKey::Storage(t.storage), t.width, t.height, t.format))
            }
        }
    }

    fn attachment_texture(&self) -> Option<TextureId> {
        self.bound_framebuffer
            .and_then(|fbo| self.framebuffers.get(&fbo.0))
            .and_then(|f| f.color)
    }

    // ---- rendering ---------------------------------------------------------

    /// `glClear`: fills the current target and — crucially on a TBDR GPU —
    /// invalidates its previous contents so the next draw skips the
    /// expensive tile reload (step 6 of Fig. 1).
    ///
    /// # Errors
    ///
    /// Propagates target-resolution errors.
    pub fn clear(&mut self, rgba: [f32; 4]) -> Result<(), GlError> {
        self.ensure_live()?;
        let (key, _, _, format) = self.current_target()?;
        self.cleared_targets.insert(key);
        if self.functional {
            let px = quantize_rgba8(rgba);
            match key {
                TargetKey::Surface(s) => {
                    for chunk in self.surfaces[s as usize].chunks_exact_mut(4) {
                        chunk.copy_from_slice(&px);
                    }
                }
                TargetKey::Storage(_) => {
                    if let Some(t) = self
                        .attachment_texture()
                        .and_then(|tex| self.textures.get_mut(&tex.0))
                    {
                        let ch = format.channels();
                        for chunk in t.data.chunks_exact_mut(ch) {
                            chunk.copy_from_slice(&px[..ch]);
                        }
                        t.touch();
                    }
                }
            }
        }
        Ok(())
    }

    /// `EXT_discard_framebuffer`: invalidates the current target's contents
    /// without touching pixels — same tile-reload saving as [`Gl::clear`]
    /// at zero fill cost.
    ///
    /// # Errors
    ///
    /// Propagates target-resolution errors.
    pub fn discard_framebuffer(&mut self) -> Result<(), GlError> {
        self.ensure_live()?;
        let (key, _, _, _) = self.current_target()?;
        self.cleared_targets.insert(key);
        Ok(())
    }

    /// Draws a quad covering the current render target with the current
    /// program — one GPGPU kernel invocation.
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidOperation`] when no program is in use, a sampled
    /// texture is missing, or a sampled texture is also the render target
    /// (the OpenGL ES 2 feedback-loop rule that forces the paper's
    /// double-buffered intermediate textures).
    pub fn draw_quad(&mut self, quad: &DrawQuad) -> Result<(), GlError> {
        self.ensure_live()?;

        // Fault injection: a context loss scheduled for this draw kills the
        // context before any work is queued — the pending frame dies with it.
        let mut draw_idx = 0u64;
        if let Some(inj) = self.injector.as_mut() {
            draw_idx = inj.next_draw();
            if inj.ctx_loss_at(draw_idx) {
                inj.record(FaultKind::ContextLoss, FaultSite::Draw, draw_idx);
                self.lose_context();
                return Err(GlError::ContextLost);
            }
        }

        // Close the previous kernel's frame.
        self.flush_pending(SyncOp::None);

        let prog_id = self
            .current_program
            .ok_or_else(|| GlError::InvalidOperation("no program in use".to_owned()))?;
        let (target_key, width, height, target_format) = self.current_target()?;

        // Resolve the row band (full target when none was requested).
        let (y0, y1) = quad.row_band().unwrap_or((0, height));
        if y0 >= y1 || y1 > height {
            return Err(GlError::InvalidValue(format!(
                "row band {y0}..{y1} invalid for render target height {height}"
            )));
        }
        let band_h = y1 - y0;

        let program = self
            .programs
            .get(&prog_id.0)
            .ok_or_else(|| GlError::UnknownObject(prog_id.to_string()))?;

        // Resolve sampler units to textures.
        let mut sampled: Vec<(u8, TextureId)> = Vec::new();
        for slot in &program.shader.samplers {
            let gl_unit = program
                .unit_bindings
                .get(&slot.unit)
                .copied()
                .unwrap_or(u32::from(slot.unit));
            let tex = self
                .texture_units
                .get(gl_unit as usize)
                .copied()
                .flatten()
                .ok_or_else(|| {
                    GlError::InvalidOperation(format!(
                        "sampler `{}` reads texture unit {gl_unit}, which has no texture bound",
                        slot.name
                    ))
                })?;
            let t = self
                .textures
                .get(&tex.0)
                .ok_or_else(|| GlError::UnknownObject(tex.to_string()))?;
            if !t.allocated {
                return Err(GlError::InvalidOperation(format!(
                    "sampler `{}` reads {tex}, which has no storage",
                    slot.name
                )));
            }
            if TargetKey::Storage(t.storage) == target_key {
                return Err(GlError::InvalidOperation(format!(
                    "{tex} is bound both as render target and for sampling \
                     (feedback loop; OpenGL ES 2 leaves the result undefined)"
                )));
            }
            sampled.push((slot.unit, tex));
        }

        // Build the fragment cost profile from the kernel and the formats
        // of the textures it actually samples.
        let kernel_cost = cost::analyze(&program.shader);
        let mut profile = FragmentProfile {
            alu_cycles: kernel_cost.alu_cycles,
            output_bytes: target_format.bytes_per_texel() as f64,
            ..FragmentProfile::default()
        };
        for fetch in &kernel_cost.fetches {
            let bytes = sampled
                .iter()
                .find(|(unit, _)| *unit == fetch.sampler)
                .map(|(_, tex)| self.textures[&tex.0].format.bytes_per_texel() as f64)
                .unwrap_or(4.0);
            if fetch.dependent {
                profile.dependent_fetches += 1.0;
                profile.dependent_fetch_bytes += bytes;
            } else {
                profile.streaming_fetches += 1.0;
                profile.streaming_fetch_bytes += bytes;
            }
        }

        // Vertex-source driver costs (the paper's VBO optimisation point),
        // validated and priced before any pending state is consumed so a
        // rejected draw can be retried with its queued uploads intact.
        let varying_count = program.shader.varying_slots().count() as u64;
        let vertex_cpu = match quad.vertex_source {
            VertexSource::ClientArrays => {
                // The driver copies client vertex data into its ring buffer
                // on every draw: pure CPU time, no fresh allocation.
                let bytes = 4 * (8 + varying_count * 8);
                CLIENT_ARRAY_BASE + self.platform.cpu_copy_bandwidth.time_for(bytes)
            }
            VertexSource::Vbo(buf) => {
                let b = self
                    .buffers
                    .get(&buf.0)
                    .ok_or_else(|| GlError::UnknownObject(buf.to_string()))?;
                if !b.allocated {
                    return Err(GlError::InvalidOperation(format!(
                        "{buf} has no storage; call buffer_data first"
                    )));
                }
                match b.usage {
                    BufferUsage::StaticDraw => SimTime::ZERO,
                    BufferUsage::StreamDraw => VBO_STREAM_COST,
                    BufferUsage::DynamicDraw => VBO_DYNAMIC_COST,
                }
            }
        };

        // Watchdog: estimate the draw's GPU occupancy in isolation and
        // reject it before execution when it exceeds the budget. The peek
        // at clear/freshness state must not mutate it — the caller may
        // legally retry the same draw split into row bands.
        if let Some(budget) = self
            .injector
            .as_ref()
            .and_then(FaultInjector::watchdog_budget)
        {
            let cleared_peek = self.cleared_targets.contains(&target_key)
                || !self.has_content.contains(&target_key);
            let probe_target = match target_key {
                TargetKey::Surface(s) => RenderTarget::Framebuffer { surface: s },
                TargetKey::Storage(storage) => {
                    let fresh = self
                        .attachment_texture()
                        .and_then(|tex| self.textures.get(&tex.0))
                        .is_some_and(|t| t.storage_fresh);
                    RenderTarget::Texture { storage, fresh }
                }
            };
            let probe = FrameWork {
                label: String::new(),
                uploads: Vec::new(),
                cpu_extra: SimTime::ZERO,
                vertex: VertexWork { vertices: 4 },
                fragment: FragmentWork {
                    fragments: u64::from(width) * u64::from(band_h),
                    width,
                    height: band_h,
                    profile,
                    cleared: cleared_peek,
                    // The watchdog prices the draw as if fully shaded:
                    // kill decisions must not depend on cache warmth, or
                    // skip-on and skip-off runs would fault differently.
                    skip: SkipWork::default(),
                },
                target: probe_target,
                reads: Vec::new(),
                copy_out: None,
                sync: SyncOp::None,
            };
            let estimated = self.sim.draw_cost(&probe);
            if estimated > budget {
                if let Some(inj) = self.injector.as_mut() {
                    inj.record(FaultKind::Watchdog, FaultSite::Draw, draw_idx);
                }
                return Err(GlError::WatchdogTimeout { estimated, budget });
            }
        }

        // Functional rasterisation of the selected band. When tile
        // skipping is on, the rasteriser reports which tiles it replayed
        // from signature-matched cache entries; the timing model then
        // charges those tiles signature-comparison traffic instead of
        // shading. Timing-only contexts never shade, so they never skip.
        let skip = if self.functional {
            self.rasterize(
                prog_id,
                quad,
                target_key,
                width,
                height,
                target_format,
                y0,
                y1,
            )?
        } else {
            SkipWork::default()
        };

        // Fault injection: flip seeded bits in the freshly written target —
        // a model of transient memory corruption. Functional contents only;
        // the timing model is unaffected.
        let target_len = match target_key {
            TargetKey::Surface(s) => self.surfaces[s as usize].len(),
            TargetKey::Storage(_) => self
                .attachment_texture()
                .and_then(|tex| self.textures.get(&tex.0))
                .map_or(0, |t| t.data.len()),
        };
        if target_len > 0 {
            let flips = self
                .injector
                .as_mut()
                .and_then(|inj| inj.corruption_at(draw_idx, target_len));
            if let Some(flips) = flips {
                if let Some(inj) = self.injector.as_mut() {
                    inj.record(FaultKind::Corruption, FaultSite::Draw, draw_idx);
                }
                let data: &mut [u8] = match target_key {
                    TargetKey::Surface(s) => &mut self.surfaces[s as usize],
                    TargetKey::Storage(_) => match self
                        .attachment_texture()
                        .and_then(|tex| self.textures.get_mut(&tex.0))
                    {
                        Some(t) => &mut t.data,
                        None => &mut [],
                    },
                };
                for (offset, mask) in flips {
                    if let Some(byte) = data.get_mut(offset) {
                        *byte ^= mask;
                    }
                }
                // Corrupted texture contents must never serve a stale
                // tile signature: bump the content version.
                if let TargetKey::Storage(_) = target_key {
                    if let Some(t) = self
                        .attachment_texture()
                        .and_then(|tex| self.textures.get_mut(&tex.0))
                    {
                        t.touch();
                    }
                }
            }
        }

        // The draw is committed: consume pending CPU work and uploads.
        let mut cpu_extra = std::mem::take(&mut self.pending_cpu_extra);
        let uploads = std::mem::take(&mut self.pending_uploads);
        cpu_extra += vertex_cpu;

        // Record content/clear state.
        let cleared =
            self.cleared_targets.remove(&target_key) || !self.has_content.contains(&target_key);
        self.has_content.insert(target_key);

        let (target, reads) = {
            let target = match target_key {
                TargetKey::Surface(s) => RenderTarget::Framebuffer { surface: s },
                TargetKey::Storage(storage) => {
                    let tex = self.attachment_texture().ok_or_else(|| {
                        GlError::Internal("storage target lost its attachment".to_owned())
                    })?;
                    let t = self.textures.get_mut(&tex.0).ok_or_else(|| {
                        GlError::Internal(format!("attachment {tex} missing from texture table"))
                    })?;
                    let fresh = t.storage_fresh;
                    t.storage_fresh = false;
                    RenderTarget::Texture { storage, fresh }
                }
            };
            let reads = sampled
                .iter()
                .map(|(_, tex)| self.textures[&tex.0].storage)
                .collect();
            (target, reads)
        };

        self.draw_counter += 1;
        let mut label = if quad.label.is_empty() {
            format!("draw#{}", self.draw_counter)
        } else {
            quad.label.clone()
        };
        if band_h != height {
            label = format!("{label}[rows {y0}..{y1}]");
        }
        self.pending = Some(FrameWork {
            label,
            uploads,
            cpu_extra,
            vertex: VertexWork { vertices: 4 },
            fragment: FragmentWork {
                fragments: u64::from(width) * u64::from(band_h),
                width,
                height: band_h,
                profile,
                cleared,
                skip,
            },
            target,
            reads,
            copy_out: None,
            sync: SyncOp::None,
        });
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn rasterize(
        &mut self,
        prog_id: ProgramId,
        quad: &DrawQuad,
        target_key: TargetKey,
        width: u32,
        height: u32,
        target_format: TextureFormat,
        y0: u32,
        y1: u32,
    ) -> Result<SkipWork, GlError> {
        let program = self
            .programs
            .get(&prog_id.0)
            .ok_or_else(|| GlError::UnknownObject(prog_id.to_string()))?;
        // Corner sets per varying slot.
        let mut corners = Vec::new();
        for slot in program.shader.varying_slots() {
            let c = quad
                .overrides
                .iter()
                .find(|(n, _)| n == &slot.name)
                .map(|(_, c)| *c)
                .unwrap_or_else(texcoord_corners);
            corners.push(c);
        }
        for (name, _) in &quad.overrides {
            if !program.shader.varying_slots().any(|s| &s.name == name) {
                return Err(GlError::InvalidValue(format!(
                    "program declares no varying `{name}`"
                )));
            }
        }

        // Resolve sampler textures up front (validation happened in
        // `draw_quad`; a miss here is a driver bug surfaced as a typed
        // error) so every early return below happens before the target's
        // data is taken out of the texture table.
        let mut sampler_texs: Vec<TextureId> = Vec::with_capacity(program.shader.samplers.len());
        for slot in &program.shader.samplers {
            let gl_unit = program
                .unit_bindings
                .get(&slot.unit)
                .copied()
                .unwrap_or(u32::from(slot.unit));
            let tex = self
                .texture_units
                .get(gl_unit as usize)
                .copied()
                .flatten()
                .ok_or_else(|| {
                    GlError::Internal(format!("texture unit {gl_unit} unbound after validation"))
                })?;
            if !self.textures.contains_key(&tex.0) {
                return Err(GlError::Internal(format!(
                    "{tex} vanished between validation and rasterisation"
                )));
            }
            sampler_texs.push(tex);
        }

        // Tile-redundancy elimination (`MGPU_TILE_SKIP=on`): classify the
        // kernel's fetches and pre-compute the memoised whole-texture
        // digests while the texture table is still mutably reachable.
        // Streaming-only kernels get exact per-tile sampling footprints
        // later; any dependent fetch makes the footprint unresolvable and
        // the tile signatures fall back to these whole-texture digests.
        let skip_on = self.exec.tile_skip();
        let mut streaming_only = false;
        let mut whole_crcs: Vec<u64> = Vec::new();
        if skip_on {
            streaming_only = !cost::analyze(&program.shader)
                .fetches
                .iter()
                .any(|f| f.dependent);
            for tex in &sampler_texs {
                let t = self.textures.get_mut(&tex.0).ok_or_else(|| {
                    GlError::Internal(format!("{tex} vanished during rasterisation"))
                })?;
                whole_crcs.push(t.content_crc());
            }
        }

        // Pull the target texture out so sampler views can borrow the rest.
        let mut taken: Option<(TextureId, Vec<u8>)> = None;
        if let TargetKey::Storage(_) = target_key {
            let tex = self.attachment_texture().ok_or_else(|| {
                GlError::Internal("storage target lost its attachment".to_owned())
            })?;
            let slot = self.textures.get_mut(&tex.0).ok_or_else(|| {
                GlError::Internal(format!("attachment {tex} missing from texture table"))
            })?;
            let data = std::mem::take(&mut slot.data);
            taken = Some((tex, data));
        }

        let ch = target_format.channels();
        let exec = self.exec;
        let outcome: Result<SkipWork, GlError> = {
            let textures = &self.textures;
            let surfaces = &mut self.surfaces;
            let pool = &mut self.executor;
            let plan_cache = &mut self.plan_cache;
            let scratch_plan = &mut self.scratch_plan;
            let tile_cache = &mut self.tile_cache;
            let platform = &self.platform;
            let taken = &mut taken;
            // No `?` inside this closure escapes past the restore below:
            // a failed draw must leave the context valid and report a
            // `GlError`, never unwind or drop texture contents.
            (|| {
                let mut views: Vec<TexView<'_>> = Vec::with_capacity(sampler_texs.len());
                for tex in &sampler_texs {
                    let t = textures.get(&tex.0).ok_or_else(|| {
                        GlError::Internal(format!("{tex} vanished during rasterisation"))
                    })?;
                    views.push(TexView {
                        data: &t.data,
                        width: t.width,
                        height: t.height,
                        channels: t.format.channels(),
                        filter: t.filter,
                    });
                }
                let sampler_refs: Vec<&dyn Sampler> =
                    views.iter().map(|v| v as &dyn Sampler).collect();

                let out: &mut [u8] = match (&target_key, taken) {
                    (TargetKey::Surface(s), _) => &mut surfaces[*s as usize],
                    (TargetKey::Storage(_), Some((_, data))) => data.as_mut_slice(),
                    (TargetKey::Storage(_), None) => {
                        return Err(GlError::Internal(
                            "storage target data was not staged for rasterisation".to_owned(),
                        ));
                    }
                };

                if !exec.pool_enabled() && !skip_on {
                    // Legacy dispatch: per-draw `thread::scope` spawning
                    // with round-robin chunk dealing and no plan caching —
                    // kept code-path-for-code-path as the pre-pool driver.
                    // `MGPU_POOL=off` (or `with_pool(false)`) pins it.
                    let raster = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        rasterize_quad_rows_into(
                            &program.shader,
                            &program.uniforms,
                            &sampler_refs,
                            &corners,
                            RasterTarget {
                                width,
                                height,
                                channels: ch,
                                data: out,
                            },
                            y0,
                            y1,
                            &exec,
                        )
                    }));
                    return match raster {
                        Ok(r) => r.map(|()| SkipWork::default()).map_err(|e| {
                            GlError::InvalidOperation(format!("kernel execution failed: {e}"))
                        }),
                        Err(p) => Err(GlError::InvalidOperation(format!(
                            "kernel execution panicked: {}",
                            panic_message(&*p)
                        ))),
                    };
                }

                // Plan-based dispatch: pooled draws always take this path;
                // pool-off draws join it when tile skipping is on, because
                // signatures need the plan's hoisted column table (the
                // actual full-band shade below still uses the pre-pool
                // dispatcher in that case). Sampler views are always
                // fresh — texture contents are never part of a plan.
                let key = PlanKey {
                    program: prog_id.0,
                    shader_hash: program.shader_hash,
                    uniform_hash: program.uniforms.stable_hash(),
                    engine: exec.engine(),
                    spec: exec.specialization(),
                    width,
                    height,
                    channels: ch,
                    corners_hash: corners_hash(&corners),
                };
                let build = |recycled: Option<DrawPlan>| {
                    DrawPlan::build(
                        &program.shader,
                        &program.uniforms,
                        exec.engine(),
                        exec.specialization(),
                        &corners,
                        width,
                        recycled,
                    )
                    .map_err(|e| GlError::InvalidOperation(format!("kernel execution failed: {e}")))
                };
                let mut plan = if exec.pool_enabled() {
                    match plan_cache.take(&key) {
                        Some(plan) => plan,
                        // Populated only while the cache is disabled, so
                        // recycling can never cannibalise a cached plan.
                        None => build(scratch_plan.take())?,
                    }
                } else {
                    // The plan cache is a pooled-path feature; pool-off
                    // skipping recycles through the scratch slot only.
                    build(scratch_plan.take())?
                };

                // Tile-redundancy elimination: consult the signature cache
                // per band-intersecting tile. Hits replay cached bytes
                // (byte-identical by construction); misses shade below.
                let mut skip = SkipWork::default();
                let mut misses: Vec<(TileRect, (u64, u64))> = Vec::new();
                if skip_on {
                    for r in platform.tile_rects_in_band(width, height, y0, y1) {
                        let texes = tile_texture_sigs(
                            &plan,
                            &r,
                            height,
                            streaming_only,
                            &views,
                            &whole_crcs,
                        );
                        let col = plan.column_slice_hash(r.x0, r.x1);
                        let sig = tile_signature(col, height, &r, &texes);
                        match tile_cache.lookup(&TileKey::new(key, &r), sig) {
                            Some(bytes) => {
                                blit_tile(bytes, &r, width, ch, out);
                                skip.skipped_fragments += r.pixels();
                                skip.skipped_tiles += 1;
                                skip.signature_bytes += SIG_DESCRIPTOR_BYTES
                                    + plan.slot_count() as u64
                                        * u64::from(r.width())
                                        * SIG_BYTES_PER_SLOT_COLUMN;
                            }
                            None => misses.push((r, sig)),
                        }
                    }
                    if misses.is_empty() {
                        // Every tile replayed: nothing to shade. The plan
                        // is retained exactly as a shaded draw would.
                        if exec.pool_enabled() && plan_cache.enabled() {
                            plan_cache.insert(key, plan);
                        } else {
                            *scratch_plan = Some(plan);
                        }
                        return Ok(skip);
                    }
                    if skip.skipped_tiles > 0 {
                        // Partial hit: shade only the missing tiles, on
                        // seat 0 tile by tile. Wall-clock only — rect
                        // draws are byte-identical to full draws on every
                        // engine tier.
                        for (r, sig) in &misses {
                            let mut bytes = vec![0u8; r.pixels() as usize * ch];
                            let raster =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    execute_plan_rect(
                                        &mut plan,
                                        &sampler_refs,
                                        height,
                                        r.x0,
                                        r.x1,
                                        r.y0,
                                        r.y1,
                                        ch,
                                        &mut bytes,
                                    )
                                }));
                            match raster {
                                Ok(Ok(())) => {}
                                Ok(Err(e)) => {
                                    return Err(GlError::InvalidOperation(format!(
                                        "kernel execution failed: {e}"
                                    )))
                                }
                                Err(p) => {
                                    return Err(GlError::InvalidOperation(format!(
                                        "kernel execution panicked: {}",
                                        panic_message(&*p)
                                    )))
                                }
                            }
                            blit_tile(&bytes, r, width, ch, out);
                            tile_cache.insert(TileKey::new(key, r), *sig, bytes);
                        }
                        if exec.pool_enabled() && plan_cache.enabled() {
                            plan_cache.insert(key, plan);
                        } else {
                            *scratch_plan = Some(plan);
                        }
                        return Ok(skip);
                    }
                    // All tiles missed: fall through to the full-band
                    // shade at full dispatch parallelism, then harvest.
                }

                let raster = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    if exec.pool_enabled() {
                        execute_plan(
                            &mut plan,
                            &sampler_refs,
                            RasterTarget {
                                width,
                                height,
                                channels: ch,
                                data: out,
                            },
                            y0,
                            y1,
                            exec.threads(),
                            pool,
                        )
                    } else {
                        // Skip-on with the pool off shades exactly as the
                        // pre-pool dispatcher would.
                        rasterize_quad_rows_into(
                            &program.shader,
                            &program.uniforms,
                            &sampler_refs,
                            &corners,
                            RasterTarget {
                                width,
                                height,
                                channels: ch,
                                data: out,
                            },
                            y0,
                            y1,
                            &exec,
                        )
                    }
                }));
                match raster {
                    // Plans are retained only after a fully successful
                    // draw; failed or panicked draws drop theirs.
                    Ok(Ok(())) => {
                        if skip_on {
                            // Harvest every shaded tile's bytes under its
                            // signature for the next pass.
                            for (r, sig) in misses {
                                tile_cache.insert(
                                    TileKey::new(key, &r),
                                    sig,
                                    extract_tile(out, &r, width, ch),
                                );
                            }
                        }
                        if exec.pool_enabled() && plan_cache.enabled() {
                            plan_cache.insert(key, plan);
                        } else {
                            *scratch_plan = Some(plan);
                        }
                        Ok(skip)
                    }
                    Ok(Err(e)) => Err(GlError::InvalidOperation(format!(
                        "kernel execution failed: {e}"
                    ))),
                    Err(p) => Err(GlError::InvalidOperation(format!(
                        "kernel execution panicked: {}",
                        panic_message(&*p)
                    ))),
                }
            })()
        };

        if let Some((tex, data)) = taken {
            if let Some(slot) = self.textures.get_mut(&tex.0) {
                slot.data = data;
                // The draw (or a failed draw's partial writes) rendered
                // into this texture: its content version moves on.
                slot.touch();
            }
        }
        outcome
    }

    // ---- copies -----------------------------------------------------------

    /// `glCopyTexImage2D`: copies the current render target into `dst`,
    /// allocating fresh storage (renameable — no false sharing, but pays
    /// allocation every call).
    ///
    /// # Errors
    ///
    /// Propagates target-resolution errors and stale handles.
    pub fn copy_tex_image_2d(
        &mut self,
        dst: TextureId,
        format: TextureFormat,
    ) -> Result<(), GlError> {
        self.copy_to_texture(dst, Some(format))
    }

    /// `glCopyTexSubImage2D`: copies the current render target into `dst`'s
    /// *existing* storage — no allocation, but the copy serialises against
    /// every in-flight use of that storage (the paper's Fig. 5b false
    /// sharing).
    ///
    /// # Errors
    ///
    /// [`GlError::InvalidOperation`] when `dst` has no storage or its size
    /// differs from the render target.
    pub fn copy_tex_sub_image_2d(&mut self, dst: TextureId) -> Result<(), GlError> {
        self.copy_to_texture(dst, None)
    }

    fn copy_to_texture(
        &mut self,
        dst: TextureId,
        fresh_format: Option<TextureFormat>,
    ) -> Result<(), GlError> {
        self.ensure_live()?;
        if fresh_format.is_some() {
            self.inject_upload_fault("copy destination storage")?;
        }
        let (target_key, width, height, _) = self.current_target()?;
        let attachment = |gl: &Self| {
            gl.attachment_texture()
                .ok_or_else(|| GlError::Internal("storage target lost its attachment".to_owned()))
        };

        // Functional copy of pixels.
        let src_pixels: Option<Vec<u8>> = if self.functional {
            Some(match target_key {
                TargetKey::Surface(s) => self.surfaces[s as usize].clone(),
                TargetKey::Storage(_) => {
                    let tex = attachment(self)?;
                    self.textures[&tex.0].data.clone()
                }
            })
        } else {
            None
        };
        let src_format = match target_key {
            TargetKey::Surface(_) => TextureFormat::Rgba8,
            TargetKey::Storage(_) => {
                let tex = attachment(self)?;
                self.textures[&tex.0].format
            }
        };

        let (storage, alloc, bytes) = {
            let functional = self.functional;
            let new_storage = fresh_format.map(|_| self.storage());
            let t = self
                .textures
                .get_mut(&dst.0)
                .ok_or_else(|| GlError::UnknownObject(dst.to_string()))?;
            match (fresh_format, new_storage) {
                (Some(format), Some(storage)) => {
                    t.storage = storage;
                    t.width = width;
                    t.height = height;
                    t.format = format;
                    t.allocated = true;
                    t.storage_fresh = true;
                }
                (Some(_), None) => {
                    return Err(GlError::Internal(
                        "fresh storage was not allocated for copy destination".to_owned(),
                    ));
                }
                (None, _) => {
                    if !t.allocated {
                        return Err(GlError::InvalidOperation(format!(
                            "{dst} has no storage; copy_tex_image_2d first"
                        )));
                    }
                    if (t.width, t.height) != (width, height) {
                        return Err(GlError::InvalidOperation(format!(
                            "{dst} is {}x{}, render target is {width}x{height}",
                            t.width, t.height
                        )));
                    }
                    t.storage_fresh = false;
                }
            }
            if let Some(src) = src_pixels {
                let dst_ch = t.format.channels();
                let src_ch = src_format.channels();
                let n = width as usize * height as usize;
                let mut data = vec![0u8; n * dst_ch];
                for i in 0..n {
                    for c in 0..dst_ch {
                        data[i * dst_ch + c] = if c < src_ch { src[i * src_ch + c] } else { 255 };
                    }
                }
                t.data = data;
                t.touch();
            } else if functional {
                // Shouldn't happen (functional implies src_pixels).
            }
            let bytes = u64::from(width) * u64::from(height) * t.format.bytes_per_texel();
            (
                t.storage,
                if fresh_format.is_some() {
                    AllocKind::Fresh
                } else {
                    AllocKind::Reuse
                },
                bytes,
            )
        };

        // Attach to the pending frame; synthesise an empty one if the copy
        // follows no draw (e.g. copying a cleared buffer).
        let pending = self.pending.get_or_insert_with(|| FrameWork {
            label: "copy-only".to_owned(),
            uploads: Vec::new(),
            cpu_extra: SimTime::ZERO,
            vertex: VertexWork::default(),
            fragment: FragmentWork {
                fragments: 0,
                width: 0,
                height: 0,
                profile: FragmentProfile::default(),
                cleared: true,
                skip: SkipWork::default(),
            },
            target: match target_key {
                TargetKey::Surface(s) => RenderTarget::Framebuffer { surface: s },
                TargetKey::Storage(st) => RenderTarget::Texture {
                    storage: st,
                    fresh: false,
                },
            },
            reads: Vec::new(),
            copy_out: None,
            sync: SyncOp::None,
        });
        pending.copy_out = Some(CopyOut {
            dest: storage,
            bytes,
            alloc,
        });
        Ok(())
    }

    // ---- synchronisation / EGL ----------------------------------------------

    fn flush_pending(&mut self, sync: SyncOp) {
        if self.context_lost {
            // A dead context has no pipeline to drain; the work died with it.
            return;
        }
        let frame = match self.pending.take() {
            Some(mut frame) => {
                frame.sync = sync;
                frame
            }
            None if sync != SyncOp::None => {
                // A sync with no pending draw still costs the wait.
                let mut frame = FrameWork::simple(0, 0, FragmentProfile::default());
                frame.label = "sync-only".to_owned();
                frame.sync = sync;
                frame
            }
            None => return,
        };
        let timing = self.sim.submit(&frame);
        if self.record_frames {
            self.recorded.push((frame, timing.clone()));
        }
        self.last_timing = Some(timing);
    }

    /// `eglSwapInterval`: 0 disables the vsync wait while still draining
    /// the frame (the paper's first optimisation step in Fig. 3).
    pub fn swap_interval(&mut self, interval: u32) {
        self.swap_interval = interval;
    }

    /// `eglSwapBuffers`: submits the frame with a drain (+ vsync wait at
    /// interval > 0) and flips the double-buffered window surface.
    ///
    /// # Errors
    ///
    /// Currently infallible; `Result` is kept for API stability.
    pub fn swap_buffers(&mut self) -> Result<(), GlError> {
        self.ensure_live()?;
        self.flush_pending(SyncOp::Swap {
            interval: self.swap_interval,
        });
        self.back_surface = (self.back_surface + 1) % self.surfaces.len() as u32;
        Ok(())
    }

    /// `glFinish`: submits pending work and blocks until it retires.
    pub fn finish(&mut self) {
        self.flush_pending(SyncOp::Finish);
    }

    /// `glFlush`: submits pending work without waiting (the paper's
    /// maximum-launch-rate "no `eglSwapBuffers`" mode).
    pub fn flush(&mut self) {
        self.flush_pending(SyncOp::None);
    }

    /// `glReadPixels` from the current render target; synchronises like the
    /// real call (full drain) before returning pixels.
    ///
    /// # Errors
    ///
    /// Propagates target-resolution errors.
    pub fn read_pixels(&mut self) -> Result<Vec<u8>, GlError> {
        self.ensure_live()?;
        if let Some(inj) = self.injector.as_mut() {
            let _ = inj.next_readback();
        }
        let (target_key, ..) = self.current_target()?;
        self.finish();
        Ok(match target_key {
            TargetKey::Surface(s) => self.surfaces[s as usize].clone(),
            TargetKey::Storage(_) => {
                let tex = self.attachment_texture().ok_or_else(|| {
                    GlError::Internal("storage target lost its attachment".to_owned())
                })?;
                self.textures[&tex.0].data.clone()
            }
        })
    }

    /// Reads back a texture's contents — the GPGPU result-download path.
    /// Synchronises the pipeline first (`glFinish` semantics) so the bytes
    /// reflect every submitted draw.
    ///
    /// # Errors
    ///
    /// [`GlError::ContextLost`] on a dead context, [`GlError::UnknownObject`]
    /// for a stale handle.
    pub fn read_texture(&mut self, tex: TextureId) -> Result<Vec<u8>, GlError> {
        self.ensure_live()?;
        if let Some(inj) = self.injector.as_mut() {
            let _ = inj.next_readback();
        }
        self.finish();
        Ok(self.texture_data(tex)?.to_vec())
    }

    /// Accounts application CPU time (e.g. the GPGPU float↔RGBA8 data
    /// conversions) against the next submitted frame.
    pub fn add_cpu_work(&mut self, time: SimTime) {
        self.pending_cpu_extra += time;
    }

    /// Starts or stops recording submitted frame descriptions (for memory
    /// traces; see [`mgpu_tbdr::annotate_frame`]).
    pub fn set_frame_recording(&mut self, record: bool) {
        self.record_frames = record;
    }

    /// Frames recorded since [`Gl::set_frame_recording`] was enabled, with
    /// their timings.
    #[must_use]
    pub fn recorded_frames(&self) -> &[(FrameWork, FrameTiming)] {
        &self.recorded
    }

    // ---- timing access ------------------------------------------------------

    /// Timing of the most recently submitted frame.
    #[must_use]
    pub fn last_frame_timing(&self) -> Option<&FrameTiming> {
        self.last_timing.as_ref()
    }

    /// Snapshot of the simulation report (flushes nothing).
    #[must_use]
    pub fn report(&self) -> SimReport {
        self.sim.report()
    }

    /// Simulated time elapsed so far.
    #[must_use]
    pub fn elapsed(&self) -> SimTime {
        self.sim.report().total_time
    }
}
