//! The fragment rasteriser.
//!
//! GPGPU-over-GLES draws exactly one primitive shape: an axis-aligned quad
//! covering the render target, with varyings interpolated across it. This
//! module rasterises that shape functionally (running the compiled kernel
//! per fragment); arbitrary triangle meshes are out of scope for the
//! reproduction and rejected by the context layer.
//!
//! Two entry points exist: the closure-based [`rasterize_quad`] (the
//! original serial reference) and [`rasterize_quad_into`], which writes
//! quantised RGBA8 bytes straight into a target buffer and can fan the
//! work out over a [`std::thread::scope`] worker pool according to an
//! [`ExecConfig`]. Each fragment is a pure function of its coordinates,
//! so the parallel schedule is byte-identical to the serial one; the
//! determinism tests at the workspace root prove it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

use mgpu_shader::ir::Shader;
use mgpu_shader::{ExecError, Executor, Sampler, UniformValues};

use crate::exec::{ExecConfig, CHUNK_ROWS};

/// Corner values for one varying, in the order: (0,0), (1,0), (0,1), (1,1)
/// of the unit quad (v increasing downward in texture space).
pub type VaryingCorners = [[f32; 4]; 4];

/// The standard GPGPU texcoord quad: each fragment receives its own
/// normalised coordinate, so texel (x, y) maps 1:1 onto fragment (x, y).
#[must_use]
pub fn texcoord_corners() -> VaryingCorners {
    [
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0, 0.0],
    ]
}

/// Bilinearly interpolates corner values at `(u, v)`.
#[must_use]
pub fn interpolate(corners: &VaryingCorners, u: f32, v: f32) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    for c in 0..4 {
        let top = corners[0][c] * (1.0 - u) + corners[1][c] * u;
        let bottom = corners[2][c] * (1.0 - u) + corners[3][c] * u;
        out[c] = top * (1.0 - v) + bottom * v;
    }
    out
}

/// Runs `shader` over a `width`×`height` grid, calling `write` for every
/// fragment with its raw (unclamped) output colour.
///
/// `corners` supplies one corner set per varying slot, in shader declaration
/// order.
///
/// # Errors
///
/// Returns [`ExecError`] if uniforms or samplers are missing, or the corner
/// count does not match the shader's varyings.
pub fn rasterize_quad(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    width: u32,
    height: u32,
    corners: &[VaryingCorners],
    mut write: impl FnMut(u32, u32, [f32; 4]),
) -> Result<(), ExecError> {
    check_corners(shader, corners)?;
    let mut exec = Executor::new(shader, uniforms)?;
    let mut varying_values = vec![[0.0f32; 4]; corners.len()];
    for y in 0..height {
        let v = (y as f32 + 0.5) / height as f32;
        for x in 0..width {
            let u = (x as f32 + 0.5) / width as f32;
            for (slot, c) in corners.iter().enumerate() {
                varying_values[slot] = interpolate(c, u, v);
            }
            let rgba = exec.run(&varying_values, samplers)?;
            write(x, y, rgba);
        }
    }
    Ok(())
}

/// A writable pixel buffer for [`rasterize_quad_into`].
#[derive(Debug)]
pub struct RasterTarget<'a> {
    /// Target width in pixels.
    pub width: u32,
    /// Target height in pixels.
    pub height: u32,
    /// Bytes stored per pixel (the first `channels` of the quantised RGBA).
    pub channels: usize,
    /// Row-major pixel bytes, at least `width * height * channels` long.
    pub data: &'a mut [u8],
}

/// Runs `shader` over the target grid, writing quantised pixels directly
/// into `target.data` — serially, or on a scoped worker pool when `exec`
/// asks for more than one thread.
///
/// The framebuffer is cut into fixed chunks of [`CHUNK_ROWS`] rows;
/// chunks are dealt to workers round-robin by index and each worker runs
/// its own [`Executor`]. No execution state is shared between workers, so
/// the output is byte-for-byte identical to the serial path. A kernel
/// failure (or panic) in any chunk surfaces as the error of the
/// lowest-index failing chunk — the same error the serial path would
/// report first.
///
/// # Errors
///
/// Returns [`ExecError`] if uniforms or samplers are missing, the corner
/// count does not match the shader's varyings, the buffer is too small,
/// or the kernel fails (or panics) on any fragment.
pub fn rasterize_quad_into(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    corners: &[VaryingCorners],
    target: RasterTarget<'_>,
    exec: &ExecConfig,
) -> Result<(), ExecError> {
    check_corners(shader, corners)?;
    let RasterTarget {
        width,
        height,
        channels,
        data,
    } = target;
    let needed = width as usize * height as usize * channels;
    if data.len() < needed {
        return Err(ExecError::new(format!(
            "target buffer holds {} bytes, {width}x{height}x{channels} needs {needed}",
            data.len()
        )));
    }
    if needed == 0 {
        return Ok(());
    }
    let data = &mut data[..needed];

    let n_chunks = height.div_ceil(CHUNK_ROWS) as usize;
    let threads = exec.threads().min(n_chunks);
    if threads <= 1 {
        let mut ex = Executor::new(shader, uniforms)?;
        return run_rows(
            &mut ex, samplers, corners, width, height, 0, height, channels, data,
        );
    }

    // Deal fixed row-chunks to workers round-robin by chunk index. The
    // assignment depends only on the target size and thread count, and
    // every chunk's bytes are disjoint, so no synchronisation is needed.
    let chunk_bytes = CHUNK_ROWS as usize * width as usize * channels;
    let mut per_worker: Vec<Vec<(usize, &mut [u8])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slice) in data.chunks_mut(chunk_bytes).enumerate() {
        per_worker[i % threads].push((i, slice));
    }

    let first_err = thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|chunks| {
                s.spawn(move || -> Option<(usize, ExecError)> {
                    // One shader-VM instance per worker.
                    let mut ex = match Executor::new(shader, uniforms) {
                        Ok(ex) => ex,
                        Err(e) => return Some((chunks.first().map_or(0, |(i, _)| *i), e)),
                    };
                    for (i, slice) in chunks {
                        let y0 = i as u32 * CHUNK_ROWS;
                        let y1 = (y0 + CHUNK_ROWS).min(height);
                        // Contain panics per chunk so no unwind crosses the
                        // scope boundary and poisons the caller.
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            run_rows(
                                &mut ex, samplers, corners, width, height, y0, y1, channels, slice,
                            )
                        }));
                        match run {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => return Some((i, e)),
                            Err(p) => {
                                return Some((
                                    i,
                                    ExecError::new(format!(
                                        "kernel panicked: {}",
                                        panic_message(&*p)
                                    )),
                                ))
                            }
                        }
                    }
                    None
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("worker panics are caught per chunk"))
            .min_by_key(|(i, _)| *i)
    });

    match first_err {
        None => Ok(()),
        Some((_, e)) => Err(e),
    }
}

/// Extracts a printable message from a caught panic payload.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn check_corners(shader: &Shader, corners: &[VaryingCorners]) -> Result<(), ExecError> {
    let n_varyings = shader.varying_slots().count();
    if corners.len() != n_varyings {
        return Err(ExecError::new(format!(
            "shader has {n_varyings} varyings, {} corner sets provided",
            corners.len()
        )));
    }
    Ok(())
}

/// Executes rows `y0..y1`, quantising into `out` (which covers exactly
/// those rows). Shared by the serial path and every parallel worker, so
/// both paths run the same per-fragment code.
#[allow(clippy::too_many_arguments)]
fn run_rows(
    exec: &mut Executor<'_>,
    samplers: &[&dyn Sampler],
    corners: &[VaryingCorners],
    width: u32,
    height: u32,
    y0: u32,
    y1: u32,
    channels: usize,
    out: &mut [u8],
) -> Result<(), ExecError> {
    let mut varying_values = vec![[0.0f32; 4]; corners.len()];
    for y in y0..y1 {
        let v = (y as f32 + 0.5) / height as f32;
        for x in 0..width {
            let u = (x as f32 + 0.5) / width as f32;
            for (slot, c) in corners.iter().enumerate() {
                varying_values[slot] = interpolate(c, u, v);
            }
            let rgba = exec.run(&varying_values, samplers)?;
            let px = quantize_rgba8(rgba);
            let idx = ((y - y0) as usize * width as usize + x as usize) * channels;
            out[idx..idx + channels].copy_from_slice(&px[..channels]);
        }
    }
    Ok(())
}

/// Converts a raw fragment colour to RGBA8 exactly as the fixed-function
/// output stage does: clamp to [0, 1], scale by 255, round to nearest.
#[must_use]
pub fn quantize_rgba8(rgba: [f32; 4]) -> [u8; 4] {
    let q = |x: f32| (x.clamp(0.0, 1.0) * 255.0 + 0.5).floor() as u8;
    [q(rgba[0]), q(rgba[1]), q(rgba[2]), q(rgba[3])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_shader::compile;

    #[test]
    fn interpolation_hits_corners_and_centre() {
        let c = texcoord_corners();
        assert_eq!(interpolate(&c, 0.0, 0.0)[..2], [0.0, 0.0]);
        assert_eq!(interpolate(&c, 1.0, 1.0)[..2], [1.0, 1.0]);
        assert_eq!(interpolate(&c, 0.5, 0.5)[..2], [0.5, 0.5]);
    }

    #[test]
    fn rasterizes_identity_coordinate_kernel() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let mut got = [[0.0f32; 4]; 4];
        rasterize_quad(
            &sh,
            &UniformValues::new(),
            &[],
            2,
            2,
            &[texcoord_corners()],
            |x, y, c| got[(y * 2 + x) as usize] = c,
        )
        .unwrap();
        // Fragment centres of a 2x2 grid are at 0.25/0.75.
        assert_eq!(got[0][..2], [0.25, 0.25]);
        assert_eq!(got[1][..2], [0.75, 0.25]);
        assert_eq!(got[2][..2], [0.25, 0.75]);
        assert_eq!(got[3][..2], [0.75, 0.75]);
    }

    #[test]
    fn corner_count_mismatch_errors() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let r = rasterize_quad(&sh, &UniformValues::new(), &[], 1, 1, &[], |_, _, _| {});
        assert!(r.is_err());
    }

    fn raster_bytes(
        sh: &Shader,
        width: u32,
        height: u32,
        channels: usize,
        threads: usize,
    ) -> Vec<u8> {
        let mut data = vec![0u8; width as usize * height as usize * channels];
        rasterize_quad_into(
            sh,
            &UniformValues::new(),
            &[],
            &[texcoord_corners()],
            RasterTarget {
                width,
                height,
                channels,
                data: &mut data,
            },
            &ExecConfig::with_threads(threads),
        )
        .unwrap();
        data
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x, v.y, v.x * v.y, 1.0); }",
        )
        .unwrap();
        // Odd sizes straddle chunk boundaries; channels 3 exercises the
        // fp24 layout.
        for &(w, h) in &[(33u32, 17u32), (64, 64), (5, 97), (1, 1)] {
            for &ch in &[3usize, 4] {
                let serial = raster_bytes(&sh, w, h, ch, 1);
                for threads in [2, 4, 8] {
                    assert_eq!(
                        raster_bytes(&sh, w, h, ch, threads),
                        serial,
                        "{w}x{h}x{ch} at {threads} threads"
                    );
                }
            }
        }
    }

    /// A sampler that panics on fetch: worker panics must surface as
    /// `ExecError`, never as an unwind out of the rasteriser.
    struct PanicSampler;
    impl Sampler for PanicSampler {
        fn fetch(&self, _u: f32, _v: f32) -> [f32; 4] {
            panic!("sampler exploded")
        }
    }

    #[test]
    fn worker_panic_becomes_an_error() {
        let sh = compile(
            "uniform sampler2D t;\nvarying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let mut data = vec![0u8; 32 * 32 * 4];
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let r = rasterize_quad_into(
            &sh,
            &UniformValues::new(),
            &[&PanicSampler],
            &[texcoord_corners()],
            RasterTarget {
                width: 32,
                height: 32,
                channels: 4,
                data: &mut data,
            },
            &ExecConfig::with_threads(4),
        );
        std::panic::set_hook(prev);
        let e = r.unwrap_err();
        assert!(e.to_string().contains("sampler exploded"), "{e}");
    }

    #[test]
    fn undersized_target_buffer_errors() {
        let sh = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let mut data = vec![0u8; 7];
        let r = rasterize_quad_into(
            &sh,
            &UniformValues::new(),
            &[],
            &[],
            RasterTarget {
                width: 2,
                height: 2,
                channels: 4,
                data: &mut data,
            },
            &ExecConfig::serial(),
        );
        assert!(r.unwrap_err().to_string().contains("needs 16"));
    }

    #[test]
    fn quantization_clamps_and_rounds() {
        assert_eq!(quantize_rgba8([0.0, 1.0, -0.5, 2.0]), [0, 255, 0, 255]);
        assert_eq!(quantize_rgba8([0.5, 0.25, 0.75, 1.0]), [128, 64, 191, 255]);
        // 1/255 quantum round-trips exactly.
        let x = 37.0 / 255.0;
        assert_eq!(quantize_rgba8([x, x, x, x]), [37, 37, 37, 37]);
    }
}
