//! The fragment rasteriser.
//!
//! GPGPU-over-GLES draws exactly one primitive shape: an axis-aligned quad
//! covering the render target, with varyings interpolated across it. This
//! module rasterises that shape functionally (running the compiled kernel
//! per fragment); arbitrary triangle meshes are out of scope for the
//! reproduction and rejected by the context layer.
//!
//! Two entry points exist: the closure-based [`rasterize_quad`] (the
//! serial scalar reference) and [`rasterize_quad_into`], which writes
//! quantised RGBA8 bytes straight into a target buffer, can fan the work
//! out over a [`std::thread::scope`] worker pool, and can execute on
//! either tier of the fragment engine according to an [`ExecConfig`]:
//!
//! * [`Engine::Scalar`] — the original per-fragment [`Executor`] over the
//!   unmodified shader;
//! * [`Engine::Batched`] — the shader is first specialised against the
//!   bound uniforms ([`mgpu_shader::specialize`]), then executed in
//!   [`LANES`]-wide batches by the SoA [`BatchExecutor`].
//!
//! Both tiers share one interpolation scheme: a per-column table of the
//! horizontal lerps (which depend only on `x`), finished per fragment with
//! the vertical lerp — the exact f32 expressions of [`interpolate`], just
//! hoisted, so every engine/thread-count combination is byte-for-byte
//! identical. The determinism tests at the workspace root prove it.
//!
//! On top of the per-draw entry points sits the **planned** path the
//! context uses when its persistent pool is enabled: a [`DrawPlan`]
//! captures everything a draw sets up that does not depend on the
//! framebuffer contents — the (possibly specialised) shader, the column
//! table, and per-worker engine seats — so repeated draws can skip that
//! setup, and [`execute_plan`] dispatches it over the context's
//! [`WorkerPool`] with work-stealing chunk claiming instead of per-draw
//! thread spawning. Chunk→bytes assignment is index-based and disjoint,
//! so the stealing schedule is byte-for-byte invisible.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use mgpu_shader::ir::Shader;
use mgpu_shader::{
    specialize, BatchCore, BatchExecutor, CompiledCore, CompiledProgram, ExecCore, ExecError,
    Executor, Sampler, UniformValues, LANES,
};

use crate::exec::{Engine, ExecConfig, CHUNK_ROWS};
use crate::pool::Executor as PoolExecutor;

/// Corner values for one varying, in the order: (0,0), (1,0), (0,1), (1,1)
/// of the unit quad (v increasing downward in texture space).
pub type VaryingCorners = [[f32; 4]; 4];

/// The standard GPGPU texcoord quad: each fragment receives its own
/// normalised coordinate, so texel (x, y) maps 1:1 onto fragment (x, y).
#[must_use]
pub fn texcoord_corners() -> VaryingCorners {
    [
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0, 0.0],
    ]
}

/// Bilinearly interpolates corner values at `(u, v)`.
#[must_use]
pub fn interpolate(corners: &VaryingCorners, u: f32, v: f32) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    for c in 0..4 {
        let top = corners[0][c] * (1.0 - u) + corners[1][c] * u;
        let bottom = corners[2][c] * (1.0 - u) + corners[3][c] * u;
        out[c] = top * (1.0 - v) + bottom * v;
    }
    out
}

/// Column-hoisted varying interpolation for a fixed-width grid.
///
/// [`interpolate`] splits into a horizontal lerp (dependent only on `u`,
/// i.e. on the column) and a vertical lerp (dependent only on `v`). The
/// table precomputes the horizontal `top`/`bottom` pair for every
/// (varying, column) once per draw; [`ColumnTable::value`] finishes with
/// `top * (1 - v) + bottom * v` — the same f32 expression `interpolate`
/// evaluates, so hoisting is bitwise invisible.
struct ColumnTable {
    slots: usize,
    width: usize,
    /// `(top, bottom)` horizontal lerps, indexed `slot * width + x`.
    cols: Vec<([f32; 4], [f32; 4])>,
}

impl ColumnTable {
    fn new(corners: &[VaryingCorners], width: u32) -> Self {
        let width = width as usize;
        let mut cols = Vec::with_capacity(corners.len() * width);
        for corner in corners {
            for x in 0..width {
                let u = (x as f32 + 0.5) / width as f32;
                let (mut top, mut bottom) = ([0.0f32; 4], [0.0f32; 4]);
                for c in 0..4 {
                    top[c] = corner[0][c] * (1.0 - u) + corner[1][c] * u;
                    bottom[c] = corner[2][c] * (1.0 - u) + corner[3][c] * u;
                }
                cols.push((top, bottom));
            }
        }
        ColumnTable {
            slots: corners.len(),
            width,
            cols,
        }
    }

    /// The interpolated value of varying `slot` at column `x`, row
    /// position `v` — bit-identical to [`interpolate`] at the column's
    /// `u`.
    #[inline]
    fn value(&self, slot: usize, x: usize, v: f32) -> [f32; 4] {
        let (top, bottom) = &self.cols[slot * self.width + x];
        let mut out = [0.0f32; 4];
        for c in 0..4 {
            out[c] = top[c] * (1.0 - v) + bottom[c] * v;
        }
        out
    }
}

/// Per-worker execution state for one tier of the fragment engine.
enum FragEngine<'s> {
    /// Per-fragment scalar interpretation.
    Scalar(Executor<'s>),
    /// Lane-batched SoA interpretation (boxed: the register planes are
    /// large and the scratch buffers live alongside them).
    Batched(Box<BatchState<'s>>),
    /// Bind-time lowering to fused native closures (boxed: the plane file
    /// is large).
    Compiled(Box<CompiledState>),
}

/// The batched tier plus its reusable staging buffers.
struct BatchState<'s> {
    exec: BatchExecutor<'s>,
    /// Slot-major varying staging, stride [`LANES`].
    varyings: Vec<[f32; 4]>,
    /// Per-lane output colours of the current batch.
    colors: [[f32; 4]; LANES],
}

/// The compiled tier — its lowered program, plane file and staging
/// buffers. The legacy (plan-less) dispatch path owns the program per
/// worker; the planned path shares one build across seats instead (see
/// [`CompiledSeat`]).
struct CompiledState {
    program: CompiledProgram,
    core: CompiledCore,
    /// Slot-major varying staging, stride [`LANES`].
    varyings: Vec<[f32; 4]>,
    /// Per-lane output colours of the current batch.
    colors: [[f32; 4]; LANES],
}

impl<'s> FragEngine<'s> {
    fn new(
        shader: &'s Shader,
        uniforms: &UniformValues,
        engine: Engine,
        slots: usize,
    ) -> Result<Self, ExecError> {
        Ok(match engine {
            Engine::Scalar => FragEngine::Scalar(Executor::new(shader, uniforms)?),
            Engine::Batched => FragEngine::Batched(Box::new(BatchState {
                exec: BatchExecutor::new(shader, uniforms)?,
                varyings: vec![[0.0f32; 4]; slots * LANES],
                colors: [[0.0f32; 4]; LANES],
            })),
            Engine::Compiled => {
                let program = CompiledProgram::build(shader, uniforms)?;
                let core = CompiledCore::new(&program);
                FragEngine::Compiled(Box::new(CompiledState {
                    program,
                    core,
                    varyings: vec![[0.0f32; 4]; slots * LANES],
                    colors: [[0.0f32; 4]; LANES],
                }))
            }
        })
    }
}

/// Runs the engine over rows `y0..y1` of the grid, calling `emit` for
/// every fragment with its raw output colour, in row-major fragment order.
/// Shared by every entry point and worker, so all paths interpolate and
/// execute through the same code.
fn drive_fragments(
    engine: &mut FragEngine<'_>,
    samplers: &[&dyn Sampler],
    table: &ColumnTable,
    height: u32,
    y0: u32,
    y1: u32,
    mut emit: impl FnMut(u32, u32, [f32; 4]),
) -> Result<(), ExecError> {
    let width = table.width as u32;
    match engine {
        FragEngine::Scalar(ex) => {
            let mut varying_values = vec![[0.0f32; 4]; table.slots];
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                for x in 0..width {
                    for (slot, val) in varying_values.iter_mut().enumerate() {
                        *val = table.value(slot, x as usize, v);
                    }
                    emit(x, y, ex.run(&varying_values, samplers)?);
                }
            }
        }
        FragEngine::Batched(st) => {
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                let mut x0 = 0u32;
                while x0 < width {
                    let n = (width - x0).min(LANES as u32) as usize;
                    for slot in 0..table.slots {
                        for l in 0..n {
                            st.varyings[slot * LANES + l] = table.value(slot, x0 as usize + l, v);
                        }
                    }
                    st.exec.run(&st.varyings, n, samplers, &mut st.colors)?;
                    for (l, &color) in st.colors[..n].iter().enumerate() {
                        emit(x0 + l as u32, y, color);
                    }
                    x0 += n as u32;
                }
            }
        }
        FragEngine::Compiled(st) => {
            let CompiledState {
                program,
                core,
                varyings,
                colors,
            } = &mut **st;
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                let mut x0 = 0u32;
                while x0 < width {
                    let n = (width - x0).min(LANES as u32) as usize;
                    for slot in 0..table.slots {
                        for l in 0..n {
                            varyings[slot * LANES + l] = table.value(slot, x0 as usize + l, v);
                        }
                    }
                    program.run(core, varyings, n, samplers, colors)?;
                    for (l, &color) in colors[..n].iter().enumerate() {
                        emit(x0 + l as u32, y, color);
                    }
                    x0 += n as u32;
                }
            }
        }
    }
    Ok(())
}

/// Runs `shader` over a `width`×`height` grid, calling `write` for every
/// fragment with its raw (unclamped) output colour.
///
/// This is the serial scalar reference path: the unmodified shader on the
/// per-fragment [`Executor`], one fragment at a time.
///
/// `corners` supplies one corner set per varying slot, in shader declaration
/// order.
///
/// # Errors
///
/// Returns [`ExecError`] if uniforms or samplers are missing, or the corner
/// count does not match the shader's varyings.
pub fn rasterize_quad(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    width: u32,
    height: u32,
    corners: &[VaryingCorners],
    write: impl FnMut(u32, u32, [f32; 4]),
) -> Result<(), ExecError> {
    check_corners(shader, corners)?;
    let table = ColumnTable::new(corners, width);
    let mut engine = FragEngine::new(shader, uniforms, Engine::Scalar, corners.len())?;
    drive_fragments(&mut engine, samplers, &table, height, 0, height, write)
}

/// A writable pixel buffer for [`rasterize_quad_into`].
#[derive(Debug)]
pub struct RasterTarget<'a> {
    /// Target width in pixels.
    pub width: u32,
    /// Target height in pixels.
    pub height: u32,
    /// Bytes stored per pixel (the first `channels` of the quantised RGBA).
    pub channels: usize,
    /// Row-major pixel bytes, at least `width * height * channels` long.
    pub data: &'a mut [u8],
}

/// Runs `shader` over the target grid, writing quantised pixels directly
/// into `target.data` — serially, or on a scoped worker pool when `exec`
/// asks for more than one thread, on the fragment-engine tier `exec`
/// selects. With [`Engine::Batched`] the shader is first specialised
/// against the bound uniforms, once per draw.
///
/// The framebuffer is cut into fixed chunks of [`CHUNK_ROWS`] rows;
/// chunks are dealt to workers round-robin by index and each worker runs
/// its own engine instance. No execution state is shared between workers,
/// so the output is byte-for-byte identical to the serial path. A kernel
/// failure (or panic) in any chunk surfaces as the error of the
/// lowest-index failing chunk — the same error the serial path would
/// report first.
///
/// # Errors
///
/// Returns [`ExecError`] if uniforms or samplers are missing, the corner
/// count does not match the shader's varyings, the buffer is too small,
/// or the kernel fails (or panics) on any fragment.
pub fn rasterize_quad_into(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    corners: &[VaryingCorners],
    target: RasterTarget<'_>,
    exec: &ExecConfig,
) -> Result<(), ExecError> {
    let full = target.height;
    rasterize_quad_rows_into(shader, uniforms, samplers, corners, target, 0, full, exec)
}

/// Like [`rasterize_quad_into`], but shades only rows `y0..y1` of the
/// target, leaving every other row's bytes untouched. Fragment positions
/// stay global — row `y` of a band draw is bit-identical to row `y` of a
/// full draw — so a draw split into bands reassembles the exact full-draw
/// image. This is the primitive behind watchdog-driven draw splitting: a
/// pass whose estimated GPU time busts the per-draw budget is re-issued as
/// several row-band sub-draws.
///
/// # Errors
///
/// As [`rasterize_quad_into`], plus an [`ExecError`] when `y0..y1` is not
/// a sub-range of `0..target.height`.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_quad_rows_into(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    corners: &[VaryingCorners],
    target: RasterTarget<'_>,
    y0: u32,
    y1: u32,
    exec: &ExecConfig,
) -> Result<(), ExecError> {
    check_corners(shader, corners)?;
    let RasterTarget {
        width,
        height,
        channels,
        data,
    } = target;
    if y0 > y1 || y1 > height {
        return Err(ExecError::new(format!(
            "row band {y0}..{y1} outside target height {height}"
        )));
    }
    let needed = width as usize * height as usize * channels;
    if data.len() < needed {
        return Err(ExecError::new(format!(
            "target buffer holds {} bytes, {width}x{height}x{channels} needs {needed}",
            data.len()
        )));
    }
    if needed == 0 || y0 == y1 {
        return Ok(());
    }
    let row_bytes = width as usize * channels;
    let data = &mut data[y0 as usize * row_bytes..y1 as usize * row_bytes];
    let band_rows = y1 - y0;

    // Bind-time specialisation: fold the bound uniforms into the shader
    // as constants, once per draw. Only the batched and compiled tiers
    // use it — the scalar tier stays the pristine reference path — and
    // `MGPU_SPEC=off` (or `ExecConfig::with_specialization(false)`) skips
    // it entirely, in which case uniforms resolve at seat bind time (the
    // compiled tier folds them into constant planes either way). Timing
    // is computed by the caller from the original shader, so this can
    // never perturb the simulated cost.
    let engine_kind = exec.engine();
    let specialized;
    let shader = match engine_kind {
        Engine::Batched | Engine::Compiled if exec.specialization() => {
            specialized = specialize(shader, uniforms)?;
            &specialized
        }
        Engine::Scalar | Engine::Batched | Engine::Compiled => shader,
    };
    let table = ColumnTable::new(corners, width);

    let n_chunks = band_rows.div_ceil(CHUNK_ROWS) as usize;
    let threads = exec.threads().min(n_chunks);
    if threads <= 1 {
        let mut engine = FragEngine::new(shader, uniforms, engine_kind, corners.len())?;
        return run_rows(
            &mut engine,
            samplers,
            &table,
            height,
            y0,
            y1,
            channels,
            data,
        );
    }

    // Deal fixed row-chunks to workers round-robin by chunk index. The
    // assignment depends only on the target size and thread count, and
    // every chunk's bytes are disjoint, so no synchronisation is needed.
    let chunk_bytes = CHUNK_ROWS as usize * width as usize * channels;
    let mut per_worker: Vec<Vec<(usize, &mut [u8])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slice) in data.chunks_mut(chunk_bytes).enumerate() {
        per_worker[i % threads].push((i, slice));
    }

    let table = &table;
    let first_err = thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|chunks| {
                s.spawn(move || -> Option<(usize, ExecError)> {
                    // One engine instance per worker.
                    let mut engine =
                        match FragEngine::new(shader, uniforms, engine_kind, corners.len()) {
                            Ok(engine) => engine,
                            Err(e) => return Some((chunks.first().map_or(0, |(i, _)| *i), e)),
                        };
                    for (i, slice) in chunks {
                        // Chunk indices are band-relative; rows stay global
                        // so band draws are bit-identical to full draws.
                        let cy0 = y0 + i as u32 * CHUNK_ROWS;
                        let cy1 = (cy0 + CHUNK_ROWS).min(y1);
                        // Contain panics per chunk so no unwind crosses the
                        // scope boundary and poisons the caller.
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            run_rows(
                                &mut engine,
                                samplers,
                                table,
                                height,
                                cy0,
                                cy1,
                                channels,
                                slice,
                            )
                        }));
                        match run {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => return Some((i, e)),
                            Err(p) => {
                                return Some((
                                    i,
                                    ExecError::new(format!(
                                        "kernel panicked: {}",
                                        panic_message(&*p)
                                    )),
                                ))
                            }
                        }
                    }
                    None
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                // Worker panics are caught per chunk; a join failure means
                // the unwinding machinery itself broke — surface it as the
                // lowest-priority error rather than panicking the caller.
                Ok(result) => result,
                Err(p) => Some((
                    usize::MAX,
                    ExecError::new(format!("worker thread panicked: {}", panic_message(&*p))),
                )),
            })
            .min_by_key(|(i, _)| *i)
    });

    match first_err {
        None => Ok(()),
        Some((_, e)) => Err(e),
    }
}

/// Extracts a printable message from a caught panic payload.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn check_corners(shader: &Shader, corners: &[VaryingCorners]) -> Result<(), ExecError> {
    let n_varyings = shader.varying_slots().count();
    if corners.len() != n_varyings {
        return Err(ExecError::new(format!(
            "shader has {n_varyings} varyings, {} corner sets provided",
            corners.len()
        )));
    }
    Ok(())
}

/// Executes rows `y0..y1`, quantising into `out` (which covers exactly
/// those rows). Shared by the serial path and every parallel worker, so
/// both paths run the same per-fragment code.
#[allow(clippy::too_many_arguments)]
fn run_rows(
    engine: &mut FragEngine<'_>,
    samplers: &[&dyn Sampler],
    table: &ColumnTable,
    height: u32,
    y0: u32,
    y1: u32,
    channels: usize,
    out: &mut [u8],
) -> Result<(), ExecError> {
    let width = table.width;
    drive_fragments(engine, samplers, table, height, y0, y1, |x, y, rgba| {
        let px = quantize_rgba8(rgba);
        let idx = ((y - y0) as usize * width + x as usize) * channels;
        out[idx..idx + channels].copy_from_slice(&px[..channels]);
    })
}

/// One participant's owned engine state in a planned dispatch — the
/// self-contained counterpart of [`FragEngine`], built on
/// [`ExecCore`]/[`BatchCore`] so it holds no shader borrow and a
/// [`DrawPlan`] can cache it across draws.
enum FragSeat {
    /// Per-fragment scalar interpretation.
    Scalar(ExecCore),
    /// Lane-batched SoA interpretation (boxed: large register planes).
    Batched(Box<BatchSeat>),
    /// Fused native-closure execution (boxed: large plane file). The
    /// program is the plan's single shared build — seats only own a plane
    /// file and staging buffers.
    Compiled(Box<CompiledSeat>),
}

/// The batched tier's core plus its reusable staging buffers.
struct BatchSeat {
    core: BatchCore,
    /// Slot-major varying staging, stride [`LANES`].
    varyings: Vec<[f32; 4]>,
    /// Per-lane output colours of the current batch.
    colors: [[f32; 4]; LANES],
}

/// The compiled tier's plane file plus staging, sharing the plan's
/// lowered program: lowering happens once per plan, not once per seat.
struct CompiledSeat {
    program: Arc<CompiledProgram>,
    core: CompiledCore,
    /// Slot-major varying staging, stride [`LANES`].
    varyings: Vec<[f32; 4]>,
    /// Per-lane output colours of the current batch.
    colors: [[f32; 4]; LANES],
}

impl FragSeat {
    fn new(
        shader: &Shader,
        uniforms: &UniformValues,
        engine: Engine,
        slots: usize,
        compiled: Option<&Arc<CompiledProgram>>,
    ) -> Result<Self, ExecError> {
        Ok(match engine {
            Engine::Scalar => FragSeat::Scalar(ExecCore::new(shader, uniforms)?),
            Engine::Batched => FragSeat::Batched(Box::new(BatchSeat {
                core: BatchCore::new(shader, uniforms)?,
                varyings: vec![[0.0f32; 4]; slots * LANES],
                colors: [[0.0f32; 4]; LANES],
            })),
            Engine::Compiled => {
                let program = Arc::clone(
                    compiled
                        .ok_or_else(|| ExecError::new("compiled plan has no lowered program"))?,
                );
                let core = CompiledCore::new(&program);
                FragSeat::Compiled(Box::new(CompiledSeat {
                    program,
                    core,
                    varyings: vec![[0.0f32; 4]; slots * LANES],
                    colors: [[0.0f32; 4]; LANES],
                }))
            }
        })
    }

    /// Rebinds the seat to a new shader/uniform pair, reusing its
    /// allocations. The seat's tier must match the plan's engine — the
    /// caller guarantees it by only recycling seats from a same-engine
    /// plan — and `compiled` must be the plan's lowered program on the
    /// compiled tier.
    fn rebind(
        &mut self,
        shader: &Shader,
        uniforms: &UniformValues,
        slots: usize,
        compiled: Option<&Arc<CompiledProgram>>,
    ) -> Result<(), ExecError> {
        match self {
            FragSeat::Scalar(core) => core.rebind(shader, uniforms),
            FragSeat::Batched(seat) => {
                seat.varyings.resize(slots * LANES, [0.0f32; 4]);
                seat.core.rebind(shader, uniforms)
            }
            FragSeat::Compiled(seat) => {
                let program = Arc::clone(
                    compiled
                        .ok_or_else(|| ExecError::new("compiled plan has no lowered program"))?,
                );
                seat.core.rebind(&program);
                seat.program = program;
                seat.varyings.resize(slots * LANES, [0.0f32; 4]);
                Ok(())
            }
        }
    }
}

/// Runs a seat over rows `y0..y1`, quantising into `out` (which covers
/// exactly those rows) — the owned-engine counterpart of [`run_rows`],
/// interpolating and executing through the same expressions so both
/// dispatch paths are byte-for-byte identical.
#[allow(clippy::too_many_arguments)]
fn run_seat_rows(
    seat: &mut FragSeat,
    shader: &Shader,
    samplers: &[&dyn Sampler],
    table: &ColumnTable,
    height: u32,
    y0: u32,
    y1: u32,
    channels: usize,
    out: &mut [u8],
) -> Result<(), ExecError> {
    let width = table.width;
    run_seat_span(
        seat,
        shader,
        samplers,
        table,
        height,
        0,
        width as u32,
        y0,
        y1,
        |x, y, rgba| {
            let px = quantize_rgba8(rgba);
            let idx = ((y - y0) as usize * width + x as usize) * channels;
            out[idx..idx + channels].copy_from_slice(&px[..channels]);
        },
    )
}

/// Runs a seat over the fragment rectangle `x0..x1` × `y0..y1`, calling
/// `emit` with each fragment's global position and raw colour.
///
/// Every fragment is a pure function of its own `(x, y)` — lanes of a
/// batch never exchange data — so restricting a row to a column span
/// produces the same bytes those columns get from a full-row run, whatever
/// batch boundaries the span induces. This is the primitive that lets
/// tile-level redundancy elimination re-shade a single stale tile.
#[allow(clippy::too_many_arguments)]
fn run_seat_span(
    seat: &mut FragSeat,
    shader: &Shader,
    samplers: &[&dyn Sampler],
    table: &ColumnTable,
    height: u32,
    x0: u32,
    x1: u32,
    y0: u32,
    y1: u32,
    mut emit: impl FnMut(u32, u32, [f32; 4]),
) -> Result<(), ExecError> {
    match seat {
        FragSeat::Scalar(core) => {
            let mut varying_values = vec![[0.0f32; 4]; table.slots];
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                for x in x0..x1 {
                    for (slot, val) in varying_values.iter_mut().enumerate() {
                        *val = table.value(slot, x as usize, v);
                    }
                    emit(x, y, core.run(shader, &varying_values, samplers)?);
                }
            }
        }
        FragSeat::Batched(st) => {
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                let mut xb = x0;
                while xb < x1 {
                    let n = (x1 - xb).min(LANES as u32) as usize;
                    for slot in 0..table.slots {
                        for l in 0..n {
                            st.varyings[slot * LANES + l] = table.value(slot, xb as usize + l, v);
                        }
                    }
                    st.core
                        .run(shader, &st.varyings, n, samplers, &mut st.colors)?;
                    for (l, &color) in st.colors[..n].iter().enumerate() {
                        emit(xb + l as u32, y, color);
                    }
                    xb += n as u32;
                }
            }
        }
        FragSeat::Compiled(st) => {
            let CompiledSeat {
                program,
                core,
                varyings,
                colors,
            } = &mut **st;
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                let mut xb = x0;
                while xb < x1 {
                    let n = (x1 - xb).min(LANES as u32) as usize;
                    for slot in 0..table.slots {
                        for l in 0..n {
                            varyings[slot * LANES + l] = table.value(slot, xb as usize + l, v);
                        }
                    }
                    program.run(core, varyings, n, samplers, colors)?;
                    for (l, &color) in colors[..n].iter().enumerate() {
                        emit(xb + l as u32, y, color);
                    }
                    xb += n as u32;
                }
            }
        }
    }
    Ok(())
}

/// Everything a draw sets up that does not depend on framebuffer or
/// texture *contents*: the executable shader (specialised against the
/// bound uniforms on the batched tier), the column-hoisted interpolation
/// table for the target width, and per-worker engine seats. The context's
/// plan cache keys these by (program, shader hash, uniform hash, engine,
/// target geometry, corners), so a cached plan is only ever executed with
/// exactly the state it was built from; sampler views are *not* part of a
/// plan — texture contents change between GPGPU passes — and are passed
/// fresh to every [`execute_plan`] call.
pub(crate) struct DrawPlan {
    /// The shader the seats are bound to: the source program's shader on
    /// the scalar tier, its uniform-specialised clone on the batched and
    /// compiled tiers (with specialisation enabled).
    shader: Arc<Shader>,
    /// The compiled tier's lowered program, built once per plan and
    /// shared by every seat (`None` on the other tiers). Caching the plan
    /// therefore caches the lowering — a cache hit pays zero decode *and*
    /// zero build.
    compiled: Option<Arc<CompiledProgram>>,
    engine: Engine,
    /// Kept so additional seats can be bound lazily when the thread count
    /// rises after the plan was built.
    uniforms: UniformValues,
    /// Varying slot count (= corner-set count).
    slots: usize,
    /// Target width the column table was hoisted for.
    width: u32,
    table: ColumnTable,
    seats: Vec<FragSeat>,
}

impl std::fmt::Debug for DrawPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrawPlan")
            .field("engine", &self.engine)
            .field("width", &self.width)
            .field("slots", &self.slots)
            .field("seats", &self.seats.len())
            .finish()
    }
}

impl DrawPlan {
    /// Builds a plan for drawing `source` with `uniforms` onto a
    /// `width`-wide target. `recycled` donates a dead plan's allocations
    /// (seats, register files) when its engine matches — used by the
    /// cache-disabled path to avoid rebuilding engine state from scratch
    /// every draw.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] if the corner count does not match the
    /// shader's varyings or a declared uniform has no bound value.
    pub(crate) fn build(
        source: &Arc<Shader>,
        uniforms: &UniformValues,
        engine: Engine,
        spec: bool,
        corners: &[VaryingCorners],
        width: u32,
        recycled: Option<DrawPlan>,
    ) -> Result<DrawPlan, ExecError> {
        check_corners(source, corners)?;
        let shader = match engine {
            Engine::Batched | Engine::Compiled if spec => Arc::new(specialize(source, uniforms)?),
            Engine::Scalar | Engine::Batched | Engine::Compiled => Arc::clone(source),
        };
        // Lower once per plan; every seat shares the build.
        let compiled = match engine {
            Engine::Compiled => Some(Arc::new(CompiledProgram::build(&shader, uniforms)?)),
            Engine::Scalar | Engine::Batched => None,
        };
        let slots = corners.len();
        let mut seats = match recycled {
            Some(old) if old.engine == engine => old.seats,
            _ => Vec::new(),
        };
        for seat in &mut seats {
            seat.rebind(&shader, uniforms, slots, compiled.as_ref())?;
        }
        if seats.is_empty() {
            seats.push(FragSeat::new(
                &shader,
                uniforms,
                engine,
                slots,
                compiled.as_ref(),
            )?);
        }
        Ok(DrawPlan {
            shader,
            compiled,
            engine,
            uniforms: uniforms.clone(),
            slots,
            width,
            table: ColumnTable::new(corners, width),
            seats,
        })
    }

    fn ensure_seats(&mut self, n: usize) -> Result<(), ExecError> {
        while self.seats.len() < n {
            self.seats.push(FragSeat::new(
                &self.shader,
                &self.uniforms,
                self.engine,
                self.slots,
                self.compiled.as_ref(),
            )?);
        }
        Ok(())
    }

    /// Content hash of the column-table slice covering columns `x0..x1` —
    /// the horizontal half of every varying this plan interpolates over
    /// those columns, by exact f32 bit pattern. Together with the rows and
    /// target height (which pin the vertical lerp), this is the tile's
    /// complete varying input, which is why the tile-signature cache folds
    /// it into each tile's signature.
    pub(crate) fn column_slice_hash(&self, x0: u32, x1: u32) -> u64 {
        let mut h = mgpu_shader::hash::Fnv64::new();
        h.write_u64(self.slots as u64);
        h.write_u32(x0);
        h.write_u32(x1);
        for slot in 0..self.slots {
            for x in x0 as usize..(x1 as usize).min(self.width as usize) {
                let (top, bottom) = &self.table.cols[slot * self.table.width + x];
                for c in 0..4 {
                    h.write_f32(top[c]);
                    h.write_f32(bottom[c]);
                }
            }
        }
        h.finish()
    }

    /// Varying slot count (used to model per-tile signature traffic).
    pub(crate) fn slot_count(&self) -> usize {
        self.slots
    }

    /// Conservative bounds of every varying's first two components over
    /// the tile rect `x0..x1` × `y0..y1` of a `height`-row target:
    /// the smallest `[min_u, min_v]..[max_u, max_v]` box containing every
    /// value any fragment in the rect can observe. The row interpolation
    /// factor `(y + 0.5) / height` is monotonic in `y`, so evaluating the
    /// exact per-row lerp at the band's first and last rows bounds every
    /// interior row. Returns `None` when the plan has no varyings or any
    /// bound is non-finite (the caller falls back to whole-texture
    /// signatures).
    pub(crate) fn varying_hull(
        &self,
        x0: u32,
        x1: u32,
        y0: u32,
        y1: u32,
        height: u32,
    ) -> Option<([f32; 2], [f32; 2])> {
        if self.slots == 0 || y0 >= y1 || height == 0 {
            return None;
        }
        let v_lo = (y0 as f32 + 0.5) / height as f32;
        let v_hi = (y1 as f32 - 0.5) / height as f32;
        let mut lo = [f32::INFINITY; 2];
        let mut hi = [f32::NEG_INFINITY; 2];
        for slot in 0..self.slots {
            for x in x0 as usize..(x1 as usize).min(self.width as usize) {
                let (top, bottom) = &self.table.cols[slot * self.table.width + x];
                for c in 0..2 {
                    for v in [v_lo, v_hi] {
                        let val = top[c] * (1.0 - v) + bottom[c] * v;
                        lo[c] = lo[c].min(val);
                        hi[c] = hi[c].max(val);
                    }
                }
            }
        }
        lo.iter()
            .chain(hi.iter())
            .all(|f| f.is_finite())
            .then_some((lo, hi))
    }
}

/// Takes the value out of a slot, treating a poisoned lock as empty (the
/// panicking claimant is already reported through the error channel).
fn take_slot<'a, T: ?Sized>(slot: &Mutex<Option<&'a mut T>>) -> Option<&'a mut T> {
    match slot.lock() {
        Ok(mut guard) => guard.take(),
        Err(_) => None,
    }
}

/// Executes a [`DrawPlan`] over rows `y0..y1` of the target, writing
/// quantised pixels into `target.data` — serially when one thread (or one
/// chunk) suffices, otherwise over the persistent `pool` with
/// work-stealing chunk claiming.
///
/// The band is cut into fixed chunks of [`CHUNK_ROWS`] rows; participants
/// claim chunk indices from a shared atomic ticket. Which seat executes a
/// chunk varies run to run, but chunk index alone determines both the rows
/// shaded and the bytes written, and no execution state is shared between
/// seats — so the output is byte-for-byte identical to the serial path
/// (and to the legacy round-robin dispatch). A kernel failure or panic
/// surfaces as the error of the lowest-index failing chunk, matching the
/// legacy path's reporting.
///
/// `pool` is spawned lazily on the first dispatch that actually needs
/// workers, sized one less than `threads` (the caller occupies seat 0).
/// A shared executor installed by [`crate::Gl::install_executor`] arrives
/// here the same way; participation is clamped to its seats.
///
/// # Errors
///
/// Returns [`ExecError`] if the band or buffer is invalid, the target
/// width does not match the plan, or the kernel fails (or panics) on any
/// fragment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_plan(
    plan: &mut DrawPlan,
    samplers: &[&dyn Sampler],
    target: RasterTarget<'_>,
    y0: u32,
    y1: u32,
    threads: usize,
    pool: &mut Option<PoolExecutor>,
) -> Result<(), ExecError> {
    let RasterTarget {
        width,
        height,
        channels,
        data,
    } = target;
    if width != plan.width {
        return Err(ExecError::new(format!(
            "draw plan built for width {}, executed at width {width}",
            plan.width
        )));
    }
    if y0 > y1 || y1 > height {
        return Err(ExecError::new(format!(
            "row band {y0}..{y1} outside target height {height}"
        )));
    }
    let needed = width as usize * height as usize * channels;
    if data.len() < needed {
        return Err(ExecError::new(format!(
            "target buffer holds {} bytes, {width}x{height}x{channels} needs {needed}",
            data.len()
        )));
    }
    if needed == 0 || y0 == y1 {
        return Ok(());
    }
    let row_bytes = width as usize * channels;
    let data = &mut data[y0 as usize * row_bytes..y1 as usize * row_bytes];
    let band_rows = y1 - y0;

    let n_chunks = band_rows.div_ceil(CHUNK_ROWS) as usize;
    let threads = threads.max(1).min(n_chunks);
    if threads <= 1 {
        plan.ensure_seats(1)?;
        let DrawPlan {
            shader,
            table,
            seats,
            ..
        } = plan;
        return run_seat_rows(
            &mut seats[0],
            shader,
            samplers,
            table,
            height,
            y0,
            y1,
            channels,
            data,
        );
    }

    plan.ensure_seats(threads)?;
    let pool = pool.get_or_insert_with(|| PoolExecutor::new(threads - 1));

    let chunk_bytes = CHUNK_ROWS as usize * width as usize * channels;
    let chunk_slots: Vec<Mutex<Option<&mut [u8]>>> = data
        .chunks_mut(chunk_bytes)
        .map(|c| Mutex::new(Some(c)))
        .collect();
    let DrawPlan {
        shader,
        table,
        seats,
        ..
    } = plan;
    let shader: &Shader = shader;
    let seat_slots: Vec<Mutex<Option<&mut FragSeat>>> = seats
        .iter_mut()
        .take(threads)
        .map(|s| Mutex::new(Some(s)))
        .collect();
    let ticket = AtomicUsize::new(0);
    let errors: Mutex<Vec<(usize, ExecError)>> = Mutex::new(Vec::new());

    let job = |seat_idx: usize| {
        let Some(seat) = seat_slots.get(seat_idx).and_then(|s| take_slot(s)) else {
            return;
        };
        let mut first_err: Option<(usize, ExecError)> = None;
        loop {
            let i = ticket.fetch_add(1, Ordering::Relaxed);
            if i >= chunk_slots.len() {
                break;
            }
            let Some(slice) = take_slot(&chunk_slots[i]) else {
                continue;
            };
            // Chunk indices are band-relative; rows stay global so band
            // draws are bit-identical to full draws.
            let cy0 = y0 + i as u32 * CHUNK_ROWS;
            let cy1 = (cy0 + CHUNK_ROWS).min(y1);
            // Contain panics per chunk so every failure carries its chunk
            // index and the pool's own panic flag stays a last resort.
            let run = catch_unwind(AssertUnwindSafe(|| {
                run_seat_rows(
                    seat, shader, samplers, table, height, cy0, cy1, channels, slice,
                )
            }));
            match run {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    first_err = Some((i, e));
                    break;
                }
                Err(p) => {
                    first_err = Some((
                        i,
                        ExecError::new(format!("kernel panicked: {}", panic_message(&*p))),
                    ));
                    break;
                }
            }
        }
        if let Some(err) = first_err {
            match errors.lock() {
                Ok(mut errs) => errs.push(err),
                Err(poisoned) => poisoned.into_inner().push(err),
            }
        }
    };
    let pool_panicked = pool.run(threads, &job);

    let mut errs = match errors.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    };
    if pool_panicked && errs.is_empty() {
        errs.push((usize::MAX, ExecError::new("worker thread panicked")));
    }
    match errs.into_iter().min_by_key(|(i, _)| *i) {
        None => Ok(()),
        Some((_, e)) => Err(e),
    }
}

/// Shades the fragment rectangle `x0..x1` × `y0..y1` of a
/// `plan.width`×`height` target serially on seat 0, quantising into the
/// tile-local buffer `out` (row stride `(x1 - x0) * channels`).
///
/// Fragment positions stay global — pixel `(x, y)` of a rect draw is
/// bit-identical to pixel `(x, y)` of a full draw (see [`run_seat_span`])
/// — so tile-level redundancy elimination can re-shade exactly the tiles
/// whose signatures went stale and splice the bytes into the target.
///
/// # Errors
///
/// Returns [`ExecError`] when the rect exceeds the plan width or target
/// height, the buffer is too small, or the kernel fails on any fragment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_plan_rect(
    plan: &mut DrawPlan,
    samplers: &[&dyn Sampler],
    height: u32,
    x0: u32,
    x1: u32,
    y0: u32,
    y1: u32,
    channels: usize,
    out: &mut [u8],
) -> Result<(), ExecError> {
    if x0 > x1 || x1 > plan.width || y0 > y1 || y1 > height {
        return Err(ExecError::new(format!(
            "tile rect {x0}..{x1} x {y0}..{y1} outside {}x{height} target",
            plan.width
        )));
    }
    let tile_w = (x1 - x0) as usize;
    let needed = tile_w * (y1 - y0) as usize * channels;
    if out.len() < needed {
        return Err(ExecError::new(format!(
            "tile buffer holds {} bytes, rect needs {needed}",
            out.len()
        )));
    }
    if needed == 0 {
        return Ok(());
    }
    plan.ensure_seats(1)?;
    let DrawPlan {
        shader,
        table,
        seats,
        ..
    } = plan;
    let shader: &Shader = shader;
    run_seat_span(
        &mut seats[0],
        shader,
        samplers,
        table,
        height,
        x0,
        x1,
        y0,
        y1,
        |x, y, rgba| {
            let px = quantize_rgba8(rgba);
            let idx = ((y - y0) as usize * tile_w + (x - x0) as usize) * channels;
            out[idx..idx + channels].copy_from_slice(&px[..channels]);
        },
    )
}

/// Converts a raw fragment colour to RGBA8 exactly as the fixed-function
/// output stage does: clamp to [0, 1], scale by 255, round to nearest.
#[must_use]
pub fn quantize_rgba8(rgba: [f32; 4]) -> [u8; 4] {
    let q = |x: f32| (x.clamp(0.0, 1.0) * 255.0 + 0.5).floor() as u8;
    [q(rgba[0]), q(rgba[1]), q(rgba[2]), q(rgba[3])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_shader::compile;

    #[test]
    fn interpolation_hits_corners_and_centre() {
        let c = texcoord_corners();
        assert_eq!(interpolate(&c, 0.0, 0.0)[..2], [0.0, 0.0]);
        assert_eq!(interpolate(&c, 1.0, 1.0)[..2], [1.0, 1.0]);
        assert_eq!(interpolate(&c, 0.5, 0.5)[..2], [0.5, 0.5]);
    }

    #[test]
    fn column_table_matches_interpolate_bitwise() {
        // Awkward corner values, including negatives and non-dyadic
        // fractions, at an odd width: the hoisted lerps must equal the
        // direct bilinear expression bit for bit.
        let corners = [
            [0.3, -1.7, 255.0, 0.1],
            [2.9, 0.33, -4.0, 7.7],
            [-0.6, 12.1, 3.3, 0.9],
            [1.1, -8.8, 0.77, 5.5],
        ];
        let width = 37u32;
        let table = ColumnTable::new(&[corners], width);
        for y in 0..23u32 {
            let v = (y as f32 + 0.5) / 23.0;
            for x in 0..width {
                let u = (x as f32 + 0.5) / width as f32;
                let want = interpolate(&corners, u, v);
                let got = table.value(0, x as usize, v);
                assert_eq!(got.map(f32::to_bits), want.map(f32::to_bits));
            }
        }
    }

    #[test]
    fn rasterizes_identity_coordinate_kernel() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let mut got = [[0.0f32; 4]; 4];
        rasterize_quad(
            &sh,
            &UniformValues::new(),
            &[],
            2,
            2,
            &[texcoord_corners()],
            |x, y, c| got[(y * 2 + x) as usize] = c,
        )
        .unwrap();
        // Fragment centres of a 2x2 grid are at 0.25/0.75.
        assert_eq!(got[0][..2], [0.25, 0.25]);
        assert_eq!(got[1][..2], [0.75, 0.25]);
        assert_eq!(got[2][..2], [0.25, 0.75]);
        assert_eq!(got[3][..2], [0.75, 0.75]);
    }

    #[test]
    fn corner_count_mismatch_errors() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let r = rasterize_quad(&sh, &UniformValues::new(), &[], 1, 1, &[], |_, _, _| {});
        assert!(r.is_err());
    }

    fn raster_bytes(
        sh: &Shader,
        width: u32,
        height: u32,
        channels: usize,
        exec: &ExecConfig,
    ) -> Vec<u8> {
        let mut data = vec![0u8; width as usize * height as usize * channels];
        rasterize_quad_into(
            sh,
            &UniformValues::new(),
            &[],
            &[texcoord_corners()],
            RasterTarget {
                width,
                height,
                channels,
                data: &mut data,
            },
            exec,
        )
        .unwrap();
        data
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x, v.y, v.x * v.y, 1.0); }",
        )
        .unwrap();
        // Odd sizes straddle chunk boundaries; channels 3 exercises the
        // fp24 layout.
        for &(w, h) in &[(33u32, 17u32), (64, 64), (5, 97), (1, 1)] {
            for &ch in &[3usize, 4] {
                let serial = raster_bytes(&sh, w, h, ch, &ExecConfig::serial());
                for threads in [2, 4, 8] {
                    assert_eq!(
                        raster_bytes(&sh, w, h, ch, &ExecConfig::with_threads(threads)),
                        serial,
                        "{w}x{h}x{ch} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_engine_is_byte_identical_to_scalar() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() {\n\
               float a = v.x * 3.7 + v.y;\n\
               if (a < 1.0) { a = sqrt(a + 1.0); } else { a = a * 0.25; }\n\
               gl_FragColor = vec4(a, fract(a * 9.0), v.y, 1.0);\n\
             }",
        )
        .unwrap();
        // Widths around the lane count exercise full, partial and
        // multi-batch rows.
        for &(w, h) in &[(1u32, 5u32), (63, 9), (64, 3), (65, 7), (200, 11)] {
            let scalar = raster_bytes(&sh, w, h, 4, &ExecConfig::serial());
            for threads in [1usize, 4] {
                let cfg = ExecConfig::with_threads(threads).with_engine(Engine::Batched);
                assert_eq!(
                    raster_bytes(&sh, w, h, 4, &cfg),
                    scalar,
                    "{w}x{h} batched at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn band_draws_reassemble_the_full_image() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x, v.y, v.x * v.y, 1.0); }",
        )
        .unwrap();
        for &(w, h) in &[(31u32, 23u32), (64, 64)] {
            let full = raster_bytes(&sh, w, h, 4, &ExecConfig::with_threads(3));
            for bands in [2u32, 3, 7] {
                let mut data = vec![0u8; w as usize * h as usize * 4];
                let rows_per = h.div_ceil(bands);
                let mut y0 = 0;
                while y0 < h {
                    let y1 = (y0 + rows_per).min(h);
                    rasterize_quad_rows_into(
                        &sh,
                        &UniformValues::new(),
                        &[],
                        &[texcoord_corners()],
                        RasterTarget {
                            width: w,
                            height: h,
                            channels: 4,
                            data: &mut data,
                        },
                        y0,
                        y1,
                        &ExecConfig::with_threads(2),
                    )
                    .unwrap();
                    y0 = y1;
                }
                assert_eq!(data, full, "{w}x{h} in {bands} bands");
            }
        }
    }

    #[test]
    fn band_outside_target_errors() {
        let sh = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let mut data = vec![0u8; 4 * 4 * 4];
        let r = rasterize_quad_rows_into(
            &sh,
            &UniformValues::new(),
            &[],
            &[],
            RasterTarget {
                width: 4,
                height: 4,
                channels: 4,
                data: &mut data,
            },
            2,
            9,
            &ExecConfig::serial(),
        );
        assert!(r.unwrap_err().to_string().contains("row band"));
    }

    /// A sampler that panics on fetch: worker panics must surface as
    /// `ExecError`, never as an unwind out of the rasteriser.
    struct PanicSampler;
    impl Sampler for PanicSampler {
        fn fetch(&self, _u: f32, _v: f32) -> [f32; 4] {
            panic!("sampler exploded")
        }
    }

    #[test]
    fn worker_panic_becomes_an_error() {
        let sh = compile(
            "uniform sampler2D t;\nvarying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let mut data = vec![0u8; 32 * 32 * 4];
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let r = rasterize_quad_into(
            &sh,
            &UniformValues::new(),
            &[&PanicSampler],
            &[texcoord_corners()],
            RasterTarget {
                width: 32,
                height: 32,
                channels: 4,
                data: &mut data,
            },
            &ExecConfig::with_threads(4),
        );
        std::panic::set_hook(prev);
        let e = r.unwrap_err();
        assert!(e.to_string().contains("sampler exploded"), "{e}");
    }

    #[test]
    fn undersized_target_buffer_errors() {
        let sh = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let mut data = vec![0u8; 7];
        let r = rasterize_quad_into(
            &sh,
            &UniformValues::new(),
            &[],
            &[],
            RasterTarget {
                width: 2,
                height: 2,
                channels: 4,
                data: &mut data,
            },
            &ExecConfig::serial(),
        );
        assert!(r.unwrap_err().to_string().contains("needs 16"));
    }

    #[allow(clippy::too_many_arguments)]
    fn planned_bytes(
        sh: &Shader,
        uniforms: &UniformValues,
        w: u32,
        h: u32,
        ch: usize,
        engine: Engine,
        threads: usize,
        pool: &mut Option<PoolExecutor>,
        plan: &mut Option<DrawPlan>,
    ) -> Vec<u8> {
        let shader = Arc::new(sh.clone());
        let mut built = DrawPlan::build(
            &shader,
            uniforms,
            engine,
            engine == Engine::Batched,
            &[texcoord_corners()],
            w,
            plan.take(),
        )
        .unwrap();
        let mut data = vec![0u8; w as usize * h as usize * ch];
        execute_plan(
            &mut built,
            &[],
            RasterTarget {
                width: w,
                height: h,
                channels: ch,
                data: &mut data,
            },
            0,
            h,
            threads,
            pool,
        )
        .unwrap();
        *plan = Some(built);
        data
    }

    #[test]
    fn planned_dispatch_is_byte_identical_to_legacy() {
        let sh = compile(
            "uniform float scale;\nvarying vec2 v;\n\
             void main() {\n\
               float a = v.x * scale + v.y;\n\
               if (a < 1.0) { a = sqrt(a + 1.0); } else { a = a * 0.25; }\n\
               gl_FragColor = vec4(a, fract(a * 9.0), v.x * v.y, 1.0);\n\
             }",
        )
        .unwrap();
        let mut uniforms = UniformValues::new();
        uniforms.set_scalar("scale", 3.7);
        // One pool shared across every planned dispatch, as the context
        // holds it; plans recycled across draws exercise seat rebinding.
        let mut pool = None;
        let mut plan = None;
        for &(w, h) in &[(33u32, 17u32), (64, 64), (5, 97), (1, 1), (65, 40)] {
            for &ch in &[3usize, 4] {
                for engine in [Engine::Scalar, Engine::Batched] {
                    let mut legacy = vec![0u8; w as usize * h as usize * ch];
                    rasterize_quad_into(
                        &sh,
                        &uniforms,
                        &[],
                        &[texcoord_corners()],
                        RasterTarget {
                            width: w,
                            height: h,
                            channels: ch,
                            data: &mut legacy,
                        },
                        &ExecConfig::with_threads(4).with_engine(engine),
                    )
                    .unwrap();
                    for threads in [1usize, 2, 4, 8] {
                        assert_eq!(
                            planned_bytes(
                                &sh, &uniforms, w, h, ch, engine, threads, &mut pool, &mut plan,
                            ),
                            legacy,
                            "{w}x{h}x{ch} {engine:?} planned at {threads} threads"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn planned_band_draws_reassemble_the_full_image() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x, v.y, v.x * v.y, 1.0); }",
        )
        .unwrap();
        let (w, h) = (31u32, 46u32);
        let mut pool = None;
        let mut plan = None;
        let full = planned_bytes(
            &sh,
            &UniformValues::new(),
            w,
            h,
            4,
            Engine::Batched,
            4,
            &mut pool,
            &mut plan,
        );
        let shader = Arc::new(sh.clone());
        let mut band_plan = DrawPlan::build(
            &shader,
            &UniformValues::new(),
            Engine::Batched,
            true,
            &[texcoord_corners()],
            w,
            None,
        )
        .unwrap();
        let mut data = vec![0u8; w as usize * h as usize * 4];
        for (y0, y1) in [(0u32, 19u32), (19, 33), (33, 46)] {
            execute_plan(
                &mut band_plan,
                &[],
                RasterTarget {
                    width: w,
                    height: h,
                    channels: 4,
                    data: &mut data,
                },
                y0,
                y1,
                3,
                &mut pool,
            )
            .unwrap();
        }
        assert_eq!(data, full);
    }

    #[test]
    fn rect_draws_are_byte_identical_to_full_draws() {
        // Shading a tile rect in isolation induces different batch
        // boundaries than a full row, so this pins the lane-independence
        // property tile skipping rests on — for every engine, on
        // non-divisible tile grids.
        let sh = compile(
            "uniform float scale;\nvarying vec2 v;\n\
             void main() {\n\
               float a = v.x * scale + v.y;\n\
               if (a < 1.0) { a = sqrt(a + 1.0); } else { a = a * 0.25; }\n\
               gl_FragColor = vec4(a, fract(a * 9.0), v.x * v.y, 1.0);\n\
             }",
        )
        .unwrap();
        let mut uniforms = UniformValues::new();
        uniforms.set_scalar("scale", 3.7);
        let shader = Arc::new(sh);
        let (w, h) = (100u32, 70u32);
        for engine in [Engine::Scalar, Engine::Batched, Engine::Compiled] {
            let mut plan = DrawPlan::build(
                &shader,
                &uniforms,
                engine,
                engine != Engine::Scalar,
                &[texcoord_corners()],
                w,
                None,
            )
            .unwrap();
            let mut full = vec![0u8; w as usize * h as usize * 4];
            let mut pool = None;
            execute_plan(
                &mut plan,
                &[],
                RasterTarget {
                    width: w,
                    height: h,
                    channels: 4,
                    data: &mut full,
                },
                0,
                h,
                4,
                &mut pool,
            )
            .unwrap();
            // 16- and 64-pixel tiles, both non-divisible into 100×70.
            for tile in [16u32, 64] {
                let mut assembled = vec![0u8; full.len()];
                let mut ty = 0;
                while ty < h {
                    let y1 = (ty + tile).min(h);
                    let mut tx = 0;
                    while tx < w {
                        let x1 = (tx + tile).min(w);
                        let tw = (x1 - tx) as usize;
                        let mut bytes = vec![0u8; tw * (y1 - ty) as usize * 4];
                        execute_plan_rect(&mut plan, &[], h, tx, x1, ty, y1, 4, &mut bytes)
                            .unwrap();
                        for (row, chunk) in bytes.chunks(tw * 4).enumerate() {
                            let y = ty as usize + row;
                            let at = (y * w as usize + tx as usize) * 4;
                            assembled[at..at + tw * 4].copy_from_slice(chunk);
                        }
                        tx = x1;
                    }
                    ty = y1;
                }
                assert_eq!(assembled, full, "{engine:?} tiles of {tile}");
            }
        }
    }

    #[test]
    fn column_slice_hash_sees_columns_and_content() {
        let sh =
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.0, 1.0); }").unwrap();
        let shader = Arc::new(sh);
        let plan = DrawPlan::build(
            &shader,
            &UniformValues::new(),
            Engine::Scalar,
            false,
            &[texcoord_corners()],
            64,
            None,
        )
        .unwrap();
        assert_ne!(
            plan.column_slice_hash(0, 16),
            plan.column_slice_hash(16, 32)
        );
        assert_eq!(plan.column_slice_hash(0, 16), plan.column_slice_hash(0, 16));
        let mut other = texcoord_corners();
        other[1][0] = 0.25;
        let shifted = DrawPlan::build(
            &shader,
            &UniformValues::new(),
            Engine::Scalar,
            false,
            &[other],
            64,
            None,
        )
        .unwrap();
        assert_ne!(
            plan.column_slice_hash(0, 16),
            shifted.column_slice_hash(0, 16)
        );
    }

    #[test]
    fn planned_panic_becomes_an_error_and_pool_survives() {
        let sh = compile(
            "uniform sampler2D t;\nvarying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let shader = Arc::new(sh.clone());
        let mut plan = DrawPlan::build(
            &shader,
            &UniformValues::new(),
            Engine::Scalar,
            false,
            &[texcoord_corners()],
            32,
            None,
        )
        .unwrap();
        let mut pool = None;
        let mut data = vec![0u8; 32 * 32 * 4];
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let r = execute_plan(
            &mut plan,
            &[&PanicSampler],
            RasterTarget {
                width: 32,
                height: 32,
                channels: 4,
                data: &mut data,
            },
            0,
            32,
            4,
            &mut pool,
        );
        std::panic::set_hook(prev);
        let e = r.unwrap_err();
        assert!(e.to_string().contains("sampler exploded"), "{e}");

        // The pool and plan both stay usable after a panicked draw.
        let ok =
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.0, 1.0); }").unwrap();
        let mut plan = None;
        let bytes = planned_bytes(
            &ok,
            &UniformValues::new(),
            32,
            32,
            4,
            Engine::Scalar,
            4,
            &mut pool,
            &mut plan,
        );
        let mut serial = vec![0u8; 32 * 32 * 4];
        rasterize_quad_into(
            &ok,
            &UniformValues::new(),
            &[],
            &[texcoord_corners()],
            RasterTarget {
                width: 32,
                height: 32,
                channels: 4,
                data: &mut serial,
            },
            &ExecConfig::serial(),
        )
        .unwrap();
        assert_eq!(bytes, serial);
    }

    #[test]
    fn quantization_clamps_and_rounds() {
        assert_eq!(quantize_rgba8([0.0, 1.0, -0.5, 2.0]), [0, 255, 0, 255]);
        assert_eq!(quantize_rgba8([0.5, 0.25, 0.75, 1.0]), [128, 64, 191, 255]);
        // 1/255 quantum round-trips exactly.
        let x = 37.0 / 255.0;
        assert_eq!(quantize_rgba8([x, x, x, x]), [37, 37, 37, 37]);
    }
}
