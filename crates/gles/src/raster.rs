//! The fragment rasteriser.
//!
//! GPGPU-over-GLES draws exactly one primitive shape: an axis-aligned quad
//! covering the render target, with varyings interpolated across it. This
//! module rasterises that shape functionally (running the compiled kernel
//! per fragment); arbitrary triangle meshes are out of scope for the
//! reproduction and rejected by the context layer.
//!
//! Two entry points exist: the closure-based [`rasterize_quad`] (the
//! serial scalar reference) and [`rasterize_quad_into`], which writes
//! quantised RGBA8 bytes straight into a target buffer, can fan the work
//! out over a [`std::thread::scope`] worker pool, and can execute on
//! either tier of the fragment engine according to an [`ExecConfig`]:
//!
//! * [`Engine::Scalar`] — the original per-fragment [`Executor`] over the
//!   unmodified shader;
//! * [`Engine::Batched`] — the shader is first specialised against the
//!   bound uniforms ([`mgpu_shader::specialize`]), then executed in
//!   [`LANES`]-wide batches by the SoA [`BatchExecutor`].
//!
//! Both tiers share one interpolation scheme: a per-column table of the
//! horizontal lerps (which depend only on `x`), finished per fragment with
//! the vertical lerp — the exact f32 expressions of [`interpolate`], just
//! hoisted, so every engine/thread-count combination is byte-for-byte
//! identical. The determinism tests at the workspace root prove it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

use mgpu_shader::ir::Shader;
use mgpu_shader::{specialize, BatchExecutor, ExecError, Executor, Sampler, UniformValues, LANES};

use crate::exec::{Engine, ExecConfig, CHUNK_ROWS};

/// Corner values for one varying, in the order: (0,0), (1,0), (0,1), (1,1)
/// of the unit quad (v increasing downward in texture space).
pub type VaryingCorners = [[f32; 4]; 4];

/// The standard GPGPU texcoord quad: each fragment receives its own
/// normalised coordinate, so texel (x, y) maps 1:1 onto fragment (x, y).
#[must_use]
pub fn texcoord_corners() -> VaryingCorners {
    [
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0, 0.0],
    ]
}

/// Bilinearly interpolates corner values at `(u, v)`.
#[must_use]
pub fn interpolate(corners: &VaryingCorners, u: f32, v: f32) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    for c in 0..4 {
        let top = corners[0][c] * (1.0 - u) + corners[1][c] * u;
        let bottom = corners[2][c] * (1.0 - u) + corners[3][c] * u;
        out[c] = top * (1.0 - v) + bottom * v;
    }
    out
}

/// Column-hoisted varying interpolation for a fixed-width grid.
///
/// [`interpolate`] splits into a horizontal lerp (dependent only on `u`,
/// i.e. on the column) and a vertical lerp (dependent only on `v`). The
/// table precomputes the horizontal `top`/`bottom` pair for every
/// (varying, column) once per draw; [`ColumnTable::value`] finishes with
/// `top * (1 - v) + bottom * v` — the same f32 expression `interpolate`
/// evaluates, so hoisting is bitwise invisible.
struct ColumnTable {
    slots: usize,
    width: usize,
    /// `(top, bottom)` horizontal lerps, indexed `slot * width + x`.
    cols: Vec<([f32; 4], [f32; 4])>,
}

impl ColumnTable {
    fn new(corners: &[VaryingCorners], width: u32) -> Self {
        let width = width as usize;
        let mut cols = Vec::with_capacity(corners.len() * width);
        for corner in corners {
            for x in 0..width {
                let u = (x as f32 + 0.5) / width as f32;
                let (mut top, mut bottom) = ([0.0f32; 4], [0.0f32; 4]);
                for c in 0..4 {
                    top[c] = corner[0][c] * (1.0 - u) + corner[1][c] * u;
                    bottom[c] = corner[2][c] * (1.0 - u) + corner[3][c] * u;
                }
                cols.push((top, bottom));
            }
        }
        ColumnTable {
            slots: corners.len(),
            width,
            cols,
        }
    }

    /// The interpolated value of varying `slot` at column `x`, row
    /// position `v` — bit-identical to [`interpolate`] at the column's
    /// `u`.
    #[inline]
    fn value(&self, slot: usize, x: usize, v: f32) -> [f32; 4] {
        let (top, bottom) = &self.cols[slot * self.width + x];
        let mut out = [0.0f32; 4];
        for c in 0..4 {
            out[c] = top[c] * (1.0 - v) + bottom[c] * v;
        }
        out
    }
}

/// Per-worker execution state for one tier of the fragment engine.
enum FragEngine<'s> {
    /// Per-fragment scalar interpretation.
    Scalar(Executor<'s>),
    /// Lane-batched SoA interpretation (boxed: the register planes are
    /// large and the scratch buffers live alongside them).
    Batched(Box<BatchState<'s>>),
}

/// The batched tier plus its reusable staging buffers.
struct BatchState<'s> {
    exec: BatchExecutor<'s>,
    /// Slot-major varying staging, stride [`LANES`].
    varyings: Vec<[f32; 4]>,
    /// Per-lane output colours of the current batch.
    colors: [[f32; 4]; LANES],
}

impl<'s> FragEngine<'s> {
    fn new(
        shader: &'s Shader,
        uniforms: &UniformValues,
        engine: Engine,
        slots: usize,
    ) -> Result<Self, ExecError> {
        Ok(match engine {
            Engine::Scalar => FragEngine::Scalar(Executor::new(shader, uniforms)?),
            Engine::Batched => FragEngine::Batched(Box::new(BatchState {
                exec: BatchExecutor::new(shader, uniforms)?,
                varyings: vec![[0.0f32; 4]; slots * LANES],
                colors: [[0.0f32; 4]; LANES],
            })),
        })
    }
}

/// Runs the engine over rows `y0..y1` of the grid, calling `emit` for
/// every fragment with its raw output colour, in row-major fragment order.
/// Shared by every entry point and worker, so all paths interpolate and
/// execute through the same code.
fn drive_fragments(
    engine: &mut FragEngine<'_>,
    samplers: &[&dyn Sampler],
    table: &ColumnTable,
    height: u32,
    y0: u32,
    y1: u32,
    mut emit: impl FnMut(u32, u32, [f32; 4]),
) -> Result<(), ExecError> {
    let width = table.width as u32;
    match engine {
        FragEngine::Scalar(ex) => {
            let mut varying_values = vec![[0.0f32; 4]; table.slots];
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                for x in 0..width {
                    for (slot, val) in varying_values.iter_mut().enumerate() {
                        *val = table.value(slot, x as usize, v);
                    }
                    emit(x, y, ex.run(&varying_values, samplers)?);
                }
            }
        }
        FragEngine::Batched(st) => {
            for y in y0..y1 {
                let v = (y as f32 + 0.5) / height as f32;
                let mut x0 = 0u32;
                while x0 < width {
                    let n = (width - x0).min(LANES as u32) as usize;
                    for slot in 0..table.slots {
                        for l in 0..n {
                            st.varyings[slot * LANES + l] = table.value(slot, x0 as usize + l, v);
                        }
                    }
                    st.exec.run(&st.varyings, n, samplers, &mut st.colors)?;
                    for (l, &color) in st.colors[..n].iter().enumerate() {
                        emit(x0 + l as u32, y, color);
                    }
                    x0 += n as u32;
                }
            }
        }
    }
    Ok(())
}

/// Runs `shader` over a `width`×`height` grid, calling `write` for every
/// fragment with its raw (unclamped) output colour.
///
/// This is the serial scalar reference path: the unmodified shader on the
/// per-fragment [`Executor`], one fragment at a time.
///
/// `corners` supplies one corner set per varying slot, in shader declaration
/// order.
///
/// # Errors
///
/// Returns [`ExecError`] if uniforms or samplers are missing, or the corner
/// count does not match the shader's varyings.
pub fn rasterize_quad(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    width: u32,
    height: u32,
    corners: &[VaryingCorners],
    write: impl FnMut(u32, u32, [f32; 4]),
) -> Result<(), ExecError> {
    check_corners(shader, corners)?;
    let table = ColumnTable::new(corners, width);
    let mut engine = FragEngine::new(shader, uniforms, Engine::Scalar, corners.len())?;
    drive_fragments(&mut engine, samplers, &table, height, 0, height, write)
}

/// A writable pixel buffer for [`rasterize_quad_into`].
#[derive(Debug)]
pub struct RasterTarget<'a> {
    /// Target width in pixels.
    pub width: u32,
    /// Target height in pixels.
    pub height: u32,
    /// Bytes stored per pixel (the first `channels` of the quantised RGBA).
    pub channels: usize,
    /// Row-major pixel bytes, at least `width * height * channels` long.
    pub data: &'a mut [u8],
}

/// Runs `shader` over the target grid, writing quantised pixels directly
/// into `target.data` — serially, or on a scoped worker pool when `exec`
/// asks for more than one thread, on the fragment-engine tier `exec`
/// selects. With [`Engine::Batched`] the shader is first specialised
/// against the bound uniforms, once per draw.
///
/// The framebuffer is cut into fixed chunks of [`CHUNK_ROWS`] rows;
/// chunks are dealt to workers round-robin by index and each worker runs
/// its own engine instance. No execution state is shared between workers,
/// so the output is byte-for-byte identical to the serial path. A kernel
/// failure (or panic) in any chunk surfaces as the error of the
/// lowest-index failing chunk — the same error the serial path would
/// report first.
///
/// # Errors
///
/// Returns [`ExecError`] if uniforms or samplers are missing, the corner
/// count does not match the shader's varyings, the buffer is too small,
/// or the kernel fails (or panics) on any fragment.
pub fn rasterize_quad_into(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    corners: &[VaryingCorners],
    target: RasterTarget<'_>,
    exec: &ExecConfig,
) -> Result<(), ExecError> {
    let full = target.height;
    rasterize_quad_rows_into(shader, uniforms, samplers, corners, target, 0, full, exec)
}

/// Like [`rasterize_quad_into`], but shades only rows `y0..y1` of the
/// target, leaving every other row's bytes untouched. Fragment positions
/// stay global — row `y` of a band draw is bit-identical to row `y` of a
/// full draw — so a draw split into bands reassembles the exact full-draw
/// image. This is the primitive behind watchdog-driven draw splitting: a
/// pass whose estimated GPU time busts the per-draw budget is re-issued as
/// several row-band sub-draws.
///
/// # Errors
///
/// As [`rasterize_quad_into`], plus an [`ExecError`] when `y0..y1` is not
/// a sub-range of `0..target.height`.
#[allow(clippy::too_many_arguments)]
pub fn rasterize_quad_rows_into(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    corners: &[VaryingCorners],
    target: RasterTarget<'_>,
    y0: u32,
    y1: u32,
    exec: &ExecConfig,
) -> Result<(), ExecError> {
    check_corners(shader, corners)?;
    let RasterTarget {
        width,
        height,
        channels,
        data,
    } = target;
    if y0 > y1 || y1 > height {
        return Err(ExecError::new(format!(
            "row band {y0}..{y1} outside target height {height}"
        )));
    }
    let needed = width as usize * height as usize * channels;
    if data.len() < needed {
        return Err(ExecError::new(format!(
            "target buffer holds {} bytes, {width}x{height}x{channels} needs {needed}",
            data.len()
        )));
    }
    if needed == 0 || y0 == y1 {
        return Ok(());
    }
    let row_bytes = width as usize * channels;
    let data = &mut data[y0 as usize * row_bytes..y1 as usize * row_bytes];
    let band_rows = y1 - y0;

    // Bind-time specialisation: fold the bound uniforms into the shader
    // as constants, once per draw. Only the batched tier uses it — the
    // scalar tier stays the pristine reference path. Timing is computed
    // by the caller from the original shader, so this can never perturb
    // the simulated cost.
    let engine_kind = exec.engine();
    let specialized;
    let shader = match engine_kind {
        Engine::Scalar => shader,
        Engine::Batched => {
            specialized = specialize(shader, uniforms)?;
            &specialized
        }
    };
    let table = ColumnTable::new(corners, width);

    let n_chunks = band_rows.div_ceil(CHUNK_ROWS) as usize;
    let threads = exec.threads().min(n_chunks);
    if threads <= 1 {
        let mut engine = FragEngine::new(shader, uniforms, engine_kind, corners.len())?;
        return run_rows(
            &mut engine,
            samplers,
            &table,
            height,
            y0,
            y1,
            channels,
            data,
        );
    }

    // Deal fixed row-chunks to workers round-robin by chunk index. The
    // assignment depends only on the target size and thread count, and
    // every chunk's bytes are disjoint, so no synchronisation is needed.
    let chunk_bytes = CHUNK_ROWS as usize * width as usize * channels;
    let mut per_worker: Vec<Vec<(usize, &mut [u8])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slice) in data.chunks_mut(chunk_bytes).enumerate() {
        per_worker[i % threads].push((i, slice));
    }

    let table = &table;
    let first_err = thread::scope(|s| {
        let handles: Vec<_> = per_worker
            .into_iter()
            .map(|chunks| {
                s.spawn(move || -> Option<(usize, ExecError)> {
                    // One engine instance per worker.
                    let mut engine =
                        match FragEngine::new(shader, uniforms, engine_kind, corners.len()) {
                            Ok(engine) => engine,
                            Err(e) => return Some((chunks.first().map_or(0, |(i, _)| *i), e)),
                        };
                    for (i, slice) in chunks {
                        // Chunk indices are band-relative; rows stay global
                        // so band draws are bit-identical to full draws.
                        let cy0 = y0 + i as u32 * CHUNK_ROWS;
                        let cy1 = (cy0 + CHUNK_ROWS).min(y1);
                        // Contain panics per chunk so no unwind crosses the
                        // scope boundary and poisons the caller.
                        let run = catch_unwind(AssertUnwindSafe(|| {
                            run_rows(
                                &mut engine,
                                samplers,
                                table,
                                height,
                                cy0,
                                cy1,
                                channels,
                                slice,
                            )
                        }));
                        match run {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => return Some((i, e)),
                            Err(p) => {
                                return Some((
                                    i,
                                    ExecError::new(format!(
                                        "kernel panicked: {}",
                                        panic_message(&*p)
                                    )),
                                ))
                            }
                        }
                    }
                    None
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| match h.join() {
                // Worker panics are caught per chunk; a join failure means
                // the unwinding machinery itself broke — surface it as the
                // lowest-priority error rather than panicking the caller.
                Ok(result) => result,
                Err(p) => Some((
                    usize::MAX,
                    ExecError::new(format!("worker thread panicked: {}", panic_message(&*p))),
                )),
            })
            .min_by_key(|(i, _)| *i)
    });

    match first_err {
        None => Ok(()),
        Some((_, e)) => Err(e),
    }
}

/// Extracts a printable message from a caught panic payload.
pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

fn check_corners(shader: &Shader, corners: &[VaryingCorners]) -> Result<(), ExecError> {
    let n_varyings = shader.varying_slots().count();
    if corners.len() != n_varyings {
        return Err(ExecError::new(format!(
            "shader has {n_varyings} varyings, {} corner sets provided",
            corners.len()
        )));
    }
    Ok(())
}

/// Executes rows `y0..y1`, quantising into `out` (which covers exactly
/// those rows). Shared by the serial path and every parallel worker, so
/// both paths run the same per-fragment code.
#[allow(clippy::too_many_arguments)]
fn run_rows(
    engine: &mut FragEngine<'_>,
    samplers: &[&dyn Sampler],
    table: &ColumnTable,
    height: u32,
    y0: u32,
    y1: u32,
    channels: usize,
    out: &mut [u8],
) -> Result<(), ExecError> {
    let width = table.width;
    drive_fragments(engine, samplers, table, height, y0, y1, |x, y, rgba| {
        let px = quantize_rgba8(rgba);
        let idx = ((y - y0) as usize * width + x as usize) * channels;
        out[idx..idx + channels].copy_from_slice(&px[..channels]);
    })
}

/// Converts a raw fragment colour to RGBA8 exactly as the fixed-function
/// output stage does: clamp to [0, 1], scale by 255, round to nearest.
#[must_use]
pub fn quantize_rgba8(rgba: [f32; 4]) -> [u8; 4] {
    let q = |x: f32| (x.clamp(0.0, 1.0) * 255.0 + 0.5).floor() as u8;
    [q(rgba[0]), q(rgba[1]), q(rgba[2]), q(rgba[3])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_shader::compile;

    #[test]
    fn interpolation_hits_corners_and_centre() {
        let c = texcoord_corners();
        assert_eq!(interpolate(&c, 0.0, 0.0)[..2], [0.0, 0.0]);
        assert_eq!(interpolate(&c, 1.0, 1.0)[..2], [1.0, 1.0]);
        assert_eq!(interpolate(&c, 0.5, 0.5)[..2], [0.5, 0.5]);
    }

    #[test]
    fn column_table_matches_interpolate_bitwise() {
        // Awkward corner values, including negatives and non-dyadic
        // fractions, at an odd width: the hoisted lerps must equal the
        // direct bilinear expression bit for bit.
        let corners = [
            [0.3, -1.7, 255.0, 0.1],
            [2.9, 0.33, -4.0, 7.7],
            [-0.6, 12.1, 3.3, 0.9],
            [1.1, -8.8, 0.77, 5.5],
        ];
        let width = 37u32;
        let table = ColumnTable::new(&[corners], width);
        for y in 0..23u32 {
            let v = (y as f32 + 0.5) / 23.0;
            for x in 0..width {
                let u = (x as f32 + 0.5) / width as f32;
                let want = interpolate(&corners, u, v);
                let got = table.value(0, x as usize, v);
                assert_eq!(got.map(f32::to_bits), want.map(f32::to_bits));
            }
        }
    }

    #[test]
    fn rasterizes_identity_coordinate_kernel() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let mut got = [[0.0f32; 4]; 4];
        rasterize_quad(
            &sh,
            &UniformValues::new(),
            &[],
            2,
            2,
            &[texcoord_corners()],
            |x, y, c| got[(y * 2 + x) as usize] = c,
        )
        .unwrap();
        // Fragment centres of a 2x2 grid are at 0.25/0.75.
        assert_eq!(got[0][..2], [0.25, 0.25]);
        assert_eq!(got[1][..2], [0.75, 0.25]);
        assert_eq!(got[2][..2], [0.25, 0.75]);
        assert_eq!(got[3][..2], [0.75, 0.75]);
    }

    #[test]
    fn corner_count_mismatch_errors() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let r = rasterize_quad(&sh, &UniformValues::new(), &[], 1, 1, &[], |_, _, _| {});
        assert!(r.is_err());
    }

    fn raster_bytes(
        sh: &Shader,
        width: u32,
        height: u32,
        channels: usize,
        exec: &ExecConfig,
    ) -> Vec<u8> {
        let mut data = vec![0u8; width as usize * height as usize * channels];
        rasterize_quad_into(
            sh,
            &UniformValues::new(),
            &[],
            &[texcoord_corners()],
            RasterTarget {
                width,
                height,
                channels,
                data: &mut data,
            },
            exec,
        )
        .unwrap();
        data
    }

    #[test]
    fn parallel_output_is_byte_identical_to_serial() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x, v.y, v.x * v.y, 1.0); }",
        )
        .unwrap();
        // Odd sizes straddle chunk boundaries; channels 3 exercises the
        // fp24 layout.
        for &(w, h) in &[(33u32, 17u32), (64, 64), (5, 97), (1, 1)] {
            for &ch in &[3usize, 4] {
                let serial = raster_bytes(&sh, w, h, ch, &ExecConfig::serial());
                for threads in [2, 4, 8] {
                    assert_eq!(
                        raster_bytes(&sh, w, h, ch, &ExecConfig::with_threads(threads)),
                        serial,
                        "{w}x{h}x{ch} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_engine_is_byte_identical_to_scalar() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() {\n\
               float a = v.x * 3.7 + v.y;\n\
               if (a < 1.0) { a = sqrt(a + 1.0); } else { a = a * 0.25; }\n\
               gl_FragColor = vec4(a, fract(a * 9.0), v.y, 1.0);\n\
             }",
        )
        .unwrap();
        // Widths around the lane count exercise full, partial and
        // multi-batch rows.
        for &(w, h) in &[(1u32, 5u32), (63, 9), (64, 3), (65, 7), (200, 11)] {
            let scalar = raster_bytes(&sh, w, h, 4, &ExecConfig::serial());
            for threads in [1usize, 4] {
                let cfg = ExecConfig::with_threads(threads).with_engine(Engine::Batched);
                assert_eq!(
                    raster_bytes(&sh, w, h, 4, &cfg),
                    scalar,
                    "{w}x{h} batched at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn band_draws_reassemble_the_full_image() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v.x, v.y, v.x * v.y, 1.0); }",
        )
        .unwrap();
        for &(w, h) in &[(31u32, 23u32), (64, 64)] {
            let full = raster_bytes(&sh, w, h, 4, &ExecConfig::with_threads(3));
            for bands in [2u32, 3, 7] {
                let mut data = vec![0u8; w as usize * h as usize * 4];
                let rows_per = h.div_ceil(bands);
                let mut y0 = 0;
                while y0 < h {
                    let y1 = (y0 + rows_per).min(h);
                    rasterize_quad_rows_into(
                        &sh,
                        &UniformValues::new(),
                        &[],
                        &[texcoord_corners()],
                        RasterTarget {
                            width: w,
                            height: h,
                            channels: 4,
                            data: &mut data,
                        },
                        y0,
                        y1,
                        &ExecConfig::with_threads(2),
                    )
                    .unwrap();
                    y0 = y1;
                }
                assert_eq!(data, full, "{w}x{h} in {bands} bands");
            }
        }
    }

    #[test]
    fn band_outside_target_errors() {
        let sh = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let mut data = vec![0u8; 4 * 4 * 4];
        let r = rasterize_quad_rows_into(
            &sh,
            &UniformValues::new(),
            &[],
            &[],
            RasterTarget {
                width: 4,
                height: 4,
                channels: 4,
                data: &mut data,
            },
            2,
            9,
            &ExecConfig::serial(),
        );
        assert!(r.unwrap_err().to_string().contains("row band"));
    }

    /// A sampler that panics on fetch: worker panics must surface as
    /// `ExecError`, never as an unwind out of the rasteriser.
    struct PanicSampler;
    impl Sampler for PanicSampler {
        fn fetch(&self, _u: f32, _v: f32) -> [f32; 4] {
            panic!("sampler exploded")
        }
    }

    #[test]
    fn worker_panic_becomes_an_error() {
        let sh = compile(
            "uniform sampler2D t;\nvarying vec2 v;\n\
             void main() { gl_FragColor = texture2D(t, v); }",
        )
        .unwrap();
        let mut data = vec![0u8; 32 * 32 * 4];
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence expected panics
        let r = rasterize_quad_into(
            &sh,
            &UniformValues::new(),
            &[&PanicSampler],
            &[texcoord_corners()],
            RasterTarget {
                width: 32,
                height: 32,
                channels: 4,
                data: &mut data,
            },
            &ExecConfig::with_threads(4),
        );
        std::panic::set_hook(prev);
        let e = r.unwrap_err();
        assert!(e.to_string().contains("sampler exploded"), "{e}");
    }

    #[test]
    fn undersized_target_buffer_errors() {
        let sh = compile("void main() { gl_FragColor = vec4(1.0); }").unwrap();
        let mut data = vec![0u8; 7];
        let r = rasterize_quad_into(
            &sh,
            &UniformValues::new(),
            &[],
            &[],
            RasterTarget {
                width: 2,
                height: 2,
                channels: 4,
                data: &mut data,
            },
            &ExecConfig::serial(),
        );
        assert!(r.unwrap_err().to_string().contains("needs 16"));
    }

    #[test]
    fn quantization_clamps_and_rounds() {
        assert_eq!(quantize_rgba8([0.0, 1.0, -0.5, 2.0]), [0, 255, 0, 255]);
        assert_eq!(quantize_rgba8([0.5, 0.25, 0.75, 1.0]), [128, 64, 191, 255]);
        // 1/255 quantum round-trips exactly.
        let x = 37.0 / 255.0;
        assert_eq!(quantize_rgba8([x, x, x, x]), [37, 37, 37, 37]);
    }
}
