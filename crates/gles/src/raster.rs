//! The fragment rasteriser.
//!
//! GPGPU-over-GLES draws exactly one primitive shape: an axis-aligned quad
//! covering the render target, with varyings interpolated across it. This
//! module rasterises that shape functionally (running the compiled kernel
//! per fragment); arbitrary triangle meshes are out of scope for the
//! reproduction and rejected by the context layer.

use mgpu_shader::ir::Shader;
use mgpu_shader::{ExecError, Executor, Sampler, UniformValues};

/// Corner values for one varying, in the order: (0,0), (1,0), (0,1), (1,1)
/// of the unit quad (v increasing downward in texture space).
pub type VaryingCorners = [[f32; 4]; 4];

/// The standard GPGPU texcoord quad: each fragment receives its own
/// normalised coordinate, so texel (x, y) maps 1:1 onto fragment (x, y).
#[must_use]
pub fn texcoord_corners() -> VaryingCorners {
    [
        [0.0, 0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0, 0.0],
        [0.0, 1.0, 0.0, 0.0],
        [1.0, 1.0, 0.0, 0.0],
    ]
}

/// Bilinearly interpolates corner values at `(u, v)`.
#[must_use]
pub fn interpolate(corners: &VaryingCorners, u: f32, v: f32) -> [f32; 4] {
    let mut out = [0.0f32; 4];
    for c in 0..4 {
        let top = corners[0][c] * (1.0 - u) + corners[1][c] * u;
        let bottom = corners[2][c] * (1.0 - u) + corners[3][c] * u;
        out[c] = top * (1.0 - v) + bottom * v;
    }
    out
}

/// Runs `shader` over a `width`×`height` grid, calling `write` for every
/// fragment with its raw (unclamped) output colour.
///
/// `corners` supplies one corner set per varying slot, in shader declaration
/// order.
///
/// # Errors
///
/// Returns [`ExecError`] if uniforms or samplers are missing, or the corner
/// count does not match the shader's varyings.
pub fn rasterize_quad(
    shader: &Shader,
    uniforms: &UniformValues,
    samplers: &[&dyn Sampler],
    width: u32,
    height: u32,
    corners: &[VaryingCorners],
    mut write: impl FnMut(u32, u32, [f32; 4]),
) -> Result<(), ExecError> {
    let n_varyings = shader.varying_slots().count();
    if corners.len() != n_varyings {
        return Err(ExecError::new(format!(
            "shader has {n_varyings} varyings, {} corner sets provided",
            corners.len()
        )));
    }
    let mut exec = Executor::new(shader, uniforms)?;
    let mut varying_values = vec![[0.0f32; 4]; n_varyings];
    for y in 0..height {
        let v = (y as f32 + 0.5) / height as f32;
        for x in 0..width {
            let u = (x as f32 + 0.5) / width as f32;
            for (slot, c) in corners.iter().enumerate() {
                varying_values[slot] = interpolate(c, u, v);
            }
            let rgba = exec.run(&varying_values, samplers)?;
            write(x, y, rgba);
        }
    }
    Ok(())
}

/// Converts a raw fragment colour to RGBA8 exactly as the fixed-function
/// output stage does: clamp to [0, 1], scale by 255, round to nearest.
#[must_use]
pub fn quantize_rgba8(rgba: [f32; 4]) -> [u8; 4] {
    let q = |x: f32| (x.clamp(0.0, 1.0) * 255.0 + 0.5).floor() as u8;
    [q(rgba[0]), q(rgba[1]), q(rgba[2]), q(rgba[3])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_shader::compile;

    #[test]
    fn interpolation_hits_corners_and_centre() {
        let c = texcoord_corners();
        assert_eq!(interpolate(&c, 0.0, 0.0)[..2], [0.0, 0.0]);
        assert_eq!(interpolate(&c, 1.0, 1.0)[..2], [1.0, 1.0]);
        assert_eq!(interpolate(&c, 0.5, 0.5)[..2], [0.5, 0.5]);
    }

    #[test]
    fn rasterizes_identity_coordinate_kernel() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let mut got = [[0.0f32; 4]; 4];
        rasterize_quad(
            &sh,
            &UniformValues::new(),
            &[],
            2,
            2,
            &[texcoord_corners()],
            |x, y, c| got[(y * 2 + x) as usize] = c,
        )
        .unwrap();
        // Fragment centres of a 2x2 grid are at 0.25/0.75.
        assert_eq!(got[0][..2], [0.25, 0.25]);
        assert_eq!(got[1][..2], [0.75, 0.25]);
        assert_eq!(got[2][..2], [0.25, 0.75]);
        assert_eq!(got[3][..2], [0.75, 0.75]);
    }

    #[test]
    fn corner_count_mismatch_errors() {
        let sh = compile(
            "varying vec2 v;\n\
             void main() { gl_FragColor = vec4(v, 0.0, 1.0); }",
        )
        .unwrap();
        let r = rasterize_quad(&sh, &UniformValues::new(), &[], 1, 1, &[], |_, _, _| {});
        assert!(r.is_err());
    }

    #[test]
    fn quantization_clamps_and_rounds() {
        assert_eq!(quantize_rgba8([0.0, 1.0, -0.5, 2.0]), [0, 255, 0, 255]);
        assert_eq!(quantize_rgba8([0.5, 0.25, 0.75, 1.0]), [128, 64, 191, 255]);
        // 1/255 quantum round-trips exactly.
        let x = 37.0 / 255.0;
        assert_eq!(quantize_rgba8([x, x, x, x]), [37, 37, 37, 37]);
    }
}
