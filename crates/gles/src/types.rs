//! Object handles and enums of the GL layer.

use std::fmt;

/// Handle to a texture object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TextureId(pub(crate) u32);

/// Handle to a buffer object (VBO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub(crate) u32);

/// Handle to a framebuffer object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FramebufferId(pub(crate) u32);

/// Handle to a linked program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub(crate) u32);

macro_rules! display_handle {
    ($t:ty, $name:literal) => {
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($name, "#{}"), self.0)
            }
        }
    };
}
display_handle!(TextureId, "texture");
display_handle!(BufferId, "buffer");
display_handle!(FramebufferId, "framebuffer");
display_handle!(ProgramId, "program");

/// Texel storage formats.
///
/// `Rgb8` is the 3-byte format the paper's fp24 optimisation uses to cut
/// texture bandwidth by 25%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TextureFormat {
    /// 4 bytes per texel.
    #[default]
    Rgba8,
    /// 3 bytes per texel (the paper's 24-bit I/O restriction).
    Rgb8,
}

impl TextureFormat {
    /// Bytes per texel.
    #[must_use]
    pub const fn bytes_per_texel(self) -> u64 {
        match self {
            TextureFormat::Rgba8 => 4,
            TextureFormat::Rgb8 => 3,
        }
    }

    /// Number of stored channels.
    #[must_use]
    pub const fn channels(self) -> usize {
        self.bytes_per_texel() as usize
    }
}

/// Texture magnification/minification filter (`glTexParameteri`).
///
/// GPGPU kernels use [`TextureFilter::Nearest`] (exact texel values);
/// image workloads may use [`TextureFilter::Linear`] for free bilinear
/// interpolation in the texture unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TextureFilter {
    /// Nearest texel (the GPGPU configuration).
    #[default]
    Nearest,
    /// Bilinear interpolation of the four surrounding texels.
    Linear,
}

/// `glBufferData` usage hints. The paper reports VBO gains of up to 1.5%
/// "depending on the memory hint provided".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BufferUsage {
    /// Written once, drawn many times: the driver can drop all consistency
    /// bookkeeping.
    StaticDraw,
    /// Rewritten every few frames.
    #[default]
    DynamicDraw,
    /// Rewritten every frame.
    StreamDraw,
}

/// Where a draw call sources its vertex data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VertexSource {
    /// Client-side arrays: the driver copies vertex data to GPU memory on
    /// every draw (step 1 of the paper's Fig. 1 — the cost VBOs avoid).
    #[default]
    ClientArrays,
    /// A bound vertex buffer object, uploaded once via `buffer_data`.
    Vbo(BufferId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_sizes() {
        assert_eq!(TextureFormat::Rgba8.bytes_per_texel(), 4);
        assert_eq!(TextureFormat::Rgb8.bytes_per_texel(), 3);
        assert_eq!(TextureFormat::Rgb8.channels(), 3);
    }

    #[test]
    fn handles_display() {
        assert_eq!(TextureId(3).to_string(), "texture#3");
        assert_eq!(BufferId(1).to_string(), "buffer#1");
        assert_eq!(FramebufferId(7).to_string(), "framebuffer#7");
        assert_eq!(ProgramId(2).to_string(), "program#2");
    }

    #[test]
    fn defaults_match_gles_habits() {
        assert_eq!(TextureFormat::default(), TextureFormat::Rgba8);
        assert_eq!(VertexSource::default(), VertexSource::ClientArrays);
    }
}
