//! The per-context draw-plan cache.
//!
//! Multi-pass GPGPU pipelines re-issue near-identical draws: a block-16
//! sgemm at 1024² runs 64 passes per multiply, each differing only in one
//! scalar uniform, and iterative pipelines repeat whole uniform cycles
//! every multiply. The per-draw setup those draws repeat — uniform
//! specialisation of the shader, column-table hoisting, engine register
//! allocation — depends only on (program, uniforms, engine, target
//! geometry, corners), so this cache keys finished [`DrawPlan`]s by
//! exactly that tuple and hands them back on repeat draws.
//!
//! ## Invalidation
//!
//! Everything a plan captures is part of its key, so most state changes
//! invalidate *by keying*, not by flushing:
//!
//! * **uniform change / program relink** — the uniform or shader hash
//!   changes, so the next draw misses and builds a fresh plan; the stale
//!   entry ages out FIFO. Program handles are never reused by the context
//!   (`next_handle` is monotonic, even across [`Gl::recreate`]), so a
//!   deleted program's entries can never be resurrected by handle reuse.
//! * **texture respecification** — nothing texture-dependent is cached:
//!   sampler views are rebuilt on every draw because ping-pong pipelines
//!   change texture *contents* between passes.
//! * **context loss / recreation** — the context explicitly
//!   [`clears`](PlanCache::clear) the cache: every cached plan references
//!   a program object that no longer exists.
//!
//! Capacity is bounded ([`PLAN_CACHE_CAP`]) with FIFO-order reinsertion on
//! hit, which approximates LRU: a plan re-used this draw goes to the back
//! of the eviction queue.

use std::collections::{HashMap, VecDeque};

use crate::exec::Engine;
use crate::raster::{DrawPlan, VaryingCorners};
use mgpu_shader::hash::Fnv64;

/// Maximum cached plans per context.
///
/// Sized above the paper's deepest uniform cycle: a block-16 sgemm at
/// 1024² cycles 64 distinct `blk_n` values per multiply, and the cache
/// must hold the whole cycle (plus interleaved passes of other programs)
/// for the second multiply to run fully warm.
pub(crate) const PLAN_CACHE_CAP: usize = 128;

/// Everything that determines a [`DrawPlan`], hashed where the full value
/// would be heavy. Hash collisions (64-bit FNV-1a over content) are
/// tolerated: a colliding plan would still be executed with a matching
/// program handle, engine and target geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    /// Program object handle (never reused within a context's lifetime).
    pub program: u32,
    /// [`Shader::stable_hash`](mgpu_shader::ir::Shader) of the program's
    /// compiled shader — catches relinking a handle to new source.
    pub shader_hash: u64,
    /// [`UniformValues::stable_hash`](mgpu_shader::UniformValues) of the
    /// program's bound uniforms at draw time.
    pub uniform_hash: u64,
    /// Fragment engine tier the plan's seats were built for.
    pub engine: Engine,
    /// Whether the plan's shader was specialised against the bound
    /// uniforms at build time (`MGPU_SPEC`) — a spec-on plan must never be
    /// served to a spec-off draw, or vice versa.
    pub spec: bool,
    /// Target geometry the column table was hoisted for.
    pub width: u32,
    /// Target height (plans are band-agnostic but the band validator
    /// checks against the height the plan was keyed under).
    pub height: u32,
    /// Bytes stored per pixel.
    pub channels: usize,
    /// Content hash of the varying corner sets.
    pub corners_hash: u64,
}

/// Stable content hash of a draw's varying corner sets.
pub(crate) fn corners_hash(corners: &[VaryingCorners]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(corners.len() as u64);
    for set in corners {
        for corner in set {
            for &c in corner {
                h.write_f32(c);
            }
        }
    }
    h.finish()
}

/// Counters exposed for tests, benches and tuning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Draws served from a cached plan.
    pub hits: u64,
    /// Draws that had to build a fresh plan.
    pub misses: u64,
    /// Plans discarded to respect the capacity bound.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// A bounded map from [`PlanKey`] to ready-to-execute [`DrawPlan`]s.
///
/// Plans are **taken out** to execute (they hold mutable engine state) and
/// reinserted afterwards; a plan in flight is simply absent, so a
/// recursive or failed draw never observes a half-used plan.
pub(crate) struct PlanCache {
    plans: HashMap<PlanKey, DrawPlan>,
    /// Eviction order, oldest first. May contain stale keys (removed or
    /// reinserted entries); eviction skips keys no longer in `plans` and
    /// the queue is compacted when it outgrows the map by 4×.
    order: VecDeque<PlanKey>,
    enabled: bool,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("entries", &self.plans.len())
            .field("enabled", &self.enabled)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl PlanCache {
    pub(crate) fn new(enabled: bool) -> Self {
        PlanCache {
            plans: HashMap::new(),
            order: VecDeque::new(),
            enabled,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables lookups. Disabling clears the cache — a
    /// disabled cache must not pin stale plans (or their memory) alive.
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.clear();
        }
    }

    /// Removes the plan for `key`, counting a hit or miss.
    pub(crate) fn take(&mut self, key: &PlanKey) -> Option<DrawPlan> {
        if !self.enabled {
            return None;
        }
        match self.plans.remove(key) {
            Some(plan) => {
                self.hits += 1;
                Some(plan)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// (Re)inserts a plan, evicting the oldest entries beyond capacity.
    pub(crate) fn insert(&mut self, key: PlanKey, plan: DrawPlan) {
        if !self.enabled {
            return;
        }
        self.plans.insert(key, plan);
        self.order.push_back(key);
        while self.plans.len() > PLAN_CACHE_CAP {
            match self.order.pop_front() {
                // Only count an eviction when the key still mapped to a
                // live plan; stale queue entries are free to discard.
                Some(old) => {
                    // A reinserted key has a fresher queue entry further
                    // back; evicting on its *stale* entry would throw away
                    // the hottest plan. Skip keys whose front entry is not
                    // their newest.
                    if self.order.contains(&old) {
                        continue;
                    }
                    if self.plans.remove(&old).is_some() {
                        self.evictions += 1;
                    }
                }
                None => break,
            }
        }
        if self.order.len() > 4 * PLAN_CACHE_CAP {
            let plans = &self.plans;
            let mut seen = std::collections::HashSet::new();
            // Keep only the newest queue entry of each live key (iterate
            // from the back so `seen` marks the newest first).
            let mut kept: Vec<PlanKey> = self
                .order
                .iter()
                .rev()
                .filter(|k| plans.contains_key(*k) && seen.insert(**k))
                .copied()
                .collect();
            kept.reverse();
            self.order = kept.into();
        }
    }

    /// Drops every cached plan (context loss, cache disable).
    pub(crate) fn clear(&mut self) {
        self.plans.clear();
        self.order.clear();
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.plans.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::texcoord_corners;
    use mgpu_shader::{compile, UniformValues};
    use std::sync::Arc;

    fn test_plan() -> DrawPlan {
        let shader = Arc::new(
            compile("varying vec2 v; void main() { gl_FragColor = vec4(v, 0.0, 1.0); }")
                .expect("test shader compiles"),
        );
        DrawPlan::build(
            &shader,
            &UniformValues::new(),
            Engine::Scalar,
            false,
            &[texcoord_corners()],
            8,
            None,
        )
        .expect("test plan builds")
    }

    fn key(program: u32, uniform_hash: u64) -> PlanKey {
        PlanKey {
            program,
            shader_hash: 1,
            uniform_hash,
            engine: Engine::Scalar,
            spec: false,
            width: 8,
            height: 8,
            channels: 4,
            corners_hash: corners_hash(&[texcoord_corners()]),
        }
    }

    #[test]
    fn take_counts_hits_and_misses() {
        let mut cache = PlanCache::new(true);
        assert!(cache.take(&key(1, 0)).is_none());
        cache.insert(key(1, 0), test_plan());
        assert!(cache.take(&key(1, 0)).is_some());
        assert!(cache.take(&key(1, 0)).is_none(), "take removes the plan");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn capacity_is_bounded_and_reinsertion_protects_hot_plans() {
        let mut cache = PlanCache::new(true);
        cache.insert(key(0, 0), test_plan());
        cache.insert(key(9, 9), test_plan());
        // Re-touch key 0 (take + reinsert): it is now *newer* than key 9
        // despite its stale front slot in the eviction queue.
        let plan = cache.take(&key(0, 0)).expect("just inserted");
        cache.insert(key(0, 0), plan);
        // Flood to one entry over capacity: exactly one eviction, and it
        // must hit the cold key 9, not the re-touched key 0.
        for i in 1..PLAN_CACHE_CAP as u64 {
            cache.insert(key(1, i), test_plan());
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, PLAN_CACHE_CAP);
        assert_eq!(stats.evictions, 1);
        assert!(cache.take(&key(0, 0)).is_some(), "hot plan survived");
        assert!(cache.take(&key(9, 9)).is_none(), "cold plan evicted");
    }

    #[test]
    fn a_full_uniform_cycle_fits() {
        // The sgemm pass structure: one program, 64 distinct uniform
        // hashes, repeated. The second cycle must be all hits.
        let mut cache = PlanCache::new(true);
        for pass in 0..64u64 {
            assert!(cache.take(&key(7, pass)).is_none());
            cache.insert(key(7, pass), test_plan());
        }
        for pass in 0..64u64 {
            let plan = cache.take(&key(7, pass));
            assert!(plan.is_some(), "pass {pass} should be warm");
            if let Some(plan) = plan {
                cache.insert(key(7, pass), plan);
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits, 64);
        assert_eq!(stats.misses, 64);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn disabling_clears_and_stops_serving() {
        let mut cache = PlanCache::new(true);
        cache.insert(key(1, 0), test_plan());
        cache.set_enabled(false);
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.take(&key(1, 0)).is_none());
        cache.insert(key(1, 0), test_plan());
        assert_eq!(cache.stats().entries, 0, "disabled cache stores nothing");
    }

    #[test]
    fn corner_hash_sees_content() {
        let a = corners_hash(&[texcoord_corners()]);
        let mut other = texcoord_corners();
        other[3][0] = 0.5;
        let b = corners_hash(&[other]);
        assert_ne!(a, b);
        assert_ne!(a, corners_hash(&[texcoord_corners(), texcoord_corners()]));
    }
}
