//! Steady-state measurement helpers mirroring the paper's protocol
//! (benchmark body executed repeatedly, rate reported).

use mgpu_gles::Gl;
use mgpu_tbdr::SimTime;

use crate::error::GpgpuError;

/// Runs `warmup + measured` iterations of `body` and returns the average
/// simulated time per iteration over the measured window.
///
/// The warm-up fills the deferred pipeline and the driver's storage pools,
/// so the result is the steady-state period the paper's 10 000-iteration
/// protocol converges to.
///
/// # Errors
///
/// [`GpgpuError::Config`] if `measured` is zero; otherwise propagates the
/// first error `body` returns.
pub fn steady_period(
    gl: &mut Gl,
    warmup: usize,
    measured: usize,
    mut body: impl FnMut(&mut Gl) -> Result<(), GpgpuError>,
) -> Result<SimTime, GpgpuError> {
    if measured == 0 {
        return Err(GpgpuError::Config(
            "steady_period needs at least one measured iteration".to_owned(),
        ));
    }
    for _ in 0..warmup {
        body(gl)?;
    }
    let t0 = gl.elapsed();
    for _ in 0..measured {
        body(gl)?;
    }
    let t1 = gl.elapsed();
    Ok((t1 - t0) / measured as u64)
}

/// Speedup of `optimised` over `baseline` (>1 means faster), the metric of
/// the paper's Figures 3–5.
///
/// Never returns NaN: when both times are non-positive (nothing was
/// measured on either side) the ratio is defined as `1.0`; when only the
/// optimised time is non-positive it is `f64::INFINITY`.
#[must_use]
pub fn speedup(baseline: SimTime, optimised: SimTime) -> f64 {
    let b = baseline.as_secs_f64();
    let o = optimised.as_secs_f64();
    if b <= 0.0 && o <= 0.0 {
        1.0
    } else if o <= 0.0 {
        f64::INFINITY
    } else {
        b / o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_ratios() {
        assert_eq!(
            speedup(SimTime::from_millis(10), SimTime::from_millis(5)),
            2.0
        );
        assert_eq!(
            speedup(SimTime::from_millis(5), SimTime::from_millis(10)),
            0.5
        );
        assert_eq!(
            speedup(SimTime::from_millis(5), SimTime::ZERO),
            f64::INFINITY
        );
        assert_eq!(speedup(SimTime::ZERO, SimTime::ZERO), 1.0);
    }

    #[test]
    fn steady_period_rejects_zero_measured() {
        use mgpu_tbdr::Platform;
        let mut gl = Gl::new(Platform::videocore_iv(), 4, 4);
        let err = steady_period(&mut gl, 0, 0, |_| Ok(())).unwrap_err();
        assert!(matches!(err, GpgpuError::Config(_)));
    }
}
