//! A generic multi-pass GPGPU pipeline — the paper's §III framework as a
//! library: user-written kernels chained through encoded textures, with
//! the double-buffered intermediate scheme (and the OpenGL ES 2
//! no-feedback rule) handled automatically.
//!
//! Each pass is a fragment kernel whose samplers bind either to a named
//! external input texture or to the previous pass's output. The built-in
//! operators ([`Sum`](crate::Sum), [`Sgemm`](crate::Sgemm), ...) are
//! hand-tuned instances of this pattern; `Pipeline` opens it to arbitrary
//! user kernels.
//!
//! Kernel sources typically splice in
//! [`Encoding::decode_fn_source`](crate::Encoding::decode_fn_source) /
//! [`Encoding::encode_fn_source`](crate::Encoding::encode_fn_source) for
//! the float↔RGBA8 conversions.

use mgpu_gles::{Gl, ProgramId, TextureId};
use mgpu_shader::OptOptions;

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::ops::{apply_setup, convert_cost, draw_banded, quad_for, vbo_for, OutputChain};

/// What a pass binds to one of its samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A named external input registered with
    /// [`PipelineBuilder::input`].
    Input(String),
    /// The output of the previous pass (the double-buffered chain).
    Previous,
}

/// One pass under construction.
#[derive(Debug, Clone)]
struct PassSpec {
    source: String,
    bindings: Vec<(String, Source)>,
    uniforms: Vec<(String, f32)>,
    label: String,
}

/// Builder for [`Pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    n: u32,
    inputs: Vec<(String, Vec<f32>, Range)>,
    seed: Option<(Vec<f32>, Range)>,
    passes: Vec<PassSpec>,
}

impl PipelineBuilder {
    /// Registers a named `n`×`n` input with its value range.
    #[must_use]
    pub fn input(mut self, name: &str, data: &[f32], range: Range) -> Self {
        self.inputs.push((name.to_owned(), data.to_vec(), range));
        self
    }

    /// Pre-populates the output chain, so the *first* pass of the first
    /// run may already read [`Source::Previous`] — how the paper's sgemm
    /// seeds its zeroed intermediate texture.
    #[must_use]
    pub fn seed(mut self, data: &[f32], range: Range) -> Self {
        self.seed = Some((data.to_vec(), range));
        self
    }

    /// Number of passes added so far.
    #[must_use]
    pub fn pass_count(&self) -> usize {
        self.passes.len()
    }

    /// Appends a pass: `kernel_source` with each sampler bound per
    /// `bindings` (sampler name → source) and scalar `uniforms` preset.
    #[must_use]
    pub fn pass(
        mut self,
        kernel_source: &str,
        bindings: &[(&str, Source)],
        uniforms: &[(&str, f32)],
    ) -> Self {
        self.passes.push(PassSpec {
            source: kernel_source.to_owned(),
            bindings: bindings
                .iter()
                .map(|(n, s)| ((*n).to_owned(), s.clone()))
                .collect(),
            uniforms: uniforms
                .iter()
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect(),
            label: format!("pipeline pass {}", self.passes.len()),
        });
        self
    }

    /// Compiles every pass, uploads every input and prepares the chain.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] for unknown input names, samplers without a
    /// binding, size mismatches, or an empty pipeline;
    /// [`GpgpuError::Gl`] for compilation failures (including shader
    /// limits).
    pub fn build(self, gl: &mut Gl, cfg: &OptConfig) -> Result<Pipeline, GpgpuError> {
        if self.passes.is_empty() {
            return Err(GpgpuError::Config("pipeline has no passes".to_owned()));
        }
        let enc = cfg.encoding;
        apply_setup(gl, cfg);

        // Upload inputs.
        let mut inputs: Vec<(String, TextureId)> = Vec::new();
        for (name, data, range) in &self.inputs {
            if data.len() != (self.n as usize) * (self.n as usize) {
                return Err(GpgpuError::Config(format!(
                    "input `{name}` has {} elements, expected {n}x{n}",
                    data.len(),
                    n = self.n
                )));
            }
            let encoded = enc.encode(data, range);
            gl.add_cpu_work(convert_cost(encoded.len() as u64));
            let tex = gl.create_texture();
            gl.tex_image_2d(tex, self.n, self.n, enc.texture_format(), Some(&encoded))?;
            inputs.push((name.clone(), tex));
        }

        // Compile passes and resolve bindings.
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let mut passes = Vec::new();
        for spec in &self.passes {
            let prog = gl.create_program_with(&spec.source, &opt)?;
            let mut resolved = Vec::new();
            // Bindings are validated against the kernel's declared samplers
            // by set_sampler below (unknown names error out).
            for (unit, (sampler, source)) in spec.bindings.iter().enumerate() {
                gl.set_sampler(prog, sampler, unit as u32)?;
                let tex_source = match source {
                    Source::Previous => None,
                    Source::Input(name) => Some(
                        inputs
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, t)| *t)
                            .ok_or_else(|| {
                                GpgpuError::Config(format!(
                                    "pass binds sampler `{sampler}` to unknown input `{name}`"
                                ))
                            })?,
                    ),
                };
                resolved.push(tex_source);
            }
            for (name, value) in &spec.uniforms {
                gl.set_uniform_scalar(prog, name, *value)?;
            }
            passes.push(Pass {
                prog,
                bindings: resolved,
                label: spec.label.clone(),
            });
        }

        let mut chain = OutputChain::new(gl, self.n, enc.texture_format());
        let mut seed_bytes = None;
        if let Some((data, range)) = &self.seed {
            if data.len() != (self.n as usize) * (self.n as usize) {
                return Err(GpgpuError::Config(format!(
                    "seed has {} elements, expected {n}x{n}",
                    data.len(),
                    n = self.n
                )));
            }
            let encoded = enc.encode(data, range);
            gl.add_cpu_work(convert_cost(encoded.len() as u64));
            chain.seed(gl, &encoded)?;
            seed_bytes = Some(encoded);
        }
        let vbo = vbo_for(gl, cfg, 4)?;
        Ok(Pipeline {
            cfg: *cfg,
            n: self.n,
            passes,
            chain,
            vbo,
            seed_bytes,
            run_count: 0,
        })
    }
}

#[derive(Debug)]
struct Pass {
    prog: ProgramId,
    /// One entry per sampler unit: `Some(tex)` = external input,
    /// `None` = previous pass's output.
    bindings: Vec<Option<TextureId>>,
    label: String,
}

/// A compiled multi-pass pipeline over `n`×`n` encoded data.
///
/// # Examples
///
/// A two-pass pipeline — square the input, then average with a second
/// input — written directly in the kernel language:
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{Encoding, OptConfig, Pipeline, Range, Source};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let enc = Encoding::Fp32;
/// let square = format!(
///     "uniform sampler2D u_x;\nvarying vec2 v_coord;\n{}{}\
///      void main() {{\n  float x = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(x * x);\n}}\n",
///     enc.decode_fn_source(), enc.encode_fn_source());
/// let average = format!(
///     "uniform sampler2D u_a;\nuniform sampler2D u_b;\nvarying vec2 v_coord;\n{}{}\
///      void main() {{\n  float a = unpack(texture2D(u_a, v_coord));\n  float b = unpack(texture2D(u_b, v_coord));\n  gl_FragColor = pack((a + b) * 0.5);\n}}\n",
///     enc.decode_fn_source(), enc.encode_fn_source());
///
/// let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
/// let x = vec![0.5f32; 64];
/// let y = vec![0.25f32; 64];
/// let mut pipeline = Pipeline::builder(8)
///     .input("x", &x, Range::unit())
///     .input("y", &y, Range::unit())
///     .pass(&square, &[("u_x", Source::Input("x".into()))], &[])
///     .pass(
///         &average,
///         &[("u_a", Source::Previous), ("u_b", Source::Input("y".into()))],
///         &[],
///     )
///     .build(&mut gl, &OptConfig::baseline().without_swap())?;
/// pipeline.run_once(&mut gl)?;
/// let out = pipeline.output(&mut gl, &Range::unit())?;
/// assert!((out[0] - 0.25).abs() < 1e-4); // (0.5^2 + 0.25) / 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Pipeline {
    cfg: OptConfig,
    n: u32,
    passes: Vec<Pass>,
    chain: OutputChain,
    vbo: Option<mgpu_gles::BufferId>,
    /// Encoded seed data, kept so a replayed run can restore the chain's
    /// initial contents.
    seed_bytes: Option<Vec<u8>>,
    run_count: u64,
}

impl Pipeline {
    /// Starts building a pipeline over `n`×`n` data.
    #[must_use]
    pub fn builder(n: u32) -> PipelineBuilder {
        PipelineBuilder {
            n,
            inputs: Vec::new(),
            seed: None,
            passes: Vec::new(),
        }
    }

    /// Number of passes.
    #[must_use]
    pub fn passes(&self) -> usize {
        self.passes.len()
    }

    /// Executes every pass once, in order.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] if a pass binds [`Source::Previous`] but no
    /// pass has produced output yet; GL failures otherwise.
    pub fn run_once(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.run_count += 1;
        for i in 0..self.passes.len() {
            self.run_pass(gl, i, 1)?;
        }
        Ok(())
    }

    /// Starts a run for pass-by-pass execution via [`Pipeline::run_pass`]:
    /// bumps the run counter and restores the seed contents (if the
    /// pipeline was seeded), so a replayed run starts from the same chain
    /// state as the first.
    ///
    /// [`Pipeline::run_once`] does *not* re-seed between runs — iterative
    /// algorithms rely on the chain carrying over. Use this entry point
    /// when a run must be independent of earlier (possibly failed) runs.
    ///
    /// # Errors
    ///
    /// Propagates GL failures from the seed upload.
    pub fn begin_run(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.run_count += 1;
        if let Some(bytes) = &self.seed_bytes {
            gl.add_cpu_work(convert_cost(bytes.len() as u64));
            self.chain.seed(gl, bytes)?;
        }
        Ok(())
    }

    /// Executes pass `i` of the current run, issuing the draw as `bands`
    /// row-band sub-draws (`bands <= 1` = one full draw).
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] for an out-of-range index, or if the pass
    /// binds [`Source::Previous`] before any output exists; GL failures
    /// otherwise.
    pub fn run_pass(&mut self, gl: &mut Gl, i: usize, bands: u32) -> Result<(), GpgpuError> {
        let pass = self.passes.get(i).ok_or_else(|| {
            GpgpuError::Config(format!(
                "pass index {i} out of range ({} passes)",
                self.passes.len()
            ))
        })?;
        for (unit, binding) in pass.bindings.iter().enumerate() {
            let tex = match binding {
                Some(t) => *t,
                None => {
                    if self.run_count <= 1 && i == 0 && self.seed_bytes.is_none() {
                        return Err(GpgpuError::Config(
                            "the first pass of the first run cannot read Previous: seed the pipeline or bind an input"
                                .to_owned(),
                        ));
                    }
                    self.chain.latest()
                }
            };
            gl.bind_texture(unit as u32, Some(tex))?;
        }
        gl.use_program(Some(pass.prog))?;
        let label = format!("{}#{}", pass.label, self.run_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        let cfg = self.cfg;
        let n = self.n;
        self.chain
            .render_pass(gl, &cfg, |gl| draw_banded(gl, &quad, bands, n))?;
        Ok(())
    }

    /// Reads back the latest output's raw encoded bytes (a pass-granular
    /// checkpoint for the resilient runner).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn snapshot_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        Ok(self.chain.read_latest(gl)?)
    }

    /// Uploads previously snapshotted bytes into the latest-result slot.
    ///
    /// # Errors
    ///
    /// Propagates GL failures (e.g. a size mismatch).
    pub fn restore_bytes(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        Ok(self.chain.seed(gl, bytes)?)
    }

    /// Updates a scalar uniform of pass `pass_index` (e.g. a per-run block
    /// offset, like the paper's `blk_n`).
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] for an out-of-range pass index; GL errors for
    /// unknown uniform names.
    pub fn set_uniform(
        &mut self,
        gl: &mut Gl,
        pass_index: usize,
        name: &str,
        value: f32,
    ) -> Result<(), GpgpuError> {
        let pass = self.passes.get(pass_index).ok_or_else(|| {
            GpgpuError::Config(format!(
                "pass index {pass_index} out of range ({} passes)",
                self.passes.len()
            ))
        })?;
        gl.set_uniform_scalar(pass.prog, name, value)?;
        Ok(())
    }

    /// Reads back and decodes the latest output with the given range.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn output(&mut self, gl: &mut Gl, range: &Range) -> Result<Vec<f32>, GpgpuError> {
        let bytes = self.chain.read_latest(gl)?;
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        Ok(self.cfg.encoding.decode(&bytes, range))
    }
}
