//! A generic multi-pass GPGPU pipeline — the paper's §III framework as a
//! library: user-written kernels chained through encoded textures, with
//! the double-buffered intermediate scheme (and the OpenGL ES 2
//! no-feedback rule) handled automatically.
//!
//! Each pass is a fragment kernel whose samplers bind either to a named
//! external input texture or to the previous pass's output. The built-in
//! operators ([`Sum`](crate::Sum), [`Sgemm`](crate::Sgemm), ...) are
//! hand-tuned instances of this pattern; `Pipeline` opens it to arbitrary
//! user kernels.
//!
//! Kernel sources typically splice in
//! [`Encoding::decode_fn_source`](crate::Encoding::decode_fn_source) /
//! [`Encoding::encode_fn_source`](crate::Encoding::encode_fn_source) for
//! the float↔RGBA8 conversions.

use mgpu_gles::{Gl, ProgramId, TextureFormat, TextureId};
use mgpu_shader::OptOptions;

use crate::config::OptConfig;
use crate::encoding::{Encoding, Range};
use crate::error::GpgpuError;
use crate::ops::{apply_setup, convert_cost, draw_banded, quad_for, vbo_for, OutputChain};

/// What a pass binds to one of its samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// A named external input registered with
    /// [`PipelineBuilder::input`].
    Input(String),
    /// The output of the previous pass (the double-buffered chain).
    Previous,
    /// The *retained* output of an earlier pass of the current repeat
    /// (0-based pass index, strictly before the reading pass). The
    /// referenced pass's output is copied into a dedicated texture right
    /// after its draw, so deep chains — e.g. a training step whose
    /// backward passes sample forward activations — can reach past the
    /// double-buffered chain without breaking the ES 2 no-feedback rule.
    Pass(usize),
}

/// One pass under construction.
#[derive(Debug, Clone)]
struct PassSpec {
    source: String,
    bindings: Vec<(String, Source)>,
    uniforms: Vec<(String, f32)>,
    label: String,
}

/// Builder for [`Pipeline`].
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    n: u32,
    inputs: Vec<(String, Vec<f32>, Range)>,
    raw_inputs: Vec<(String, Vec<u8>)>,
    seed: Option<(Vec<f32>, Range)>,
    passes: Vec<PassSpec>,
    repeats: usize,
}

impl PipelineBuilder {
    /// Registers a named `n`×`n` input with its value range.
    #[must_use]
    pub fn input(mut self, name: &str, data: &[f32], range: Range) -> Self {
        self.inputs.push((name.to_owned(), data.to_vec(), range));
        self
    }

    /// Registers a named raw RGBA8 `n`×`n` input — an unencoded image for
    /// computer-vision pipelines (`bytes.len()` must be `n * n * 4`;
    /// validated at build). Raw-image pipelines require the default
    /// [`Encoding::Fp32`] (RGBA8) chain format.
    #[must_use]
    pub fn input_raw(mut self, name: &str, bytes: &[u8]) -> Self {
        self.raw_inputs.push((name.to_owned(), bytes.to_vec()));
        self
    }

    /// Repeats the whole pass chain `repeats` times per run (at least
    /// once): pass programs are compiled once and re-issued, giving
    /// iterative solvers and training loops pass-granular checkpoints
    /// without per-iteration compilation. [`Source::Pass`] indices refer
    /// to passes *within the current repeat*.
    #[must_use]
    pub fn repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Pre-populates the output chain, so the *first* pass of the first
    /// run may already read [`Source::Previous`] — how the paper's sgemm
    /// seeds its zeroed intermediate texture.
    #[must_use]
    pub fn seed(mut self, data: &[f32], range: Range) -> Self {
        self.seed = Some((data.to_vec(), range));
        self
    }

    /// Number of passes one run executes: passes added so far times the
    /// configured repeat count.
    #[must_use]
    pub fn pass_count(&self) -> usize {
        self.passes.len() * self.repeats.max(1)
    }

    /// Appends a pass: `kernel_source` with each sampler bound per
    /// `bindings` (sampler name → source) and scalar `uniforms` preset.
    #[must_use]
    pub fn pass(
        mut self,
        kernel_source: &str,
        bindings: &[(&str, Source)],
        uniforms: &[(&str, f32)],
    ) -> Self {
        self.passes.push(PassSpec {
            source: kernel_source.to_owned(),
            bindings: bindings
                .iter()
                .map(|(n, s)| ((*n).to_owned(), s.clone()))
                .collect(),
            uniforms: uniforms
                .iter()
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect(),
            label: format!("pipeline pass {}", self.passes.len()),
        });
        self
    }

    /// Compiles every pass, uploads every input and prepares the chain.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] for unknown input names, samplers without a
    /// binding, size mismatches, forward or self [`Source::Pass`]
    /// references, raw-image inputs under a non-RGBA8 encoding, or an
    /// empty pipeline; [`GpgpuError::Gl`] for compilation failures
    /// (including shader limits).
    pub fn build(self, gl: &mut Gl, cfg: &OptConfig) -> Result<Pipeline, GpgpuError> {
        if self.passes.is_empty() {
            return Err(GpgpuError::Config("pipeline has no passes".to_owned()));
        }
        let enc = cfg.encoding;
        if !self.raw_inputs.is_empty() && enc != Encoding::Fp32 {
            return Err(GpgpuError::Config(
                "raw RGBA8 image inputs require the Fp32 (RGBA8) chain format".to_owned(),
            ));
        }
        apply_setup(gl, cfg);

        // Upload inputs.
        let mut inputs: Vec<(String, TextureId)> = Vec::new();
        for (name, data, range) in &self.inputs {
            if data.len() != (self.n as usize) * (self.n as usize) {
                return Err(GpgpuError::Config(format!(
                    "input `{name}` has {} elements, expected {n}x{n}",
                    data.len(),
                    n = self.n
                )));
            }
            let encoded = enc.encode(data, range);
            gl.add_cpu_work(convert_cost(encoded.len() as u64));
            let tex = gl.create_texture();
            gl.tex_image_2d(tex, self.n, self.n, enc.texture_format(), Some(&encoded))?;
            inputs.push((name.clone(), tex));
        }
        for (name, bytes) in &self.raw_inputs {
            if bytes.len() != (self.n as usize) * (self.n as usize) * 4 {
                return Err(GpgpuError::Config(format!(
                    "raw input `{name}` has {} bytes, expected {n}x{n}x4",
                    bytes.len(),
                    n = self.n
                )));
            }
            let tex = gl.create_texture();
            gl.tex_image_2d(tex, self.n, self.n, TextureFormat::Rgba8, Some(bytes))?;
            inputs.push((name.clone(), tex));
        }

        // Which passes must retain their output for a later Source::Pass
        // reader. References must point strictly backwards.
        let mut retained_set = vec![false; self.passes.len()];
        for (pass_idx, spec) in self.passes.iter().enumerate() {
            for (sampler, source) in &spec.bindings {
                if let Source::Pass(i) = source {
                    if *i >= pass_idx {
                        return Err(GpgpuError::Config(format!(
                            "pass {pass_idx} binds sampler `{sampler}` to Pass({i}): \
                             retained references must point to an earlier pass"
                        )));
                    }
                    retained_set[*i] = true;
                }
            }
        }
        let format = enc.texture_format();
        let texel_bytes = format.bytes_per_texel() as usize;
        let zeroed = vec![0u8; (self.n as usize) * (self.n as usize) * texel_bytes];
        let mut retained: Vec<Option<TextureId>> = Vec::with_capacity(self.passes.len());
        for keep in &retained_set {
            retained.push(if *keep {
                let tex = gl.create_texture();
                // Zero-filled so snapshots taken before the producing pass
                // has run this attempt are still well-defined.
                gl.tex_image_2d(tex, self.n, self.n, format, Some(&zeroed))?;
                Some(tex)
            } else {
                None
            });
        }

        // Compile passes and resolve bindings.
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let mut passes = Vec::new();
        for spec in &self.passes {
            let prog = gl.create_program_with(&spec.source, &opt)?;
            let mut resolved = Vec::new();
            // Bindings are validated against the kernel's declared samplers
            // by set_sampler below (unknown names error out).
            for (unit, (sampler, source)) in spec.bindings.iter().enumerate() {
                gl.set_sampler(prog, sampler, unit as u32)?;
                let binding = match source {
                    Source::Previous => Binding::Chain,
                    Source::Pass(i) => Binding::Retained(*i),
                    Source::Input(name) => Binding::Tex(
                        inputs
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, t)| *t)
                            .ok_or_else(|| {
                                GpgpuError::Config(format!(
                                    "pass binds sampler `{sampler}` to unknown input `{name}`"
                                ))
                            })?,
                    ),
                };
                resolved.push(binding);
            }
            for (name, value) in &spec.uniforms {
                gl.set_uniform_scalar(prog, name, *value)?;
            }
            passes.push(Pass {
                prog,
                bindings: resolved,
                label: spec.label.clone(),
            });
        }

        let mut chain = OutputChain::new(gl, self.n, format);
        let mut seed_bytes = None;
        if let Some((data, range)) = &self.seed {
            if data.len() != (self.n as usize) * (self.n as usize) {
                return Err(GpgpuError::Config(format!(
                    "seed has {} elements, expected {n}x{n}",
                    data.len(),
                    n = self.n
                )));
            }
            let encoded = enc.encode(data, range);
            gl.add_cpu_work(convert_cost(encoded.len() as u64));
            chain.seed(gl, &encoded)?;
            seed_bytes = Some(encoded);
        }
        let vbo = vbo_for(gl, cfg, 4)?;
        Ok(Pipeline {
            cfg: *cfg,
            n: self.n,
            passes,
            repeats: self.repeats.max(1),
            chain,
            retained,
            format,
            vbo,
            seed_bytes,
            run_count: 0,
        })
    }
}

/// What a compiled pass's sampler unit reads.
#[derive(Debug, Clone, Copy)]
enum Binding {
    /// An external input texture.
    Tex(TextureId),
    /// The double-buffered chain's latest output.
    Chain,
    /// The retained output of pass `i` (spec index).
    Retained(usize),
}

#[derive(Debug)]
struct Pass {
    prog: ProgramId,
    /// One entry per sampler unit.
    bindings: Vec<Binding>,
    label: String,
}

/// A compiled multi-pass pipeline over `n`×`n` encoded data.
///
/// # Examples
///
/// A two-pass pipeline — square the input, then average with a second
/// input — written directly in the kernel language:
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{Encoding, OptConfig, Pipeline, Range, Source};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let enc = Encoding::Fp32;
/// let square = format!(
///     "uniform sampler2D u_x;\nvarying vec2 v_coord;\n{}{}\
///      void main() {{\n  float x = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(x * x);\n}}\n",
///     enc.decode_fn_source(), enc.encode_fn_source());
/// let average = format!(
///     "uniform sampler2D u_a;\nuniform sampler2D u_b;\nvarying vec2 v_coord;\n{}{}\
///      void main() {{\n  float a = unpack(texture2D(u_a, v_coord));\n  float b = unpack(texture2D(u_b, v_coord));\n  gl_FragColor = pack((a + b) * 0.5);\n}}\n",
///     enc.decode_fn_source(), enc.encode_fn_source());
///
/// let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
/// let x = vec![0.5f32; 64];
/// let y = vec![0.25f32; 64];
/// let mut pipeline = Pipeline::builder(8)
///     .input("x", &x, Range::unit())
///     .input("y", &y, Range::unit())
///     .pass(&square, &[("u_x", Source::Input("x".into()))], &[])
///     .pass(
///         &average,
///         &[("u_a", Source::Previous), ("u_b", Source::Input("y".into()))],
///         &[],
///     )
///     .build(&mut gl, &OptConfig::baseline().without_swap())?;
/// pipeline.run_once(&mut gl)?;
/// let out = pipeline.output(&mut gl, &Range::unit())?;
/// assert!((out[0] - 0.25).abs() < 1e-4); // (0.5^2 + 0.25) / 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Pipeline {
    cfg: OptConfig,
    n: u32,
    passes: Vec<Pass>,
    /// How many times one run re-issues the whole pass chain.
    repeats: usize,
    chain: OutputChain,
    /// Per-spec retained-output textures (only specs some later
    /// [`Source::Pass`] reads get one).
    retained: Vec<Option<TextureId>>,
    format: TextureFormat,
    vbo: Option<mgpu_gles::BufferId>,
    /// Encoded seed data, kept so a replayed run can restore the chain's
    /// initial contents.
    seed_bytes: Option<Vec<u8>>,
    run_count: u64,
}

impl Pipeline {
    /// Starts building a pipeline over `n`×`n` data.
    #[must_use]
    pub fn builder(n: u32) -> PipelineBuilder {
        PipelineBuilder {
            n,
            inputs: Vec::new(),
            raw_inputs: Vec::new(),
            seed: None,
            passes: Vec::new(),
            repeats: 1,
        }
    }

    /// Number of passes one run executes (specs × repeats).
    #[must_use]
    pub fn passes(&self) -> usize {
        self.passes.len() * self.repeats
    }

    /// Executes every pass once, in order (all repeats).
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] if a pass binds [`Source::Previous`] but no
    /// pass has produced output yet; GL failures otherwise.
    pub fn run_once(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.run_count += 1;
        for i in 0..self.passes.len() * self.repeats {
            self.run_pass(gl, i, 1)?;
        }
        Ok(())
    }

    /// Starts a run for pass-by-pass execution via [`Pipeline::run_pass`]:
    /// bumps the run counter and restores the seed contents (if the
    /// pipeline was seeded), so a replayed run starts from the same chain
    /// state as the first.
    ///
    /// [`Pipeline::run_once`] does *not* re-seed between runs — iterative
    /// algorithms rely on the chain carrying over. Use this entry point
    /// when a run must be independent of earlier (possibly failed) runs.
    ///
    /// # Errors
    ///
    /// Propagates GL failures from the seed upload.
    pub fn begin_run(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.run_count += 1;
        if let Some(bytes) = &self.seed_bytes {
            gl.add_cpu_work(convert_cost(bytes.len() as u64));
            self.chain.seed(gl, bytes)?;
        }
        Ok(())
    }

    /// Executes pass `i` of the current run (a *logical* index over
    /// specs × repeats; the spec is `i % spec_count`), issuing the draw as
    /// `bands` row-band sub-draws (`bands <= 1` = one full draw). When the
    /// pass's output is retained for a later [`Source::Pass`] reader, the
    /// copy-out happens inside the same pass.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] for an out-of-range index, or if the pass
    /// binds [`Source::Previous`] before any output exists; GL failures
    /// otherwise.
    pub fn run_pass(&mut self, gl: &mut Gl, i: usize, bands: u32) -> Result<(), GpgpuError> {
        let total = self.passes.len() * self.repeats;
        if i >= total {
            return Err(GpgpuError::Config(format!(
                "pass index {i} out of range ({total} passes)"
            )));
        }
        let spec_idx = i % self.passes.len();
        let pass = &self.passes[spec_idx];
        for (unit, binding) in pass.bindings.iter().enumerate() {
            let tex = match binding {
                Binding::Tex(t) => *t,
                Binding::Retained(j) => self.retained[*j].ok_or_else(|| {
                    GpgpuError::Config(format!("pass {spec_idx} reads unretained Pass({j})"))
                })?,
                Binding::Chain => {
                    if self.run_count <= 1 && i == 0 && self.seed_bytes.is_none() {
                        return Err(GpgpuError::Config(
                            "the first pass of the first run cannot read Previous: seed the pipeline or bind an input"
                                .to_owned(),
                        ));
                    }
                    self.chain.latest()
                }
            };
            gl.bind_texture(unit as u32, Some(tex))?;
        }
        gl.use_program(Some(pass.prog))?;
        let label = format!("{}#{}", pass.label, self.run_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        let cfg = self.cfg;
        let n = self.n;
        let keep = self.retained[spec_idx];
        self.chain
            .render_pass_with_copy(gl, &cfg, keep, |gl| draw_banded(gl, &quad, bands, n))?;
        Ok(())
    }

    /// Reads back the raw encoded bytes of the latest output *plus* every
    /// retained pass texture, concatenated in spec order — a pass-granular
    /// checkpoint for the resilient runner that fully captures the state a
    /// later pass can sample. All chunks are `n * n * bytes_per_texel`, so
    /// no framing is needed.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn snapshot_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        let mut bytes = self.chain.read_latest(gl)?;
        for tex in self.retained.iter().flatten() {
            bytes.extend_from_slice(&gl.read_texture(*tex)?);
        }
        Ok(bytes)
    }

    /// Reads back only the latest output's raw encoded bytes — the
    /// pipeline's *result*, excluding retained-pass checkpoint payload.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn output_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        Ok(self.chain.read_latest(gl)?)
    }

    /// Uploads previously snapshotted bytes back into the latest-result
    /// slot and every retained pass texture (inverse of
    /// [`Pipeline::snapshot_bytes`]).
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] when the blob's length does not match this
    /// pipeline's snapshot shape; GL failures otherwise.
    pub fn restore_bytes(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        let chunk = (self.n as usize) * (self.n as usize) * self.format.bytes_per_texel() as usize;
        let retained_count = self.retained.iter().flatten().count();
        let want = chunk * (1 + retained_count);
        if bytes.len() != want {
            return Err(GpgpuError::Config(format!(
                "snapshot blob has {} bytes, expected {want} (1 chain + {retained_count} retained chunks of {chunk})",
                bytes.len()
            )));
        }
        self.chain.seed(gl, &bytes[..chunk])?;
        let mut off = chunk;
        for tex in self.retained.iter().flatten() {
            gl.tex_image_2d(
                *tex,
                self.n,
                self.n,
                self.format,
                Some(&bytes[off..off + chunk]),
            )?;
            off += chunk;
        }
        Ok(())
    }

    /// Updates a scalar uniform of pass `pass_index` (e.g. a per-run block
    /// offset, like the paper's `blk_n`).
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] for an out-of-range pass index; GL errors for
    /// unknown uniform names.
    pub fn set_uniform(
        &mut self,
        gl: &mut Gl,
        pass_index: usize,
        name: &str,
        value: f32,
    ) -> Result<(), GpgpuError> {
        let pass = self.passes.get(pass_index).ok_or_else(|| {
            GpgpuError::Config(format!(
                "pass index {pass_index} out of range ({} passes)",
                self.passes.len()
            ))
        })?;
        gl.set_uniform_scalar(pass.prog, name, value)?;
        Ok(())
    }

    /// Reads back and decodes the latest output with the given range.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn output(&mut self, gl: &mut Gl, range: &Range) -> Result<Vec<f32>, GpgpuError> {
        let bytes = self.chain.read_latest(gl)?;
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        Ok(self.cfg.encoding.decode(&bytes, range))
    }
}
