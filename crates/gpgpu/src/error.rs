//! Error type of the GPGPU layer.

use std::error::Error;
use std::fmt;

use mgpu_gles::GlError;

use crate::resilient::ExhaustedError;

/// Errors from building or running a GPGPU operator.
#[derive(Debug, Clone, PartialEq)]
pub enum GpgpuError {
    /// An underlying GL call failed (including shader-limit rejections,
    /// surfaced when a block size exceeds what the platform can compile —
    /// the paper's Fig. 4b wall).
    Gl(GlError),
    /// The operator was configured inconsistently (sizes, ranges, ...).
    Config(String),
    /// Result corruption was detected by checksum verification
    /// (see [`ResilienceConfig::verify_checksums`](crate::ResilienceConfig)).
    Corrupted(String),
    /// The resilient runner gave up: retries, degradation rungs and
    /// context recreations were exhausted. Carries the full fault trail
    /// and recovery history.
    Exhausted(Box<ExhaustedError>),
}

impl GpgpuError {
    /// Whether the failure is a shader resource-limit rejection.
    #[must_use]
    pub fn is_shader_limit(&self) -> bool {
        matches!(self, GpgpuError::Gl(e) if e.is_shader_limit())
    }

    /// Whether retrying (after backoff, context recreation or work
    /// splitting) may succeed: transient GL failures, context loss and
    /// detected corruption.
    #[must_use]
    pub fn is_recoverable(&self) -> bool {
        match self {
            GpgpuError::Gl(e) => e.is_transient() || e.is_context_loss(),
            GpgpuError::Corrupted(_) => true,
            GpgpuError::Config(_) | GpgpuError::Exhausted(_) => false,
        }
    }
}

impl fmt::Display for GpgpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpgpuError::Gl(e) => write!(f, "{e}"),
            GpgpuError::Config(m) => write!(f, "configuration error: {m}"),
            GpgpuError::Corrupted(m) => write!(f, "result corruption detected: {m}"),
            GpgpuError::Exhausted(e) => write!(f, "{e}"),
        }
    }
}

impl Error for GpgpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpgpuError::Gl(e) => Some(e),
            GpgpuError::Exhausted(e) => Some(&*e.last_error),
            GpgpuError::Config(_) | GpgpuError::Corrupted(_) => None,
        }
    }
}

impl From<GlError> for GpgpuError {
    fn from(e: GlError) -> Self {
        GpgpuError::Gl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: GpgpuError = GlError::InvalidValue("x".into()).into();
        assert!(e.to_string().contains("invalid value"));
        let c = GpgpuError::Config("bad size".into());
        assert!(c.to_string().contains("bad size"));
        assert!(!c.is_shader_limit());
    }
}
