//! Error type of the GPGPU layer.

use std::error::Error;
use std::fmt;

use mgpu_gles::GlError;

/// Errors from building or running a GPGPU operator.
#[derive(Debug, Clone, PartialEq)]
pub enum GpgpuError {
    /// An underlying GL call failed (including shader-limit rejections,
    /// surfaced when a block size exceeds what the platform can compile —
    /// the paper's Fig. 4b wall).
    Gl(GlError),
    /// The operator was configured inconsistently (sizes, ranges, ...).
    Config(String),
}

impl GpgpuError {
    /// Whether the failure is a shader resource-limit rejection.
    #[must_use]
    pub fn is_shader_limit(&self) -> bool {
        matches!(self, GpgpuError::Gl(e) if e.is_shader_limit())
    }
}

impl fmt::Display for GpgpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpgpuError::Gl(e) => write!(f, "{e}"),
            GpgpuError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl Error for GpgpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GpgpuError::Gl(e) => Some(e),
            GpgpuError::Config(_) => None,
        }
    }
}

impl From<GlError> for GpgpuError {
    fn from(e: GlError) -> Self {
        GpgpuError::Gl(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: GpgpuError = GlError::InvalidValue("x".into()).into();
        assert!(e.to_string().contains("invalid value"));
        let c = GpgpuError::Config("bad size".into());
        assert!(c.to_string().contains("bad size"));
        assert!(!c.is_shader_limit());
    }
}
