//! The optimisation-configuration space of the paper's §II.
//!
//! An [`OptConfig`] selects one point in the space the paper explores
//! incrementally: windowing-system synchronisation, render target, texture
//! reuse, vertex sourcing, framebuffer invalidation, arithmetic precision
//! and compiler MAD fusion. [`OptConfig::baseline`] is the paper's
//! starting point — an implementation following OpenGL ES 2 best practices
//! [14][11] — and each builder method applies one optimisation.

use mgpu_gles::{BufferUsage, Engine};

use crate::encoding::Encoding;

/// Windowing-system synchronisation per kernel invocation (paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SyncStrategy {
    /// `eglSwapBuffers` at the platform's default swap interval (vsync).
    #[default]
    SwapDefault,
    /// `eglSwapInterval(0)` then `eglSwapBuffers`: drain without the vsync
    /// wait.
    SwapInterval0,
    /// No `eglSwapBuffers` at all: maximum kernel-launch rate, for
    /// applications without visual output.
    NoSwap,
}

/// Where kernels render (paper Fig. 4a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RenderStrategy {
    /// Render to a texture through a framebuffer object (step 5 of Fig. 1);
    /// what the vendor guides recommend.
    #[default]
    Texture,
    /// Render to the window framebuffer, then `copy_tex_image_2d` the result
    /// out (steps 3–4 of Fig. 1). Benefits from the FB's double buffering.
    Framebuffer,
}

/// Vertex data sourcing (the paper's VBO optimisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VertexStrategy {
    /// Client-side arrays, copied by the driver on every draw.
    #[default]
    ClientArrays,
    /// A vertex buffer object with the given usage hint.
    Vbo(BufferUsage),
}

/// One point in the paper's optimisation space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptConfig {
    /// Synchronisation strategy.
    pub sync: SyncStrategy,
    /// Render-target strategy.
    pub target: RenderStrategy,
    /// Reuse texture storage (`tex_sub_image_2d` / `copy_tex_sub_image_2d`)
    /// instead of allocating fresh storage every time (paper Fig. 5).
    pub texture_reuse: bool,
    /// Vertex sourcing.
    pub vertex: VertexStrategy,
    /// Invalidate the render target before each kernel (`glClear` /
    /// `EXT_discard_framebuffer`), skipping the tile reload of step 6.
    pub invalidate: bool,
    /// Data encoding / arithmetic precision (fp32 vs the paper's fp24).
    pub encoding: Encoding,
    /// Let the shader compiler fuse multiply-adds (kernel-code
    /// optimisation; off only for ablations).
    pub mad_fusion: bool,
    /// Host threads for functional fragment execution (`None` keeps the
    /// context's setting — `MGPU_THREADS` or the machine's parallelism).
    /// Purely a wall-clock knob: outputs and simulated timing are
    /// identical for every value.
    pub threads: Option<usize>,
    /// Fragment-engine tier for functional execution (`None` keeps the
    /// context's setting — `MGPU_ENGINE` or the batched default). Like
    /// `threads`, purely a wall-clock knob: both engines are bit-exact.
    pub engine: Option<Engine>,
    /// Pooled dispatch with draw-plan caching vs the legacy per-draw
    /// `thread::scope` path (`None` keeps the context's setting —
    /// `MGPU_POOL` or pooled by default). Like `threads`, purely a
    /// wall-clock knob: both dispatchers are bit-exact.
    pub pool: Option<bool>,
    /// Bind-time uniform specialisation on the batched tier (`None` keeps
    /// the context's setting — `MGPU_SPEC` or on by default). Like
    /// `threads`, purely a wall-clock knob: spec-on and spec-off are
    /// bit-exact.
    pub spec: Option<bool>,
    /// Tile-signature redundancy elimination (`None` keeps the context's
    /// setting — `MGPU_TILE_SKIP` or off by default). Bit-exact like the
    /// other execution knobs, but **not** timing-neutral: skipped tiles
    /// trade fragment shading for signature traffic in the simulated
    /// cost model, so steady-state multi-pass loops get faster.
    pub tile_skip: Option<bool>,
}

impl OptConfig {
    /// The paper's baseline: OpenGL ES 2 best practices — render to
    /// texture, fresh uploads, client arrays, cleared targets, vsync'd
    /// swaps, fp32.
    #[must_use]
    pub fn baseline() -> Self {
        OptConfig {
            sync: SyncStrategy::SwapDefault,
            target: RenderStrategy::Texture,
            texture_reuse: false,
            vertex: VertexStrategy::ClientArrays,
            invalidate: true,
            encoding: Encoding::Fp32,
            mad_fusion: true,
            threads: None,
            engine: None,
            pool: None,
            spec: None,
            tile_skip: None,
        }
    }

    /// Applies `eglSwapInterval(0)`.
    #[must_use]
    pub fn with_swap_interval_0(mut self) -> Self {
        self.sync = SyncStrategy::SwapInterval0;
        self
    }

    /// Removes `eglSwapBuffers` entirely.
    #[must_use]
    pub fn without_swap(mut self) -> Self {
        self.sync = SyncStrategy::NoSwap;
        self
    }

    /// Switches to framebuffer rendering + copy-out.
    #[must_use]
    pub fn with_framebuffer_rendering(mut self) -> Self {
        self.target = RenderStrategy::Framebuffer;
        self
    }

    /// Switches to render-to-texture.
    #[must_use]
    pub fn with_texture_rendering(mut self) -> Self {
        self.target = RenderStrategy::Texture;
        self
    }

    /// Enables texture storage reuse.
    #[must_use]
    pub fn with_texture_reuse(mut self) -> Self {
        self.texture_reuse = true;
        self
    }

    /// Uses a VBO with the given hint.
    #[must_use]
    pub fn with_vbo(mut self, usage: BufferUsage) -> Self {
        self.vertex = VertexStrategy::Vbo(usage);
        self
    }

    /// Switches to the fp24 encoding (3-byte I/O + `mul24` arithmetic).
    #[must_use]
    pub fn with_fp24(mut self) -> Self {
        self.encoding = Encoding::Fp24;
        self
    }

    /// Disables target invalidation (pays the step-6 tile reload).
    #[must_use]
    pub fn without_invalidate(mut self) -> Self {
        self.invalidate = false;
        self
    }

    /// Disables MAD fusion in the kernel compiler (ablation).
    #[must_use]
    pub fn without_mad_fusion(mut self) -> Self {
        self.mad_fusion = false;
        self
    }

    /// Pins functional execution to `threads` host threads (`1` forces
    /// the serial path).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Pins functional execution to the given fragment-engine tier.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Pins the dispatcher: pooled + plan-cached (`true`) or the legacy
    /// per-draw scope-spawn path (`false`).
    #[must_use]
    pub fn with_pool(mut self, pool: bool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Pins bind-time uniform specialisation on (`true`) or off (`false`)
    /// for the batched tier.
    #[must_use]
    pub fn with_specialization(mut self, spec: bool) -> Self {
        self.spec = Some(spec);
        self
    }

    /// Pins tile-signature redundancy elimination on (`true`) or off
    /// (`false`). Outputs stay byte-identical either way; simulated time
    /// improves when multi-pass loops re-shade unchanged tiles.
    #[must_use]
    pub fn with_tile_skip(mut self, tile_skip: bool) -> Self {
        self.tile_skip = Some(tile_skip);
        self
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_best_practices() {
        let b = OptConfig::baseline();
        assert_eq!(b.sync, SyncStrategy::SwapDefault);
        assert_eq!(b.target, RenderStrategy::Texture);
        assert!(!b.texture_reuse);
        assert!(b.invalidate);
        assert_eq!(b.encoding, Encoding::Fp32);
    }

    #[test]
    fn builders_compose_the_paper_chain() {
        // The paper's incremental order for sum: interval 0 -> no swap ->
        // fp24.
        let cfg = OptConfig::baseline()
            .with_swap_interval_0()
            .without_swap()
            .with_fp24();
        assert_eq!(cfg.sync, SyncStrategy::NoSwap);
        assert_eq!(cfg.encoding, Encoding::Fp24);
        // Untouched knobs keep baseline values.
        assert_eq!(cfg.target, RenderStrategy::Texture);
    }
}
