//! Kernel source generators.
//!
//! GPGPU kernels are generated, not hand-written, because they bake in the
//! data ranges of their operand textures, the encoding width and — for the
//! blocked sgemm of the paper's §IV (Fig. 2) — the matrix and block sizes.

use crate::encoding::{Encoding, Range};

/// Formats an f32 so the kernel lexer reparses it exactly.
fn lit(x: f32) -> String {
    // `{:?}` produces the shortest representation that round-trips.
    let s = format!("{x:?}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// `unpack(texture2D(sampler, coord)) * span + lo` — decode to application
/// values.
fn decode_expr(sampler: &str, coord: &str, range: &Range) -> String {
    format!(
        "unpack(texture2D({sampler}, {coord})) * {} + {}",
        lit(range.span()),
        lit(range.lo)
    )
}

/// `pack((value - lo) * inv_span)` — encode an application value.
fn encode_stmt(value_expr: &str, range: &Range) -> String {
    format!(
        "gl_FragColor = pack(({value_expr} - {}) * {});",
        lit(range.lo),
        lit(1.0 / range.span())
    )
}

/// A multiply that honours the encoding: `mul24` in fp24 mode (the paper's
/// reduced-precision fast multiply), a plain `*` otherwise.
fn mul(enc: Encoding, a: &str, b: &str) -> String {
    match enc {
        Encoding::Fp32 => format!("{a} * {b}"),
        Encoding::Fp24 => format!("mul24({a}, {b})"),
    }
}

/// The streaming-addition kernel (`sum` in the paper): element-wise
/// `C = A + B` over two encoded textures sharing `range_in`.
#[must_use]
pub fn sum_kernel(enc: Encoding, range_in: &Range, range_out: &Range) -> String {
    sum_kernel_ranges(enc, range_in, range_in, range_out)
}

/// [`sum_kernel`] with distinct operand ranges — needed when `A` is a
/// previous result (the dependent-chain mode of the paper's Fig. 4a
/// experiment) and therefore lives in the output range.
#[must_use]
pub fn sum_kernel_ranges(
    enc: Encoding,
    range_a: &Range,
    range_b: &Range,
    range_out: &Range,
) -> String {
    format!(
        "uniform sampler2D u_a;\n\
         uniform sampler2D u_b;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float a = {a};\n\
         \x20   float b = {b};\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        a = decode_expr("u_a", "v_coord", range_a),
        b = decode_expr("u_b", "v_coord", range_b),
        out = encode_stmt("(a + b)", range_out),
    )
}

/// The saxpy kernel: `Y = alpha * X + Y` with `alpha` as a uniform —
/// a one-pass kernel whose multiply-add structure exercises MAD fusion.
///
/// `X` is decoded with `range_x`; `Y` (the accumulator) and the result use
/// `range_y`.
#[must_use]
pub fn saxpy_kernel(enc: Encoding, range_x: &Range, range_y: &Range) -> String {
    format!(
        "uniform sampler2D u_x;\n\
         uniform sampler2D u_y;\n\
         uniform float u_alpha;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float x = {x};\n\
         \x20   float y = {y};\n\
         \x20   float r = {ax} + y;\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        x = decode_expr("u_x", "v_coord", range_x),
        y = decode_expr("u_y", "v_coord", range_y),
        ax = mul(enc, "u_alpha", "x"),
        out = encode_stmt("r", range_y),
    )
}

/// The multi-pass blocked sgemm kernel of the paper's Fig. 2.
///
/// Each invocation accumulates a `block`-element chunk of the dot product
/// for every output element and adds the intermediate values from the
/// previous pass. `blk_n` (a uniform) selects the chunk:
/// `blk_n = current_block * block / m`.
///
/// `m` is the square matrix dimension; `block` must divide it.
///
/// # Panics
///
/// Panics if `block` is zero or does not divide `m`.
#[must_use]
pub fn sgemm_kernel(
    enc: Encoding,
    m: u32,
    block: u32,
    range_in: &Range,
    range_out: &Range,
) -> String {
    assert!(
        block > 0 && m.is_multiple_of(block),
        "block {block} must divide m {m}"
    );
    let half_texel = 0.5 / m as f32;
    let step = 1.0 / m as f32;
    let bound = block as f32 / m as f32;
    format!(
        "uniform sampler2D u_a;\n\
         uniform sampler2D u_b;\n\
         uniform sampler2D u_interm;\n\
         uniform float blk_n;\n\
         varying vec2 v_coord0;\n\
         varying vec2 v_coord1;\n\
         varying vec2 v_coord2;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float acc = 0.0;\n\
         \x20   for (float i = {half}; i < {bound}; i += {step}) {{\n\
         \x20       float A = {a};\n\
         \x20       float B = {b};\n\
         \x20       acc += {ab};\n\
         \x20   }}\n\
         \x20   float interm = {interm};\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        half = lit(half_texel),
        bound = lit(bound),
        step = lit(step),
        a = decode_expr("u_a", "vec2(i + blk_n, v_coord0.y)", range_in),
        b = decode_expr("u_b", "vec2(v_coord1.x, i + blk_n)", range_in),
        ab = mul(enc, "A", "B"),
        interm = decode_expr("u_interm", "v_coord2", range_out),
        out = encode_stmt("(acc + interm)", range_out),
    )
}

/// The element-wise (Hadamard) product kernel: `C = A ∘ B`.
///
/// With both inputs in `[0, 1)` the products stay in `[0, 1)`, so this
/// pass composes with the reduction tree without range bookkeeping —
/// together they compute inner products entirely on the GPU.
#[must_use]
pub fn hadamard_kernel(enc: Encoding, range_in: &Range) -> String {
    format!(
        "uniform sampler2D u_a;\n\
         uniform sampler2D u_b;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float a = {a};\n\
         \x20   float b = {b};\n\
         \x20   gl_FragColor = pack({ab});\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        a = decode_expr("u_a", "v_coord", range_in),
        b = decode_expr("u_b", "v_coord", range_in),
        ab = mul(enc, "a", "b"),
    )
}

/// The transpose kernel: `C[x][y] = A[y][x]`, moving encoded texels
/// verbatim (no unpack/pack needed — transposition is pure data
/// movement). The swapped coordinate is constructed in-shader, so the
/// fetch is *dependent*: on real hardware a transpose gather is exactly
/// the strided access that hurts.
#[must_use]
pub fn transpose_kernel() -> String {
    "uniform sampler2D u_src;\n\
     varying vec2 v_coord;\n\
     void main() {\n\
         gl_FragColor = texture2D(u_src, vec2(v_coord.y, v_coord.x));\n\
     }\n"
    .to_owned()
}

/// The 4:1 tree-reduction kernel: each output fragment sums a 2×2 block
/// of the input texture.
///
/// Unlike the other kernels, the value scales are *uniforms*
/// (`u_scale_in`, `u_scale_out`, `u_half_texel`), so a single program
/// serves every pass of the reduction even though the value range grows
/// 4× per pass.
#[must_use]
pub fn reduce4_kernel(enc: Encoding) -> String {
    format!(
        "uniform sampler2D u_src;\n\
         uniform float u_scale_in;\n\
         uniform float u_scale_out;\n\
         uniform float u_half_texel;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float a = unpack(texture2D(u_src, v_coord + vec2(-u_half_texel, -u_half_texel)));\n\
         \x20   float b = unpack(texture2D(u_src, v_coord + vec2(u_half_texel, -u_half_texel)));\n\
         \x20   float c = unpack(texture2D(u_src, v_coord + vec2(-u_half_texel, u_half_texel)));\n\
         \x20   float d = unpack(texture2D(u_src, v_coord + vec2(u_half_texel, u_half_texel)));\n\
         \x20   float total = {sum_scaled};\n\
         \x20   gl_FragColor = pack(total * u_scale_out);\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        sum_scaled = mul(enc, "(a + b + c + d)", "u_scale_in"),
    )
}

/// One weighted-Jacobi iteration for the 2D Poisson problem
/// `∇²u = -f`: `u' = (1-ω)·u + ω·(¼·Σ neighbours + ¼·h²·f)`.
///
/// Neighbour coordinates are computed in-shader (`u_texel` is one texel),
/// making them *dependent* fetches — exactly the access pattern that
/// stresses the platforms differently, like the paper's sgemm. Clamp-to-
/// edge sampling realises a zero-flux (Neumann) boundary.
///
/// `u` and the output use `range_u`; the source term `f` uses `range_f`
/// and is pre-scaled by `h²` on the CPU.
#[must_use]
pub fn jacobi_kernel(enc: Encoding, range_u: &Range, range_f: &Range, omega: f32) -> String {
    assert!((0.0..=1.0).contains(&omega), "omega must be in [0, 1]");
    format!(
        "uniform sampler2D u_u;\n\
         uniform sampler2D u_f;\n\
         uniform float u_texel;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float n = {north};\n\
         \x20   float s = {south};\n\
         \x20   float w = {west};\n\
         \x20   float e = {east};\n\
         \x20   float centre = {centre};\n\
         \x20   float f = {source};\n\
         \x20   float relaxed = (n + s + w + e + f) * 0.25;\n\
         \x20   float next = centre * {one_minus_omega} + {relaxed_scaled};\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        north = decode_expr("u_u", "v_coord + vec2(0.0, -u_texel)", range_u),
        south = decode_expr("u_u", "v_coord + vec2(0.0, u_texel)", range_u),
        west = decode_expr("u_u", "v_coord + vec2(-u_texel, 0.0)", range_u),
        east = decode_expr("u_u", "v_coord + vec2(u_texel, 0.0)", range_u),
        centre = decode_expr("u_u", "v_coord", range_u),
        source = decode_expr("u_f", "v_coord", range_f),
        one_minus_omega = lit(1.0 - omega),
        relaxed_scaled = mul(enc, "relaxed", &lit(omega)),
        out = encode_stmt("next", range_u),
    )
}

/// A 3×3 image convolution kernel over a plain (unencoded) RGBA8 image —
/// the computer-vision workload the paper's introduction motivates.
///
/// `weights` are baked as constants, row-major; `texel` is `1 / image_size`.
#[must_use]
pub fn conv3x3_kernel(weights: &[f32; 9], texel_w: f32, texel_h: f32) -> String {
    let mut taps = String::new();
    for (k, w) in weights.iter().enumerate() {
        let dx = (k % 3) as f32 - 1.0;
        let dy = (k / 3) as f32 - 1.0;
        taps.push_str(&format!(
            "    acc = acc + texture2D(u_img, v_coord + vec2({}, {})).xyz * {};\n",
            lit(dx * texel_w),
            lit(dy * texel_h),
            lit(*w),
        ));
    }
    format!(
        "uniform sampler2D u_img;\n\
         varying vec2 v_coord;\n\
         void main() {{\n\
         \x20   vec3 acc = vec3(0.0, 0.0, 0.0);\n\
         {taps}\
         \x20   gl_FragColor = vec4(clamp(acc, 0.0, 1.0), 1.0);\n\
         }}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mgpu_shader::{compile, cost};

    #[test]
    fn sum_kernel_compiles_with_streaming_fetches() {
        let src = sum_kernel(Encoding::Fp32, &Range::unit(), &Range::new(0.0, 2.0));
        let sh = compile(&src).unwrap();
        let c = cost::analyze(&sh);
        assert_eq!(c.streaming_fetches(), 2);
        assert_eq!(c.dependent_fetches(), 0);
    }

    #[test]
    fn sgemm_kernel_fetch_count_scales_with_block() {
        for block in [1u32, 2, 4, 8, 16] {
            let src = sgemm_kernel(
                Encoding::Fp32,
                64,
                block,
                &Range::unit(),
                &Range::new(0.0, 64.0),
            );
            let sh = compile(&src).unwrap();
            assert_eq!(
                sh.texture_fetch_count() as u32,
                2 * block + 1,
                "block {block}"
            );
            let c = cost::analyze(&sh);
            assert_eq!(c.dependent_fetches() as u32, 2 * block);
            assert_eq!(c.streaming_fetches(), 1);
        }
    }

    #[test]
    fn fp24_sgemm_uses_mul24() {
        let src = sgemm_kernel(
            Encoding::Fp24,
            64,
            4,
            &Range::unit(),
            &Range::new(0.0, 64.0),
        );
        assert!(src.contains("mul24(A, B)"));
        let sh = compile(&src).unwrap();
        assert!(sh.instrs.iter().any(|i| i.op == mgpu_shader::ir::Op::Mul24));
    }

    #[test]
    fn sgemm_rejects_non_dividing_block() {
        let r = std::panic::catch_unwind(|| {
            sgemm_kernel(Encoding::Fp32, 64, 5, &Range::unit(), &Range::unit())
        });
        assert!(r.is_err());
    }

    #[test]
    fn saxpy_kernel_compiles_and_fuses_mad() {
        let src = saxpy_kernel(Encoding::Fp32, &Range::unit(), &Range::new(0.0, 4.0));
        let sh = compile(&src).unwrap();
        assert!(sh.instrs.iter().any(|i| i.op == mgpu_shader::ir::Op::Mad));
    }

    #[test]
    fn conv_kernel_compiles_with_nine_taps() {
        let src = conv3x3_kernel(
            &[
                0.0625, 0.125, 0.0625, 0.125, 0.25, 0.125, 0.0625, 0.125, 0.0625,
            ],
            1.0 / 64.0,
            1.0 / 64.0,
        );
        let sh = compile(&src).unwrap();
        assert_eq!(sh.texture_fetch_count(), 9);
    }

    #[test]
    fn literals_round_trip_through_the_lexer() {
        for x in [0.0f32, 1.0, -3.5, 0.0009765625, 1.0 / 3.0, 65025.0] {
            let s = lit(x);
            let parsed: f32 = s.parse().unwrap();
            assert_eq!(parsed, x, "{s}");
        }
    }

    #[test]
    fn reduce_kernel_has_four_dependent_fetches() {
        let src = reduce4_kernel(Encoding::Fp32);
        let sh = compile(&src).unwrap();
        assert_eq!(sh.texture_fetch_count(), 4);
        let c = cost::analyze(&sh);
        // Offsets are computed from the varying: all dependent.
        assert_eq!(c.dependent_fetches(), 4);
    }

    #[test]
    fn hadamard_kernel_multiplies_pointwise() {
        use mgpu_shader::{Executor, ImageSampler, UniformValues};
        let src = hadamard_kernel(Encoding::Fp32, &Range::unit());
        let sh = compile(&src).unwrap();
        // 1x1 textures holding encoded 0.5 and 0.25.
        let enc = Encoding::Fp32;
        let a = ImageSampler::new(1, 1, enc.encode(&[0.5], &Range::unit()));
        let b = ImageSampler::new(1, 1, enc.encode(&[0.25], &Range::unit()));
        let mut e = Executor::new(&sh, &UniformValues::new()).unwrap();
        let out = e.run(&[[0.5, 0.5, 0.0, 0.0]], &[&a, &b]).unwrap();
        // Decode the packed output.
        let bytes = mgpu_gles::raster::quantize_rgba8(out);
        let got = enc.decode(&bytes, &Range::unit())[0];
        assert!((got - 0.125).abs() < 1e-5, "{got}");
    }

    #[test]
    fn jacobi_kernel_counts_five_stencil_taps_plus_source() {
        let src = jacobi_kernel(Encoding::Fp32, &Range::unit(), &Range::unit(), 0.8);
        let sh = compile(&src).unwrap();
        assert_eq!(sh.texture_fetch_count(), 6);
        let c = cost::analyze(&sh);
        // Centre and source sample straight varyings; four neighbours are
        // computed coordinates.
        assert_eq!(c.dependent_fetches(), 4);
        assert_eq!(c.streaming_fetches(), 2);
    }

    #[test]
    fn jacobi_kernel_rejects_bad_omega() {
        let r = std::panic::catch_unwind(|| {
            jacobi_kernel(Encoding::Fp32, &Range::unit(), &Range::unit(), 1.5)
        });
        assert!(r.is_err());
    }

    #[test]
    fn fp24_variants_of_every_kernel_compile() {
        let rin = Range::unit();
        let rout = Range::new(0.0, 8.0);
        for src in [
            sum_kernel(Encoding::Fp24, &rin, &rout),
            saxpy_kernel(Encoding::Fp24, &rin, &rout),
            sgemm_kernel(Encoding::Fp24, 8, 2, &rin, &rout),
            hadamard_kernel(Encoding::Fp24, &rin),
            reduce4_kernel(Encoding::Fp24),
            jacobi_kernel(Encoding::Fp24, &rin, &rin, 1.0),
        ] {
            compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        }
    }
}
