//! # mgpu-gpgpu — general-purpose computation over OpenGL ES 2
//!
//! The core library of the mgpu stack: a reproduction of
//! *"Optimisation Opportunities and Evaluation for GPGPU Applications on
//! Low-End Mobile GPUs"* (Trompouki & Kosmidis, DATE 2017) and the
//! float↔RGBA8 texture encoding of their DATE 2016 paper it builds on.
//!
//! The crate turns the paper's optimisation checklist into a typed
//! configuration space ([`OptConfig`]) and provides the two benchmarks the
//! paper evaluates — streaming [`Sum`] and multi-pass blocked [`Sgemm`]
//! (§IV, Fig. 2) — plus [`Saxpy`] and [`Convolution3x3`] as further
//! workloads, all runnable under any configuration point on either
//! simulated platform.
//!
//! ```text
//! OptConfig::baseline()            OpenGL ES 2 best practices [14][11]
//!   .with_swap_interval_0()        §II  windowing: eglSwapInterval(0)
//!   .without_swap()                §II  windowing: no eglSwapBuffers
//!   .with_framebuffer_rendering()  §II  texture writing: FB + CopyTex*
//!   .with_texture_reuse()          §II  texture loading: TexSubImage2D
//!   .with_vbo(usage)               §II  vertex processing: VBO + hint
//!   .with_fp24()                   §II  kernel code: 3-byte I/O + mul24
//! ```
//!
//! # Examples
//!
//! Element-wise addition on a simulated Raspberry Pi, fully optimised:
//!
//! ```
//! use mgpu_gles::Gl;
//! use mgpu_gpgpu::{runner, OptConfig, Range, Sum};
//! use mgpu_tbdr::Platform;
//!
//! # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
//! let mut gl = Gl::new(Platform::videocore_iv(), 32, 32);
//! let a: Vec<f32> = (0..1024).map(|i| i as f32 / 1024.0).collect();
//! let b = vec![0.25f32; 1024];
//!
//! let cfg = OptConfig::baseline().with_swap_interval_0().without_swap();
//! let mut sum = Sum::builder(32).build(&mut gl, &cfg, &a, &b)?;
//! sum.step(&mut gl)?;
//! let c = sum.result(&mut gl)?;
//! assert!((c[512] - (a[512] + 0.25)).abs() < 1e-3);
//!
//! // Simulated steady-state kernel rate:
//! let period = runner::steady_period(&mut gl, 5, 20, |gl| sum.step(gl))?;
//! assert!(period > mgpu_tbdr::SimTime::ZERO);
//! # let _ = Range::unit();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

mod config;
mod encoding;
mod error;
pub mod kernels;
mod ops;
pub mod pipeline;
pub mod resilient;
pub mod runner;
pub mod tune;

pub use config::{OptConfig, RenderStrategy, SyncStrategy, VertexStrategy};
pub use encoding::{Encoding, Range};
pub use error::GpgpuError;
pub use ops::{
    Convolution3x3, DotProduct, JacobiBuilder, JacobiSolver, Reduction, Saxpy, Sgemm, Sum,
    SumBuilder, Transpose,
};
pub use pipeline::{Pipeline, PipelineBuilder, Source};
pub use resilient::{
    crc32, ExhaustedError, PipelineJob, RecoverableJob, RecoveryEvent, ResilienceConfig,
    ResilientRunner, RetryPolicy, SgemmJob, StageId, SumJob,
};
pub use runner::{speedup, steady_period};
pub use tune::{tune_sgemm, tune_sum, TunePoint, TuneResult};
