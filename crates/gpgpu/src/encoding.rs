//! The float ↔ RGBA8 texture encoding of Trompouki & Kosmidis (DATE 2016),
//! which the DATE 2017 paper builds on.
//!
//! OpenGL ES 2 exposes no float textures or float render targets, so GPGPU
//! data makes the round trip CPU float → normalised bytes → shader floats →
//! packed bytes → CPU float:
//!
//! * **CPU encode** ([`Encoding::encode`]): map a value from its declared
//!   range onto `[0, 1)` and split it over a texel's channels,
//!   most-significant byte first (radix 255, matching the in-shader `dot`
//!   reconstruction).
//! * **Shader decode** (`reconstr_in` in the paper's Fig. 2): a single
//!   `dot(texel, weights)` — one hardware instruction on embedded ISAs.
//! * **Shader encode** (`encode_out`): the classic `fract`-cascade pack,
//!   relying on the fixed-function RGBA8 quantiser to round each channel.
//! * **CPU decode** ([`Encoding::decode`]): radix-255 reconstruction.
//!
//! As the paper notes, the achievable precision is 24–32 bits: the fourth
//! byte's contribution sits at the edge of f32 arithmetic. The
//! [`Encoding::Fp24`] variant stores only three bytes — 25% less texture
//! bandwidth (the paper's fp24 optimisation) at ~16 useful bits.

use mgpu_gles::TextureFormat;

/// How many bytes of precision an encoding uses per value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Encoding {
    /// Four bytes (RGBA8): 24–32-bit effective precision.
    #[default]
    Fp32,
    /// Three bytes (RGB8): the paper's 24-bit mode — 25% less bandwidth,
    /// `mul24`-friendly arithmetic.
    Fp24,
}

impl Encoding {
    /// The texture format carrying this encoding.
    #[must_use]
    pub fn texture_format(self) -> TextureFormat {
        match self {
            Encoding::Fp32 => TextureFormat::Rgba8,
            Encoding::Fp24 => TextureFormat::Rgb8,
        }
    }

    /// Bytes per encoded value.
    #[must_use]
    pub fn bytes_per_value(self) -> usize {
        self.texture_format().channels()
    }

    /// Worst-case absolute reconstruction error for values spanning
    /// `range` (CPU round trip; the shader adds f32 noise on top).
    #[must_use]
    pub fn quantum(self, range: f32) -> f32 {
        match self {
            Encoding::Fp32 => range / (255.0f32.powi(4)),
            Encoding::Fp24 => range / (255.0f32.powi(3)),
        }
    }
}

/// A linear mapping from application values onto the encodable `[0, 1)`
/// interval: `t = (v - lo) / (hi - lo)`.
///
/// Kernels bake the inverse mapping into their source, so every texture
/// carries its range with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Range {
    /// Smallest representable value.
    pub lo: f32,
    /// One past the largest representable value.
    pub hi: f32,
}

impl Range {
    /// The unit range `[0, 1)`.
    #[must_use]
    pub const fn unit() -> Self {
        Range { lo: 0.0, hi: 1.0 }
    }

    /// A range from `lo` to `hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo` or either bound is non-finite.
    #[must_use]
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "bad range [{lo}, {hi})"
        );
        Range { lo, hi }
    }

    /// The span `hi - lo`.
    #[must_use]
    pub fn span(&self) -> f32 {
        self.hi - self.lo
    }

    /// Maps a value into `[0, 1)`, clamping out-of-range inputs (like the
    /// GPU's output clamp).
    ///
    /// Boundary policy (documented and tested, so every layer of the
    /// stack agrees):
    ///
    /// * values at or above `hi` (including `+∞`) clamp to the largest
    ///   representable value, one quantum below `hi`;
    /// * values at or below `lo` (including `-∞`) clamp to `lo`;
    /// * `NaN` maps to `lo` — the encoding has no payload bits to carry
    ///   a NaN, and `lo` is the least surprising total ordering choice.
    #[must_use]
    pub fn normalize(&self, v: f32) -> f32 {
        let t = (v - self.lo) / self.span();
        if t.is_nan() {
            0.0
        } else {
            t.clamp(0.0, ONE_MINUS_EPS)
        }
    }

    /// Maps a normalised value back.
    #[must_use]
    pub fn denormalize(&self, t: f32) -> f32 {
        t * self.span() + self.lo
    }
}

/// Largest f32 strictly below 1.0 — the top of the encodable interval.
const ONE_MINUS_EPS: f32 = 1.0 - f32::EPSILON / 2.0;

/// Encodes one normalised value `t ∈ [0, 1)` into radix-255 bytes,
/// most significant first.
fn encode_bytes(t: f32, out: &mut [u8]) {
    let mut r = f64::from(t.clamp(0.0, ONE_MINUS_EPS));
    for b in out.iter_mut() {
        r *= 255.0;
        let digit = r.floor().min(255.0);
        *b = digit as u8;
        r -= digit;
    }
}

/// Decodes radix-255 bytes back to a normalised value.
fn decode_bytes(bytes: &[u8]) -> f32 {
    let mut t = 0.0f64;
    let mut w = 1.0f64;
    for &b in bytes {
        w /= 255.0;
        t += f64::from(b) * w;
    }
    t as f32
}

impl Encoding {
    /// Encodes a slice of values into texel bytes for a texture of this
    /// encoding's format.
    ///
    /// # Examples
    ///
    /// ```
    /// use mgpu_gpgpu::{Encoding, Range};
    ///
    /// let range = Range::new(0.0, 4.0);
    /// let bytes = Encoding::Fp32.encode(&[0.0, 1.5, 3.999], &range);
    /// let back = Encoding::Fp32.decode(&bytes, &range);
    /// assert!((back[1] - 1.5).abs() < 1e-6);
    /// ```
    #[must_use]
    pub fn encode(&self, values: &[f32], range: &Range) -> Vec<u8> {
        let n = self.bytes_per_value();
        let mut out = vec![0u8; values.len() * n];
        for (v, chunk) in values.iter().zip(out.chunks_exact_mut(n)) {
            encode_bytes(range.normalize(*v), chunk);
        }
        out
    }

    /// Decodes texel bytes produced by [`Encoding::encode`] or by a kernel's
    /// `encode_out`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a multiple of the encoding width.
    #[must_use]
    pub fn decode(&self, bytes: &[u8], range: &Range) -> Vec<f32> {
        let n = self.bytes_per_value();
        assert_eq!(
            bytes.len() % n,
            0,
            "byte slice not a whole number of texels"
        );
        bytes
            .chunks_exact(n)
            .map(|c| range.denormalize(decode_bytes(c)))
            .collect()
    }

    /// The kernel-language source of the reconstruction function
    /// (`reconstr_in` in the paper): unpack a sampled texel to a normalised
    /// float with a single `dot`.
    #[must_use]
    pub fn decode_fn_source(&self) -> String {
        match self {
            Encoding::Fp32 => "float unpack(vec4 c) {\n    return dot(c, vec4(1.0, 0.00392156862745098, 0.0000153787004998078, 0.0000000603086314193));\n}\n".to_owned(),
            Encoding::Fp24 => "float unpack(vec4 c) {\n    return dot(c.xyz, vec3(1.0, 0.00392156862745098, 0.0000153787004998078));\n}\n".to_owned(),
        }
    }

    /// The kernel-language source of the output packing function
    /// (`encode_out` in the paper): the `fract` cascade, leaving the final
    /// byte rounding to the RGBA8 output stage.
    #[must_use]
    pub fn encode_fn_source(&self) -> String {
        match self {
            Encoding::Fp32 => "vec4 pack(float t) {\n    float s = clamp(t, 0.0, 0.9999999);\n    vec4 enc = fract(s * vec4(1.0, 255.0, 65025.0, 16581375.0));\n    enc = enc - vec4(enc.y, enc.z, enc.w, 0.0) * 0.00392156862745098;\n    return enc;\n}\n".to_owned(),
            Encoding::Fp24 => "vec4 pack(float t) {\n    float s = clamp(t, 0.0, 0.9999999);\n    vec3 enc3 = fract(s * vec3(1.0, 255.0, 65025.0));\n    enc3 = enc3 - vec3(enc3.y, enc3.z, 0.0) * 0.00392156862745098;\n    return vec4(enc3, 1.0);\n}\n".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_round_trip_is_tight() {
        let range = Range::new(-2.0, 2.0);
        let values = [-2.0, -1.3333, 0.0, 0.5, 1.999, 1.9999999];
        let enc = Encoding::Fp32;
        let bytes = enc.encode(&values, &range);
        let back = enc.decode(&bytes, &range);
        // f32 normalise/denormalise rounding dominates the radix-255
        // quantum for Fp32, so tolerate both.
        let tol = (enc.quantum(range.span()) * 2.0).max(range.span() * f32::EPSILON * 4.0);
        for (v, b) in values.iter().zip(&back) {
            assert!((v - b).abs() <= tol, "{v} -> {b}");
        }
    }

    #[test]
    fn fp24_round_trip_is_coarser_but_close() {
        let range = Range::unit();
        let enc = Encoding::Fp24;
        let bytes = enc.encode(&[0.123456], &range);
        assert_eq!(bytes.len(), 3);
        let back = enc.decode(&bytes, &range)[0];
        assert!((back - 0.123456).abs() < enc.quantum(1.0) * 2.0);
        assert!(enc.quantum(1.0) > Encoding::Fp32.quantum(1.0));
    }

    #[test]
    fn out_of_range_values_clamp() {
        let range = Range::unit();
        let bytes = Encoding::Fp32.encode(&[-5.0, 7.0], &range);
        let back = Encoding::Fp32.decode(&bytes, &range);
        assert!(back[0].abs() < 1e-6);
        assert!((back[1] - 1.0).abs() < 1e-4);
        assert!(back[1] < 1.0);
    }

    /// Encode → decode stays within one quantum (plus f32
    /// normalise/denormalise rounding) for *every* in-range value,
    /// including both endpoints: `lo` itself and the largest
    /// representable value just below `hi`.
    #[test]
    fn round_trip_stays_within_quantum_for_all_in_range_values() {
        use mgpu_prop::{run_cases, Rng};

        run_cases(512, |rng: &mut Rng| {
            let lo = rng.f32(-100.0, 100.0);
            let span = rng.f32(0.1, 200.0);
            let range = Range::new(lo, lo + span);
            let enc = if rng.bool() {
                Encoding::Fp32
            } else {
                Encoding::Fp24
            };
            // The endpoints, the largest f32 below hi, and random interior
            // points.
            let top = f32::from_bits(range.hi.to_bits() - 1);
            let mut values = vec![range.lo, top, range.denormalize(ONE_MINUS_EPS)];
            for _ in 0..5 {
                values.push(rng.f32(range.lo, range.hi));
            }
            values.retain(|v| *v >= range.lo && *v < range.hi);
            let tol = enc.quantum(range.span()) + (lo.abs() + span) * f32::EPSILON * 4.0;
            let back = enc.decode(&enc.encode(&values, &range), &range);
            for (v, b) in values.iter().zip(&back) {
                assert!((v - b).abs() <= tol, "{v} -> {b} in {range:?} ({enc:?})");
                assert!(
                    *b >= range.lo - tol && *b < range.hi,
                    "{b} escapes {range:?}"
                );
            }
            // `lo` round-trips exactly: it normalises to 0, all-zero bytes.
            assert_eq!(back[0], range.lo);
        });
    }

    /// The documented boundary policy: ≥ `hi` clamps to just below `hi`,
    /// ≤ `lo` (and `NaN`) map to `lo`, and infinities behave like
    /// out-of-range finite values.
    #[test]
    fn non_finite_and_out_of_range_policy() {
        let range = Range::new(-2.0, 6.0);
        for enc in [Encoding::Fp32, Encoding::Fp24] {
            let values = [
                f32::NAN,
                f32::NEG_INFINITY,
                f32::INFINITY,
                range.hi,
                range.hi + 1e3,
                range.lo - 1e3,
            ];
            let back = enc.decode(&enc.encode(&values, &range), &range);
            assert_eq!(back[0], range.lo, "NaN maps to lo ({enc:?})");
            assert_eq!(back[1], range.lo, "-inf clamps to lo ({enc:?})");
            assert_eq!(back[5], range.lo, "below-range clamps to lo ({enc:?})");
            for (i, why) in [(2, "+inf"), (3, "hi"), (4, "above-range")] {
                assert!(back[i] < range.hi, "{why} must clamp below hi ({enc:?})");
                assert!(
                    back[i] > range.hi - 2.0 * enc.quantum(range.span()) - 1e-5,
                    "{why} clamps to the top of the range ({enc:?})"
                );
            }
        }
    }

    #[test]
    fn encoding_is_monotone() {
        let range = Range::unit();
        let enc = Encoding::Fp32;
        let mut prev = -1.0f32;
        for i in 0..1000 {
            let v = i as f32 / 1000.0;
            let bytes = enc.encode(&[v], &range);
            let back = enc.decode(&bytes, &range)[0];
            assert!(back >= prev, "decode not monotone at {v}");
            prev = back;
        }
    }

    #[test]
    fn formats_match_encoding() {
        assert_eq!(Encoding::Fp32.texture_format(), TextureFormat::Rgba8);
        assert_eq!(Encoding::Fp24.texture_format(), TextureFormat::Rgb8);
        assert_eq!(Encoding::Fp32.bytes_per_value(), 4);
        assert_eq!(Encoding::Fp24.bytes_per_value(), 3);
    }

    #[test]
    fn range_validation() {
        let r = Range::new(2.0, 10.0);
        assert_eq!(r.span(), 8.0);
        assert_eq!(r.normalize(6.0), 0.5);
        assert_eq!(r.denormalize(0.5), 6.0);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_panics() {
        let _ = Range::new(1.0, 0.0);
    }

    #[test]
    fn shader_decode_matches_cpu_encode() {
        // Compile the unpack function and check it reconstructs what
        // encode() produced, through the actual shader VM.
        use mgpu_shader::{compile, Executor, UniformValues};

        let src = format!(
            "{}varying vec2 v;\nuniform vec4 u_texel;\nvoid main() {{ gl_FragColor = vec4(unpack(u_texel)); }}\n",
            Encoding::Fp32.decode_fn_source()
        );
        let sh = compile(&src).unwrap();

        let range = Range::unit();
        for &v in &[0.0f32, 0.25, 0.5, 0.123_456_79, 0.999] {
            let bytes = Encoding::Fp32.encode(&[v], &range);
            let texel = [
                f32::from(bytes[0]) / 255.0,
                f32::from(bytes[1]) / 255.0,
                f32::from(bytes[2]) / 255.0,
                f32::from(bytes[3]) / 255.0,
            ];
            let mut uniforms = UniformValues::new();
            uniforms.set("u_texel", texel);
            let mut ex = Executor::new(&sh, &uniforms).unwrap();
            let got = ex.run(&[[0.0; 4]], &[]).unwrap()[0];
            assert!((got - v).abs() < 3e-6, "{v} -> {got}");
        }
    }

    #[test]
    fn shader_pack_round_trips_through_quantizer() {
        // pack() in the VM + RGBA8 quantisation + CPU decode ≈ identity.
        use mgpu_gles::raster::quantize_rgba8;
        use mgpu_shader::{compile, Executor, UniformValues};

        let src = format!(
            "{}varying vec2 v;\nuniform float u_t;\nvoid main() {{ gl_FragColor = pack(u_t); }}\n",
            Encoding::Fp32.encode_fn_source()
        );
        let sh = compile(&src).unwrap();
        let range = Range::unit();

        for &t in &[0.0f32, 0.1, 0.5, 0.754321, 0.999999] {
            let mut uniforms = UniformValues::new();
            uniforms.set_scalar("u_t", t);
            let mut ex = Executor::new(&sh, &uniforms).unwrap();
            let rgba = ex.run(&[[0.0; 4]], &[]).unwrap();
            let bytes = quantize_rgba8(rgba);
            let back = Encoding::Fp32.decode(&bytes, &range)[0];
            assert!((back - t).abs() < 4e-6, "{t} -> {back} ({bytes:?})");
        }
    }

    #[test]
    fn fp24_shader_pack_round_trips() {
        use mgpu_gles::raster::quantize_rgba8;
        use mgpu_shader::{compile, Executor, UniformValues};

        let src = format!(
            "{}varying vec2 v;\nuniform float u_t;\nvoid main() {{ gl_FragColor = pack(u_t); }}\n",
            Encoding::Fp24.encode_fn_source()
        );
        let sh = compile(&src).unwrap();
        for &t in &[0.0f32, 0.33, 0.66, 0.999] {
            let mut uniforms = UniformValues::new();
            uniforms.set_scalar("u_t", t);
            let mut ex = Executor::new(&sh, &uniforms).unwrap();
            let rgba = ex.run(&[[0.0; 4]], &[]).unwrap();
            let bytes = quantize_rgba8(rgba);
            let back = Encoding::Fp24.decode(&bytes[..3], &Range::unit())[0];
            assert!(
                (back - t).abs() < 2.0 * Encoding::Fp24.quantum(1.0),
                "{t} -> {back}"
            );
        }
    }
}
