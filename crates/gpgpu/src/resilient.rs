//! Resilient multi-pass execution: pass-granular checkpointing, bounded
//! retries with simulated-time backoff, and graceful degradation.
//!
//! Low-end mobile GPU contexts die: the compositor evicts them, the
//! driver's watchdog kills long draws, allocations fail under memory
//! pressure, and (rarely) results come back corrupted. [`ResilientRunner`]
//! wraps any [`RecoverableJob`] — [`SumJob`], [`SgemmJob`], [`PipelineJob`]
//! or a user implementation — and drives it to completion through the
//! faults injected by [`mgpu_gles::FaultPlan`] (or a real flaky driver):
//!
//! * **checkpointing** — after every pass the chain's latest bytes are
//!   mirrored to the host; recovery replays only the passes at/after the
//!   failure;
//! * **context loss** — [`Gl::recreate`] plus job rebuild (programs and
//!   inputs re-created) and checkpoint restore, bounded by
//!   [`RetryPolicy::max_context_recreates`];
//! * **transient faults** (OOM, compile scratch) — bounded retries with
//!   exponential backoff charged as simulated CPU time;
//! * **watchdog kills** — the draw is split into progressively more
//!   row-band sub-draws (bit-identical output, lower per-draw cost);
//! * **corruption** — optional CRC-32 verification re-runs each pass from
//!   its checkpoint and accepts only agreeing results; repeated mismatch
//!   falls back to the scalar engine, which is byte-identical by the
//!   stack's determinism invariant;
//! * **lossy degradation** — when everything else is exhausted and
//!   [`ResilienceConfig::allow_lossy_degrade`] is set, the job may reduce
//!   its working-set (e.g. [`SgemmJob`] halves its block size) and the
//!   whole run restarts.
//!
//! A recovered run returns bytes identical to a fault-free run (unless a
//! lossy degradation was explicitly allowed); an unrecoverable run returns
//! [`GpgpuError::Exhausted`] carrying the fault trail and every recovery
//! step taken — never a panic, never silent corruption.

use std::fmt;

use mgpu_gles::{Engine, FaultEvent, Gl, GlError};
use mgpu_tbdr::SimTime;

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::ops::{Sgemm, Sum};
use crate::pipeline::{Pipeline, PipelineBuilder};

/// CRC-32 (IEEE 802.3) of `data` — the checksum used for pass
/// verification.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Bounds on the runner's retry behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per stage (first try included) before giving up.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_backoff * 2^(k-1)`, saturated at
    /// [`RetryPolicy::max_backoff`] and charged as simulated CPU time via
    /// [`Gl::add_cpu_work`].
    pub base_backoff: SimTime,
    /// Ceiling on a single backoff interval: exponential growth saturates
    /// here instead of overflowing, so arbitrarily large attempt counts
    /// stay finite and monotone.
    pub max_backoff: SimTime,
    /// Context recreations allowed per [`ResilientRunner::run`] call.
    pub max_context_recreates: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: SimTime::from_micros(20),
            max_backoff: SimTime::from_millis(5),
            max_context_recreates: 8,
        }
    }
}

impl RetryPolicy {
    /// The simulated backoff before retry `attempt` (1-based): truncated
    /// binary exponential growth, saturating at
    /// [`RetryPolicy::max_backoff`]. Total (not per-interval) for any
    /// attempt count, including attempt numbers far beyond
    /// [`RetryPolicy::max_attempts`], the result is finite, monotone
    /// non-decreasing, and never overflows.
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> SimTime {
        // A shift of 63 already exceeds any representable SimTime, so
        // clamping there makes the shift itself well-defined; the multiply
        // saturates and the cap bounds the result.
        let shift = attempt.saturating_sub(1).min(63);
        let factor = 1u64 << shift;
        SimTime::from_nanos(self.base_backoff.as_nanos().saturating_mul(factor))
            .min(self.max_backoff)
    }
}

/// Configuration of [`ResilientRunner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retry bounds and backoff.
    pub retry: RetryPolicy,
    /// Verify every pass with CRC-32: the pass is re-run from its
    /// checkpoint and accepted only when both runs agree. Costs roughly 2×
    /// the draw work; catches silent corruption.
    pub verify_checksums: bool,
    /// Allow jobs to degrade lossily (e.g. sgemm block-size reduction)
    /// when retries are exhausted. Changes result bytes — off by default.
    pub allow_lossy_degrade: bool,
    /// Upper bound on row-band splitting under watchdog pressure.
    pub max_bands: u32,
    /// Lossy degradations allowed before giving up.
    pub max_lossy_degrades: u32,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry: RetryPolicy::default(),
            verify_checksums: false,
            allow_lossy_degrade: false,
            max_bands: 64,
            max_lossy_degrades: 3,
        }
    }
}

/// Checksum mismatches tolerated before falling back to the scalar engine.
const ENGINE_FALLBACK_MISMATCHES: u32 = 2;

/// A stage of a resilient run, for events and errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageId {
    /// A compute pass (0-based).
    Pass(usize),
    /// The final result readback.
    Readback,
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageId::Pass(i) => write!(f, "pass {i}"),
            StageId::Readback => write!(f, "readback"),
        }
    }
}

/// One recovery action taken by the runner, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// The GL context was recreated after a loss; the job was rebuilt and
    /// the checkpoint restored.
    ContextRecreated {
        /// Stage at which the loss surfaced.
        stage: StageId,
    },
    /// A transient failure was retried after simulated backoff.
    Retried {
        /// Stage retried.
        stage: StageId,
        /// 1-based retry number within the stage.
        attempt: u32,
        /// Simulated backoff charged before the retry.
        backoff: SimTime,
    },
    /// The watchdog rejected a draw; subsequent draws are split into more
    /// row bands.
    BandsIncreased {
        /// Stage at which the watchdog fired.
        stage: StageId,
        /// New (sticky) band count.
        bands: u32,
    },
    /// Checksum verification caught diverging pass results.
    ChecksumMismatch {
        /// Stage that mismatched.
        stage: StageId,
    },
    /// Repeated mismatches: execution fell back to the scalar engine
    /// (byte-identical results by the determinism invariant).
    EngineFallback {
        /// Stage at which the fallback happened.
        stage: StageId,
    },
    /// The job degraded lossily and the run restarted.
    LossyDegrade {
        /// 1-based degradation level.
        level: u32,
    },
}

/// The typed give-up error of [`ResilientRunner::run`]: what failed, what
/// was tried, and the full injected-fault trail.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustedError {
    /// The job's label.
    pub job: String,
    /// Stage that exhausted its attempts.
    pub stage: StageId,
    /// Attempts spent on that stage.
    pub attempts: u32,
    /// The last error observed.
    pub last_error: Box<GpgpuError>,
    /// Every fault the injector fired up to the give-up, in order.
    pub fault_trail: Vec<FaultEvent>,
    /// Every recovery action the runner took, in order.
    pub recovery: Vec<RecoveryEvent>,
}

impl fmt::Display for ExhaustedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resilience exhausted for `{}` at {} after {} attempts \
             ({} faults injected, {} recovery actions): {}",
            self.job,
            self.stage,
            self.attempts,
            self.fault_trail.len(),
            self.recovery.len(),
            self.last_error
        )
    }
}

impl std::error::Error for ExhaustedError {}

/// A job the [`ResilientRunner`] can rebuild, replay pass-by-pass,
/// checkpoint and (optionally) degrade.
///
/// Implementations must be deterministic: replaying a pass from the same
/// checkpoint must reproduce the same bytes, or checksum verification and
/// byte-identical recovery cannot hold.
pub trait RecoverableJob {
    /// Human-readable label for errors and reports.
    fn label(&self) -> String;
    /// (Re)creates every GL object the job owns — programs, input
    /// textures, output chain. Called before the first run and again after
    /// each context recreation, so it must not assume prior GL state.
    fn build(&mut self, gl: &mut Gl) -> Result<(), GpgpuError>;
    /// Number of passes in one run (may change after
    /// [`RecoverableJob::degrade_lossy`]).
    fn passes(&self) -> usize;
    /// Restores the job's start-of-run state (e.g. re-seeds an
    /// accumulator). Must be callable repeatedly.
    fn begin_run(&mut self, gl: &mut Gl) -> Result<(), GpgpuError>;
    /// Executes pass `pass`, splitting its draw into `bands` row bands
    /// (`bands <= 1` = one full draw).
    fn run_pass(&mut self, gl: &mut Gl, pass: usize, bands: u32) -> Result<(), GpgpuError>;
    /// Reads back the latest output bytes (the pass-granular checkpoint).
    fn snapshot(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError>;
    /// Uploads checkpoint bytes back into the latest-output slot.
    fn restore(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError>;
    /// Reads back the final result bytes.
    fn result_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError>;
    /// Applies a lossy degradation (smaller blocks, cheaper kernel, ...).
    /// Returns whether anything changed; the runner then restarts the run
    /// from scratch. Only invoked when
    /// [`ResilienceConfig::allow_lossy_degrade`] is set.
    fn degrade_lossy(&mut self) -> bool {
        false
    }
}

/// How a stage attempt failed (checksum mismatches are not [`GpgpuError`]s
/// until they exhaust their retries).
enum PassFailure {
    Err(GpgpuError),
    Mismatch,
}

enum StageOk {
    /// Pass completed; carries the new checkpoint bytes.
    Advanced(Vec<u8>),
    /// Readback completed; carries the final result bytes.
    Done(Vec<u8>),
}

enum Recovered {
    Retry,
    GiveUp(GpgpuError),
    Fatal(GpgpuError),
}

/// Drives a [`RecoverableJob`] to completion through injected (or real)
/// faults. See the [module docs](self) for the recovery model.
///
/// # Examples
///
/// ```
/// use mgpu_gles::{FaultPlan, Gl};
/// use mgpu_gpgpu::{OptConfig, ResilienceConfig, ResilientRunner, SumJob};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
/// gl.install_faults(FaultPlan::seeded(7).ctx_loss_at_draw(1));
///
/// let a = vec![0.25f32; 64];
/// let b = vec![0.5f32; 64];
/// let cfg = OptConfig::baseline().without_swap();
/// let mut job = SumJob::new(&cfg, 8, &a, &b, 3);
/// let mut runner = ResilientRunner::new(ResilienceConfig::default());
/// let bytes = runner.run(&mut gl, &mut job)?;   // recovers through the loss
/// assert!(!bytes.is_empty());
/// assert!(!runner.events().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ResilientRunner {
    cfg: ResilienceConfig,
    events: Vec<RecoveryEvent>,
    bands: u32,
    recreates: u32,
    mismatches: u32,
    engine_fallback: bool,
    needs_rebuild: bool,
}

impl ResilientRunner {
    /// Creates a runner with the given resilience configuration.
    #[must_use]
    pub fn new(cfg: ResilienceConfig) -> Self {
        ResilientRunner {
            cfg,
            events: Vec::new(),
            bands: 1,
            recreates: 0,
            mismatches: 0,
            engine_fallback: false,
            needs_rebuild: true,
        }
    }

    /// The recovery actions taken by the most recent
    /// [`ResilientRunner::run`], in order. Deterministic for a given
    /// fault-plan seed.
    #[must_use]
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// The sticky row-band count the runner settled on (1 = full draws).
    #[must_use]
    pub fn bands(&self) -> u32 {
        self.bands
    }

    /// Runs the job to completion, returning the raw encoded result bytes.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Exhausted`] when retries, recreations and degradation
    /// rungs are spent (carrying the fault trail); the underlying error
    /// directly when it is not recoverable (e.g. [`GpgpuError::Config`]).
    pub fn run(
        &mut self,
        gl: &mut Gl,
        job: &mut dyn RecoverableJob,
    ) -> Result<Vec<u8>, GpgpuError> {
        self.events.clear();
        self.bands = 1;
        self.recreates = 0;
        self.mismatches = 0;
        self.engine_fallback = false;
        let mut degrade_level = 0u32;
        loop {
            match self.try_run(gl, job) {
                Ok(bytes) => return Ok(bytes),
                Err(e) => {
                    if matches!(e, GpgpuError::Exhausted(_))
                        && self.cfg.allow_lossy_degrade
                        && degrade_level < self.cfg.max_lossy_degrades
                        && job.degrade_lossy()
                    {
                        degrade_level += 1;
                        self.events.push(RecoveryEvent::LossyDegrade {
                            level: degrade_level,
                        });
                        self.bands = 1;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One full attempt at the run: build, every pass with checkpointing
    /// (and optional verification), readback.
    fn try_run(
        &mut self,
        gl: &mut Gl,
        job: &mut dyn RecoverableJob,
    ) -> Result<Vec<u8>, GpgpuError> {
        self.needs_rebuild = true;
        let total = job.passes();
        let mut checkpoint: Option<Vec<u8>> = None;
        let mut pass = 0usize;
        let mut attempts = 0u32;
        loop {
            let stage = if pass < total {
                StageId::Pass(pass)
            } else {
                StageId::Readback
            };
            match self.exec_stage(gl, job, pass, total, checkpoint.as_deref()) {
                Ok(StageOk::Advanced(cp)) => {
                    checkpoint = Some(cp);
                    pass += 1;
                    attempts = 0;
                }
                Ok(StageOk::Done(bytes)) => return Ok(bytes),
                Err(fail) => {
                    attempts += 1;
                    let err = match fail {
                        PassFailure::Err(e) => e,
                        PassFailure::Mismatch => {
                            self.mismatches += 1;
                            self.events.push(RecoveryEvent::ChecksumMismatch { stage });
                            if self.mismatches >= ENGINE_FALLBACK_MISMATCHES
                                && !self.engine_fallback
                            {
                                self.engine_fallback = true;
                                let exec = gl.exec_config().with_engine(Engine::Scalar);
                                gl.set_exec_config(exec);
                                self.events.push(RecoveryEvent::EngineFallback { stage });
                            }
                            GpgpuError::Corrupted(format!(
                                "checksum mismatch at {stage}: two runs of the pass disagree"
                            ))
                        }
                    };
                    if attempts >= self.cfg.retry.max_attempts {
                        return Err(self.exhausted(gl, job, stage, attempts, err));
                    }
                    let next = if matches!(err, GpgpuError::Corrupted(_)) {
                        // Roll the chain back to the pre-pass checkpoint
                        // so the retry starts from known-good state.
                        match restore_prev(gl, job, checkpoint.as_deref()) {
                            Ok(()) => Recovered::Retry,
                            Err(e2) => self.recover(gl, stage, attempts, e2),
                        }
                    } else {
                        self.recover(gl, stage, attempts, err)
                    };
                    match next {
                        Recovered::Retry => {}
                        Recovered::GiveUp(e) => {
                            return Err(self.exhausted(gl, job, stage, attempts, e));
                        }
                        Recovered::Fatal(e) => return Err(e),
                    }
                }
            }
        }
    }

    /// Executes one stage. Rebuilds the job first when a context
    /// recreation (or the initial build) is pending.
    fn exec_stage(
        &mut self,
        gl: &mut Gl,
        job: &mut dyn RecoverableJob,
        pass: usize,
        total: usize,
        checkpoint: Option<&[u8]>,
    ) -> Result<StageOk, PassFailure> {
        if self.needs_rebuild {
            job.build(gl).map_err(PassFailure::Err)?;
            job.begin_run(gl).map_err(PassFailure::Err)?;
            if let Some(cp) = checkpoint {
                job.restore(gl, cp).map_err(PassFailure::Err)?;
            }
            self.needs_rebuild = false;
        }
        if pass >= total {
            return job
                .result_bytes(gl)
                .map(StageOk::Done)
                .map_err(PassFailure::Err);
        }
        job.run_pass(gl, pass, self.bands)
            .map_err(PassFailure::Err)?;
        let snap = job.snapshot(gl).map_err(PassFailure::Err)?;
        if !self.cfg.verify_checksums {
            return Ok(StageOk::Advanced(snap));
        }
        // Verification: replay the pass from the checkpoint and accept
        // only when both runs produce the same CRC.
        let crc_first = crc32(&snap);
        restore_prev(gl, job, checkpoint).map_err(PassFailure::Err)?;
        job.run_pass(gl, pass, self.bands)
            .map_err(PassFailure::Err)?;
        let second = job.snapshot(gl).map_err(PassFailure::Err)?;
        if crc32(&second) != crc_first {
            return Err(PassFailure::Mismatch);
        }
        Ok(StageOk::Advanced(second))
    }

    /// Decides and performs the recovery for `err` at `stage`.
    fn recover(&mut self, gl: &mut Gl, stage: StageId, attempt: u32, err: GpgpuError) -> Recovered {
        match &err {
            GpgpuError::Gl(GlError::ContextLost) => {
                if self.recreates >= self.cfg.retry.max_context_recreates {
                    return Recovered::GiveUp(err);
                }
                // Recreation drops every GL object and the context's
                // draw-plan cache with them; the persistent worker pool
                // survives, so recovered execution re-warms plans without
                // paying a thread-respawn tax.
                gl.recreate();
                self.recreates += 1;
                self.needs_rebuild = true;
                self.events.push(RecoveryEvent::ContextRecreated { stage });
                Recovered::Retry
            }
            GpgpuError::Gl(GlError::WatchdogTimeout { .. }) => {
                let doubled = self.bands.saturating_mul(2).min(self.cfg.max_bands);
                if doubled > self.bands {
                    self.bands = doubled;
                    self.events.push(RecoveryEvent::BandsIncreased {
                        stage,
                        bands: doubled,
                    });
                }
                // Already at the split limit: keep retrying until the
                // attempt budget runs out (the budget may be transiently
                // tight, e.g. while another draw drains).
                Recovered::Retry
            }
            GpgpuError::Gl(g) if g.is_transient() => {
                let backoff = self.cfg.retry.backoff_for(attempt);
                gl.add_cpu_work(backoff);
                self.events.push(RecoveryEvent::Retried {
                    stage,
                    attempt,
                    backoff,
                });
                Recovered::Retry
            }
            _ => Recovered::Fatal(err),
        }
    }

    fn exhausted(
        &self,
        gl: &Gl,
        job: &dyn RecoverableJob,
        stage: StageId,
        attempts: u32,
        last: GpgpuError,
    ) -> GpgpuError {
        GpgpuError::Exhausted(Box::new(ExhaustedError {
            job: job.label(),
            stage,
            attempts,
            last_error: Box::new(last),
            fault_trail: gl.fault_trail().to_vec(),
            recovery: self.events.clone(),
        }))
    }
}

/// Restores the chain to the state the current pass started from: the
/// checkpoint when one exists, the job's start-of-run state otherwise.
fn restore_prev(
    gl: &mut Gl,
    job: &mut dyn RecoverableJob,
    checkpoint: Option<&[u8]>,
) -> Result<(), GpgpuError> {
    match checkpoint {
        Some(cp) => job.restore(gl, cp),
        None => job.begin_run(gl),
    }
}

// ---- built-in jobs ---------------------------------------------------------

/// [`RecoverableJob`] over the [`Sum`] operator: `iterations` steps, one
/// pass each.
#[derive(Debug)]
pub struct SumJob {
    cfg: OptConfig,
    n: u32,
    a: Vec<f32>,
    b: Vec<f32>,
    iterations: usize,
    dependent: bool,
    reupload: bool,
    range_in: Range,
    range_out: Range,
    op: Option<Sum>,
}

impl SumJob {
    /// A sum job over `n`×`n` matrices running `iterations` kernel steps
    /// (at least one).
    #[must_use]
    pub fn new(cfg: &OptConfig, n: u32, a: &[f32], b: &[f32], iterations: usize) -> Self {
        SumJob {
            cfg: *cfg,
            n,
            a: a.to_vec(),
            b: b.to_vec(),
            iterations: iterations.max(1),
            dependent: false,
            reupload: false,
            range_in: Range::unit(),
            range_out: Range::new(0.0, 2.0),
            op: None,
        }
    }

    /// Chains iterations (the previous result becomes input `A`).
    #[must_use]
    pub fn dependent(mut self, dependent: bool) -> Self {
        self.dependent = dependent;
        self
    }

    /// Re-uploads both inputs every iteration.
    #[must_use]
    pub fn reupload(mut self, reupload: bool) -> Self {
        self.reupload = reupload;
        self
    }

    /// Sets the input value range (default `[0, 1)`).
    #[must_use]
    pub fn range_in(mut self, range: Range) -> Self {
        self.range_in = range;
        self
    }

    /// Sets the output value range (default `[0, 2)`).
    #[must_use]
    pub fn range_out(mut self, range: Range) -> Self {
        self.range_out = range;
        self
    }

    /// The output range, for decoding result bytes.
    #[must_use]
    pub fn result_range(&self) -> Range {
        self.range_out
    }

    fn op_mut(&mut self) -> Result<&mut Sum, GpgpuError> {
        self.op
            .as_mut()
            .ok_or_else(|| GpgpuError::Config("sum job used before build".to_owned()))
    }
}

impl RecoverableJob for SumJob {
    fn label(&self) -> String {
        format!("sum {n}x{n} x{it}", n = self.n, it = self.iterations)
    }

    fn build(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.op = Some(
            Sum::builder(self.n)
                .range_in(self.range_in)
                .range_out(self.range_out)
                .dependent(self.dependent)
                .reupload(self.reupload)
                .build(gl, &self.cfg, &self.a, &self.b)?,
        );
        Ok(())
    }

    fn passes(&self) -> usize {
        self.iterations
    }

    fn begin_run(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.op_mut()?.reset(gl)
    }

    fn run_pass(&mut self, gl: &mut Gl, _pass: usize, bands: u32) -> Result<(), GpgpuError> {
        self.op_mut()?.step_banded(gl, bands)
    }

    fn snapshot(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        self.op_mut()?.snapshot_bytes(gl)
    }

    fn restore(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        self.op_mut()?.restore_bytes(gl, bytes)
    }

    fn result_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        self.op_mut()?.snapshot_bytes(gl)
    }
}

/// [`RecoverableJob`] over the [`Sgemm`] operator: one multiplication,
/// `n / block` passes. Its lossy degradation rung halves the block size
/// (fewer fetches and ALU per fragment, more passes).
#[derive(Debug)]
pub struct SgemmJob {
    cfg: OptConfig,
    n: u32,
    block: u32,
    a: Vec<f32>,
    b: Vec<f32>,
    range_in: Range,
    range_out: Range,
    op: Option<Sgemm>,
}

impl SgemmJob {
    /// An sgemm job for `C = A × B` over `n`×`n` matrices with the given
    /// block size (must divide `n`; validated at build).
    #[must_use]
    pub fn new(cfg: &OptConfig, n: u32, block: u32, a: &[f32], b: &[f32]) -> Self {
        SgemmJob {
            cfg: *cfg,
            n,
            block: block.max(1),
            a: a.to_vec(),
            b: b.to_vec(),
            range_in: Range::unit(),
            range_out: Range::new(0.0, n as f32),
            op: None,
        }
    }

    /// The current block size (may shrink under lossy degradation).
    #[must_use]
    pub fn block(&self) -> u32 {
        self.block
    }

    /// The output range, for decoding result bytes.
    #[must_use]
    pub fn result_range(&self) -> Range {
        self.range_out
    }

    fn op_mut(&mut self) -> Result<&mut Sgemm, GpgpuError> {
        self.op
            .as_mut()
            .ok_or_else(|| GpgpuError::Config("sgemm job used before build".to_owned()))
    }
}

impl RecoverableJob for SgemmJob {
    fn label(&self) -> String {
        format!("sgemm {n}x{n} block {b}", n = self.n, b = self.block)
    }

    fn build(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.op = Some(Sgemm::with_ranges(
            gl,
            &self.cfg,
            self.n,
            self.block,
            &self.a,
            &self.b,
            self.range_in,
            self.range_out,
        )?);
        Ok(())
    }

    fn passes(&self) -> usize {
        (self.n / self.block) as usize
    }

    fn begin_run(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.op_mut()?.begin_multiply(gl)
    }

    fn run_pass(&mut self, gl: &mut Gl, pass: usize, bands: u32) -> Result<(), GpgpuError> {
        self.op_mut()?.run_pass(gl, pass as u32, bands)
    }

    fn snapshot(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        self.op_mut()?.snapshot_bytes(gl)
    }

    fn restore(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        self.op_mut()?.restore_bytes(gl, bytes)
    }

    fn result_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        self.op_mut()?.snapshot_bytes(gl)
    }

    fn degrade_lossy(&mut self) -> bool {
        if self.block <= 1 {
            return false;
        }
        // Halving an even block keeps it a divisor of n; an odd block
        // falls straight to 1 (which divides everything).
        self.block = if self.block.is_multiple_of(2) {
            self.block / 2
        } else {
            1
        };
        self.op = None;
        true
    }
}

/// [`RecoverableJob`] over a user [`Pipeline`]: holds the builder so the
/// whole pipeline can be rebuilt after a context loss.
#[derive(Debug)]
pub struct PipelineJob {
    cfg: OptConfig,
    builder: PipelineBuilder,
    op: Option<Pipeline>,
}

impl PipelineJob {
    /// Wraps a pipeline builder for resilient execution.
    #[must_use]
    pub fn new(cfg: &OptConfig, builder: PipelineBuilder) -> Self {
        PipelineJob {
            cfg: *cfg,
            builder,
            op: None,
        }
    }

    fn op_mut(&mut self) -> Result<&mut Pipeline, GpgpuError> {
        self.op
            .as_mut()
            .ok_or_else(|| GpgpuError::Config("pipeline job used before build".to_owned()))
    }
}

impl RecoverableJob for PipelineJob {
    fn label(&self) -> String {
        format!("pipeline ({} passes)", self.builder.pass_count())
    }

    fn build(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.op = Some(self.builder.clone().build(gl, &self.cfg)?);
        Ok(())
    }

    fn passes(&self) -> usize {
        self.builder.pass_count()
    }

    fn begin_run(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.op_mut()?.begin_run(gl)
    }

    fn run_pass(&mut self, gl: &mut Gl, pass: usize, bands: u32) -> Result<(), GpgpuError> {
        self.op_mut()?.run_pass(gl, pass, bands)
    }

    fn snapshot(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        self.op_mut()?.snapshot_bytes(gl)
    }

    fn restore(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        self.op_mut()?.restore_bytes(gl, bytes)
    }

    fn result_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        // Not snapshot_bytes: the result is the chain's latest output
        // alone, without the retained-pass checkpoint payload.
        self.op_mut()?.output_bytes(gl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy {
            base_backoff: SimTime::from_micros(10),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_for(1), SimTime::from_micros(10));
        assert_eq!(p.backoff_for(2), SimTime::from_micros(20));
        assert_eq!(p.backoff_for(3), SimTime::from_micros(40));
        // Large attempt counts must not overflow.
        let _ = p.backoff_for(u32::MAX);
    }

    /// Property: over attempt ∈ [1, 10_000] the backoff is exact truncated
    /// binary exponential growth below the cap, saturates at the cap, is
    /// monotone non-decreasing, and never overflows — for the default
    /// policy and for adversarial base/cap combinations.
    #[test]
    fn backoff_property_bounded_monotone() {
        let policies = [
            RetryPolicy::default(),
            RetryPolicy {
                base_backoff: SimTime::from_nanos(1),
                max_backoff: SimTime::from_secs_f64(1.0),
                ..RetryPolicy::default()
            },
            RetryPolicy {
                base_backoff: SimTime::from_millis(7),
                max_backoff: SimTime::from_millis(3),
                ..RetryPolicy::default()
            },
            RetryPolicy {
                base_backoff: SimTime::MAX,
                max_backoff: SimTime::MAX,
                ..RetryPolicy::default()
            },
            RetryPolicy {
                base_backoff: SimTime::ZERO,
                ..RetryPolicy::default()
            },
        ];
        for p in policies {
            let mut prev = SimTime::ZERO;
            for attempt in 1u32..=10_000 {
                let b = p.backoff_for(attempt);
                assert!(b <= p.max_backoff, "attempt {attempt}: {b:?} above cap");
                assert!(b >= prev, "attempt {attempt}: backoff not monotone");
                let shift = attempt - 1;
                if shift < 63 {
                    let exact = p.base_backoff.as_nanos().saturating_mul(1u64 << shift);
                    assert_eq!(b, SimTime::from_nanos(exact).min(p.max_backoff));
                }
                prev = b;
            }
            // Beyond the sampled range the cap still holds.
            assert!(p.backoff_for(u32::MAX) <= p.max_backoff);
        }
    }

    #[test]
    fn exhausted_display_mentions_job_and_stage() {
        let e = ExhaustedError {
            job: "sum 8x8 x3".to_owned(),
            stage: StageId::Pass(2),
            attempts: 6,
            last_error: Box::new(GpgpuError::Gl(GlError::ContextLost)),
            fault_trail: Vec::new(),
            recovery: Vec::new(),
        };
        let msg = e.to_string();
        assert!(msg.contains("sum 8x8 x3"));
        assert!(msg.contains("pass 2"));
        assert!(msg.contains("context lost"));
    }

    #[test]
    fn sgemm_degrade_ladder_reaches_one() {
        let cfg = OptConfig::baseline();
        let mut job = SgemmJob::new(&cfg, 16, 8, &[0.0; 256], &[0.0; 256]);
        assert!(job.degrade_lossy());
        assert_eq!(job.block(), 4);
        assert!(job.degrade_lossy());
        assert!(job.degrade_lossy());
        assert_eq!(job.block(), 1);
        assert!(!job.degrade_lossy());
    }
}
