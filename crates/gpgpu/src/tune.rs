//! Autotuning over the optimisation-configuration space.
//!
//! The paper explores its optimisation space by hand, incrementally
//! ("we follow an incremental approach, starting from one configuration
//! and applying the next optimisation on the best performing one"). This
//! module automates that exploration: enumerate the meaningful
//! configuration points for a workload, measure each in timing-only mode,
//! and return the ranking — so a downstream user gets the platform's best
//! configuration without knowing the micro-architecture.

use std::thread;

use mgpu_gles::{BufferUsage, ExecConfig, Gl};
use mgpu_tbdr::{Platform, SimTime};

use crate::config::{OptConfig, RenderStrategy, SyncStrategy};
use crate::error::GpgpuError;
use crate::ops::{Sgemm, Sum};
use crate::runner::steady_period;

/// One measured configuration point.
#[derive(Debug, Clone, PartialEq)]
pub struct TunePoint {
    /// Human-readable description of the point.
    pub name: String,
    /// The configuration.
    pub config: OptConfig,
    /// The sgemm block size (1 for single-pass workloads).
    pub block: u32,
    /// Measured steady-state simulated time per benchmark-body iteration.
    pub period: SimTime,
}

/// The result of a tuning run: every measured point, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneResult {
    /// Points sorted fastest-first.
    pub ranked: Vec<TunePoint>,
}

impl TuneResult {
    /// The winning point.
    ///
    /// # Panics
    ///
    /// Panics if the tuning run measured no points (never produced by the
    /// tuners in this module).
    #[must_use]
    pub fn best(&self) -> &TunePoint {
        // Documented invariant: every tuner in this module returns at
        // least one point or errors out before constructing a TuneResult.
        #[allow(clippy::expect_used)]
        self.ranked
            .first()
            .expect("tuners measure at least one point")
    }

    /// Speedup of the best point over the named reference point.
    #[must_use]
    pub fn speedup_over(&self, name: &str) -> Option<f64> {
        let r = self.ranked.iter().find(|p| p.name == name)?;
        Some(r.period.as_secs_f64() / self.best().period.as_secs_f64())
    }

    fn from_points(mut points: Vec<TunePoint>) -> Self {
        points.sort_by_key(|p| p.period);
        TuneResult { ranked: points }
    }
}

/// The configuration points a single-pass streaming kernel explores.
fn streaming_candidates() -> Vec<(String, OptConfig)> {
    let mut out = Vec::new();
    for (sync_name, sync) in [
        ("swap", SyncStrategy::SwapDefault),
        ("interval0", SyncStrategy::SwapInterval0),
        ("noswap", SyncStrategy::NoSwap),
    ] {
        for (target_name, target) in [
            ("tex", RenderStrategy::Texture),
            ("fb", RenderStrategy::Framebuffer),
        ] {
            // The framebuffer path needs swaps to alternate surfaces; a
            // no-swap framebuffer loop serialises and is never optimal,
            // but the tuner measures it anyway — that is the point.
            let mut cfg = OptConfig::baseline();
            cfg.sync = sync;
            cfg.target = target;
            out.push((format!("{sync_name}+{target_name}"), cfg));
            out.push((format!("{sync_name}+{target_name}+fp24"), cfg.with_fp24()));
        }
    }
    out.push((
        "noswap+tex+vbo".to_owned(),
        OptConfig::baseline()
            .without_swap()
            .with_vbo(BufferUsage::StaticDraw),
    ));
    out
}

/// Measures independent candidates, possibly on a scoped worker pool, and
/// merges the results **by candidate index** — so the outcome (points,
/// their order before ranking, and which error surfaces first) is
/// identical for every thread count. `f` returns `Ok(None)` to skip a
/// point.
fn measure_candidates<C, F>(
    candidates: Vec<C>,
    threads: usize,
    f: F,
) -> Result<Vec<TunePoint>, GpgpuError>
where
    C: Send,
    F: Fn(C) -> Result<Option<TunePoint>, GpgpuError> + Sync,
{
    let n = candidates.len();
    let mut slots: Vec<Option<Result<Option<TunePoint>, GpgpuError>>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for (slot, c) in slots.iter_mut().zip(candidates) {
            *slot = Some(f(c));
        }
    } else {
        // Each candidate builds its own timing-only `Gl`, so candidates
        // are fully independent; deal them to workers round-robin along
        // with the result slot they must fill.
        type Slot<'a> = &'a mut Option<Result<Option<TunePoint>, GpgpuError>>;
        let mut per_worker: Vec<Vec<(C, Slot<'_>)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, (c, slot)) in candidates.into_iter().zip(slots.iter_mut()).enumerate() {
            per_worker[i % threads].push((c, slot));
        }
        thread::scope(|s| {
            for work in per_worker {
                let f = &f;
                s.spawn(move || {
                    for (c, slot) in work {
                        *slot = Some(f(c));
                    }
                });
            }
        });
    }
    let mut points = Vec::new();
    for slot in slots {
        match slot {
            Some(Ok(Some(p))) => points.push(p),
            Some(Ok(None)) => {}
            Some(Err(e)) => return Err(e),
            None => {
                return Err(GpgpuError::Config(
                    "tuning candidate was never measured (worker vanished)".to_owned(),
                ))
            }
        }
    }
    Ok(points)
}

/// Tunes the `sum` kernel on `platform` over `n`×`n` inputs, evaluating
/// candidates concurrently per the `MGPU_THREADS` policy
/// ([`ExecConfig::from_env`]).
///
/// `a` and `b` must each have `n * n` elements.
///
/// # Errors
///
/// Propagates operator failures.
pub fn tune_sum(
    platform: &Platform,
    n: u32,
    a: &[f32],
    b: &[f32],
    warmup: usize,
    iters: usize,
) -> Result<TuneResult, GpgpuError> {
    tune_sum_with_exec(platform, n, a, b, warmup, iters, &ExecConfig::from_env())
}

/// [`tune_sum`] with an explicit worker-thread count. The result is
/// identical for every `threads` value.
///
/// # Errors
///
/// Propagates operator failures.
#[allow(clippy::too_many_arguments)]
pub fn tune_sum_with_threads(
    platform: &Platform,
    n: u32,
    a: &[f32],
    b: &[f32],
    warmup: usize,
    iters: usize,
    threads: usize,
) -> Result<TuneResult, GpgpuError> {
    tune_sum_with_exec(
        platform,
        n,
        a,
        b,
        warmup,
        iters,
        &ExecConfig::with_threads(threads),
    )
}

/// [`tune_sum`] with an explicit host-execution configuration: `exec`'s
/// thread count drives candidate-evaluation concurrency, and its fragment
/// engine is stamped into every returned [`TunePoint`] config so callers
/// that later run the winner functionally keep the tuned-for engine.
/// Tuning itself is timing-only — rankings and periods are identical for
/// every `exec`.
///
/// # Errors
///
/// Propagates operator failures.
#[allow(clippy::too_many_arguments)]
pub fn tune_sum_with_exec(
    platform: &Platform,
    n: u32,
    a: &[f32],
    b: &[f32],
    warmup: usize,
    iters: usize,
    exec: &ExecConfig,
) -> Result<TuneResult, GpgpuError> {
    let engine = exec.engine();
    let tile_skip = exec.tile_skip();
    let points = measure_candidates(streaming_candidates(), exec.threads(), |(name, cfg)| {
        // Stamp the execution knobs so callers that run the winner
        // functionally keep the tuned-for engine and skip setting. Tuning
        // itself is timing-only, so neither knob affects the ranking —
        // tile skipping only fires on functional runs.
        let cfg = cfg.with_engine(engine).with_tile_skip(tile_skip);
        let mut gl = Gl::new(platform.clone(), n, n);
        gl.set_functional(false);
        let mut sum = Sum::builder(n).build(&mut gl, &cfg, a, b)?;
        let period = steady_period(&mut gl, warmup, iters, |gl| sum.step(gl))?;
        Ok(Some(TunePoint {
            name,
            config: cfg,
            block: 1,
            period,
        }))
    })?;
    Ok(TuneResult::from_points(points))
}

/// Tunes blocked `sgemm` on `platform`: render target × block size, at
/// swap interval 0 (per Fig. 3, sgemm gains nothing beyond that). Block
/// sizes that exceed the platform's shader limits are skipped — exactly
/// how a deployed autotuner would discover the Fig. 4b wall.
///
/// # Errors
///
/// Propagates operator failures other than shader-limit rejections.
pub fn tune_sgemm(
    platform: &Platform,
    n: u32,
    a: &[f32],
    b: &[f32],
    blocks: &[u32],
    warmup: usize,
    iters: usize,
) -> Result<TuneResult, GpgpuError> {
    tune_sgemm_with_exec(
        platform,
        n,
        a,
        b,
        blocks,
        warmup,
        iters,
        &ExecConfig::from_env(),
    )
}

/// [`tune_sgemm`] with an explicit worker-thread count. The result is
/// identical for every `threads` value.
///
/// # Errors
///
/// Propagates operator failures other than shader-limit rejections.
#[allow(clippy::too_many_arguments)]
pub fn tune_sgemm_with_threads(
    platform: &Platform,
    n: u32,
    a: &[f32],
    b: &[f32],
    blocks: &[u32],
    warmup: usize,
    iters: usize,
    threads: usize,
) -> Result<TuneResult, GpgpuError> {
    tune_sgemm_with_exec(
        platform,
        n,
        a,
        b,
        blocks,
        warmup,
        iters,
        &ExecConfig::with_threads(threads),
    )
}

/// [`tune_sgemm`] with an explicit host-execution configuration — the
/// sgemm analogue of [`tune_sum_with_exec`].
///
/// # Errors
///
/// Propagates operator failures other than shader-limit rejections.
#[allow(clippy::too_many_arguments)]
pub fn tune_sgemm_with_exec(
    platform: &Platform,
    n: u32,
    a: &[f32],
    b: &[f32],
    blocks: &[u32],
    warmup: usize,
    iters: usize,
    exec: &ExecConfig,
) -> Result<TuneResult, GpgpuError> {
    let mut candidates = Vec::new();
    for &block in blocks {
        if block == 0 || !n.is_multiple_of(block) {
            continue;
        }
        for (target_name, target) in [
            ("tex", RenderStrategy::Texture),
            ("fb", RenderStrategy::Framebuffer),
        ] {
            candidates.push((block, target_name, target));
        }
    }
    let engine = exec.engine();
    let tile_skip = exec.tile_skip();
    let points = measure_candidates(
        candidates,
        exec.threads(),
        |(block, target_name, target)| {
            let mut cfg = OptConfig::baseline()
                .with_swap_interval_0()
                .with_engine(engine)
                .with_tile_skip(tile_skip);
            cfg.target = target;
            let mut gl = Gl::new(platform.clone(), n, n);
            gl.set_functional(false);
            let mut sgemm = match Sgemm::new(&mut gl, &cfg, n, block, a, b) {
                Ok(s) => s,
                Err(e) if e.is_shader_limit() => return Ok(None),
                Err(e) => return Err(e),
            };
            let period = steady_period(&mut gl, warmup, iters, |gl| sgemm.multiply(gl))?;
            Ok(Some(TunePoint {
                name: format!("b{block}+{target_name}"),
                config: cfg,
                block,
                period,
            }))
        },
    )?;
    Ok(TuneResult::from_points(points))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: u32) -> (Vec<f32>, Vec<f32>) {
        let len = (n * n) as usize;
        let a = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
        let b = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();
        (a, b)
    }

    #[test]
    fn sum_tuner_finds_the_paper_configuration_on_videocore() {
        // The paper's full 1024x1024 size: at small sizes fixed CPU costs
        // compress the render-target differences.
        let (a, b) = inputs(1024);
        let r = tune_sum(&Platform::videocore_iv(), 1024, &a, &b, 5, 20).unwrap();
        let best = r.best();
        // The paper's best sum configuration: no swap, texture rendering.
        assert_eq!(best.config.sync, SyncStrategy::NoSwap, "{}", best.name);
        assert_eq!(best.config.target, RenderStrategy::Texture);
        // And it beats the vsync'd baseline by a wide margin.
        assert!(r.speedup_over("swap+tex").unwrap() > 5.0);
    }

    #[test]
    fn sum_tuner_rejects_framebuffer_on_sgx() {
        let (a, b) = inputs(256);
        let r = tune_sum(&Platform::sgx_545(), 256, &a, &b, 5, 20).unwrap();
        // Every framebuffer point must rank behind every texture point on
        // the SGX (the 3-orders-of-magnitude copy penalty).
        let worst_tex = r
            .ranked
            .iter()
            .filter(|p| p.config.target == RenderStrategy::Texture)
            .map(|p| p.period)
            .max()
            .unwrap();
        let best_fb = r
            .ranked
            .iter()
            .filter(|p| p.config.target == RenderStrategy::Framebuffer)
            .map(|p| p.period)
            .min()
            .unwrap();
        assert!(worst_tex < best_fb);
    }

    #[test]
    fn sgemm_tuner_picks_the_largest_legal_block() {
        let (a, b) = inputs(256);
        let r = tune_sgemm(
            &Platform::videocore_iv(),
            256,
            &a,
            &b,
            &[1, 4, 16, 32],
            1,
            3,
        )
        .unwrap();
        // Block 32 exceeds shader limits and is skipped entirely...
        assert!(r.ranked.iter().all(|p| p.block != 32));
        // ...and the winner uses the largest compiling block.
        assert_eq!(r.best().block, 16);
        // On VideoCore the framebuffer target wins (DMA).
        assert_eq!(r.best().config.target, RenderStrategy::Framebuffer);
    }

    #[test]
    fn tuning_is_thread_count_invariant() {
        let (a, b) = inputs(64);
        let p = Platform::videocore_iv();
        let sum_serial = tune_sum_with_threads(&p, 64, &a, &b, 2, 8, 1).unwrap();
        let sgemm_serial =
            tune_sgemm_with_threads(&p, 64, &a, &b, &[1, 4, 16, 32], 1, 3, 1).unwrap();
        for threads in [2, 4, 8] {
            assert_eq!(
                tune_sum_with_threads(&p, 64, &a, &b, 2, 8, threads).unwrap(),
                sum_serial,
                "sum at {threads} threads"
            );
            assert_eq!(
                tune_sgemm_with_threads(&p, 64, &a, &b, &[1, 4, 16, 32], 1, 3, threads).unwrap(),
                sgemm_serial,
                "sgemm at {threads} threads"
            );
        }
    }

    #[test]
    fn tuning_is_engine_invariant() {
        use mgpu_gles::Engine;
        // Tuning is timing-only; both engines must produce the same names,
        // blocks and periods (configs differ only in the stamped engine).
        let (a, b) = inputs(64);
        let p = Platform::videocore_iv();
        let strip = |r: &TuneResult| -> Vec<(String, u32, mgpu_tbdr::SimTime)> {
            r.ranked
                .iter()
                .map(|pt| (pt.name.clone(), pt.block, pt.period))
                .collect()
        };
        let scalar = ExecConfig::serial();
        let batched = ExecConfig::serial().with_engine(Engine::Batched);
        assert_eq!(
            strip(&tune_sum_with_exec(&p, 64, &a, &b, 2, 8, &scalar).unwrap()),
            strip(&tune_sum_with_exec(&p, 64, &a, &b, 2, 8, &batched).unwrap()),
        );
        assert_eq!(
            strip(&tune_sgemm_with_exec(&p, 64, &a, &b, &[1, 4], 1, 3, &scalar).unwrap()),
            strip(&tune_sgemm_with_exec(&p, 64, &a, &b, &[1, 4], 1, 3, &batched).unwrap()),
        );
        // The stamped engine survives into the returned configs.
        let tuned = tune_sum_with_exec(&p, 64, &a, &b, 2, 8, &batched).unwrap();
        assert!(tuned
            .ranked
            .iter()
            .all(|pt| pt.config.engine == Some(Engine::Batched)));
    }

    #[test]
    fn tuning_is_tile_skip_invariant() {
        // Tuning is timing-only (`set_functional(false)`), so the tile
        // cache never warms and the skip knob cannot bias the ranking —
        // it is only *stamped* into the winner configs.
        let (a, b) = inputs(64);
        let p = Platform::videocore_iv();
        let strip = |r: &TuneResult| -> Vec<(String, u32, mgpu_tbdr::SimTime)> {
            r.ranked
                .iter()
                .map(|pt| (pt.name.clone(), pt.block, pt.period))
                .collect()
        };
        let off = ExecConfig::serial();
        let on = ExecConfig::serial().with_tile_skip(true);
        assert_eq!(
            strip(&tune_sum_with_exec(&p, 64, &a, &b, 2, 8, &off).unwrap()),
            strip(&tune_sum_with_exec(&p, 64, &a, &b, 2, 8, &on).unwrap()),
        );
        assert_eq!(
            strip(&tune_sgemm_with_exec(&p, 64, &a, &b, &[1, 4], 1, 3, &off).unwrap()),
            strip(&tune_sgemm_with_exec(&p, 64, &a, &b, &[1, 4], 1, 3, &on).unwrap()),
        );
        let tuned = tune_sum_with_exec(&p, 64, &a, &b, 2, 8, &on).unwrap();
        assert!(tuned
            .ranked
            .iter()
            .all(|pt| pt.config.tile_skip == Some(true)));
    }

    #[test]
    fn ranking_is_sorted() {
        let (a, b) = inputs(64);
        let r = tune_sum(&Platform::sgx_545(), 64, &a, &b, 2, 8).unwrap();
        for w in r.ranked.windows(2) {
            assert!(w[0].period <= w[1].period);
        }
        assert!(r.speedup_over("no-such-point").is_none());
    }
}
