//! GPU matrix transpose: pure encoded-texel movement with a strided
//! (dependent) gather pattern.

use mgpu_gles::{Gl, ProgramId, TextureId};

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::kernels::transpose_kernel;
use crate::ops::{apply_setup, check_size, convert_cost, quad_for, vbo_for, OutputChain};

/// Transposes an `n`×`n` encoded matrix on the GPU in one pass.
///
/// Because transposition moves texels verbatim, it works for any encoding
/// and any value range — the range is only needed to decode the result.
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{OptConfig, Range, Transpose};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 4, 4);
/// // Row-major 4x4 with value = row index / 4.
/// let data: Vec<f32> = (0..16).map(|i| (i / 4) as f32 / 4.0).collect();
/// let mut t = Transpose::new(&mut gl, &OptConfig::baseline().without_swap(), 4, &data)?;
/// t.apply(&mut gl)?;
/// let out = t.result(&mut gl, &Range::unit())?;
/// // After transposing, value = column index / 4.
/// assert!((out[1] - 0.25).abs() < 1e-4);
/// assert!((out[4] - 0.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Transpose {
    cfg: OptConfig,
    prog: ProgramId,
    tex_in: TextureId,
    chain: OutputChain,
    vbo: Option<mgpu_gles::BufferId>,
    step_count: u64,
}

impl Transpose {
    /// Builds the operator and uploads `data` (values in `[0, 1)` space of
    /// whatever range the caller will decode with — the kernel never
    /// interprets them).
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] on size mismatch; [`GpgpuError::Gl`]
    /// otherwise.
    pub fn new(gl: &mut Gl, cfg: &OptConfig, n: u32, data: &[f32]) -> Result<Self, GpgpuError> {
        check_size(gl, n, data.len(), "transpose input")?;
        let enc = cfg.encoding;
        let prog = gl.create_program(&transpose_kernel())?;
        gl.set_sampler(prog, "u_src", 0)?;
        apply_setup(gl, cfg);

        let encoded = enc.encode(data, &Range::unit());
        gl.add_cpu_work(convert_cost(encoded.len() as u64));
        let tex_in = gl.create_texture();
        gl.tex_image_2d(tex_in, n, n, enc.texture_format(), Some(&encoded))?;
        let chain = OutputChain::new(gl, n, enc.texture_format());
        let vbo = vbo_for(gl, cfg, 1)?;
        Ok(Transpose {
            cfg: *cfg,
            prog,
            tex_in,
            chain,
            vbo,
            step_count: 0,
        })
    }

    /// Transposes the input (first call) or the previous result
    /// (subsequent calls) — so two applications round-trip.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn apply(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        let src = if self.step_count == 0 {
            self.tex_in
        } else {
            self.chain.latest()
        };
        gl.bind_texture(0, Some(src))?;
        gl.use_program(Some(self.prog))?;
        self.step_count += 1;
        let label = format!("transpose#{}", self.step_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        self.chain
            .render_pass(gl, &self.cfg, |gl| gl.draw_quad(&quad))
    }

    /// Reads back and decodes the latest result with `range` (normalised
    /// `[0, 1)` values decode with [`Range::unit`]).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn result(&mut self, gl: &mut Gl, range: &Range) -> Result<Vec<f32>, GpgpuError> {
        let bytes = self.chain.read_latest(gl)?;
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        Ok(self.cfg.encoding.decode(&bytes, range))
    }
}
