//! 3×3 image convolution — the computer-vision workload from the paper's
//! motivation, operating on plain (unencoded) RGBA8 images.

use mgpu_gles::{Gl, ProgramId, TextureFormat, TextureId};

use crate::config::OptConfig;
use crate::error::GpgpuError;
use crate::kernels::conv3x3_kernel;
use crate::ops::{apply_setup, quad_for, vbo_for, OutputChain};

/// Applies a 3×3 convolution kernel to an RGBA8 image on the GPU.
///
/// Unlike the encoded linear-algebra operators, images are natural GPU
/// data: no float packing is needed, only the render-target and
/// synchronisation choices of [`OptConfig`] apply.
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{Convolution3x3, OptConfig};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
/// let image = vec![200u8; 8 * 8 * 4];
/// let blur = [1.0 / 9.0; 9];
/// let mut conv = Convolution3x3::new(&mut gl, &OptConfig::baseline(), 8, 8, &blur, &image)?;
/// conv.apply(&mut gl)?;
/// let out = conv.result(&mut gl)?;
/// assert_eq!(out.len(), image.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Convolution3x3 {
    cfg: OptConfig,
    prog: ProgramId,
    tex_src: TextureId,
    chain: OutputChain,
    vbo: Option<mgpu_gles::BufferId>,
    step_count: u64,
}

impl Convolution3x3 {
    /// Builds the operator with the weights baked into the kernel.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] when `image` is not `width*height*4` bytes or
    /// the image is not square (the output chain uses square targets);
    /// [`GpgpuError::Gl`] otherwise.
    pub fn new(
        gl: &mut Gl,
        cfg: &OptConfig,
        width: u32,
        height: u32,
        weights: &[f32; 9],
        image: &[u8],
    ) -> Result<Self, GpgpuError> {
        if image.len() != (width as usize) * (height as usize) * 4 {
            return Err(GpgpuError::Config(format!(
                "image is {} bytes, expected {width}x{height}x4",
                image.len()
            )));
        }
        if width != height {
            return Err(GpgpuError::Config(
                "convolution targets must currently be square".to_owned(),
            ));
        }
        let src = conv3x3_kernel(weights, 1.0 / width as f32, 1.0 / height as f32);
        let prog = gl.create_program(&src)?;
        gl.set_sampler(prog, "u_img", 0)?;
        apply_setup(gl, cfg);

        let tex_src = gl.create_texture();
        gl.tex_image_2d(tex_src, width, height, TextureFormat::Rgba8, Some(image))?;
        let chain = OutputChain::new(gl, width, TextureFormat::Rgba8);
        let vbo = vbo_for(gl, cfg, 1)?;

        Ok(Convolution3x3 {
            cfg: *cfg,
            prog,
            tex_src,
            chain,
            vbo,
            step_count: 0,
        })
    }

    /// Applies the convolution once (source → output chain).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn apply(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        gl.bind_texture(0, Some(self.tex_src))?;
        gl.use_program(Some(self.prog))?;
        self.step_count += 1;
        let label = format!("conv3x3#{}", self.step_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        self.chain
            .render_pass(gl, &self.cfg, |gl| gl.draw_quad(&quad))
    }

    /// Applies the convolution repeatedly, feeding each result back in
    /// (iterated blur / diffusion — a multi-pass pipeline over an image).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn apply_iterated(&mut self, gl: &mut Gl, iterations: usize) -> Result<(), GpgpuError> {
        for i in 0..iterations {
            let src = if i == 0 {
                self.tex_src
            } else {
                self.chain.latest()
            };
            gl.bind_texture(0, Some(src))?;
            gl.use_program(Some(self.prog))?;
            self.step_count += 1;
            let label = format!("conv3x3#{}", self.step_count);
            let quad = quad_for(&self.cfg, self.vbo, &label);
            self.chain
                .render_pass(gl, &self.cfg, |gl| gl.draw_quad(&quad))?;
        }
        Ok(())
    }

    /// Reads back the convolved RGBA8 image.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn result(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        Ok(self.chain.read_latest(gl)?)
    }
}
