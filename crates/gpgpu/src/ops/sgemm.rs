//! The paper's `sgemm` case study (§IV): multi-pass blocked matrix-matrix
//! multiplication with double-buffered intermediate textures.

use mgpu_gles::{Gl, ProgramId, TextureId};
use mgpu_shader::OptOptions;

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::kernels::sgemm_kernel;
use crate::ops::{
    apply_setup, check_size, convert_cost, draw_banded, quad_for, vbo_for, OutputChain,
};

/// Blocked single-precision matrix multiply `C = A × B` over `n`×`n`
/// encoded matrices, computed in `n / block` passes of `block`-element
/// partial dot products (the paper's Fig. 2 kernel).
///
/// Because OpenGL ES 2 forbids reading and writing the same texture, the
/// intermediate accumulator lives in a double-buffered texture pair that
/// each pass ping-pongs — exactly the scheme §IV describes.
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{OptConfig, Sgemm};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 16, 16);
/// let a = vec![0.1f32; 256];
/// let b = vec![0.2f32; 256];
/// let mut sgemm = Sgemm::new(&mut gl, &OptConfig::baseline(), 16, 4, &a, &b)?;
/// sgemm.multiply(&mut gl)?;
/// let c = sgemm.result(&mut gl)?;
/// // Every element is 16 * 0.1 * 0.2 = 0.32.
/// assert!((c[0] - 0.32).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sgemm {
    cfg: OptConfig,
    n: u32,
    block: u32,
    prog: ProgramId,
    tex_a: TextureId,
    tex_b: TextureId,
    chain: OutputChain,
    vbo: Option<mgpu_gles::BufferId>,
    range_out: Range,
    zero_seed: Vec<u8>,
    multiply_count: u64,
}

impl Sgemm {
    /// Builds the operator: compiles the blocked kernel against the
    /// platform's shader limits, uploads `a` and `b`, and prepares the
    /// intermediate chain.
    ///
    /// Inputs are expected in `[0, 1)` (use [`Sgemm::with_ranges`] for
    /// custom ranges).
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Gl`] with
    /// [`is_shader_limit`](GpgpuError::is_shader_limit) when `block`
    /// exceeds what the platform can compile — on both paper platforms
    /// this happens above block 16, bounding Fig. 4b;
    /// [`GpgpuError::Config`] on size mismatches.
    pub fn new(
        gl: &mut Gl,
        cfg: &OptConfig,
        n: u32,
        block: u32,
        a: &[f32],
        b: &[f32],
    ) -> Result<Self, GpgpuError> {
        let range_in = Range::unit();
        let range_out = Range::new(0.0, n as f32);
        Sgemm::with_ranges(gl, cfg, n, block, a, b, range_in, range_out)
    }

    /// Like [`Sgemm::new`] with explicit input/output value ranges.
    ///
    /// # Errors
    ///
    /// See [`Sgemm::new`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_ranges(
        gl: &mut Gl,
        cfg: &OptConfig,
        n: u32,
        block: u32,
        a: &[f32],
        b: &[f32],
        range_in: Range,
        range_out: Range,
    ) -> Result<Self, GpgpuError> {
        check_size(gl, n, a.len(), "matrix A")?;
        check_size(gl, n, b.len(), "matrix B")?;
        if block == 0 || !n.is_multiple_of(block) {
            return Err(GpgpuError::Config(format!(
                "block {block} must divide matrix size {n}"
            )));
        }
        let enc = cfg.encoding;
        let src = sgemm_kernel(enc, n, block, &range_in, &range_out);
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let prog = gl.create_program_with(&src, &opt)?;
        gl.set_sampler(prog, "u_a", 0)?;
        gl.set_sampler(prog, "u_b", 1)?;
        gl.set_sampler(prog, "u_interm", 2)?;

        apply_setup(gl, cfg);

        let encoded_a = enc.encode(a, &range_in);
        let encoded_b = enc.encode(b, &range_in);
        gl.add_cpu_work(convert_cost((encoded_a.len() + encoded_b.len()) as u64));
        let tex_a = gl.create_texture();
        let tex_b = gl.create_texture();
        gl.tex_image_2d(tex_a, n, n, enc.texture_format(), Some(&encoded_a))?;
        gl.tex_image_2d(tex_b, n, n, enc.texture_format(), Some(&encoded_b))?;

        let zero_seed = enc.encode(&vec![range_out.lo; (n as usize) * (n as usize)], &range_out);
        let chain = OutputChain::new(gl, n, enc.texture_format());

        let vbo = vbo_for(gl, cfg, 3)?;

        Ok(Sgemm {
            cfg: *cfg,
            n,
            block,
            prog,
            tex_a,
            tex_b,
            chain,
            vbo,
            range_out,
            zero_seed,
            multiply_count: 0,
        })
    }

    /// Number of passes one multiplication takes (`n / block`).
    #[must_use]
    pub fn passes(&self) -> u32 {
        self.n / self.block
    }

    /// Runs one full matrix multiplication (`n / block` kernel
    /// invocations) — one iteration of the paper's benchmark body.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn multiply(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.begin_multiply(gl)?;
        for pass in 0..self.passes() {
            self.run_pass(gl, pass, 1)?;
        }
        Ok(())
    }

    /// Starts one multiplication: resets the double-buffered accumulator
    /// to the zero seed. Follow with [`Sgemm::run_pass`] for passes
    /// `0..self.passes()` — [`Sgemm::multiply`] is exactly that sequence.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn begin_multiply(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.chain.seed(gl, &self.zero_seed)?;
        self.multiply_count += 1;
        Ok(())
    }

    /// Runs one accumulation pass of the current multiplication, issuing
    /// the draw as `bands` row-band sub-draws (`bands <= 1` = one full
    /// draw). Passes may be replayed: each pass reads the chain's latest
    /// texture and the `blk_n` uniform it sets itself.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] for an out-of-range pass; GL failures
    /// otherwise.
    pub fn run_pass(&mut self, gl: &mut Gl, pass: u32, bands: u32) -> Result<(), GpgpuError> {
        if pass >= self.passes() {
            return Err(GpgpuError::Config(format!(
                "pass {pass} out of range ({} passes)",
                self.passes()
            )));
        }
        let blk_n = (pass * self.block) as f32 / self.n as f32;
        gl.set_uniform_scalar(self.prog, "blk_n", blk_n)?;
        gl.bind_texture(0, Some(self.tex_a))?;
        gl.bind_texture(1, Some(self.tex_b))?;
        gl.bind_texture(2, Some(self.chain.latest()))?;
        gl.use_program(Some(self.prog))?;

        let label = format!("sgemm#{} pass {pass}", self.multiply_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        let n = self.n;
        self.chain
            .render_pass(gl, &self.cfg, |gl| draw_banded(gl, &quad, bands, n))
    }

    /// Reads back the latest accumulator's raw encoded bytes (a
    /// pass-granular checkpoint for the resilient runner).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn snapshot_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        Ok(self.chain.read_latest(gl)?)
    }

    /// Uploads previously snapshotted bytes into the latest-result slot.
    ///
    /// # Errors
    ///
    /// Propagates GL failures (e.g. a size mismatch).
    pub fn restore_bytes(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        Ok(self.chain.seed(gl, bytes)?)
    }

    /// Reads back and decodes the product matrix.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn result(&mut self, gl: &mut Gl) -> Result<Vec<f32>, GpgpuError> {
        let bytes = self.chain.read_latest(gl)?;
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        Ok(self.cfg.encoding.decode(&bytes, &self.range_out))
    }

    /// The matrix dimension.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.n
    }

    /// The block size.
    #[must_use]
    pub fn block(&self) -> u32 {
        self.block
    }
}
