//! GPU inner product: an element-wise multiply pass feeding the 4:1
//! reduction tree — `1 + log2(n)` kernel invocations with no intermediate
//! CPU round trip.
//!
//! This is the composition the paper's §III framework enables: kernels
//! chained through textures, each obeying the no-feedback rule, all inside
//! one GL context and one simulated timeline.

use mgpu_gles::{Gl, ProgramId, TextureId};
use mgpu_shader::OptOptions;

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::kernels::hadamard_kernel;
use crate::ops::{apply_setup, check_size, convert_cost, end_pass, quad_for, vbo_for, Reduction};

/// Computes `dot(X, Y) = Σ xᵢ·yᵢ` over `n`×`n` encoded matrices on the
/// GPU.
///
/// Inputs must lie in `[0, 1)`; the products then also lie in `[0, 1)`,
/// so the multiply pass composes with the reduction without range
/// bookkeeping.
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{DotProduct, OptConfig};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 16, 16);
/// let x = vec![0.5f32; 256];
/// let y = vec![0.5f32; 256];
/// let mut dot = DotProduct::new(&mut gl, &OptConfig::baseline().without_swap(), 16, &x, &y)?;
/// let got = dot.run(&mut gl)?;
/// assert!((got - 64.0).abs() < 0.1); // 256 * 0.25
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DotProduct {
    cfg: OptConfig,
    n: u32,
    prog: ProgramId,
    tex_x: TextureId,
    tex_y: TextureId,
    product: TextureId,
    reduction: Reduction,
    vbo: Option<mgpu_gles::BufferId>,
    fbo: mgpu_gles::FramebufferId,
    run_count: u64,
}

impl DotProduct {
    /// Builds the operator and uploads both inputs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reduction::new`] plus size mismatches.
    pub fn new(
        gl: &mut Gl,
        cfg: &OptConfig,
        n: u32,
        x: &[f32],
        y: &[f32],
    ) -> Result<Self, GpgpuError> {
        check_size(gl, n, x.len(), "vector X")?;
        check_size(gl, n, y.len(), "vector Y")?;
        let enc = cfg.encoding;
        let src = hadamard_kernel(enc, &Range::unit());
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let prog = gl.create_program_with(&src, &opt)?;
        gl.set_sampler(prog, "u_a", 0)?;
        gl.set_sampler(prog, "u_b", 1)?;
        apply_setup(gl, cfg);

        let ex = enc.encode(x, &Range::unit());
        let ey = enc.encode(y, &Range::unit());
        gl.add_cpu_work(convert_cost((ex.len() + ey.len()) as u64));
        let tex_x = gl.create_texture();
        let tex_y = gl.create_texture();
        gl.tex_image_2d(tex_x, n, n, enc.texture_format(), Some(&ex))?;
        gl.tex_image_2d(tex_y, n, n, enc.texture_format(), Some(&ey))?;

        let product = gl.create_texture();
        gl.tex_image_2d(product, n, n, enc.texture_format(), None)?;
        let reduction = Reduction::with_input_texture(gl, cfg, n, product)?;
        let fbo = gl.create_framebuffer();
        let vbo = vbo_for(gl, cfg, 1)?;
        Ok(DotProduct {
            cfg: *cfg,
            n,
            prog,
            tex_x,
            tex_y,
            product,
            reduction,
            vbo,
            fbo,
            run_count: 0,
        })
    }

    /// Total kernel invocations per evaluation (`1 + log2(n)`).
    #[must_use]
    pub fn passes(&self) -> u32 {
        1 + self.reduction.passes()
    }

    /// Runs the multiply pass and the reduction, returning the inner
    /// product.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn run(&mut self, gl: &mut Gl) -> Result<f32, GpgpuError> {
        self.run_count += 1;
        // Multiply pass into the product texture.
        if !self.cfg.texture_reuse {
            gl.tex_image_2d(
                self.product,
                self.n,
                self.n,
                self.cfg.encoding.texture_format(),
                None,
            )?;
        }
        gl.bind_framebuffer(Some(self.fbo))?;
        gl.framebuffer_texture_2d(self.product)?;
        if self.cfg.invalidate {
            gl.discard_framebuffer()?;
        }
        gl.bind_texture(0, Some(self.tex_x))?;
        gl.bind_texture(1, Some(self.tex_y))?;
        gl.use_program(Some(self.prog))?;
        let label = format!("dot#{} multiply", self.run_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        gl.draw_quad(&quad)?;
        end_pass(gl, &self.cfg)?;

        // Tree reduction over the product.
        self.reduction.run(gl)
    }
}
