//! The paper's `sum` benchmark: streaming element-wise matrix addition.

use mgpu_gles::{Gl, ProgramId, TextureId};
use mgpu_shader::OptOptions;

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::kernels::sum_kernel_ranges;
use crate::ops::{
    apply_setup, check_size, convert_cost, draw_banded, quad_for, vbo_for, OutputChain,
};

/// Streaming addition `C = A + B` over `n`×`n` encoded matrices — the
/// paper's low-arithmetic-intensity benchmark.
///
/// Two extra modes reproduce specific experiments:
///
/// * [`SumBuilder::dependent`] chains iterations (`C_{k+1} = C_k + B`), the
///   paper's "artificial dependencies between consecutive kernel
///   invocations" variant of Fig. 4a;
/// * [`SumBuilder::reupload`] re-uploads the inputs every iteration, the
///   streaming-application mode whose allocation cost the texture-reuse
///   optimisation of Fig. 5 targets.
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{OptConfig, Range, Sum};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 16, 16);
/// let a = vec![0.25f32; 256];
/// let b = vec![0.5f32; 256];
/// let mut sum = Sum::builder(16)
///     .range_out(Range::new(0.0, 2.0))
///     .build(&mut gl, &OptConfig::baseline(), &a, &b)?;
/// sum.step(&mut gl)?;
/// let c = sum.result(&mut gl)?;
/// assert!((c[0] - 0.75).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Sum {
    cfg: OptConfig,
    n: u32,
    prog: ProgramId,
    tex_a: TextureId,
    tex_b: TextureId,
    chain: OutputChain,
    vbo: Option<mgpu_gles::BufferId>,
    range_out: Range,
    dependent: bool,
    reupload: bool,
    encoded_a: Vec<u8>,
    encoded_b: Vec<u8>,
    step_count: u64,
}

/// Builder for [`Sum`].
#[derive(Debug, Clone)]
pub struct SumBuilder {
    n: u32,
    range_in: Range,
    range_out: Range,
    dependent: bool,
    reupload: bool,
}

impl SumBuilder {
    /// Sets the input value range (default `[0, 1)`).
    #[must_use]
    pub fn range_in(mut self, range: Range) -> Self {
        self.range_in = range;
        self
    }

    /// Sets the output value range (default `[0, 2)`).
    #[must_use]
    pub fn range_out(mut self, range: Range) -> Self {
        self.range_out = range;
        self
    }

    /// Chains iterations: the previous result becomes input `A`.
    #[must_use]
    pub fn dependent(mut self, dependent: bool) -> Self {
        self.dependent = dependent;
        self
    }

    /// Re-uploads both inputs every iteration.
    #[must_use]
    pub fn reupload(mut self, reupload: bool) -> Self {
        self.reupload = reupload;
        self
    }

    /// Builds the operator: compiles the kernel, uploads the inputs and
    /// seeds the output chain.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] on size mismatches, [`GpgpuError::Gl`] on
    /// compilation or GL failures.
    pub fn build(
        self,
        gl: &mut Gl,
        cfg: &OptConfig,
        a: &[f32],
        b: &[f32],
    ) -> Result<Sum, GpgpuError> {
        check_size(gl, self.n, a.len(), "matrix A")?;
        check_size(gl, self.n, b.len(), "matrix B")?;
        let enc = cfg.encoding;
        // In dependent mode A is a previous result, so it is encoded and
        // decoded with the output range.
        let a_range = if self.dependent {
            self.range_out
        } else {
            self.range_in
        };
        let src = sum_kernel_ranges(enc, &a_range, &self.range_in, &self.range_out);
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let prog = gl.create_program_with(&src, &opt)?;
        gl.set_sampler(prog, "u_a", 0)?;
        gl.set_sampler(prog, "u_b", 1)?;

        apply_setup(gl, cfg);

        let encoded_a = enc.encode(a, &a_range);
        let encoded_b = enc.encode(b, &self.range_in);

        let tex_a = gl.create_texture();
        let tex_b = gl.create_texture();
        gl.add_cpu_work(convert_cost((encoded_a.len() + encoded_b.len()) as u64));
        gl.tex_image_2d(
            tex_a,
            self.n,
            self.n,
            enc.texture_format(),
            Some(&encoded_a),
        )?;
        gl.tex_image_2d(
            tex_b,
            self.n,
            self.n,
            enc.texture_format(),
            Some(&encoded_b),
        )?;

        let mut chain = OutputChain::new(gl, self.n, enc.texture_format());
        if self.dependent {
            // The chain starts holding A.
            chain.seed(gl, &encoded_a)?;
        }

        let vbo = vbo_for(gl, cfg, 1)?;

        Ok(Sum {
            cfg: *cfg,
            n: self.n,
            prog,
            tex_a,
            tex_b,
            chain,
            vbo,
            range_out: self.range_out,
            dependent: self.dependent,
            reupload: self.reupload,
            encoded_a,
            encoded_b,
            step_count: 0,
        })
    }
}

impl Sum {
    /// Starts building a `Sum` over `n`×`n` matrices.
    #[must_use]
    pub fn builder(n: u32) -> SumBuilder {
        SumBuilder {
            n,
            range_in: Range::unit(),
            range_out: Range::new(0.0, 2.0),
            dependent: false,
            reupload: false,
        }
    }

    /// Runs one kernel invocation (one iteration of the paper's benchmark
    /// body).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn step(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.step_banded(gl, 1)
    }

    /// Like [`Sum::step`], but issues the draw as `bands` row-band
    /// sub-draws — the resilient runner's watchdog degradation rung.
    /// `bands <= 1` is exactly [`Sum::step`].
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn step_banded(&mut self, gl: &mut Gl, bands: u32) -> Result<(), GpgpuError> {
        if self.reupload {
            gl.add_cpu_work(convert_cost(
                (self.encoded_a.len() + self.encoded_b.len()) as u64,
            ));
            let fmt = self.cfg.encoding.texture_format();
            if self.cfg.texture_reuse {
                gl.tex_sub_image_2d(self.tex_a, &self.encoded_a)?;
                gl.tex_sub_image_2d(self.tex_b, &self.encoded_b)?;
            } else {
                gl.tex_image_2d(self.tex_a, self.n, self.n, fmt, Some(&self.encoded_a))?;
                gl.tex_image_2d(self.tex_b, self.n, self.n, fmt, Some(&self.encoded_b))?;
            }
        }
        let a_tex = if self.dependent {
            self.chain.latest()
        } else {
            self.tex_a
        };
        gl.bind_texture(0, Some(a_tex))?;
        gl.bind_texture(1, Some(self.tex_b))?;
        gl.use_program(Some(self.prog))?;

        self.step_count += 1;
        let label = format!("sum#{}", self.step_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        let n = self.n;
        self.chain
            .render_pass(gl, &self.cfg, |gl| draw_banded(gl, &quad, bands, n))
    }

    /// Restores the operator's pre-run state: in dependent mode the chain
    /// is re-seeded with matrix `A`, otherwise this is a no-op. Used by the
    /// resilient runner to replay a run from the beginning.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn reset(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        if self.dependent {
            gl.add_cpu_work(convert_cost(self.encoded_a.len() as u64));
            self.chain.seed(gl, &self.encoded_a)?;
        }
        Ok(())
    }

    /// Reads back the latest result's raw encoded bytes (a pass-granular
    /// checkpoint for the resilient runner).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn snapshot_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        Ok(self.chain.read_latest(gl)?)
    }

    /// Uploads previously snapshotted bytes into the latest-result slot.
    ///
    /// # Errors
    ///
    /// Propagates GL failures (e.g. a size mismatch).
    pub fn restore_bytes(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        Ok(self.chain.seed(gl, bytes)?)
    }

    /// Runs `iterations` kernel invocations.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn run(&mut self, gl: &mut Gl, iterations: usize) -> Result<(), GpgpuError> {
        for _ in 0..iterations {
            self.step(gl)?;
        }
        Ok(())
    }

    /// Reads back and decodes the latest result.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn result(&mut self, gl: &mut Gl) -> Result<Vec<f32>, GpgpuError> {
        let bytes = self.chain.read_latest(gl)?;
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        Ok(self.cfg.encoding.decode(&bytes, &self.range_out))
    }

    /// The matrix dimension.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.n
    }
}
