//! The GPGPU operators: streaming sum, saxpy, blocked sgemm and image
//! convolution.
//!
//! All operators share the [`OutputChain`]: a double-buffered pair of
//! result textures plus a framebuffer object, which realises the paper's
//! §III/§IV output scheme under every [`OptConfig`] point:
//!
//! * **texture rendering** — render into one chain texture while the other
//!   is readable (OpenGL ES 2 forbids sampling the render target);
//! * **framebuffer rendering** — render to the window surface and copy the
//!   result out with `copy_tex_image_2d` (fresh storage every pass) or
//!   `copy_tex_sub_image_2d` (reused storage, the Fig. 5b false-sharing
//!   case);
//! * **invalidation** — `EXT_discard_framebuffer` before each pass unless
//!   disabled.

mod conv;
mod dot;
mod jacobi;
mod reduce;
mod saxpy;
mod sgemm;
mod sum;
mod transpose;

pub use conv::Convolution3x3;
pub use dot::DotProduct;
pub use jacobi::{JacobiBuilder, JacobiSolver};
pub use reduce::Reduction;
pub use saxpy::Saxpy;
pub use sgemm::Sgemm;
pub use sum::{Sum, SumBuilder};
pub use transpose::Transpose;

use mgpu_gles::{DrawQuad, Gl, GlError, TextureFormat, TextureId};
use mgpu_tbdr::SimTime;

use crate::config::{OptConfig, RenderStrategy, SyncStrategy, VertexStrategy};
use crate::error::GpgpuError;

/// Estimated CPU throughput of the float↔byte conversions (encode/decode),
/// charged as application CPU time against the frame that uploads the data.
const CONVERT_BANDWIDTH_BYTES_PER_SEC: f64 = 500.0 * 1024.0 * 1024.0;

/// Simulated CPU time to convert `bytes` of encoded data.
pub(crate) fn convert_cost(bytes: u64) -> SimTime {
    SimTime::from_secs_f64(bytes as f64 / CONVERT_BANDWIDTH_BYTES_PER_SEC)
}

/// Applies the configured swap interval and host-execution threading once
/// at operator setup.
pub(crate) fn apply_setup(gl: &mut Gl, cfg: &OptConfig) {
    match cfg.sync {
        SyncStrategy::SwapDefault => {
            let d = gl.platform().default_swap_interval;
            gl.swap_interval(d);
        }
        SyncStrategy::SwapInterval0 => gl.swap_interval(0),
        SyncStrategy::NoSwap => {}
    }
    if cfg.threads.is_some()
        || cfg.engine.is_some()
        || cfg.pool.is_some()
        || cfg.spec.is_some()
        || cfg.tile_skip.is_some()
    {
        // Compose onto the context's current configuration so pinning one
        // knob never clobbers the others.
        let mut exec = gl.exec_config();
        if let Some(threads) = cfg.threads {
            exec = exec.with_thread_count(threads);
        }
        if let Some(engine) = cfg.engine {
            exec = exec.with_engine(engine);
        }
        if let Some(pool) = cfg.pool {
            exec = exec.with_pool(pool);
        }
        if let Some(spec) = cfg.spec {
            exec = exec.with_specialization(spec);
        }
        if let Some(tile_skip) = cfg.tile_skip {
            exec = exec.with_tile_skip(tile_skip);
        }
        gl.set_exec_config(exec);
    }
}

/// Ends one kernel invocation according to the sync strategy.
pub(crate) fn end_pass(gl: &mut Gl, cfg: &OptConfig) -> Result<(), GlError> {
    match cfg.sync {
        SyncStrategy::NoSwap => {
            gl.flush();
            Ok(())
        }
        _ => gl.swap_buffers(),
    }
}

/// Builds the draw call for the configured vertex strategy.
pub(crate) fn quad_for(cfg: &OptConfig, vbo: Option<mgpu_gles::BufferId>, label: &str) -> DrawQuad {
    let quad = DrawQuad::fullscreen().with_label(label);
    match (cfg.vertex, vbo) {
        (VertexStrategy::Vbo(_), Some(b)) => {
            quad.with_vertex_source(mgpu_gles::VertexSource::Vbo(b))
        }
        _ => quad,
    }
}

/// Issues `quad` as `bands` row-band sub-draws over a target of `height`
/// rows (one plain draw when `bands <= 1`) — the watchdog degradation rung.
/// Band sub-draws are bit-identical to the full draw because fragment
/// coordinates are derived from the global row index.
pub(crate) fn draw_banded(
    gl: &mut Gl,
    quad: &DrawQuad,
    bands: u32,
    height: u32,
) -> Result<(), GlError> {
    if bands <= 1 || height == 0 {
        return gl.draw_quad(quad);
    }
    let bands = bands.min(height);
    let rows = height.div_ceil(bands);
    let mut y0 = 0u32;
    while y0 < height {
        let y1 = (y0 + rows).min(height);
        gl.draw_quad(&quad.clone().with_row_band(y0, y1))?;
        y0 = y1;
    }
    Ok(())
}

/// Creates the VBO for the configured vertex strategy, if any.
pub(crate) fn vbo_for(
    gl: &mut Gl,
    cfg: &OptConfig,
    varyings: u64,
) -> Result<Option<mgpu_gles::BufferId>, GlError> {
    match cfg.vertex {
        VertexStrategy::ClientArrays => Ok(None),
        VertexStrategy::Vbo(usage) => {
            let vbo = gl.create_buffer();
            gl.buffer_data(vbo, 4 * (8 + varyings * 8), usage)?;
            Ok(Some(vbo))
        }
    }
}

/// Double-buffered result textures + FBO shared by all operators.
#[derive(Debug)]
pub(crate) struct OutputChain {
    textures: [TextureId; 2],
    fbo: mgpu_gles::FramebufferId,
    /// Index of the texture holding the latest result.
    idx: usize,
    size: u32,
    format: TextureFormat,
    allocated: [bool; 2],
}

impl OutputChain {
    pub(crate) fn new(gl: &mut Gl, size: u32, format: TextureFormat) -> Self {
        OutputChain {
            textures: [gl.create_texture(), gl.create_texture()],
            fbo: gl.create_framebuffer(),
            idx: 0,
            size,
            format,
            allocated: [false; 2],
        }
    }

    /// The texture holding the latest result.
    pub(crate) fn latest(&self) -> TextureId {
        self.textures[self.idx]
    }

    /// Uploads initial contents into the latest-result slot.
    pub(crate) fn seed(&mut self, gl: &mut Gl, data: &[u8]) -> Result<(), GlError> {
        gl.tex_image_2d(
            self.textures[self.idx],
            self.size,
            self.size,
            self.format,
            Some(data),
        )?;
        self.allocated[self.idx] = true;
        Ok(())
    }

    /// Runs one pass: sets up the render target per the configuration,
    /// invokes `draw`, performs the copy-out on the framebuffer path, and
    /// flips the chain. After this call, [`OutputChain::latest`] is the
    /// texture the pass produced.
    pub(crate) fn render_pass(
        &mut self,
        gl: &mut Gl,
        cfg: &OptConfig,
        draw: impl FnOnce(&mut Gl) -> Result<(), GlError>,
    ) -> Result<(), GpgpuError> {
        self.render_pass_with_copy(gl, cfg, None, draw)
    }

    /// [`OutputChain::render_pass`] that additionally copies the pass's
    /// freshly produced output into `copy_out` (when given) *before* the
    /// end-of-pass swap/flush — the retained-output hook deep pipelines
    /// use so a later pass can sample an intermediate result that the
    /// double-buffered chain would otherwise overwrite.
    pub(crate) fn render_pass_with_copy(
        &mut self,
        gl: &mut Gl,
        cfg: &OptConfig,
        copy_out: Option<TextureId>,
        draw: impl FnOnce(&mut Gl) -> Result<(), GlError>,
    ) -> Result<(), GpgpuError> {
        let next = 1 - self.idx;
        match cfg.target {
            RenderStrategy::Texture => {
                // Fresh storage unless reusing (renders into `next`).
                if !cfg.texture_reuse || !self.allocated[next] {
                    gl.tex_image_2d(self.textures[next], self.size, self.size, self.format, None)?;
                    self.allocated[next] = true;
                }
                gl.bind_framebuffer(Some(self.fbo))?;
                gl.framebuffer_texture_2d(self.textures[next])?;
                if cfg.invalidate {
                    gl.discard_framebuffer()?;
                }
                draw(gl)?;
                // The FBO still targets the just-written texture, so the
                // retained copy reads straight from the render target.
                if let Some(keep) = copy_out {
                    gl.copy_tex_image_2d(keep, self.format)?;
                }
            }
            RenderStrategy::Framebuffer => {
                gl.bind_framebuffer(None)?;
                if cfg.invalidate {
                    gl.discard_framebuffer()?;
                }
                draw(gl)?;
                if cfg.texture_reuse && self.allocated[next] {
                    gl.copy_tex_sub_image_2d(self.textures[next])?;
                } else {
                    gl.copy_tex_image_2d(self.textures[next], self.format)?;
                    self.allocated[next] = true;
                }
                // Copy before the swap rotates the surface away.
                if let Some(keep) = copy_out {
                    gl.copy_tex_image_2d(keep, self.format)?;
                }
            }
        }
        self.idx = next;
        end_pass(gl, cfg)?;
        Ok(())
    }

    /// Reads back and returns the latest result's bytes (synchronising,
    /// counted as a readback by the fault injector).
    pub(crate) fn read_latest(&self, gl: &mut Gl) -> Result<Vec<u8>, GlError> {
        gl.read_texture(self.latest())
    }
}

/// Validates that an operator's data size matches `n * n` and the window
/// surface (the framebuffer path renders full-surface).
pub(crate) fn check_size(gl: &Gl, n: u32, data_len: usize, what: &str) -> Result<(), GpgpuError> {
    if data_len != (n as usize) * (n as usize) {
        return Err(GpgpuError::Config(format!(
            "{what} has {data_len} elements, expected {n}x{n}"
        )));
    }
    let _ = gl;
    Ok(())
}
