//! A weighted-Jacobi solver for the 2D Poisson equation — the "numerical
//! solvers" application family the paper's evaluation section motivates
//! (citing Strzodka's PDE solvers and the UCHPC finite-element work).
//!
//! Each iteration is one GPGPU pass over the double-buffered solution
//! chain; the five-point stencil uses computed (dependent) texture
//! coordinates, so it exercises the same micro-architectural behaviours as
//! the paper's sgemm.

use mgpu_gles::{Gl, ProgramId, TextureId};
use mgpu_shader::OptOptions;

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::kernels::jacobi_kernel;
use crate::ops::{apply_setup, check_size, convert_cost, quad_for, vbo_for, OutputChain};

/// Solves `∇²u = -f` on an `n`×`n` grid with zero-flux boundaries by
/// weighted-Jacobi iteration.
///
/// `u` values must stay within `range_u` throughout the iteration (the
/// caller chooses a range covering the solution; out-of-range values clamp
/// like the GPU's output stage). The source term is pre-scaled by `h²`.
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{JacobiSolver, OptConfig, Range};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
/// let u0 = vec![0.0f32; 64];
/// let f = vec![0.1f32; 64];
/// let mut solver = JacobiSolver::builder(8)
///     .omega(1.0)
///     .build(&mut gl, &OptConfig::baseline().without_swap(), &u0, &f)?;
/// solver.iterate(&mut gl, 10)?;
/// let u = solver.solution(&mut gl)?;
/// // With a positive source everywhere, the solution rises.
/// assert!(u.iter().all(|&v| v > 0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct JacobiSolver {
    cfg: OptConfig,
    prog: ProgramId,
    tex_f: TextureId,
    chain: OutputChain,
    vbo: Option<mgpu_gles::BufferId>,
    range_u: Range,
    step_count: u64,
}

/// Builder for [`JacobiSolver`].
#[derive(Debug, Clone)]
pub struct JacobiBuilder {
    n: u32,
    range_u: Range,
    range_f: Range,
    omega: f32,
}

impl JacobiBuilder {
    /// Sets the solution value range (default `[0, 1)`).
    #[must_use]
    pub fn range_u(mut self, range: Range) -> Self {
        self.range_u = range;
        self
    }

    /// Sets the (h²-scaled) source-term range (default `[0, 1)`).
    #[must_use]
    pub fn range_f(mut self, range: Range) -> Self {
        self.range_f = range;
        self
    }

    /// Sets the relaxation weight ω (default 1.0 = plain Jacobi).
    #[must_use]
    pub fn omega(mut self, omega: f32) -> Self {
        self.omega = omega;
        self
    }

    /// Builds the solver, uploading the initial guess `u0` and the
    /// pre-scaled source `f`.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] on size mismatches or ω outside `[0, 1]`;
    /// [`GpgpuError::Gl`] otherwise.
    pub fn build(
        self,
        gl: &mut Gl,
        cfg: &OptConfig,
        u0: &[f32],
        f: &[f32],
    ) -> Result<JacobiSolver, GpgpuError> {
        check_size(gl, self.n, u0.len(), "initial guess u0")?;
        check_size(gl, self.n, f.len(), "source term f")?;
        if !(0.0..=1.0).contains(&self.omega) {
            return Err(GpgpuError::Config(format!(
                "relaxation weight {} must lie in [0, 1]",
                self.omega
            )));
        }
        let enc = cfg.encoding;
        let src = jacobi_kernel(enc, &self.range_u, &self.range_f, self.omega);
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let prog = gl.create_program_with(&src, &opt)?;
        gl.set_sampler(prog, "u_u", 0)?;
        gl.set_sampler(prog, "u_f", 1)?;
        gl.set_uniform_scalar(prog, "u_texel", 1.0 / self.n as f32)?;
        apply_setup(gl, cfg);

        let encoded_u = enc.encode(u0, &self.range_u);
        let encoded_f = enc.encode(f, &self.range_f);
        gl.add_cpu_work(convert_cost((encoded_u.len() + encoded_f.len()) as u64));
        let tex_f = gl.create_texture();
        gl.tex_image_2d(
            tex_f,
            self.n,
            self.n,
            enc.texture_format(),
            Some(&encoded_f),
        )?;
        let mut chain = OutputChain::new(gl, self.n, enc.texture_format());
        chain.seed(gl, &encoded_u)?;
        let vbo = vbo_for(gl, cfg, 1)?;

        Ok(JacobiSolver {
            cfg: *cfg,
            prog,
            tex_f,
            chain,
            vbo,
            range_u: self.range_u,
            step_count: 0,
        })
    }
}

impl JacobiSolver {
    /// Starts building a solver over an `n`×`n` grid.
    #[must_use]
    pub fn builder(n: u32) -> JacobiBuilder {
        JacobiBuilder {
            n,
            range_u: Range::unit(),
            range_f: Range::unit(),
            omega: 1.0,
        }
    }

    /// Runs one Jacobi iteration (one kernel invocation).
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn step(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        gl.bind_texture(0, Some(self.chain.latest()))?;
        gl.bind_texture(1, Some(self.tex_f))?;
        gl.use_program(Some(self.prog))?;
        self.step_count += 1;
        let label = format!("jacobi#{}", self.step_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        self.chain
            .render_pass(gl, &self.cfg, |gl| gl.draw_quad(&quad))
    }

    /// Runs `iterations` Jacobi iterations.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn iterate(&mut self, gl: &mut Gl, iterations: usize) -> Result<(), GpgpuError> {
        for _ in 0..iterations {
            self.step(gl)?;
        }
        Ok(())
    }

    /// Reads back and decodes the current solution.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn solution(&mut self, gl: &mut Gl) -> Result<Vec<f32>, GpgpuError> {
        let bytes = self.chain.read_latest(gl)?;
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        Ok(self.cfg.encoding.decode(&bytes, &self.range_u))
    }
}
