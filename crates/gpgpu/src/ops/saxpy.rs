//! Saxpy (`Y = alpha * X + Y`): the quickstart operator.

use mgpu_gles::{Gl, ProgramId, TextureId};
use mgpu_shader::OptOptions;

use crate::config::OptConfig;
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::kernels::saxpy_kernel;
use crate::ops::{apply_setup, check_size, convert_cost, quad_for, vbo_for, OutputChain};

/// `Y ← alpha·X + Y` over `n`×`n` encoded matrices. Iterating chains `Y`
/// through the double-buffered output like the paper's multi-pass scheme.
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{OptConfig, Range, Saxpy};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::sgx_545(), 8, 8);
/// let x = vec![0.5f32; 64];
/// let y = vec![0.25f32; 64];
/// let mut op = Saxpy::new(&mut gl, &OptConfig::baseline(), 8, 0.5, &x, &y,
///                         Range::unit(), Range::new(0.0, 4.0))?;
/// op.step(&mut gl)?;
/// let out = op.result(&mut gl)?;
/// assert!((out[0] - 0.5).abs() < 1e-2); // 0.5*0.5 + 0.25
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Saxpy {
    cfg: OptConfig,
    prog: ProgramId,
    tex_x: TextureId,
    chain: OutputChain,
    vbo: Option<mgpu_gles::BufferId>,
    range_out: Range,
    step_count: u64,
}

impl Saxpy {
    /// Builds the operator with `alpha` baked as a uniform.
    ///
    /// `x` values must lie in `range_in`; `y` and results in `range_out`.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] on size mismatch, [`GpgpuError::Gl`]
    /// otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        gl: &mut Gl,
        cfg: &OptConfig,
        n: u32,
        alpha: f32,
        x: &[f32],
        y: &[f32],
        range_in: Range,
        range_out: Range,
    ) -> Result<Self, GpgpuError> {
        check_size(gl, n, x.len(), "vector X")?;
        check_size(gl, n, y.len(), "vector Y")?;
        let enc = cfg.encoding;
        // The kernel decodes Y with the output range (it is an accumulator).
        let src = saxpy_kernel(enc, &range_in, &range_out);
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let prog = gl.create_program_with(&src, &opt)?;
        gl.set_sampler(prog, "u_x", 0)?;
        gl.set_sampler(prog, "u_y", 1)?;
        gl.set_uniform_scalar(prog, "u_alpha", alpha)?;

        apply_setup(gl, cfg);

        let encoded_x = enc.encode(x, &range_in);
        let encoded_y = enc.encode(y, &range_out);
        gl.add_cpu_work(convert_cost((encoded_x.len() + encoded_y.len()) as u64));
        let tex_x = gl.create_texture();
        gl.tex_image_2d(tex_x, n, n, enc.texture_format(), Some(&encoded_x))?;
        let mut chain = OutputChain::new(gl, n, enc.texture_format());
        chain.seed(gl, &encoded_y)?;

        let vbo = vbo_for(gl, cfg, 1)?;

        Ok(Saxpy {
            cfg: *cfg,
            prog,
            tex_x,
            chain,
            vbo,
            range_out,
            step_count: 0,
        })
    }

    /// Runs one `Y ← alpha·X + Y` update.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn step(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        gl.bind_texture(0, Some(self.tex_x))?;
        gl.bind_texture(1, Some(self.chain.latest()))?;
        gl.use_program(Some(self.prog))?;
        self.step_count += 1;
        let label = format!("saxpy#{}", self.step_count);
        let quad = quad_for(&self.cfg, self.vbo, &label);
        self.chain
            .render_pass(gl, &self.cfg, |gl| gl.draw_quad(&quad))
    }

    /// Reads back and decodes `Y`.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn result(&mut self, gl: &mut Gl) -> Result<Vec<f32>, GpgpuError> {
        let bytes = self.chain.read_latest(gl)?;
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        Ok(self.cfg.encoding.decode(&bytes, &self.range_out))
    }
}
