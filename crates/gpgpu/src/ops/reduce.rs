//! Multi-pass tree reduction: sum (or mean) over every element of an
//! encoded matrix.
//!
//! The classic GPGPU primitive the paper's §III multi-pass framework
//! implies: each pass renders a quarter-sized target whose fragments sum
//! a 2×2 block of the previous level, so an `n`×`n` input reduces in
//! `log2(n)` kernel invocations. One compiled program serves every pass —
//! the per-pass value scaling travels in uniforms.

use mgpu_gles::{Gl, ProgramId, TextureFormat, TextureId};
use mgpu_shader::OptOptions;

use crate::config::{OptConfig, RenderStrategy};
use crate::encoding::Range;
use crate::error::GpgpuError;
use crate::kernels::reduce4_kernel;
use crate::ops::{apply_setup, check_size, convert_cost, end_pass, quad_for, vbo_for};

/// Sums all elements of an `n`×`n` matrix on the GPU in `log2(n)` passes.
///
/// Values must lie in `[0, 1)`; the accumulated range grows 4× per level
/// and is tracked for the caller. `n` must be a power of two; reduction
/// requires texture rendering (each level has its own size, which the
/// fixed-size window framebuffer cannot provide).
///
/// # Examples
///
/// ```
/// use mgpu_gles::Gl;
/// use mgpu_gpgpu::{OptConfig, Reduction};
/// use mgpu_tbdr::Platform;
///
/// # fn main() -> Result<(), mgpu_gpgpu::GpgpuError> {
/// let mut gl = Gl::new(Platform::videocore_iv(), 16, 16);
/// let data = vec![0.5f32; 256];
/// let mut reduce = Reduction::new(&mut gl, &OptConfig::baseline().without_swap(), 16, &data)?;
/// let total = reduce.run(&mut gl)?;
/// assert!((total - 128.0).abs() < 0.05); // 256 * 0.5
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Reduction {
    cfg: OptConfig,
    n: u32,
    prog: ProgramId,
    /// One texture per level: levels[0] is the input (size n), the last is
    /// the 1×1 result.
    levels: Vec<TextureId>,
    fbo: mgpu_gles::FramebufferId,
    vbo: Option<mgpu_gles::BufferId>,
    run_count: u64,
}

impl Reduction {
    /// Builds the reduction and uploads `data`.
    ///
    /// # Errors
    ///
    /// [`GpgpuError::Config`] when `n` is not a power of two ≥ 2, the
    /// configuration selects framebuffer rendering, or sizes mismatch;
    /// [`GpgpuError::Gl`] otherwise.
    pub fn new(gl: &mut Gl, cfg: &OptConfig, n: u32, data: &[f32]) -> Result<Self, GpgpuError> {
        check_size(gl, n, data.len(), "reduction input")?;
        let enc = cfg.encoding;
        let encoded = enc.encode(data, &Range::unit());
        gl.add_cpu_work(convert_cost(encoded.len() as u64));
        let input = gl.create_texture();
        // Validate n before allocating with it.
        if n < 2 || !n.is_power_of_two() {
            return Err(GpgpuError::Config(format!(
                "reduction size {n} must be a power of two >= 2"
            )));
        }
        gl.tex_image_2d(input, n, n, enc.texture_format(), Some(&encoded))?;
        Reduction::with_input_texture(gl, cfg, n, input)
    }

    /// Builds the reduction over an existing `n`×`n` texture already
    /// holding `[0, 1)`-encoded values — the composition point for GPU
    /// pipelines that produce their own intermediate (see
    /// [`DotProduct`](crate::DotProduct)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Reduction::new`].
    pub fn with_input_texture(
        gl: &mut Gl,
        cfg: &OptConfig,
        n: u32,
        input: TextureId,
    ) -> Result<Self, GpgpuError> {
        if n < 2 || !n.is_power_of_two() {
            return Err(GpgpuError::Config(format!(
                "reduction size {n} must be a power of two >= 2"
            )));
        }
        if cfg.target == RenderStrategy::Framebuffer {
            return Err(GpgpuError::Config(
                "reduction requires texture rendering: each level has its own size".to_owned(),
            ));
        }
        let enc = cfg.encoding;
        let src = reduce4_kernel(enc);
        let opt = if cfg.mad_fusion {
            OptOptions::full()
        } else {
            OptOptions::without_mad_fusion()
        };
        let prog = gl.create_program_with(&src, &opt)?;
        gl.set_sampler(prog, "u_src", 0)?;
        apply_setup(gl, cfg);

        let mut levels = vec![input];
        let mut size = n / 2;
        loop {
            levels.push(gl.create_texture());
            if size == 1 {
                break;
            }
            size /= 2;
        }

        let fbo = gl.create_framebuffer();
        let vbo = vbo_for(gl, cfg, 1)?;
        Ok(Reduction {
            cfg: *cfg,
            n,
            prog,
            levels,
            fbo,
            vbo,
            run_count: 0,
        })
    }

    /// Number of kernel invocations one reduction takes (`log2(n)`).
    #[must_use]
    pub fn passes(&self) -> u32 {
        self.n.trailing_zeros()
    }

    /// The value range of the final 1×1 result texture.
    #[must_use]
    pub fn result_range(&self) -> Range {
        Range::new(0.0, (self.n as f32) * (self.n as f32))
    }

    /// Runs the full reduction and returns the decoded total.
    ///
    /// # Errors
    ///
    /// Propagates GL failures.
    pub fn run(&mut self, gl: &mut Gl) -> Result<f32, GpgpuError> {
        self.run_count += 1;
        let enc = self.cfg.encoding;
        let fmt: TextureFormat = enc.texture_format();
        let mut in_size = self.n;
        for pass in 0..self.passes() {
            let out_size = in_size / 2;
            let src_tex = self.levels[pass as usize];
            let dst_tex = self.levels[pass as usize + 1];

            // Per-pass value scaling: level p holds values in
            // [0, 4^p); the kernel normalises through [0,1) storage.
            let range_in = 4.0f32.powi(pass as i32);
            let range_out = range_in * 4.0;
            gl.set_uniform_scalar(self.prog, "u_scale_in", range_in)?;
            gl.set_uniform_scalar(self.prog, "u_scale_out", 1.0 / range_out)?;
            // Quarter of an output texel reaches the two input texels.
            gl.set_uniform_scalar(self.prog, "u_half_texel", 0.25 / out_size as f32)?;

            // Fresh storage per pass unless reusing across runs.
            if !self.cfg.texture_reuse || self.run_count == 1 {
                gl.tex_image_2d(dst_tex, out_size, out_size, fmt, None)?;
            }
            gl.bind_framebuffer(Some(self.fbo))?;
            gl.framebuffer_texture_2d(dst_tex)?;
            if self.cfg.invalidate {
                gl.discard_framebuffer()?;
            }
            gl.bind_texture(0, Some(src_tex))?;
            gl.use_program(Some(self.prog))?;
            let label = format!("reduce#{} level {pass}", self.run_count);
            let quad = quad_for(&self.cfg, self.vbo, &label);
            gl.draw_quad(&quad)?;
            end_pass(gl, &self.cfg)?;

            in_size = out_size;
        }

        gl.finish();
        let last = *self
            .levels
            .last()
            .ok_or_else(|| GpgpuError::Config("reduction has no levels".to_owned()))?;
        let bytes = gl.texture_data(last)?.to_vec();
        gl.add_cpu_work(convert_cost(bytes.len() as u64));
        let total_range = Range::new(0.0, 4.0f32.powi(self.passes() as i32));
        Ok(enc.decode(&bytes, &total_range)[0])
    }
}
