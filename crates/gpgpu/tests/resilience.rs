//! End-to-end tests of the resilient runner: every injected fault class
//! either fully recovers — with output bytes identical to a fault-free
//! run — or surfaces as a typed error carrying the fault trail.

use mgpu_gles::{FaultPlan, Gl, GlError};
use mgpu_gpgpu::{
    Encoding, GpgpuError, OptConfig, Pipeline, PipelineJob, RecoverableJob, RecoveryEvent,
    ResilienceConfig, ResilientRunner, RetryPolicy, SgemmJob, Source, Sum, SumJob,
};
use mgpu_tbdr::{Platform, SimTime};

const N: u32 = 8;

fn cfg() -> OptConfig {
    OptConfig::baseline().without_swap()
}

fn gl() -> Gl {
    Gl::new(Platform::videocore_iv(), N, N)
}

fn inputs() -> (Vec<f32>, Vec<f32>) {
    let a: Vec<f32> = (0..N * N).map(|i| (i as f32 * 0.31) % 0.9).collect();
    let b: Vec<f32> = (0..N * N).map(|i| (i as f32 * 0.17) % 0.8).collect();
    (a, b)
}

/// Runs `job` fault-free through the runner: the byte-identity reference.
fn clean_run(job: &mut dyn RecoverableJob) -> Vec<u8> {
    let mut gl = gl();
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let bytes = runner.run(&mut gl, job).expect("fault-free run succeeds");
    assert!(runner.events().is_empty(), "no faults, no recovery events");
    bytes
}

#[test]
fn fault_free_runner_matches_direct_op() {
    let (a, b) = inputs();
    let mut job = SumJob::new(&cfg(), N, &a, &b, 3).dependent(true);
    let via_runner = clean_run(&mut job);

    let mut gl = gl();
    let mut sum = Sum::builder(N)
        .dependent(true)
        .build(&mut gl, &cfg(), &a, &b)
        .unwrap();
    sum.run(&mut gl, 3).unwrap();
    let direct = sum.snapshot_bytes(&mut gl).unwrap();
    assert_eq!(via_runner, direct);
}

#[test]
fn dependent_sum_recovers_from_context_loss_byte_identical() {
    let (a, b) = inputs();
    let mut job = SumJob::new(&cfg(), N, &a, &b, 3).dependent(true);
    let want = clean_run(&mut job);

    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(11).ctx_loss_at_draw(1));
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let got = runner.run(&mut gl, &mut job).unwrap();

    assert_eq!(got, want, "recovered bytes must match the fault-free run");
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::ContextRecreated { .. })));
    assert_eq!(gl.fault_trail().len(), 1);
}

#[test]
fn sum_retries_through_build_time_oom() {
    let (a, b) = inputs();
    let mut job = SumJob::new(&cfg(), N, &a, &b, 2);
    let want = clean_run(&mut job);

    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(12).oom_at_upload(1));
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let t0 = gl.elapsed();
    let got = runner.run(&mut gl, &mut job).unwrap();
    assert_eq!(got, want);
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::Retried { .. })));
    // The backoff was charged in simulated time.
    assert!(gl.elapsed() > t0);
}

#[test]
fn sgemm_recovers_mid_multiplication() {
    let (a, b) = inputs();
    let mut job = SgemmJob::new(&cfg(), N, 2, &a, &b);
    assert_eq!(job.passes(), 4);
    let want = clean_run(&mut job);

    // Lose the context on the third accumulation pass: recovery must
    // restore the pass-2 checkpoint, not restart from zero.
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(13).ctx_loss_at_draw(2));
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let got = runner.run(&mut gl, &mut job).unwrap();
    assert_eq!(got, want);
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::ContextRecreated { .. })));
}

fn scale_kernel(factor: f32) -> String {
    let enc = Encoding::Fp32;
    format!(
        "uniform sampler2D u_x;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float x = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(x * {factor:?});\n}}\n",
        enc.decode_fn_source(),
        enc.encode_fn_source()
    )
}

fn three_pass_job(data: &[f32]) -> PipelineJob {
    use mgpu_gpgpu::Range;
    let builder = Pipeline::builder(N)
        .input("x", data, Range::unit())
        .pass(
            &scale_kernel(0.5),
            &[("u_x", Source::Input("x".into()))],
            &[],
        )
        .pass(&scale_kernel(0.5), &[("u_x", Source::Previous)], &[])
        .pass(&scale_kernel(2.0), &[("u_x", Source::Previous)], &[]);
    PipelineJob::new(&cfg(), builder)
}

#[test]
fn three_pass_pipeline_recovers_from_context_loss() {
    let (a, _) = inputs();
    let mut job = three_pass_job(&a);
    assert_eq!(job.passes(), 3);
    let want = clean_run(&mut job);

    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(14).ctx_loss_at_draw(1));
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let got = runner.run(&mut gl, &mut job).unwrap();
    assert_eq!(got, want);
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::ContextRecreated { .. })));
}

#[test]
fn tile_skip_survives_context_loss_byte_identical() {
    let (a, b) = inputs();
    // Reference: fault-free with skipping OFF.
    let mut plain = SumJob::new(&cfg(), N, &a, &b, 3).dependent(true);
    let want = clean_run(&mut plain);

    // Faulted run with `MGPU_TILE_SKIP=on`: the loss lands on draw 2,
    // after the ping-pong chain has already warmed the signature cache.
    // Context loss must flush it, so post-recovery replays cannot
    // resurrect pre-loss tile bytes — the recovered output has to match
    // the skip-off reference exactly.
    let skip_cfg = cfg().with_tile_skip(true);
    let mut job = SumJob::new(&skip_cfg, N, &a, &b, 3).dependent(true);
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(21).ctx_loss_at_draw(2));
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let got = runner.run(&mut gl, &mut job).unwrap();
    assert_eq!(got, want, "skip-on recovery diverged from skip-off run");
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::ContextRecreated { .. })));
    assert!(
        gl.tile_skip_stats().invalidations > 0,
        "the loss should have flushed live signature entries"
    );
}

#[test]
fn tile_skip_checksummed_corruption_heals_to_skip_off_bytes() {
    let (a, b) = inputs();
    let mut plain = SumJob::new(&cfg(), N, &a, &b, 2).dependent(true);
    let want = clean_run(&mut plain);

    // Corrupt a draw under verification with skipping on: the checksum
    // catches it, the retry re-shades (corruption taints the stored
    // bytes' signature path deterministically), and the healed output
    // matches the fault-free skip-off run.
    let skip_cfg = cfg().with_tile_skip(true);
    let mut job = SumJob::new(&skip_cfg, N, &a, &b, 2).dependent(true);
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(22).corrupt_at_draw(1));
    let verify = ResilienceConfig {
        verify_checksums: true,
        ..ResilienceConfig::default()
    };
    let mut runner = ResilientRunner::new(verify);
    let got = runner.run(&mut gl, &mut job).unwrap();
    assert_eq!(got, want, "healed skip-on run diverged from skip-off run");
}

#[test]
fn corruption_is_silent_without_checksums() {
    let (a, b) = inputs();
    let mut job = SumJob::new(&cfg(), N, &a, &b, 1);
    let want = clean_run(&mut job);

    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(15).corrupt_at_draw(0));
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let got = runner.run(&mut gl, &mut job).unwrap();
    // Without verification the corruption sails through — this is the
    // failure mode verify_checksums exists for.
    assert_ne!(got, want);
}

#[test]
fn checksum_verification_heals_corruption() {
    let (a, b) = inputs();
    let mut job = SumJob::new(&cfg(), N, &a, &b, 2).dependent(true);
    let want = clean_run(&mut job);

    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(16).corrupt_at_draw(1));
    let verify = ResilienceConfig {
        verify_checksums: true,
        ..ResilienceConfig::default()
    };
    let mut runner = ResilientRunner::new(verify);
    let got = runner.run(&mut gl, &mut job).unwrap();
    assert_eq!(got, want, "verified run must heal the corruption");
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::ChecksumMismatch { .. })));
}

#[test]
fn repeated_corruption_falls_back_to_scalar_engine() {
    let (a, b) = inputs();
    let mut job = SumJob::new(&cfg(), N, &a, &b, 2).dependent(true);
    let want = clean_run(&mut job);

    // Each pass runs twice under verification; draws 1 and 5 are the
    // verification replays of passes 0 and 1 — two mismatches.
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(17).corrupt_at_draw(1).corrupt_at_draw(5));
    let verify = ResilienceConfig {
        verify_checksums: true,
        ..ResilienceConfig::default()
    };
    let mut runner = ResilientRunner::new(verify);
    let got = runner.run(&mut gl, &mut job).unwrap();
    // The scalar engine is byte-identical by the determinism invariant.
    assert_eq!(got, want);
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::EngineFallback { .. })));
    assert!(matches!(
        gl.exec_config().engine(),
        mgpu_gles::Engine::Scalar
    ));
}

#[test]
fn watchdog_pressure_splits_draws_into_bands() {
    let (a, _) = inputs();

    // Probe the full-draw estimate: a one-attempt runner under an
    // impossible budget reports it in the give-up error.
    let mut probe_job = three_pass_job(&a);
    let mut gl_probe = gl();
    gl_probe.install_faults(FaultPlan::seeded(18).watchdog_budget(SimTime::from_nanos(1)));
    let one_shot = ResilienceConfig {
        retry: RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        },
        ..ResilienceConfig::default()
    };
    let err = ResilientRunner::new(one_shot)
        .run(&mut gl_probe, &mut probe_job)
        .unwrap_err();
    let full = match err {
        GpgpuError::Exhausted(e) => match *e.last_error {
            GpgpuError::Gl(GlError::WatchdogTimeout { estimated, .. }) => estimated,
            ref other => panic!("expected watchdog, got {other}"),
        },
        other => panic!("expected exhausted, got {other}"),
    };

    let mut job = three_pass_job(&a);
    let want = clean_run(&mut job);

    // A budget just under the full-draw cost: full draws are killed,
    // split draws fit.
    let budget = SimTime::from_nanos(full.as_nanos() - 1);
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(18).watchdog_budget(budget));
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let got = runner.run(&mut gl, &mut job).unwrap();
    assert_eq!(got, want, "banded draws must be bit-identical");
    assert!(runner.bands() > 1);
    assert!(runner
        .events()
        .iter()
        .any(|e| matches!(e, RecoveryEvent::BandsIncreased { .. })));
}

#[test]
fn persistent_loss_exhausts_with_full_trail() {
    let (a, b) = inputs();
    let mut job = SumJob::new(&cfg(), N, &a, &b, 2);
    let mut gl = gl();
    gl.install_faults(FaultPlan::seeded(19).p_ctx_loss(1.0));
    let bounded = ResilienceConfig {
        retry: RetryPolicy {
            max_context_recreates: 2,
            ..RetryPolicy::default()
        },
        ..ResilienceConfig::default()
    };
    let mut runner = ResilientRunner::new(bounded);
    let err = runner.run(&mut gl, &mut job).unwrap_err();
    match &err {
        GpgpuError::Exhausted(e) => {
            assert!(!e.fault_trail.is_empty(), "trail must name the faults");
            assert_eq!(
                e.recovery
                    .iter()
                    .filter(|ev| matches!(ev, RecoveryEvent::ContextRecreated { .. }))
                    .count(),
                2,
                "both allowed recreates were spent"
            );
            assert!(matches!(
                *e.last_error,
                GpgpuError::Gl(GlError::ContextLost)
            ));
            assert!(e.to_string().contains("resilience exhausted"));
        }
        other => panic!("expected exhausted, got {other}"),
    }
    assert!(!err.is_recoverable());
}

#[test]
fn config_errors_are_fatal_not_retried() {
    let (a, b) = inputs();
    // block does not divide n: a configuration error, not a fault.
    let mut job = SgemmJob::new(&cfg(), N, 3, &a, &b);
    let mut gl = gl();
    let mut runner = ResilientRunner::new(ResilienceConfig::default());
    let err = runner.run(&mut gl, &mut job).unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)), "{err}");
    assert!(runner.events().is_empty(), "nothing to recover from");
}

#[test]
fn same_seed_reproduces_the_recovery_path() {
    let (a, b) = inputs();
    let plan = FaultPlan::seeded(42).p_ctx_loss(0.2).p_corrupt(0.1);
    let run = || {
        let mut job = SumJob::new(&cfg(), N, &a, &b, 3).dependent(true);
        let mut gl = gl();
        gl.install_faults(plan.clone());
        let verify = ResilienceConfig {
            verify_checksums: true,
            ..ResilienceConfig::default()
        };
        let mut runner = ResilientRunner::new(verify);
        let out = runner.run(&mut gl, &mut job);
        (out, runner.events().to_vec(), gl.fault_trail().to_vec())
    };
    let (out_a, events_a, trail_a) = run();
    let (out_b, events_b, trail_b) = run();
    assert_eq!(out_a, out_b);
    assert_eq!(events_a, events_b);
    assert_eq!(trail_a, trail_b);
    assert!(
        !trail_a.is_empty(),
        "p=0.2 over this many draws should fire"
    );
}

/// A job that needs its lossy rung: every draw is watchdog-killed until
/// the job degrades.
struct ToyDegradable {
    heavy: bool,
    degraded: bool,
}

impl RecoverableJob for ToyDegradable {
    fn label(&self) -> String {
        "toy".to_owned()
    }
    fn build(&mut self, _gl: &mut Gl) -> Result<(), GpgpuError> {
        Ok(())
    }
    fn passes(&self) -> usize {
        1
    }
    fn begin_run(&mut self, _gl: &mut Gl) -> Result<(), GpgpuError> {
        Ok(())
    }
    fn run_pass(&mut self, _gl: &mut Gl, _pass: usize, _bands: u32) -> Result<(), GpgpuError> {
        if self.heavy {
            Err(GpgpuError::Gl(GlError::WatchdogTimeout {
                estimated: SimTime::from_micros(2),
                budget: SimTime::from_micros(1),
            }))
        } else {
            Ok(())
        }
    }
    fn snapshot(&mut self, _gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        Ok(vec![1, 2, 3])
    }
    fn restore(&mut self, _gl: &mut Gl, _bytes: &[u8]) -> Result<(), GpgpuError> {
        Ok(())
    }
    fn result_bytes(&mut self, _gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        Ok(vec![1, 2, 3])
    }
    fn degrade_lossy(&mut self) -> bool {
        if self.heavy {
            self.heavy = false;
            self.degraded = true;
            true
        } else {
            false
        }
    }
}

#[test]
fn lossy_degradation_is_opt_in() {
    let run = |allow: bool| {
        let mut job = ToyDegradable {
            heavy: true,
            degraded: false,
        };
        let mut gl = gl();
        let cfg = ResilienceConfig {
            allow_lossy_degrade: allow,
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
            ..ResilienceConfig::default()
        };
        let mut runner = ResilientRunner::new(cfg);
        let out = runner.run(&mut gl, &mut job);
        (out, runner.events().to_vec(), job.degraded)
    };

    let (out, events, degraded) = run(true);
    assert_eq!(out.unwrap(), vec![1, 2, 3]);
    assert!(degraded);
    assert!(events
        .iter()
        .any(|e| matches!(e, RecoveryEvent::LossyDegrade { level: 1 })));

    let (out, _, degraded) = run(false);
    assert!(matches!(out.unwrap_err(), GpgpuError::Exhausted(_)));
    assert!(!degraded, "degradation must stay opt-in");
}
