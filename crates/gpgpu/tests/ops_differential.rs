//! Differential coverage for the operators the config-space sweep in
//! `correctness.rs` exercises on only one engine or platform: every op
//! runs under scalar, batched and compiled fragment execution (with
//! specialisation on and off) on both paper platforms, and
//!
//! 1. all engine variants must agree **bit-exactly** (the engines'
//!    equivalence contract — any drift is an engine bug, not float noise);
//! 2. the agreed result must match the `mgpu_workloads` CPU reference
//!    within the encoding tolerance.

use mgpu_gles::{Engine, Gl};
use mgpu_gpgpu::{
    Convolution3x3, DotProduct, JacobiSolver, OptConfig, Range, Reduction, Saxpy, Transpose,
};
use mgpu_tbdr::Platform;
use mgpu_workloads::{
    conv3x3_ref, dot_ref, jacobi_step_ref, max_abs_error, random_image_rgba8, random_matrix,
    reduce_sum_ref, saxpy_ref, transpose_ref,
};

/// The engine variants every op must agree across: scalar, batched with
/// bind-time uniform specialisation, batched resolving uniforms at
/// seat-bind time, and the compiled closure-chain tier (with and without
/// specialisation, which gates most of its fusion rules).
fn engine_variants() -> Vec<(&'static str, OptConfig)> {
    let base = OptConfig::baseline().without_swap();
    vec![
        ("scalar", base.with_engine(Engine::Scalar)),
        (
            "batched+spec",
            base.with_engine(Engine::Batched).with_specialization(true),
        ),
        (
            "batched-spec",
            base.with_engine(Engine::Batched).with_specialization(false),
        ),
        (
            "compiled+spec",
            base.with_engine(Engine::Compiled).with_specialization(true),
        ),
        (
            "compiled-spec",
            base.with_engine(Engine::Compiled)
                .with_specialization(false),
        ),
    ]
}

/// Runs `op` under every engine variant on `platform`, asserts bit-exact
/// agreement, and returns the agreed floats.
fn run_variants(
    platform: &Platform,
    size: u32,
    what: &str,
    mut op: impl FnMut(&mut Gl, &OptConfig) -> Vec<f32>,
) -> Vec<f32> {
    let mut agreed: Option<(&'static str, Vec<f32>)> = None;
    for (name, cfg) in engine_variants() {
        let mut gl = Gl::new(platform.clone(), size, size);
        let got = op(&mut gl, &cfg);
        match &agreed {
            None => agreed = Some((name, got)),
            Some((first, want)) => {
                let same = want.len() == got.len()
                    && want
                        .iter()
                        .zip(&got)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    same,
                    "{what} on {}: engine `{name}` diverged from `{first}`",
                    platform.name
                );
            }
        }
    }
    agreed.expect("at least one variant").1
}

#[test]
fn saxpy_engines_agree_and_match_reference() {
    let n = 12usize;
    let x = random_matrix(n, 101, 0.0, 1.0);
    let y = random_matrix(n, 102, 0.0, 1.0);
    let alpha = 0.375f32;
    let want = saxpy_ref(alpha, &x, &y);
    for platform in Platform::paper_pair() {
        let got = run_variants(&platform, n as u32, "saxpy", |gl, cfg| {
            let mut op = Saxpy::new(
                gl,
                cfg,
                n as u32,
                alpha,
                x.data(),
                y.data(),
                Range::unit(),
                Range::new(0.0, 4.0),
            )
            .unwrap();
            op.step(gl).unwrap();
            op.result(gl).unwrap()
        });
        let err = max_abs_error(&got, want.data());
        assert!(err < 4e-5, "{}: err {err}", platform.name);
    }
}

#[test]
fn convolution_engines_agree_and_match_reference() {
    let (w, h) = (12u32, 12u32);
    let img = random_image_rgba8(w, h, 103);
    let sharpen = [
        0.0, -0.25, 0.0, //
        -0.25, 2.0, -0.25, //
        0.0, -0.25, 0.0,
    ];
    let want = conv3x3_ref(&img, w, h, &sharpen);
    for platform in Platform::paper_pair() {
        // Convolution yields bytes; widen to f32 for the shared harness
        // (bit-exact on bytes iff bit-exact on their exact f32 images).
        let got = run_variants(&platform, w, "conv3x3", |gl, cfg| {
            let mut op = Convolution3x3::new(gl, cfg, w, h, &sharpen, &img).unwrap();
            op.apply(gl).unwrap();
            op.result(gl)
                .unwrap()
                .iter()
                .map(|&b| f32::from(b))
                .collect()
        });
        let worst = got
            .iter()
            .zip(&want)
            .map(|(g, w)| (*g - f32::from(*w)).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= 1.0,
            "{}: worst channel diff {worst}",
            platform.name
        );
    }
}

#[test]
fn jacobi_engines_agree_and_match_reference() {
    let n = 12usize;
    let u0 = random_matrix(n, 104, 0.0, 0.5);
    let f = random_matrix(n, 105, 0.0, 0.2);
    let omega = 0.9f32;
    let iters = 3usize;
    let mut want = u0.clone();
    for _ in 0..iters {
        want = jacobi_step_ref(&want, &f, omega);
    }
    for platform in Platform::paper_pair() {
        let got = run_variants(&platform, n as u32, "jacobi", |gl, cfg| {
            let mut solver = JacobiSolver::builder(n as u32)
                .omega(omega)
                .build(gl, cfg, u0.data(), f.data())
                .unwrap();
            solver.iterate(gl, iters).unwrap();
            solver.solution(gl).unwrap()
        });
        let err = max_abs_error(&got, want.data());
        assert!(err < 1e-4, "{}: err {err}", platform.name);
    }
}

#[test]
fn transpose_engines_agree_and_match_reference() {
    let n = 12usize;
    let m = random_matrix(n, 106, 0.0, 1.0);
    let want = transpose_ref(&m);
    for platform in Platform::paper_pair() {
        let got = run_variants(&platform, n as u32, "transpose", |gl, cfg| {
            let mut t = Transpose::new(gl, cfg, n as u32, m.data()).unwrap();
            t.apply(gl).unwrap();
            t.result(gl, &Range::unit()).unwrap()
        });
        let err = max_abs_error(&got, want.data());
        assert!(err < 1e-5, "{}: err {err}", platform.name);
    }
}

#[test]
fn dot_product_engines_agree_and_match_reference() {
    let n = 16u32;
    let x = random_matrix(n as usize, 107, 0.0, 1.0);
    let y = random_matrix(n as usize, 108, 0.0, 1.0);
    let want = dot_ref(&x, &y);
    for platform in Platform::paper_pair() {
        let got = run_variants(&platform, n, "dot", |gl, cfg| {
            let mut dot = DotProduct::new(gl, cfg, n, x.data(), y.data()).unwrap();
            vec![dot.run(gl).unwrap()]
        });
        let tol = (n * n) as f32 * 3e-5 + 1e-3;
        assert!(
            (got[0] - want).abs() <= tol,
            "{}: {} vs {want}",
            platform.name,
            got[0]
        );
    }
}

#[test]
fn reduction_engines_agree_and_match_reference() {
    let n = 16u32;
    let m = random_matrix(n as usize, 109, 0.0, 1.0);
    let want = reduce_sum_ref(&m);
    for platform in Platform::paper_pair() {
        let got = run_variants(&platform, n, "reduce", |gl, cfg| {
            let mut reduce = Reduction::new(gl, cfg, n, m.data()).unwrap();
            vec![reduce.run(gl).unwrap()]
        });
        let tol = (n * n) as f32 * 2e-5 + 1e-3;
        assert!(
            (got[0] - want).abs() <= tol,
            "{}: {} vs {want}",
            platform.name,
            got[0]
        );
    }
}
