//! Tests of the generic multi-pass [`Pipeline`] API.

use mgpu_gles::Gl;
use mgpu_gpgpu::{Encoding, GpgpuError, OptConfig, Pipeline, Range, Source};
use mgpu_tbdr::Platform;
use mgpu_workloads::random_matrix;

fn enc() -> Encoding {
    Encoding::Fp32
}

fn scale_kernel(factor: f32) -> String {
    format!(
        "uniform sampler2D u_x;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float x = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(x * {factor:?});\n}}\n",
        enc().decode_fn_source(),
        enc().encode_fn_source()
    )
}

fn add_uniform_kernel() -> String {
    format!(
        "uniform sampler2D u_x;\nuniform float u_bias;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float x = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(x + u_bias);\n}}\n",
        enc().decode_fn_source(),
        enc().encode_fn_source()
    )
}

#[test]
fn chained_passes_compose_functionally() {
    let n = 8u32;
    let data = random_matrix(n as usize, 7, 0.0, 0.9);
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let mut p = Pipeline::builder(n)
        .input("x", data.data(), Range::unit())
        .pass(
            &scale_kernel(0.5),
            &[("u_x", Source::Input("x".into()))],
            &[],
        )
        .pass(&scale_kernel(0.5), &[("u_x", Source::Previous)], &[])
        .pass(&scale_kernel(2.0), &[("u_x", Source::Previous)], &[])
        .build(&mut gl, &OptConfig::baseline().without_swap())
        .unwrap();
    assert_eq!(p.passes(), 3);
    p.run_once(&mut gl).unwrap();
    let out = p.output(&mut gl, &Range::unit()).unwrap();
    for (o, x) in out.iter().zip(data.data()) {
        assert!((o - x * 0.5).abs() < 1e-4, "{o} vs {}", x * 0.5);
    }
}

#[test]
fn uniforms_update_between_runs() {
    let n = 4u32;
    let zeros = vec![0.0f32; 16];
    let mut gl = Gl::new(Platform::sgx_545(), n, n);
    let mut p = Pipeline::builder(n)
        .input("x", &zeros, Range::unit())
        .pass(
            &add_uniform_kernel(),
            &[("u_x", Source::Input("x".into()))],
            &[("u_bias", 0.25)],
        )
        .build(&mut gl, &OptConfig::baseline().without_swap())
        .unwrap();
    p.run_once(&mut gl).unwrap();
    assert!((p.output(&mut gl, &Range::unit()).unwrap()[0] - 0.25).abs() < 1e-4);

    p.set_uniform(&mut gl, 0, "u_bias", 0.75).unwrap();
    p.run_once(&mut gl).unwrap();
    assert!((p.output(&mut gl, &Range::unit()).unwrap()[0] - 0.75).abs() < 1e-4);

    // Error paths.
    assert!(matches!(
        p.set_uniform(&mut gl, 5, "u_bias", 0.0).unwrap_err(),
        GpgpuError::Config(_)
    ));
    assert!(p.set_uniform(&mut gl, 0, "ghost", 0.0).is_err());
}

#[test]
fn iterating_feeds_previous_output_back() {
    // One pass that halves Previous each run: after k runs from 0.8, the
    // value is 0.8 * 0.5^(k-1) (first run reads the input).
    let n = 4u32;
    let start = vec![0.8f32; 16];
    let halve_prev = format!(
        "uniform sampler2D u_x;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float x = unpack(texture2D(u_x, v_coord));\n  gl_FragColor = pack(x * 0.5);\n}}\n",
        enc().decode_fn_source(),
        enc().encode_fn_source()
    );
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    // First pass reads the input; on later runs we rebind it to Previous
    // by building a two-stage trick: use one pass bound to the input for
    // run 1 semantics is enough here — instead verify chaining *within*
    // a run using three Previous passes after a seed pass.
    let mut p = Pipeline::builder(n)
        .input("x", &start, Range::unit())
        .pass(&halve_prev, &[("u_x", Source::Input("x".into()))], &[])
        .pass(&halve_prev, &[("u_x", Source::Previous)], &[])
        .pass(&halve_prev, &[("u_x", Source::Previous)], &[])
        .build(&mut gl, &OptConfig::baseline().without_swap())
        .unwrap();
    p.run_once(&mut gl).unwrap();
    let out = p.output(&mut gl, &Range::unit()).unwrap();
    assert!((out[0] - 0.1).abs() < 1e-4, "{}", out[0]);
}

#[test]
fn build_errors_are_descriptive() {
    let n = 4u32;
    let data = vec![0.0f32; 16];
    let mut gl = Gl::new(Platform::sgx_545(), n, n);

    // Empty pipeline.
    let err = Pipeline::builder(n)
        .build(&mut gl, &OptConfig::baseline())
        .unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));

    // Unknown input name.
    let err = Pipeline::builder(n)
        .input("x", &data, Range::unit())
        .pass(
            &scale_kernel(1.0),
            &[("u_x", Source::Input("ghost".into()))],
            &[],
        )
        .build(&mut gl, &OptConfig::baseline())
        .unwrap_err();
    assert!(err.to_string().contains("ghost"), "{err}");

    // Wrong input size.
    let err = Pipeline::builder(n)
        .input("x", &data[..9], Range::unit())
        .pass(
            &scale_kernel(1.0),
            &[("u_x", Source::Input("x".into()))],
            &[],
        )
        .build(&mut gl, &OptConfig::baseline())
        .unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));

    // First pass reading Previous on the first run.
    let mut p = Pipeline::builder(n)
        .input("x", &data, Range::unit())
        .pass(&scale_kernel(1.0), &[("u_x", Source::Previous)], &[])
        .build(&mut gl, &OptConfig::baseline())
        .unwrap();
    assert!(matches!(
        p.run_once(&mut gl).unwrap_err(),
        GpgpuError::Config(_)
    ));
}

#[test]
fn pipeline_respects_shader_limits() {
    // A pass whose kernel exceeds the platform's fetch limit fails at
    // build time with a limit error.
    let n = 4u32;
    let data = vec![0.0f32; 16];
    let mut taps = String::new();
    for i in 0..64 {
        taps.push_str(&format!(
            "  acc += texture2D(u_x, vec2({:?}, v_coord.y)).x;\n",
            i as f32 / 64.0
        ));
    }
    let fat = format!(
        "uniform sampler2D u_x;\nvarying vec2 v_coord;\nvoid main() {{\n  float acc = 0.0;\n{taps}  gl_FragColor = vec4(acc);\n}}\n"
    );
    let mut gl = Gl::new(Platform::sgx_545(), n, n);
    let err = Pipeline::builder(n)
        .input("x", &data, Range::unit())
        .pass(&fat, &[("u_x", Source::Input("x".into()))], &[])
        .build(&mut gl, &OptConfig::baseline())
        .unwrap_err();
    assert!(err.is_shader_limit(), "{err}");
}

#[test]
fn pipeline_runs_under_framebuffer_rendering() {
    let n = 8u32;
    let data = random_matrix(n as usize, 17, 0.0, 0.9);
    let cfg = OptConfig::baseline()
        .with_swap_interval_0()
        .with_framebuffer_rendering();
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let mut p = Pipeline::builder(n)
        .input("x", data.data(), Range::unit())
        .pass(
            &scale_kernel(0.25),
            &[("u_x", Source::Input("x".into()))],
            &[],
        )
        .pass(&scale_kernel(2.0), &[("u_x", Source::Previous)], &[])
        .build(&mut gl, &cfg)
        .unwrap();
    p.run_once(&mut gl).unwrap();
    let out = p.output(&mut gl, &Range::unit()).unwrap();
    for (o, x) in out.iter().zip(data.data()) {
        assert!((o - x * 0.5).abs() < 1e-4);
    }
}

#[test]
fn pipeline_expresses_the_paper_fig2_sgemm() {
    // Rebuild the paper's §IV multi-pass sgemm on the *generic* Pipeline
    // API and check it agrees with the dedicated Sgemm operator.
    use mgpu_gpgpu::{kernels, Sgemm};
    use mgpu_workloads::max_abs_error;

    let n = 16u32;
    let block = 4u32;
    let a = random_matrix(n as usize, 61, 0.0, 1.0);
    let b = random_matrix(n as usize, 62, 0.0, 1.0);
    let range_in = Range::unit();
    let range_out = Range::new(0.0, n as f32);
    let cfg = OptConfig::baseline().without_swap();

    // Reference: the dedicated operator.
    let mut gl_ref = Gl::new(Platform::videocore_iv(), n, n);
    let mut sgemm = Sgemm::new(&mut gl_ref, &cfg, n, block, a.data(), b.data()).unwrap();
    sgemm.multiply(&mut gl_ref).unwrap();
    let want = sgemm.result(&mut gl_ref).unwrap();

    // Generic pipeline: one Fig. 2 pass, run once per block with blk_n
    // updated in between — the intermediate rides the seeded chain.
    let src = kernels::sgemm_kernel(enc(), n, block, &range_in, &range_out);
    let zeros = vec![0.0f32; (n * n) as usize];
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let mut p = Pipeline::builder(n)
        .input("a", a.data(), range_in)
        .input("b", b.data(), range_in)
        .seed(&zeros, range_out)
        .pass(
            &src,
            &[
                ("u_a", Source::Input("a".into())),
                ("u_b", Source::Input("b".into())),
                ("u_interm", Source::Previous),
            ],
            &[("blk_n", 0.0)],
        )
        .build(&mut gl, &cfg)
        .unwrap();
    for pass in 0..(n / block) {
        p.set_uniform(&mut gl, 0, "blk_n", (pass * block) as f32 / n as f32)
            .unwrap();
        p.run_once(&mut gl).unwrap();
    }
    let got = p.output(&mut gl, &range_out).unwrap();
    let err = max_abs_error(&got, &want);
    assert!(err < 1e-4, "pipeline vs dedicated operator: {err}");
}

#[test]
fn seeded_pipeline_first_pass_may_read_previous() {
    let n = 4u32;
    let seed = vec![0.5f32; 16];
    let halve = scale_kernel(0.5);
    let mut gl = Gl::new(Platform::sgx_545(), n, n);
    let mut p = Pipeline::builder(n)
        .seed(&seed, Range::unit())
        .pass(&halve, &[("u_x", Source::Previous)], &[])
        .build(&mut gl, &OptConfig::baseline().without_swap())
        .unwrap();
    p.run_once(&mut gl).unwrap();
    assert!((p.output(&mut gl, &Range::unit()).unwrap()[0] - 0.25).abs() < 1e-4);
    // A second run keeps halving.
    p.run_once(&mut gl).unwrap();
    assert!((p.output(&mut gl, &Range::unit()).unwrap()[0] - 0.125).abs() < 1e-4);
}

#[test]
fn retained_pass_outputs_reach_past_the_chain() {
    // Pass 0 scales x by 0.5 (retained), pass 1 scales that by 0.5, and
    // pass 2 averages Previous with Pass(0)'s retained output — a value
    // the double-buffered chain alone could no longer supply.
    let n = 4u32;
    let data = vec![0.8f32; 16];
    let avg = format!(
        "uniform sampler2D u_a;\nuniform sampler2D u_b;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float a = unpack(texture2D(u_a, v_coord));\n  float b = unpack(texture2D(u_b, v_coord));\n  gl_FragColor = pack((a + b) * 0.5);\n}}\n",
        enc().decode_fn_source(),
        enc().encode_fn_source()
    );
    for cfg in [
        OptConfig::baseline().without_swap(),
        OptConfig::baseline()
            .with_swap_interval_0()
            .with_framebuffer_rendering(),
    ] {
        let mut gl = Gl::new(Platform::videocore_iv(), n, n);
        let mut p = Pipeline::builder(n)
            .input("x", &data, Range::unit())
            .pass(
                &scale_kernel(0.5),
                &[("u_x", Source::Input("x".into()))],
                &[],
            )
            .pass(&scale_kernel(0.5), &[("u_x", Source::Previous)], &[])
            .pass(
                &avg,
                &[("u_a", Source::Previous), ("u_b", Source::Pass(0))],
                &[],
            )
            .build(&mut gl, &cfg)
            .unwrap();
        p.run_once(&mut gl).unwrap();
        let out = p.output(&mut gl, &Range::unit()).unwrap();
        // (0.8*0.25 + 0.8*0.5) / 2 = 0.3
        assert!((out[0] - 0.3).abs() < 1e-3, "{}", out[0]);
    }
}

#[test]
fn forward_or_self_pass_references_fail_at_build() {
    let n = 4u32;
    let data = vec![0.1f32; 16];
    let mut gl = Gl::new(Platform::sgx_545(), n, n);
    let err = Pipeline::builder(n)
        .input("x", &data, Range::unit())
        .pass(&scale_kernel(1.0), &[("u_x", Source::Pass(0))], &[])
        .build(&mut gl, &OptConfig::baseline())
        .unwrap_err();
    assert!(err.to_string().contains("earlier pass"), "{err}");
}

#[test]
fn repeats_reissue_the_whole_chain() {
    // One halving pass repeated 3 times == three explicit passes.
    let n = 4u32;
    let seed = vec![0.8f32; 16];
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let mut p = Pipeline::builder(n)
        .seed(&seed, Range::unit())
        .pass(&scale_kernel(0.5), &[("u_x", Source::Previous)], &[])
        .repeats(3)
        .build(&mut gl, &OptConfig::baseline().without_swap())
        .unwrap();
    assert_eq!(p.passes(), 3);
    p.run_once(&mut gl).unwrap();
    assert!((p.output(&mut gl, &Range::unit()).unwrap()[0] - 0.1).abs() < 1e-3);
}

#[test]
fn raw_rgba8_inputs_pass_through_untouched() {
    // An identity kernel over a raw RGBA8 image: output bytes == input
    // bytes (no encode/decode in the way).
    let n = 4u32;
    let bytes: Vec<u8> = (0..n * n * 4).map(|i| (i * 7 % 251) as u8).collect();
    let copy = "uniform sampler2D u_img;\nvarying vec2 v_coord;\n\
                void main() {\n  gl_FragColor = texture2D(u_img, v_coord);\n}\n";
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let mut p = Pipeline::builder(n)
        .input_raw("img", &bytes)
        .pass(copy, &[("u_img", Source::Input("img".into()))], &[])
        .build(&mut gl, &OptConfig::baseline().without_swap())
        .unwrap();
    p.run_once(&mut gl).unwrap();
    assert_eq!(p.output_bytes(&mut gl).unwrap(), bytes);

    // Wrong byte count errors at build.
    let mut gl2 = Gl::new(Platform::videocore_iv(), n, n);
    let err = Pipeline::builder(n)
        .input_raw("img", &bytes[..7])
        .pass(copy, &[("u_img", Source::Input("img".into()))], &[])
        .build(&mut gl2, &OptConfig::baseline())
        .unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));

    // Raw inputs demand the Fp32/RGBA8 chain format.
    let mut gl3 = Gl::new(Platform::videocore_iv(), n, n);
    let err = Pipeline::builder(n)
        .input_raw("img", &bytes)
        .pass(copy, &[("u_img", Source::Input("img".into()))], &[])
        .build(&mut gl3, &OptConfig::baseline().with_fp24())
        .unwrap_err();
    assert!(err.to_string().contains("Fp32"), "{err}");
}

#[test]
fn snapshot_roundtrips_retained_state() {
    // snapshot/restore must capture retained textures too: after
    // restoring into a *fresh* pipeline, re-running only the last pass
    // (which samples Pass(0)) reproduces the original bytes.
    let n = 4u32;
    let data = vec![0.6f32; 16];
    let avg = format!(
        "uniform sampler2D u_a;\nuniform sampler2D u_b;\nvarying vec2 v_coord;\n{}{}\
         void main() {{\n  float a = unpack(texture2D(u_a, v_coord));\n  float b = unpack(texture2D(u_b, v_coord));\n  gl_FragColor = pack((a + b) * 0.5);\n}}\n",
        enc().decode_fn_source(),
        enc().encode_fn_source()
    );
    let builder = || {
        Pipeline::builder(n)
            .input("x", &data, Range::unit())
            .pass(
                &scale_kernel(0.5),
                &[("u_x", Source::Input("x".into()))],
                &[],
            )
            .pass(&scale_kernel(0.5), &[("u_x", Source::Previous)], &[])
            .pass(
                &avg,
                &[("u_a", Source::Previous), ("u_b", Source::Pass(0))],
                &[],
            )
    };
    let cfg = OptConfig::baseline().without_swap();

    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let mut p = gl_build(&mut gl, builder(), &cfg);
    p.begin_run(&mut gl).unwrap();
    p.run_pass(&mut gl, 0, 1).unwrap();
    p.run_pass(&mut gl, 1, 1).unwrap();
    let snap = p.snapshot_bytes(&mut gl).unwrap();
    // 1 chain chunk + 1 retained chunk of n*n*4 bytes each.
    assert_eq!(snap.len(), 2 * (n * n * 4) as usize);
    p.run_pass(&mut gl, 2, 1).unwrap();
    let want = p.output_bytes(&mut gl).unwrap();

    let mut gl2 = Gl::new(Platform::videocore_iv(), n, n);
    let mut q = gl_build(&mut gl2, builder(), &cfg);
    q.restore_bytes(&mut gl2, &snap).unwrap();
    q.run_pass(&mut gl2, 2, 1).unwrap();
    assert_eq!(q.output_bytes(&mut gl2).unwrap(), want);

    // A truncated blob is rejected with a typed error.
    assert!(matches!(
        q.restore_bytes(&mut gl2, &snap[..snap.len() - 1])
            .unwrap_err(),
        GpgpuError::Config(_)
    ));
}

fn gl_build(gl: &mut Gl, b: mgpu_gpgpu::PipelineBuilder, cfg: &OptConfig) -> Pipeline {
    b.build(gl, cfg).unwrap()
}
