//! Functional correctness of the GPGPU operators against CPU references,
//! across the whole optimisation-configuration space — the paper's
//! implicit claim that every §II optimisation is semantics-preserving.

use mgpu_gles::{BufferUsage, Gl};
use mgpu_gpgpu::{Convolution3x3, Encoding, GpgpuError, OptConfig, Range, Saxpy, Sgemm, Sum};
use mgpu_tbdr::Platform;
use mgpu_workloads::{
    conv3x3_ref, max_abs_error, random_image_rgba8, random_matrix, saxpy_ref, sgemm_blocked_ref,
    sum_ref, Matrix,
};

/// All configuration points exercised by the correctness sweep.
fn config_space() -> Vec<(&'static str, OptConfig)> {
    vec![
        ("baseline", OptConfig::baseline()),
        ("interval0", OptConfig::baseline().with_swap_interval_0()),
        ("noswap", OptConfig::baseline().without_swap()),
        (
            "fb",
            OptConfig::baseline()
                .without_swap()
                .with_framebuffer_rendering(),
        ),
        (
            "fb+reuse",
            OptConfig::baseline()
                .without_swap()
                .with_framebuffer_rendering()
                .with_texture_reuse(),
        ),
        (
            "tex+reuse",
            OptConfig::baseline().without_swap().with_texture_reuse(),
        ),
        (
            "vbo",
            OptConfig::baseline()
                .without_swap()
                .with_vbo(BufferUsage::StaticDraw),
        ),
        ("fp24", OptConfig::baseline().without_swap().with_fp24()),
        (
            "no-invalidate",
            OptConfig::baseline().without_swap().without_invalidate(),
        ),
        (
            "no-mad",
            OptConfig::baseline().without_swap().without_mad_fusion(),
        ),
        (
            "everything",
            OptConfig::baseline()
                .without_swap()
                .with_framebuffer_rendering()
                .with_texture_reuse()
                .with_vbo(BufferUsage::StreamDraw)
                .with_fp24(),
        ),
    ]
}

fn tolerance(cfg: &OptConfig, range_span: f32) -> f32 {
    // Quantisation noise: one encode/decode round trip per pass plus f32
    // arithmetic noise in the shader pack/unpack.
    match cfg.encoding {
        Encoding::Fp32 => range_span * 3e-6,
        Encoding::Fp24 => range_span * 3.0 / (255.0 * 255.0 * 255.0) + range_span * 3e-6,
    }
}

#[test]
fn sum_matches_reference_across_config_space() {
    let n = 16usize;
    let a = random_matrix(n, 11, 0.0, 1.0);
    let b = random_matrix(n, 22, 0.0, 1.0);
    let want = sum_ref(&a, &b);
    for platform in Platform::paper_pair() {
        for (name, cfg) in config_space() {
            let mut gl = Gl::new(platform.clone(), n as u32, n as u32);
            let mut sum = Sum::builder(n as u32)
                .build(&mut gl, &cfg, a.data(), b.data())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            sum.step(&mut gl).unwrap();
            let got = sum.result(&mut gl).unwrap();
            let err = max_abs_error(&got, want.data());
            let tol = tolerance(&cfg, 2.0);
            assert!(
                err <= tol,
                "{} / {name}: max error {err} > {tol}",
                platform.name
            );
        }
    }
}

#[test]
fn dependent_sum_accumulates_b() {
    let n = 8usize;
    let a = random_matrix(n, 5, 0.0, 1.0);
    let b = random_matrix(n, 6, 0.0, 0.1);
    let iters = 4usize;
    for (name, cfg) in config_space() {
        let mut gl = Gl::new(Platform::videocore_iv(), n as u32, n as u32);
        let mut sum = Sum::builder(n as u32)
            .dependent(true)
            .range_out(Range::new(0.0, 2.0))
            .build(&mut gl, &cfg, a.data(), b.data())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        sum.run(&mut gl, iters).unwrap();
        let got = sum.result(&mut gl).unwrap();
        // out = A + iters * B
        let want: Vec<f32> = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| x + iters as f32 * y)
            .collect();
        let err = max_abs_error(&got, &want);
        // One quantisation per pass accumulates.
        let tol = tolerance(&cfg, 2.0) * (iters as f32 + 1.0);
        assert!(err <= tol, "{name}: max error {err} > {tol}");
    }
}

#[test]
fn sgemm_matches_blocked_reference_across_config_space() {
    let n = 16usize;
    let block = 4u32;
    let a = random_matrix(n, 31, 0.0, 1.0);
    let b = random_matrix(n, 32, 0.0, 1.0);
    let want = sgemm_blocked_ref(&a, &b, block as usize);
    for platform in Platform::paper_pair() {
        for (name, cfg) in config_space() {
            let mut gl = Gl::new(platform.clone(), n as u32, n as u32);
            let mut sgemm = Sgemm::new(&mut gl, &cfg, n as u32, block, a.data(), b.data())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            sgemm.multiply(&mut gl).unwrap();
            let got = sgemm.result(&mut gl).unwrap();
            let err = max_abs_error(&got, want.data());
            // Output range is [0, n); one re-encode per pass accumulates.
            let passes = (n as u32 / block) as f32;
            let tol = tolerance(&cfg, n as f32) * (passes + 1.0) + 1e-4;
            assert!(
                err <= tol,
                "{} / {name}: max error {err} > {tol}",
                platform.name
            );
        }
    }
}

#[test]
fn sgemm_all_legal_block_sizes_agree() {
    let n = 16usize;
    let a = random_matrix(n, 41, 0.0, 1.0);
    let b = random_matrix(n, 42, 0.0, 1.0);
    let cfg = OptConfig::baseline().without_swap();
    let mut results = Vec::new();
    for block in [1u32, 2, 4, 8, 16] {
        let mut gl = Gl::new(Platform::videocore_iv(), n as u32, n as u32);
        let mut sgemm = Sgemm::new(&mut gl, &cfg, n as u32, block, a.data(), b.data()).unwrap();
        assert_eq!(sgemm.passes(), n as u32 / block);
        sgemm.multiply(&mut gl).unwrap();
        results.push(sgemm.result(&mut gl).unwrap());
    }
    for pair in results.windows(2) {
        let err = max_abs_error(&pair[0], &pair[1]);
        assert!(err < 0.02, "block sizes disagree: {err}");
    }
}

#[test]
fn sgemm_block_32_exceeds_shader_limits_on_both_platforms() {
    // The paper: "we use a block size up to 16 since in both platforms
    // higher values lead to crashes and shader compilation failures".
    let n = 64usize;
    let a = random_matrix(n, 1, 0.0, 1.0);
    let b = random_matrix(n, 2, 0.0, 1.0);
    let cfg = OptConfig::baseline();
    for platform in Platform::paper_pair() {
        let mut gl = Gl::new(platform.clone(), n as u32, n as u32);
        for block in [1u32, 2, 4, 8, 16] {
            assert!(
                Sgemm::new(&mut gl, &cfg, n as u32, block, a.data(), b.data()).is_ok(),
                "{}: block {block} should compile",
                platform.name
            );
        }
        let err = Sgemm::new(&mut gl, &cfg, n as u32, 32, a.data(), b.data()).unwrap_err();
        assert!(
            err.is_shader_limit(),
            "{}: block 32 should exceed limits, got {err}",
            platform.name
        );
    }
}

#[test]
fn saxpy_matches_reference() {
    let n = 8usize;
    let x = random_matrix(n, 71, 0.0, 1.0);
    let y = random_matrix(n, 72, 0.0, 1.0);
    let alpha = 0.75f32;
    let want = saxpy_ref(alpha, &x, &y);
    let mut gl = Gl::new(Platform::sgx_545(), n as u32, n as u32);
    let cfg = OptConfig::baseline().without_swap();
    let mut op = Saxpy::new(
        &mut gl,
        &cfg,
        n as u32,
        alpha,
        x.data(),
        y.data(),
        Range::unit(),
        Range::new(0.0, 4.0),
    )
    .unwrap();
    op.step(&mut gl).unwrap();
    let got = op.result(&mut gl).unwrap();
    assert!(max_abs_error(&got, want.data()) < 4e-5);
}

#[test]
fn saxpy_iterates_as_a_linear_recurrence() {
    let n = 8usize;
    let x = Matrix::filled(n, 0.5);
    let y = Matrix::filled(n, 0.0);
    let alpha = 0.25f32;
    let mut gl = Gl::new(Platform::videocore_iv(), n as u32, n as u32);
    let cfg = OptConfig::baseline().without_swap();
    let mut op = Saxpy::new(
        &mut gl,
        &cfg,
        n as u32,
        alpha,
        x.data(),
        y.data(),
        Range::unit(),
        Range::new(0.0, 4.0),
    )
    .unwrap();
    for _ in 0..4 {
        op.step(&mut gl).unwrap();
    }
    let got = op.result(&mut gl).unwrap();
    // y_k = k * 0.125
    assert!((got[0] - 0.5).abs() < 1e-3, "{}", got[0]);
}

#[test]
fn convolution_matches_reference() {
    let (w, h) = (16u32, 16u32);
    let img = random_image_rgba8(w, h, 99);
    let blur = [
        0.0625, 0.125, 0.0625, //
        0.125, 0.25, 0.125, //
        0.0625, 0.125, 0.0625,
    ];
    let want = conv3x3_ref(&img, w, h, &blur);
    let mut gl = Gl::new(Platform::videocore_iv(), w, h);
    let cfg = OptConfig::baseline().without_swap();
    let mut conv = Convolution3x3::new(&mut gl, &cfg, w, h, &blur, &img).unwrap();
    conv.apply(&mut gl).unwrap();
    let got = conv.result(&mut gl).unwrap();
    assert_eq!(got.len(), want.len());
    let worst = got
        .iter()
        .zip(&want)
        .map(|(g, w)| (i16::from(*g) - i16::from(*w)).unsigned_abs())
        .max()
        .unwrap();
    // Sampling positions and rounding are identical; only float noise in
    // the weighted sum differs.
    assert!(worst <= 1, "worst channel difference {worst}");
}

#[test]
fn mismatched_sizes_are_config_errors() {
    let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
    let cfg = OptConfig::baseline();
    let err = Sum::builder(8)
        .build(&mut gl, &cfg, &[0.0; 64], &[0.0; 63])
        .unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));
    let err = Sgemm::new(&mut gl, &cfg, 8, 3, &[0.0; 64], &[0.0; 64]).unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));
}

#[test]
fn reduction_matches_cpu_sum() {
    use mgpu_gpgpu::Reduction;
    for n in [2u32, 4, 16, 32] {
        let m = random_matrix(n as usize, 77, 0.0, 1.0);
        let want: f32 = m.data().iter().sum();
        for platform in Platform::paper_pair() {
            let mut gl = Gl::new(platform.clone(), n, n);
            let cfg = OptConfig::baseline().without_swap();
            let mut reduce = Reduction::new(&mut gl, &cfg, n, m.data()).unwrap();
            assert_eq!(reduce.passes(), n.trailing_zeros());
            let got = reduce.run(&mut gl).unwrap();
            // Quantisation: one re-encode per level over a growing range.
            let tol = (n * n) as f32 * 2e-5 + 1e-3;
            assert!(
                (got - want).abs() <= tol,
                "{} n={n}: {got} vs {want}",
                platform.name
            );
        }
    }
}

#[test]
fn reduction_is_repeatable_with_reuse() {
    use mgpu_gpgpu::Reduction;
    let n = 16u32;
    let m = random_matrix(n as usize, 78, 0.0, 1.0);
    let want: f32 = m.data().iter().sum();
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let cfg = OptConfig::baseline().without_swap().with_texture_reuse();
    let mut reduce = Reduction::new(&mut gl, &cfg, n, m.data()).unwrap();
    let first = reduce.run(&mut gl).unwrap();
    let second = reduce.run(&mut gl).unwrap();
    assert_eq!(first, second, "re-running must be deterministic");
    assert!((first - want).abs() < 0.1);
}

#[test]
fn reduction_rejects_bad_configurations() {
    use mgpu_gpgpu::Reduction;
    let mut gl = Gl::new(Platform::sgx_545(), 8, 8);
    // Non-power-of-two size.
    let err = Reduction::new(&mut gl, &OptConfig::baseline(), 6, &[0.0; 36]).unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));
    // Framebuffer rendering cannot resize per level.
    let err = Reduction::new(
        &mut gl,
        &OptConfig::baseline().with_framebuffer_rendering(),
        8,
        &[0.0; 64],
    )
    .unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));
}

#[test]
fn dot_product_matches_cpu_inner_product() {
    use mgpu_gpgpu::DotProduct;
    for n in [4u32, 16, 32] {
        let x = random_matrix(n as usize, 81, 0.0, 1.0);
        let y = random_matrix(n as usize, 82, 0.0, 1.0);
        let want: f32 = x.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut gl = Gl::new(Platform::sgx_545(), n, n);
        let cfg = OptConfig::baseline().without_swap();
        let mut dot = DotProduct::new(&mut gl, &cfg, n, x.data(), y.data()).unwrap();
        assert_eq!(dot.passes(), 1 + n.trailing_zeros());
        let got = dot.run(&mut gl).unwrap();
        let tol = (n * n) as f32 * 3e-5 + 1e-3;
        assert!((got - want).abs() <= tol, "n={n}: {got} vs {want}");
    }
}

#[test]
fn dot_product_runs_repeatedly_under_reuse() {
    use mgpu_gpgpu::DotProduct;
    let n = 8u32;
    let x = random_matrix(n as usize, 83, 0.0, 1.0);
    let y = random_matrix(n as usize, 84, 0.0, 1.0);
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let cfg = OptConfig::baseline().without_swap().with_texture_reuse();
    let mut dot = DotProduct::new(&mut gl, &cfg, n, x.data(), y.data()).unwrap();
    let a = dot.run(&mut gl).unwrap();
    let b = dot.run(&mut gl).unwrap();
    assert_eq!(a, b);
}

#[test]
fn jacobi_matches_cpu_reference_step_by_step() {
    use mgpu_gpgpu::JacobiSolver;
    use mgpu_workloads::jacobi_step_ref;
    let n = 16usize;
    let u0 = random_matrix(n, 91, 0.0, 0.5);
    let f = random_matrix(n, 92, 0.0, 0.2);
    let omega = 0.8f32;

    // CPU reference: 5 iterations.
    let mut want = u0.clone();
    for _ in 0..5 {
        want = jacobi_step_ref(&want, &f, omega);
    }

    for platform in Platform::paper_pair() {
        let mut gl = Gl::new(platform.clone(), n as u32, n as u32);
        let cfg = OptConfig::baseline().without_swap();
        let mut solver = JacobiSolver::builder(n as u32)
            .omega(omega)
            .build(&mut gl, &cfg, u0.data(), f.data())
            .unwrap();
        solver.iterate(&mut gl, 5).unwrap();
        let got = solver.solution(&mut gl).unwrap();
        // One re-encode per iteration accumulates quantisation.
        let err = max_abs_error(&got, want.data());
        assert!(err < 6.0 * 3e-6 + 1e-4, "{}: err {err}", platform.name);
    }
}

#[test]
fn jacobi_converges_toward_laplace_equilibrium() {
    use mgpu_gpgpu::JacobiSolver;
    // No source, uniform initial value: already at equilibrium with
    // zero-flux boundaries — iterations must not drift.
    let n = 8u32;
    let u0 = vec![0.5f32; 64];
    let f = vec![0.0f32; 64];
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    let cfg = OptConfig::baseline().without_swap();
    let mut solver = JacobiSolver::builder(n)
        .build(&mut gl, &cfg, &u0, &f)
        .unwrap();
    solver.iterate(&mut gl, 20).unwrap();
    let u = solver.solution(&mut gl).unwrap();
    for v in &u {
        assert!((v - 0.5).abs() < 5e-4, "drifted to {v}");
    }
}

#[test]
fn jacobi_works_under_framebuffer_rendering_too() {
    use mgpu_gpgpu::JacobiSolver;
    use mgpu_workloads::jacobi_step_ref;
    let n = 8usize;
    let u0 = random_matrix(n, 93, 0.0, 0.5);
    let f = random_matrix(n, 94, 0.0, 0.1);
    let want = jacobi_step_ref(&jacobi_step_ref(&u0, &f, 1.0), &f, 1.0);

    let mut gl = Gl::new(Platform::sgx_545(), n as u32, n as u32);
    let cfg = OptConfig::baseline()
        .with_swap_interval_0()
        .with_framebuffer_rendering();
    let mut solver = JacobiSolver::builder(n as u32)
        .build(&mut gl, &cfg, u0.data(), f.data())
        .unwrap();
    solver.iterate(&mut gl, 2).unwrap();
    let got = solver.solution(&mut gl).unwrap();
    assert!(max_abs_error(&got, want.data()) < 1e-4);
}

#[test]
fn jacobi_rejects_bad_omega() {
    use mgpu_gpgpu::JacobiSolver;
    let mut gl = Gl::new(Platform::sgx_545(), 4, 4);
    let err = JacobiSolver::builder(4)
        .omega(1.5)
        .build(&mut gl, &OptConfig::baseline(), &[0.0; 16], &[0.0; 16])
        .unwrap_err();
    assert!(matches!(err, GpgpuError::Config(_)));
}

#[test]
fn transpose_matches_reference_and_involutes() {
    use mgpu_gpgpu::Transpose;
    let n = 16usize;
    let m = random_matrix(n, 95, 0.0, 1.0);
    let mut gl = Gl::new(Platform::sgx_545(), n as u32, n as u32);
    let cfg = OptConfig::baseline().without_swap();
    let mut t = Transpose::new(&mut gl, &cfg, n as u32, m.data()).unwrap();
    t.apply(&mut gl).unwrap();
    let got = t.result(&mut gl, &Range::unit()).unwrap();
    for i in 0..n {
        for j in 0..n {
            let want = m.get(j, i);
            let v = got[i * n + j];
            assert!((v - want).abs() < 1e-5, "({i},{j}): {v} vs {want}");
        }
    }
    // Transposing again restores the original exactly (pure byte moves).
    t.apply(&mut gl).unwrap();
    let back = t.result(&mut gl, &Range::unit()).unwrap();
    assert!(max_abs_error(&back, m.data()) < 1e-5);
}

#[test]
fn transpose_fetches_are_dependent() {
    // The swapped coordinate is constructed in-shader: the cost model must
    // classify the gather as dependent (the expensive strided pattern).
    use mgpu_gpgpu::kernels::transpose_kernel;
    use mgpu_shader::{compile, cost};
    let sh = compile(&transpose_kernel()).unwrap();
    let c = cost::analyze(&sh);
    assert_eq!(c.dependent_fetches(), 1);
    assert_eq!(c.streaming_fetches(), 0);
}
