//! Regenerates the paper's Fig. 4b (blocking in sgemm).

use mgpu_bench::experiments::fig4b;
use mgpu_bench::setup::Protocol;
use mgpu_bench::table;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    println!("Fig. 4b — blocking in sgemm (time per 1024x1024 multiplication)");
    println!("paper: performance increases with block size on both platforms;");
    println!("       SGX FB catches texture once the kernel outlasts the copy (block >= 4-8);");
    println!("       VideoCore FB always ahead (DMA); block 32 fails shader compilation\n");

    for platform in Platform::paper_pair() {
        let r = fig4b::run(&platform, &protocol).expect("fig4b experiment");
        let rows: Vec<Vec<String>> = r
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("block {}", p.block),
                    p.texture.to_string(),
                    p.framebuffer.to_string(),
                    format!(
                        "{:.2}",
                        p.framebuffer.as_secs_f64() / p.texture.as_secs_f64()
                    ),
                ]
            })
            .collect();
        println!("{}:", r.platform);
        println!(
            "{}",
            table::render(&["block size", "texture", "framebuffer", "FB/tex"], &rows)
        );
        println!("block 32: {}\n", r.block32_error);
    }
}
