//! Per-draw overhead harness: cold scope-spawn dispatch vs the persistent
//! worker pool vs warm draw-plan caching, on multi-pass blocked sgemm.
//!
//! A block-16 sgemm issues `n / 16` draws per multiply, each repeating the
//! same setup — uniform specialisation, interpolation hoisting, engine
//! register allocation, thread spawn and join. This harness isolates that
//! overhead by timing whole multiplies in three dispatcher modes:
//!
//! * `cold_scope`   — `MGPU_POOL=off` semantics: per-draw `thread::scope`
//!   spawning, round-robin chunk dealing, no plan reuse (the pre-pool
//!   driver);
//! * `pool_nocache` — persistent pool with work-stealing, plan cache off:
//!   plans are rebuilt every draw (allocations recycled);
//! * `warm_cached`  — pool plus the draw-plan cache: after the first
//!   multiply primes one plan per `blk_n` value, every draw runs warm.
//!
//! Every mode's product matrix must be byte-identical and its simulated
//! [`SimTime`] bitwise unchanged — both are asserted on every run, so the
//! harness doubles as a determinism check for the dispatcher matrix.
//!
//! Overhead scales with *draw count over fragment work*: at small `n` the
//! per-draw setup dominates and the pooled/cached paths win big; at
//! `n = 1024` a draw shades a megapixel and fragment arithmetic swamps
//! setup, so the headline speedup necessarily shrinks. Both regimes are
//! reported honestly; EXPERIMENTS.md tabulates them.
//!
//! Usage: `draw_overhead [n] [threads] [reps]` (defaults 128, 4, 5), or
//! `draw_overhead --gate` for the CI smoke configuration: asserts that
//! warm-plan multiplies beat cold scope-spawn multiplies at 4 threads and
//! that single-thread pooled execution does not regress beyond 25% on the
//! same workload.

use std::time::{Duration, Instant};

use mgpu_bench::harness::{emit_bench_json, Stats};
use mgpu_gles::{ExecConfig, Gl};
use mgpu_gpgpu::{OptConfig, Sgemm};
use mgpu_tbdr::{Platform, SimTime};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    ColdScope,
    PoolNoCache,
    WarmCached,
}

impl Mode {
    fn id(self) -> &'static str {
        match self {
            Mode::ColdScope => "cold_scope",
            Mode::PoolNoCache => "pool_nocache",
            Mode::WarmCached => "warm_cached",
        }
    }
}

struct Measurement {
    /// First multiply: plans cold in every mode.
    first: Duration,
    /// Steady-state multiplies (second onwards).
    steady: Stats,
    result_bits: Vec<u32>,
    sim: SimTime,
    cache_hits: u64,
}

fn run_mode(mode: Mode, n: u32, threads: usize, reps: usize, a: &[f32], b: &[f32]) -> Measurement {
    let block = 16;
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    gl.set_exec_config(ExecConfig::with_threads(threads).with_pool(mode != Mode::ColdScope));
    gl.set_plan_cache_enabled(mode == Mode::WarmCached);
    let cfg = OptConfig::baseline().with_swap_interval_0();
    let mut sgemm = Sgemm::new(&mut gl, &cfg, n, block, a, b).expect("sgemm builds");

    let start = Instant::now();
    sgemm.multiply(&mut gl).expect("first multiply");
    let first = start.elapsed();

    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        sgemm.multiply(&mut gl).expect("steady multiply");
        samples.push(start.elapsed());
    }

    let result_bits = sgemm
        .result(&mut gl)
        .expect("result")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Measurement {
        first,
        steady: Stats::from_samples(&samples),
        result_bits,
        sim: gl.elapsed(),
        cache_hits: gl.plan_cache_stats().hits,
    }
}

fn report(group: &str, mode: Mode, m: &Measurement) {
    emit_bench_json(
        group,
        &format!("{}/first", mode.id()),
        &Stats::from_samples(&[m.first]),
    );
    emit_bench_json(group, &format!("{}/steady", mode.id()), &m.steady);
}

/// Runs the three modes on one (n, threads) point, asserting byte-identity
/// and simulated-time invariance across the whole dispatcher matrix.
fn run_point(n: u32, threads: usize, reps: usize, a: &[f32], b: &[f32]) -> [Measurement; 3] {
    let group = format!("draw_overhead/n={n}/threads={threads}");
    let cold = run_mode(Mode::ColdScope, n, threads, reps, a, b);
    report(&group, Mode::ColdScope, &cold);
    let pooled = run_mode(Mode::PoolNoCache, n, threads, reps, a, b);
    report(&group, Mode::PoolNoCache, &pooled);
    let warm = run_mode(Mode::WarmCached, n, threads, reps, a, b);
    report(&group, Mode::WarmCached, &warm);

    for (m, what) in [(&pooled, "pool_nocache"), (&warm, "warm_cached")] {
        assert_eq!(
            m.result_bits, cold.result_bits,
            "{what} output diverged from cold_scope at n={n} threads={threads}"
        );
        assert_eq!(
            m.sim, cold.sim,
            "{what} changed simulated time at n={n} threads={threads}"
        );
    }
    assert!(
        warm.cache_hits > 0,
        "warm_cached mode recorded no plan-cache hits"
    );
    println!(
        "  steady speedup vs cold_scope: pool_nocache {:.2}x, warm_cached {:.2}x\n",
        cold.steady.mean.as_secs_f64() / pooled.steady.mean.as_secs_f64().max(1e-12),
        cold.steady.mean.as_secs_f64() / warm.steady.mean.as_secs_f64().max(1e-12),
    );
    [cold, pooled, warm]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let nums: Vec<usize> = args.iter().filter_map(|s| s.parse().ok()).collect();
    let n = *nums.first().unwrap_or(&128) as u32;
    let threads = *nums.get(1).unwrap_or(&4);
    let reps = *nums.get(2).unwrap_or(&5);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    println!(
        "sgemm block 16, {n}x{n} ({} draws per multiply), {reps} steady reps",
        n / 16
    );
    println!("host parallelism: {cores} core(s)\n");

    let len = (n * n) as usize;
    let a: Vec<f32> = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b: Vec<f32> = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();

    let [cold, _pooled, warm] = run_point(n, threads, reps, &a, &b);

    // Single-thread sanity: the pooled path must not tax serial users.
    let [cold1, _pooled1, warm1] = run_point(n, 1, reps, &a, &b);

    if gate {
        let speedup = cold.steady.mean.as_secs_f64() / warm.steady.mean.as_secs_f64().max(1e-12);
        assert!(
            warm.steady.mean < cold.steady.mean,
            "GATE FAILED: warm-plan multiplies ({:?}) not faster than cold scope-spawn ({:?}) \
             at n={n} threads={threads}",
            warm.steady.mean,
            cold.steady.mean,
        );
        let serial_ratio =
            warm1.steady.mean.as_secs_f64() / cold1.steady.mean.as_secs_f64().max(1e-12);
        assert!(
            serial_ratio < 1.25,
            "GATE FAILED: pooled path regressed single-thread multiplies by {serial_ratio:.2}x"
        );
        println!(
            "GATE OK: warm_cached {speedup:.2}x vs cold_scope at {threads} threads; \
             threads=1 ratio {serial_ratio:.2}x"
        );
    }
}
