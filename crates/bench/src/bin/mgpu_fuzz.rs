//! Differential conformance fuzzer.
//!
//! Generates random shader programs and draw scripts from a seed, sweeps
//! each one across the full execution-configuration lattice on both paper
//! platforms, and holds every point to the serial scalar baseline — byte
//! identity on transcripts, equality on simulated-timing reports. Every
//! fourth case additionally runs under a random recoverable fault plan
//! and must recover to byte-identical output.
//!
//! On divergence the case is shrunk (script steps, AST nodes, then the
//! execution configuration) and written as a replayable `.case` file; the
//! process exits non-zero.
//!
//! ```text
//! mgpu-fuzz [--seed N] [--budget N|Ns] [--out DIR]
//! mgpu-fuzz --dump-corpus DIR --count N [--seed N]
//! ```
//!
//! `--budget 200` runs 200 cases; `--budget 60s` runs for 60 seconds.
//! `--dump-corpus` writes a golden corpus of verified-clean cases (every
//! third with a fault plan attached) instead of fuzzing.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use mgpu_conformance::{
    check_case, check_fault_recovery, format_case, lattice, random_recovery_plan, run_case,
    shrink_case, shrink_point, CaseFile, ExecPoint,
};
use mgpu_gles::FaultPlan;
use mgpu_prop::shadergen::{gen_case, ConfCase};
use mgpu_prop::Rng;
use mgpu_tbdr::Platform;

/// Predicate evaluations granted to the shrinker per divergence.
const SHRINK_BUDGET: usize = 400;

enum Budget {
    Cases(u64),
    Time(Duration),
}

struct Options {
    seed: u64,
    budget: Budget,
    out: PathBuf,
    dump_corpus: Option<(PathBuf, u64)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mgpu-fuzz [--seed N] [--budget N|Ns] [--out DIR]\n\
         \x20      mgpu-fuzz --dump-corpus DIR --count N [--seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut seed = 1u64;
    let mut budget = Budget::Cases(200);
    let mut out = PathBuf::from(".");
    let mut corpus_dir: Option<PathBuf> = None;
    let mut count = 12u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                usage();
            })
        };
        match arg.as_str() {
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| usage());
            }
            "--budget" => {
                let text = value("--budget");
                budget = match text.strip_suffix('s') {
                    Some(secs) => Budget::Time(Duration::from_secs_f64(
                        secs.parse().unwrap_or_else(|_| usage()),
                    )),
                    None => Budget::Cases(text.parse().unwrap_or_else(|_| usage())),
                };
            }
            "--out" => out = PathBuf::from(value("--out")),
            "--dump-corpus" => corpus_dir = Some(PathBuf::from(value("--dump-corpus"))),
            "--count" => count = value("--count").parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    Options {
        seed,
        budget,
        out,
        dump_corpus: corpus_dir.map(|dir| (dir, count)),
    }
}

/// Per-case RNG derived from the run seed; independent of how many cases
/// ran before it, so any failure is replayable from (seed, index) alone.
fn rng_for(seed: u64, index: u64) -> Rng {
    Rng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn write_case(path: &PathBuf, file: &CaseFile) {
    if let Err(e) = std::fs::write(path, format_case(file)) {
        eprintln!("failed to write {}: {e}", path.display());
    } else {
        println!("  wrote {}", path.display());
    }
}

/// Shrinks and records a lattice divergence.
fn handle_config_divergence(opts: &Options, index: u64, case: &ConfCase, point_text: &str) {
    let shrunk = shrink_case(
        case,
        |candidate| check_case(candidate).is_some(),
        SHRINK_BUDGET,
    );
    let point = ExecPoint::parse(point_text).ok().map(|point| {
        shrink_point(point, |&candidate| {
            let platform = Platform::videocore_iv();
            let base = run_case(&shrunk, &platform, ExecPoint::baseline(), None, false);
            let got = run_case(&shrunk, &platform, candidate, None, false);
            base.transcript != got.transcript || base.report != got.report
        })
    });
    let file = CaseFile {
        case: shrunk,
        faults: None,
        recover: false,
        point,
    };
    write_case(
        &opts.out.join(format!("fuzz-{}-{index}.case", opts.seed)),
        &file,
    );
}

/// Shrinks and records a fault-recovery divergence.
fn handle_fault_divergence(opts: &Options, index: u64, case: &ConfCase, plan: &FaultPlan) {
    let shrunk = shrink_case(
        case,
        |candidate| check_fault_recovery(candidate, plan).is_some(),
        SHRINK_BUDGET,
    );
    let file = CaseFile {
        case: shrunk,
        faults: Some(plan.clone()),
        recover: true,
        point: None,
    };
    write_case(
        &opts.out.join(format!("fuzz-{}-{index}.case", opts.seed)),
        &file,
    );
}

fn dump_corpus(opts: &Options, dir: &PathBuf, count: u64) -> i32 {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return 1;
    }
    let mut written = 0u64;
    let mut index = 0u64;
    while written < count {
        let mut rng = rng_for(opts.seed, index);
        index += 1;
        let case = gen_case(&mut rng);
        let faults = (written % 3 == 2).then(|| random_recovery_plan(&mut rng));
        // Only verified-clean cases become goldens.
        let clean = match &faults {
            None => check_case(&case).is_none(),
            Some(plan) => check_fault_recovery(&case, plan).is_none(),
        };
        if !clean {
            eprintln!("skipping divergent candidate {index} (investigate separately)");
            continue;
        }
        let file = CaseFile {
            case,
            recover: faults.is_some(),
            faults,
            point: None,
        };
        write_case(&dir.join(format!("corpus-{written:03}.case")), &file);
        written += 1;
    }
    println!("corpus: {written} cases in {}", dir.display());
    0
}

fn main() {
    let opts = parse_args();
    if let Some((dir, count)) = &opts.dump_corpus {
        std::process::exit(dump_corpus(&opts, dir, *count));
    }

    println!(
        "mgpu-fuzz: seed {}, lattice of {} points x 2 platforms",
        opts.seed,
        lattice().len()
    );
    let start = Instant::now();
    let mut cases = 0u64;
    let mut fault_checks = 0u64;
    let mut divergences = 0u64;
    loop {
        match opts.budget {
            Budget::Cases(n) if cases >= n => break,
            Budget::Time(limit) if start.elapsed() >= limit => break,
            _ => {}
        }
        let mut rng = rng_for(opts.seed, cases);
        let case = gen_case(&mut rng);
        if let Some(divergence) = check_case(&case) {
            divergences += 1;
            println!("case {cases}: DIVERGENCE {divergence}");
            handle_config_divergence(&opts, cases, &case, &divergence.point);
        } else if cases % 4 == 3 {
            let plan = random_recovery_plan(&mut rng);
            fault_checks += 1;
            if let Some(divergence) = check_fault_recovery(&case, &plan) {
                divergences += 1;
                println!("case {cases}: FAULT DIVERGENCE {divergence} (plan `{plan}`)");
                handle_fault_divergence(&opts, cases, &case, &plan);
            }
        }
        cases += 1;
        if cases.is_multiple_of(50) {
            println!(
                "  {cases} cases ({fault_checks} with faults), {divergences} divergences, {:.1}s",
                start.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "done: {cases} cases ({fault_checks} with faults), {divergences} divergences in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    if divergences > 0 {
        std::process::exit(1);
    }
}
