//! Exports a Chrome trace (`chrome://tracing` / Perfetto) of a short
//! sgemm run on each platform, under both render-target strategies.
//!
//! Writes `target/mgpu-traces/<platform>-<target>.json`.

use std::fs;

use mgpu_bench::setup::{best_config, paper_matrices};
use mgpu_gles::Gl;
use mgpu_gpgpu::{RenderStrategy, Sgemm};
use mgpu_tbdr::{chrome_trace, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/mgpu-traces");
    fs::create_dir_all(out_dir)?;

    let n = 256u32;
    let (a, b) = paper_matrices(n);
    for platform in Platform::paper_pair() {
        for target in [RenderStrategy::Texture, RenderStrategy::Framebuffer] {
            let mut gl = Gl::new(platform.clone(), n, n);
            gl.set_functional(false);
            let cfg = best_config(target);
            let mut sgemm = Sgemm::new(&mut gl, &cfg, n, 16, a.data(), b.data())?;
            for _ in 0..3 {
                sgemm.multiply(&mut gl)?;
            }
            gl.finish();
            let json = chrome_trace(&gl.report());
            let name = format!(
                "{}-{:?}.json",
                platform.name.replace(' ', "_").to_lowercase(),
                target
            );
            let path = out_dir.join(name);
            fs::write(&path, json)?;
            println!("wrote {}", path.display());
        }
    }
    println!("open chrome://tracing and load a file to see the pipeline");
    Ok(())
}
