//! Regenerates the paper's Fig. 5b (texture reuse, framebuffer rendering).

use mgpu_bench::experiments::fig5;
use mgpu_bench::setup::Protocol;
use mgpu_bench::table;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    println!("Fig. 5b — texture-memory reuse speedup under framebuffer rendering (block 16)");
    println!("paper: no improvement on either platform; SGX sgemm drops to ~0.70");
    println!("       (copy-destination false sharing without DMA assistance)\n");

    let mut rows = Vec::new();
    for platform in Platform::paper_pair() {
        let r = fig5::run(&platform, &protocol).expect("fig5 experiment");
        rows.push(vec![
            r.platform.clone(),
            table::speedup_cell(r.sum_framebuffer),
            table::speedup_cell(r.sgemm_framebuffer),
        ]);
    }
    println!(
        "{}",
        table::render(&["platform", "sum", "sgemm b16"], &rows)
    );
}
