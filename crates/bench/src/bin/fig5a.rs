//! Regenerates the paper's Fig. 5a (texture reuse, texture rendering).

use mgpu_bench::experiments::fig5;
use mgpu_bench::setup::Protocol;
use mgpu_bench::table;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    println!("Fig. 5a — texture-memory reuse speedup under texture rendering (block 16)");
    println!("paper: beneficial mainly for input textures — VideoCore sum ~+15%;");
    println!("       on the SGX reuse causes a small 2-7% degradation\n");

    let mut rows = Vec::new();
    for platform in Platform::paper_pair() {
        let r = fig5::run(&platform, &protocol).expect("fig5 experiment");
        rows.push(vec![
            r.platform.clone(),
            table::speedup_cell(r.sum_texture),
            table::speedup_cell(r.sgemm_texture),
        ]);
    }
    println!(
        "{}",
        table::render(&["platform", "sum (streaming inputs)", "sgemm b16"], &rows)
    );
}
