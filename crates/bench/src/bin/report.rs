//! Emits the paper-vs-measured tables of EXPERIMENTS.md in markdown, so
//! the document can be regenerated mechanically after recalibration:
//!
//! ```sh
//! cargo run -p mgpu-bench --release --bin report > measured.md
//! ```

use mgpu_bench::experiments::{fig3, fig4a, fig4b, fig5, vbo};
use mgpu_bench::setup::Protocol;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    let [sgx, vc] = Platform::paper_pair();

    println!("## Fig. 3 — effect of vsync (speedup over baseline)\n");
    println!("| benchmark | config | paper | measured |");
    println!("|---|---|---:|---:|");
    let f3_sgx = fig3::run(&sgx, &protocol).expect("fig3 sgx");
    let f3_vc = fig3::run(&vc, &protocol).expect("fig3 vc");
    let rows: [(&str, f64, f64); 12] = [
        ("SGX sum | `eglSwapInterval(0)`", 1.00, f3_sgx.sum.interval0),
        ("SGX sum | no `eglSwapBuffers`", 3.47, f3_sgx.sum.no_swap),
        ("SGX sum | no swap + fp24", 3.85, f3_sgx.sum.no_swap_fp24),
        (
            "VideoCore sum | `eglSwapInterval(0)`",
            9.22,
            f3_vc.sum.interval0,
        ),
        (
            "VideoCore sum | no `eglSwapBuffers`",
            16.11,
            f3_vc.sum.no_swap,
        ),
        (
            "VideoCore sum | no swap + fp24",
            16.28,
            f3_vc.sum.no_swap_fp24,
        ),
        (
            "SGX sgemm | `eglSwapInterval(0)`",
            1.00,
            f3_sgx.sgemm.interval0,
        ),
        (
            "SGX sgemm | no `eglSwapBuffers`",
            1.00,
            f3_sgx.sgemm.no_swap,
        ),
        (
            "SGX sgemm | no swap + fp24",
            1.13,
            f3_sgx.sgemm.no_swap_fp24,
        ),
        (
            "VideoCore sgemm | `eglSwapInterval(0)`",
            1.24,
            f3_vc.sgemm.interval0,
        ),
        (
            "VideoCore sgemm | no `eglSwapBuffers`",
            1.24,
            f3_vc.sgemm.no_swap,
        ),
        (
            "VideoCore sgemm | no swap + fp24",
            1.48,
            f3_vc.sgemm.no_swap_fp24,
        ),
    ];
    for (label, paper, measured) in rows {
        println!("| {label} | {paper:.2} | **{measured:.2}** |");
    }

    println!("\n## Fig. 4a — framebuffer vs. texture rendering\n");
    println!("| benchmark | winner | factor |");
    println!("|---|---|---:|");
    for platform in [&sgx, &vc] {
        let r = fig4a::run(platform, &protocol).expect("fig4a");
        for (name, pair) in [
            ("sum", &r.sum),
            ("sum + artificial deps", &r.sum_dependent),
            ("sgemm b16", &r.sgemm),
        ] {
            let adv = pair.texture_advantage();
            let (winner, factor) = if adv >= 1.0 {
                ("texture", adv)
            } else {
                ("framebuffer", 1.0 / adv)
            };
            println!("| {} {name} | {winner} | **{factor:.3}×** |", r.platform);
        }
    }

    println!("\n## Fig. 4b — blocking in sgemm (time per multiplication)\n");
    for platform in [&sgx, &vc] {
        let r = fig4b::run(platform, &protocol).expect("fig4b");
        println!("{}:\n", r.platform);
        println!("| block | texture | framebuffer | FB/tex |");
        println!("|---:|---:|---:|---:|");
        for p in &r.points {
            println!(
                "| {} | {} | {} | **{:.2}** |",
                p.block,
                p.texture,
                p.framebuffer,
                p.framebuffer.as_secs_f64() / p.texture.as_secs_f64()
            );
        }
        println!("\nblock 32: {}\n", r.block32_error);
    }

    println!("## Fig. 5 — texture reuse (speedup of reuse over fresh, block 16)\n");
    println!("| experiment | paper | measured |");
    println!("|---|---:|---:|");
    let f5_sgx = fig5::run(&sgx, &protocol).expect("fig5 sgx");
    let f5_vc = fig5::run(&vc, &protocol).expect("fig5 vc");
    for (label, paper, measured) in [
        (
            "5a texture rendering, VideoCore sum (streaming inputs)",
            "≈ 1.15",
            f5_vc.sum_texture,
        ),
        (
            "5a texture rendering, SGX sum",
            "0.93–0.98",
            f5_sgx.sum_texture,
        ),
        (
            "5a texture rendering, SGX sgemm",
            "0.93–0.98",
            f5_sgx.sgemm_texture,
        ),
        (
            "5a texture rendering, VideoCore sgemm",
            "≈ 1",
            f5_vc.sgemm_texture,
        ),
        (
            "5b framebuffer rendering, SGX sum",
            "≈ 1.00",
            f5_sgx.sum_framebuffer,
        ),
        (
            "5b framebuffer rendering, VideoCore sum",
            "≈ 1.00",
            f5_vc.sum_framebuffer,
        ),
        (
            "5b framebuffer rendering, SGX sgemm",
            "≈ 0.70",
            f5_sgx.sgemm_framebuffer,
        ),
        (
            "5b framebuffer rendering, VideoCore sgemm",
            "≈ 1.00",
            f5_vc.sgemm_framebuffer,
        ),
    ] {
        println!("| {label} | {paper} | **{measured:.2}** |");
    }

    println!("\n## §V-B text — VBOs and memory hints (speedup over client arrays)\n");
    println!("| platform | STATIC_DRAW | DYNAMIC_DRAW | STREAM_DRAW |");
    println!("|---|---:|---:|---:|");
    for platform in [&sgx, &vc] {
        let r = vbo::run(platform, &protocol).expect("vbo");
        println!(
            "| {} | {:+.2}% | {:+.2}% | {:+.2}% |",
            r.platform,
            (r.static_draw - 1.0) * 100.0,
            (r.dynamic_draw - 1.0) * 100.0,
            (r.stream_draw - 1.0) * 100.0
        );
    }
}
