//! Regenerates the paper's Fig. 4a (framebuffer vs texture rendering).

use mgpu_bench::experiments::fig4a;
use mgpu_bench::setup::Protocol;
use mgpu_bench::table;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    println!("Fig. 4a — FB vs texture rendering (optimised versions)");
    println!("paper: SGX sum: texture ~2237x faster; VideoCore sum: ~1 order of magnitude;");
    println!("       sgemm: FB wins on both; dependent sum: texture on SGX, FB on VideoCore\n");

    let mut rows = Vec::new();
    for platform in Platform::paper_pair() {
        let r = fig4a::run(&platform, &protocol).expect("fig4a experiment");
        for (bench, pair) in [
            ("sum", &r.sum),
            ("sum+deps", &r.sum_dependent),
            ("sgemm b16", &r.sgemm),
        ] {
            let adv = pair.texture_advantage();
            rows.push(vec![
                format!("{} {}", r.platform, bench),
                pair.texture.to_string(),
                pair.framebuffer.to_string(),
                if adv >= 1.0 {
                    format!("texture {adv:.3}x")
                } else {
                    format!("framebuffer {:.3}x", 1.0 / adv)
                },
            ]);
        }
    }
    println!(
        "{}",
        table::render(&["benchmark", "texture", "framebuffer", "winner"], &rows)
    );
}
