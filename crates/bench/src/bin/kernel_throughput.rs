//! Scalar vs batched fragment-engine throughput on the paper's kernels.
//!
//! Runs `sum` and blocked `sgemm` (block 16) on both simulated platforms,
//! on both engine tiers, at 1 thread and at the machine's full
//! parallelism, asserting on every pairing that the batched engine is
//! byte-identical to the scalar reference and leaves simulated time
//! untouched. Wall-clock statistics are printed per configuration as
//! `BENCH {...}` JSON lines.
//!
//! Usage: `kernel_throughput [n] [reps]` — defaults to a 256×256 problem
//! with 3 timed repetitions. The acceptance configuration is
//! `kernel_throughput 1024`, where the batched engine's single-thread
//! sgemm speedup is the headline number.

use std::time::{Duration, Instant};

use mgpu_bench::harness::{emit_bench_json, Stats};
use mgpu_gles::{Engine, Gl};
use mgpu_gpgpu::{OptConfig, Sgemm, Sum};
use mgpu_tbdr::{Platform, SimTime};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Sum,
    Sgemm,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Sum => "sum",
            Workload::Sgemm => "sgemm_b16",
        }
    }
}

struct Outcome {
    stats: Stats,
    result_bits: Vec<u32>,
    sim: SimTime,
}

#[allow(clippy::too_many_arguments)]
fn run(
    platform: &Platform,
    workload: Workload,
    n: u32,
    threads: usize,
    engine: Engine,
    reps: usize,
    a: &[f32],
    b: &[f32],
) -> Outcome {
    let mut gl = Gl::new(platform.clone(), n, n);
    let mut samples = Vec::with_capacity(reps);
    let result_bits: Vec<u32> = match workload {
        Workload::Sum => {
            let cfg = OptConfig::baseline()
                .without_swap()
                .with_threads(threads)
                .with_engine(engine);
            let mut sum = Sum::builder(n)
                .build(&mut gl, &cfg, a, b)
                .expect("sum builds");
            sum.step(&mut gl).expect("warm-up step");
            for _ in 0..reps {
                let t = Instant::now();
                sum.step(&mut gl).expect("step");
                samples.push(t.elapsed());
            }
            sum.result(&mut gl).expect("result")
        }
        Workload::Sgemm => {
            let cfg = OptConfig::baseline()
                .with_swap_interval_0()
                .with_threads(threads)
                .with_engine(engine);
            let mut sgemm =
                Sgemm::new(&mut gl, &cfg, n, 16, a, b).expect("sgemm builds at block 16");
            for _ in 0..reps {
                let t = Instant::now();
                sgemm.multiply(&mut gl).expect("multiply");
                samples.push(t.elapsed());
            }
            sgemm.result(&mut gl).expect("result")
        }
    }
    .iter()
    .map(|v| v.to_bits())
    .collect();
    gl.finish();
    Outcome {
        stats: Stats::from_samples(&samples),
        result_bits,
        sim: gl.elapsed(),
    }
}

fn mean_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut thread_list = vec![1usize];
    if cores > 1 {
        thread_list.push(cores);
    }

    println!("kernel throughput: scalar vs batched engine, {n}x{n}, {reps} rep(s)");
    println!("host parallelism: {cores} core(s)\n");

    let len = (n * n) as usize;
    let a: Vec<f32> = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b: Vec<f32> = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();

    let mut single_thread_sgemm_speedup = None;
    for (plat_name, platform) in [
        ("vc4", Platform::videocore_iv()),
        ("sgx", Platform::sgx_545()),
    ] {
        for workload in [Workload::Sum, Workload::Sgemm] {
            for &threads in &thread_list {
                let scalar = run(
                    &platform,
                    workload,
                    n,
                    threads,
                    Engine::Scalar,
                    reps,
                    &a,
                    &b,
                );
                let batched = run(
                    &platform,
                    workload,
                    n,
                    threads,
                    Engine::Batched,
                    reps,
                    &a,
                    &b,
                );
                assert_eq!(
                    batched.result_bits,
                    scalar.result_bits,
                    "batched output diverged from scalar ({plat_name}/{} at {threads} threads)",
                    workload.name()
                );
                assert_eq!(
                    batched.sim,
                    scalar.sim,
                    "batched engine changed simulated time ({plat_name}/{} at {threads} threads)",
                    workload.name()
                );
                let id =
                    |engine: &str| format!("{plat_name}/{}/t{threads}/{engine}", workload.name());
                emit_bench_json("kernel_throughput", &id("scalar"), &scalar.stats);
                emit_bench_json("kernel_throughput", &id("batched"), &batched.stats);
                let speedup =
                    mean_secs(scalar.stats.mean) / mean_secs(batched.stats.mean).max(1e-12);
                println!(
                    "  -> batched speedup {speedup:.2}x (outputs byte-identical, simulated time unchanged)\n"
                );
                if workload == Workload::Sgemm && threads == 1 && plat_name == "vc4" {
                    single_thread_sgemm_speedup = Some(speedup);
                }
            }
        }
    }

    if let Some(s) = single_thread_sgemm_speedup {
        println!("headline: single-thread sgemm batched speedup {s:.2}x");
    }
}
