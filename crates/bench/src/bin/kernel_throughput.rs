//! Scalar vs batched vs compiled fragment-engine throughput on the
//! paper's kernels.
//!
//! Runs `sum` and blocked `sgemm` (block 16) on both simulated platforms,
//! on all three engine tiers, at 1 thread and at the machine's full
//! parallelism, asserting on every pairing that the batched and compiled
//! engines are byte-identical to the scalar reference and leave simulated
//! time untouched. Wall-clock statistics are printed per configuration as
//! `BENCH {...}` JSON lines.
//!
//! Usage: `kernel_throughput [n] [reps] [--gate]` — defaults to a 256×256
//! problem with 3 timed repetitions. The acceptance configuration is
//! `kernel_throughput 1024`, where the engines' single-thread sgemm
//! speedups are the headline numbers. `--gate` turns the compiled tier's
//! advantage into a hard exit: the run fails unless compiled beats the
//! batched interpreter by ≥ 2x on single-thread sgemm on both platforms.

use std::time::{Duration, Instant};

use mgpu_bench::harness::{emit_bench_json, Stats};
use mgpu_gles::{Engine, Gl};
use mgpu_gpgpu::{OptConfig, Sgemm, Sum};
use mgpu_tbdr::{Platform, SimTime};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Sum,
    Sgemm,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Sum => "sum",
            Workload::Sgemm => "sgemm_b16",
        }
    }
}

struct Outcome {
    stats: Stats,
    result_bits: Vec<u32>,
    sim: SimTime,
}

#[allow(clippy::too_many_arguments)]
fn run(
    platform: &Platform,
    workload: Workload,
    n: u32,
    threads: usize,
    engine: Engine,
    reps: usize,
    a: &[f32],
    b: &[f32],
) -> Outcome {
    let mut gl = Gl::new(platform.clone(), n, n);
    let mut samples = Vec::with_capacity(reps);
    let result_bits: Vec<u32> = match workload {
        Workload::Sum => {
            let cfg = OptConfig::baseline()
                .without_swap()
                .with_threads(threads)
                .with_engine(engine);
            let mut sum = Sum::builder(n)
                .build(&mut gl, &cfg, a, b)
                .expect("sum builds");
            sum.step(&mut gl).expect("warm-up step");
            for _ in 0..reps {
                let t = Instant::now();
                sum.step(&mut gl).expect("step");
                samples.push(t.elapsed());
            }
            sum.result(&mut gl).expect("result")
        }
        Workload::Sgemm => {
            let cfg = OptConfig::baseline()
                .with_swap_interval_0()
                .with_threads(threads)
                .with_engine(engine);
            let mut sgemm =
                Sgemm::new(&mut gl, &cfg, n, 16, a, b).expect("sgemm builds at block 16");
            for _ in 0..reps {
                let t = Instant::now();
                sgemm.multiply(&mut gl).expect("multiply");
                samples.push(t.elapsed());
            }
            sgemm.result(&mut gl).expect("result")
        }
    }
    .iter()
    .map(|v| v.to_bits())
    .collect();
    gl.finish();
    Outcome {
        stats: Stats::from_samples(&samples),
        result_bits,
        sim: gl.elapsed(),
    }
}

fn mean_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn engine_tag(engine: Engine) -> &'static str {
    match engine {
        Engine::Scalar => "scalar",
        Engine::Batched => "batched",
        Engine::Compiled => "compiled",
    }
}

fn main() {
    let mut n: u32 = 256;
    let mut reps: usize = 3;
    let mut gate = false;
    for (i, arg) in std::env::args().skip(1).enumerate() {
        if arg == "--gate" {
            gate = true;
        } else if i == 0 {
            n = arg.parse().unwrap_or(n);
        } else {
            reps = arg.parse().unwrap_or(reps);
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut thread_list = vec![1usize];
    if cores > 1 {
        thread_list.push(cores);
    }

    println!("kernel throughput: scalar vs batched vs compiled engine, {n}x{n}, {reps} rep(s)");
    println!("host parallelism: {cores} core(s)\n");

    let len = (n * n) as usize;
    let a: Vec<f32> = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b: Vec<f32> = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();

    let mut gate_ratios: Vec<(String, f64)> = Vec::new();
    for (plat_name, platform) in [
        ("vc4", Platform::videocore_iv()),
        ("sgx", Platform::sgx_545()),
    ] {
        for workload in [Workload::Sum, Workload::Sgemm] {
            for &threads in &thread_list {
                let scalar = run(
                    &platform,
                    workload,
                    n,
                    threads,
                    Engine::Scalar,
                    reps,
                    &a,
                    &b,
                );
                let batched = run(
                    &platform,
                    workload,
                    n,
                    threads,
                    Engine::Batched,
                    reps,
                    &a,
                    &b,
                );
                let compiled = run(
                    &platform,
                    workload,
                    n,
                    threads,
                    Engine::Compiled,
                    reps,
                    &a,
                    &b,
                );
                for (tag, outcome) in [("batched", &batched), ("compiled", &compiled)] {
                    assert_eq!(
                        outcome.result_bits,
                        scalar.result_bits,
                        "{tag} output diverged from scalar ({plat_name}/{} at {threads} threads)",
                        workload.name()
                    );
                    assert_eq!(
                        outcome.sim,
                        scalar.sim,
                        "{tag} engine changed simulated time ({plat_name}/{} at {threads} threads)",
                        workload.name()
                    );
                }
                let id = |engine: Engine| {
                    format!(
                        "{plat_name}/{}/t{threads}/{}",
                        workload.name(),
                        engine_tag(engine)
                    )
                };
                emit_bench_json("kernel_throughput", &id(Engine::Scalar), &scalar.stats);
                emit_bench_json("kernel_throughput", &id(Engine::Batched), &batched.stats);
                emit_bench_json("kernel_throughput", &id(Engine::Compiled), &compiled.stats);
                let batched_speedup =
                    mean_secs(scalar.stats.mean) / mean_secs(batched.stats.mean).max(1e-12);
                let compiled_speedup =
                    mean_secs(scalar.stats.mean) / mean_secs(compiled.stats.mean).max(1e-12);
                let compiled_over_batched =
                    mean_secs(batched.stats.mean) / mean_secs(compiled.stats.mean).max(1e-12);
                println!(
                    "  -> batched {batched_speedup:.2}x, compiled {compiled_speedup:.2}x over scalar \
                     (compiled/batched {compiled_over_batched:.2}x; outputs byte-identical, simulated time unchanged)\n"
                );
                if workload == Workload::Sgemm && threads == 1 {
                    gate_ratios.push((plat_name.to_owned(), compiled_over_batched));
                }
            }
        }
    }

    for (plat, ratio) in &gate_ratios {
        println!("headline: single-thread sgemm compiled/batched {ratio:.2}x on {plat}");
    }
    if gate {
        for (plat, ratio) in &gate_ratios {
            assert!(
                *ratio >= 2.0,
                "GATE FAILED: compiled engine is only {ratio:.2}x over batched \
                 on single-thread sgemm ({plat}); the bar is 2.00x"
            );
        }
        println!("gate passed: compiled >= 2x over batched on single-thread sgemm, both platforms");
    }
}
