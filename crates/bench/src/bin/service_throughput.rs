//! Fleet-service throughput and tail-latency benchmark.
//!
//! Drives the multi-tenant [`FleetService`] with 1k+ concurrent tenants
//! submitting staggered GPGPU jobs, in two regimes:
//!
//! * `clean`   — no fault plans installed;
//! * `faulted` — device 0 opens with a dense compile-failure burst (the
//!   shape that trips its circuit breaker and quarantines it) and every
//!   other device carries probabilistic context-loss noise at ~1 fault
//!   per 100 draws.
//!
//! Per regime it reports per-job **simulated** latency percentiles
//! (p50/p95/p99 as a `BENCH {...}` line) plus a summary `BENCH` line
//! with jobs/sec of simulated throughput, the rejection rate, and the
//! quarantine/probe/displacement counters. Everything runs in seeded
//! simulated time: the numbers are bit-reproducible across hosts.
//!
//! Usage: `service_throughput [tenants] [jobs_per_tenant] [--gate]`
//! (defaults: 1024 tenants, 2 jobs each). `--gate` turns the run into a
//! CI check:
//!
//! * the clean regime must replay byte-identically when run twice;
//! * faulted p95 latency must stay within 2× of clean p95;
//! * the faulted regime must actually quarantine (otherwise the regime
//!   proves nothing);
//! * the seeded fleet-isolation conformance scenarios must all hold.

use std::process::exit;
use std::time::Duration;

use mgpu_bench::harness::{emit_bench_json, Stats};
use mgpu_conformance::check_fleet_isolation;
use mgpu_gles::FaultPlan;
use mgpu_service::{FleetService, JobRecord, JobSpec, ServiceConfig, ServiceStats};
use mgpu_tbdr::SimTime;

const DEVICES: usize = 6;
const SEED: u64 = 2017;
/// Simulated gap between consecutive submissions (arrival stagger).
const SUBMIT_GAP: SimTime = SimTime::from_micros(2);
/// Isolation conformance seeds replayed under `--gate`.
const ISOLATION_SEEDS: std::ops::Range<u64> = 0..3;

struct Regime {
    name: &'static str,
    fault_plans: Vec<Option<FaultPlan>>,
}

fn regimes() -> Vec<Regime> {
    // Device 0: a burst of compile failures long enough to exhaust
    // several jobs back to back and trip the breaker, then heal.
    let hostile = (0..36).fold(FaultPlan::seeded(SEED), |plan, i| plan.compile_fail_at(i));
    let faulted = (0..DEVICES)
        .map(|d| {
            if d == 0 {
                Some(hostile.clone())
            } else {
                Some(FaultPlan::seeded(SEED + d as u64).p_ctx_loss(0.01))
            }
        })
        .collect();
    vec![
        Regime {
            name: "clean",
            fault_plans: vec![None; DEVICES],
        },
        Regime {
            name: "faulted",
            fault_plans: faulted,
        },
    ]
}

struct Outcome {
    stats: ServiceStats,
    latency: Stats,
    records: Vec<JobRecord>,
    faults_seen: u64,
}

fn run_regime(regime: &Regime, tenants: usize, jobs_per_tenant: usize) -> Outcome {
    let mut service = FleetService::new(ServiceConfig {
        devices: DEVICES,
        fault_plans: regime.fault_plans.clone(),
        queue_depth: jobs_per_tenant.max(1),
        seed: SEED,
        ..ServiceConfig::default()
    })
    .expect("benchmark config is valid");
    let ids: Vec<_> = (0..tenants)
        .map(|t| service.add_tenant([1u32, 2, 4][t % 3]))
        .collect();

    // Globally time-ordered arrivals, round-robin over tenants, with a
    // small mix of job shapes so the queues are not uniform.
    let mut arrival = SimTime::ZERO;
    for round in 0..jobs_per_tenant {
        for (t, &id) in ids.iter().enumerate() {
            let spec = match (round + t) % 3 {
                0 => JobSpec::Sum {
                    n: 8,
                    iterations: 1,
                },
                1 => JobSpec::Sum {
                    n: 8,
                    iterations: 2,
                },
                _ => JobSpec::Sgemm { n: 8, block: 4 },
            };
            // Bounded queues: a rejection is a legitimate, recorded outcome.
            let _ = service.submit(id, spec, arrival, None);
            arrival += SUBMIT_GAP;
        }
    }
    service.drain();

    let latencies_ns: Vec<u64> = service
        .ok_latencies()
        .iter()
        .map(|t| t.as_nanos())
        .collect();
    Outcome {
        stats: service.stats(),
        latency: Stats::from_nanos(&latencies_ns),
        faults_seen: service.records().iter().map(|r| r.faults_seen as u64).sum(),
        records: service.records().to_vec(),
    }
}

fn summary_line(regime: &str, out: &Outcome) -> String {
    let s = &out.stats;
    let makespan = s.makespan.as_nanos().max(1) as f64 / 1e9;
    let jobs_per_sec = s.completed_ok as f64 / makespan;
    let rejection_rate = s.rejected as f64 / s.submitted.max(1) as f64;
    format!(
        "BENCH {{\"group\":\"service_throughput\",\"id\":\"{regime}/summary\",\
         \"tenants\":{},\"submitted\":{},\"completed_ok\":{},\"failed\":{},\
         \"jobs_per_sec\":{jobs_per_sec:.1},\"rejection_rate\":{rejection_rate:.4},\
         \"quarantines\":{},\"probes\":{},\"displaced\":{},\"faults_seen\":{},\
         \"makespan_ns\":{}}}",
        out.records
            .iter()
            .map(|r| r.tenant)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        s.submitted,
        s.completed_ok,
        s.failed,
        s.quarantines,
        s.probes,
        s.displaced,
        out.faults_seen,
        s.makespan.as_nanos(),
    )
}

fn main() {
    let mut tenants = 1024usize;
    let mut jobs_per_tenant = 2usize;
    let mut gate = false;
    let mut positional = 0;
    for arg in std::env::args().skip(1) {
        if arg == "--gate" {
            gate = true;
        } else if let Ok(n) = arg.parse::<usize>() {
            match positional {
                0 => tenants = n.max(1),
                _ => jobs_per_tenant = n.max(1),
            }
            positional += 1;
        } else {
            eprintln!("usage: service_throughput [tenants] [jobs_per_tenant] [--gate]");
            exit(2);
        }
    }

    println!(
        "service_throughput: {tenants} tenants x {jobs_per_tenant} jobs, \
         {DEVICES} devices, seed {SEED}"
    );
    let mut failures: Vec<String> = Vec::new();
    let mut clean_p95 = Duration::ZERO;
    for regime in regimes() {
        let out = run_regime(&regime, tenants, jobs_per_tenant);
        emit_bench_json(
            "service_throughput",
            &format!("{}/latency", regime.name),
            &out.latency,
        );
        println!("{}", summary_line(regime.name, &out));

        match regime.name {
            "clean" => {
                clean_p95 = out.latency.p95;
                if gate {
                    let replay = run_regime(&regime, tenants, jobs_per_tenant);
                    if replay.records != out.records {
                        failures.push("clean regime did not replay byte-identically".to_owned());
                    }
                }
            }
            _ => {
                if out.stats.quarantines == 0 {
                    failures.push("faulted regime never quarantined a device".to_owned());
                }
                let limit = clean_p95 * 2;
                if out.latency.p95 > limit {
                    failures.push(format!(
                        "faulted p95 {:?} exceeds 2x clean p95 {clean_p95:?}",
                        out.latency.p95
                    ));
                }
            }
        }
        if out.stats.completed_ok == 0 {
            failures.push(format!("{}: no job completed", regime.name));
        }
    }

    if gate {
        for seed in ISOLATION_SEEDS {
            let divergences = check_fleet_isolation(seed);
            for d in &divergences {
                failures.push(format!("isolation seed {seed}: {d}"));
            }
            if divergences.is_empty() {
                println!("  isolation seed {seed}: ok");
            }
        }
        if failures.is_empty() {
            println!("GATE ok: faulted p95 within 2x clean, isolation held");
        } else {
            for f in &failures {
                eprintln!("GATE FAIL: {f}");
            }
            exit(1);
        }
    }
}
