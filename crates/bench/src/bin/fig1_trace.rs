//! Regenerates the paper's Fig. 1 as a trace: the memory-movement
//! operations in the life of one GPGPU kernel invocation on a tiled GPU,
//! shown for both render-target strategies on both platforms.

use mgpu_gles::Gl;
use mgpu_gpgpu::{OptConfig, Sum};
use mgpu_tbdr::{annotate_frame, Platform};
use mgpu_workloads::random_matrix;

fn trace(platform: &Platform, cfg: &OptConfig, label: &str) {
    let n = 256u32;
    let a = random_matrix(n as usize, 1, 0.0, 1.0);
    let b = random_matrix(n as usize, 2, 0.0, 1.0);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_functional(false);
    let mut sum = Sum::builder(n)
        .reupload(true)
        .build(&mut gl, cfg, a.data(), b.data())
        .expect("sum builds");
    // Warm the pipeline, then record one kernel invocation.
    sum.run(&mut gl, 2).expect("warmup");
    gl.set_frame_recording(true);
    sum.step(&mut gl).expect("step");
    gl.finish();

    println!("--- {} / {label} ---", platform.name);
    for (work, timing) in gl.recorded_frames() {
        if work.fragment.fragments == 0 {
            continue; // sync-only frames move no memory
        }
        println!(
            "kernel `{}` (cpu {} -> retire {}):",
            work.label, timing.cpu_start, timing.retire
        );
        for event in annotate_frame(work, timing) {
            println!(
                "  {:<45} {:>9} bytes  at {:>10}  {}",
                event.op.to_string(),
                event.bytes,
                event.at.to_string(),
                if event.fresh_alloc {
                    "(fresh storage)"
                } else {
                    "(reused storage)"
                }
            );
        }
    }
    println!();
}

fn main() {
    println!("Fig. 1 — memory-movement operations per kernel invocation");
    println!("(steps 1-6 as numbered in the paper's figure)\n");
    for platform in Platform::paper_pair() {
        trace(
            &platform,
            &OptConfig::baseline().without_swap(),
            "texture rendering (expects steps 2 and 5)",
        );
        trace(
            &platform,
            &OptConfig::baseline()
                .with_swap_interval_0()
                .with_framebuffer_rendering(),
            "framebuffer rendering (expects steps 2, 3 and 4)",
        );
    }
}
