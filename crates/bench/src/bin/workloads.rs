//! Workload-family harness: autotunes the image pyramid, the Jacobi
//! stencil solver and the dense-training loop on both paper platforms,
//! and measures the pyramid's tile-skip win.
//!
//! Three measurements per platform:
//!
//! * **tuned vs untuned** — [`tune_workload`] walks each family's
//!   candidate list (swap modes, render strategies, texture reuse, VBO
//!   hints, invalidate) on a timing-only context and reports the winner's
//!   modelled speedup over the `baseline` candidate, which is always in
//!   the list — so "tuned" can never lose to "untuned";
//! * **training block sweep** — the matmul chunk size trades fetches per
//!   fragment against pass count exactly like the paper's sgemm; the
//!   sweep measures every legal block at the same configuration and
//!   reports the fastest;
//! * **pyramid tile-skip** — the pyramid re-shades an identical image
//!   every iteration, the steady-state shape the signature cache is built
//!   for. Measured on a *functional* context (skipping replays real
//!   bytes), with byte identity between skip-off and skip-on asserted.
//!
//! All periods are simulated time ([`steady_period`]), not host
//! wall-clock. Usage: `workloads [n] [reps]` (defaults 16, 3), or
//! `workloads --gate` for CI: asserts tuned >= untuned for every family
//! on both platforms and a >= 1x pyramid tile-skip on the VideoCore.

use std::time::Duration;

use mgpu_bench::harness::{emit_bench_json, Stats};
use mgpu_gles::{ExecConfig, Gl};
use mgpu_gpgpu::{runner::steady_period, OptConfig};
use mgpu_tbdr::{Platform, SimTime};
use mgpu_workloads::{tune_workload, DenseTraining, GaussianPyramid, JacobiInpaint, Workload};

fn sim_stats(period: SimTime) -> Stats {
    Stats::from_samples(&[Duration::from_secs_f64(period.as_secs_f64())])
}

/// Tunes one family and emits its untuned/tuned periods; returns the
/// winner's speedup over the baseline candidate.
fn tune_family(group: &str, platform: &Platform, workload: &dyn Workload, reps: usize) -> f64 {
    let result = tune_workload(platform, workload, 1, reps, &ExecConfig::from_env())
        .expect("workload tunes");
    let name = workload.name();
    let best = result.best();
    let baseline = result
        .ranked
        .iter()
        .find(|p| p.name == "baseline")
        .expect("baseline candidate is always measured");
    emit_bench_json(
        group,
        &format!("{name}/untuned"),
        &sim_stats(baseline.period),
    );
    emit_bench_json(group, &format!("{name}/tuned"), &sim_stats(best.period));
    let speedup = result.speedup_over("baseline").unwrap_or(1.0);
    println!(
        "  {name}: untuned {:>12} -> tuned {:>12} via `{}` ({speedup:.2}x)",
        format!("{}", baseline.period),
        format!("{}", best.period),
        best.name
    );
    speedup
}

/// Measures the training loop at every legal block size on a timing-only
/// context and reports the fastest block.
fn block_sweep(group: &str, platform: &Platform, n: u32, steps: u32, reps: usize) -> u32 {
    let cfg = OptConfig::baseline().without_swap();
    let mut best = (u64::MAX, 1u32);
    for block in [1u32, 2, 4, 8, 16] {
        if block > n || !n.is_multiple_of(block) {
            continue;
        }
        let workload = DenseTraining::new(n, block, steps, 13);
        let mut gl = Gl::new(platform.clone(), n, n);
        gl.set_exec_config(ExecConfig::from_env());
        gl.set_functional(false);
        let mut p = workload
            .builder()
            .build(&mut gl, &cfg)
            .expect("training builds");
        let period = steady_period(&mut gl, 1, reps, |gl| p.run_once(gl)).expect("training runs");
        emit_bench_json(
            group,
            &format!("train_block/n={n} b={block}"),
            &sim_stats(period),
        );
        println!("  train n{n} block sweep: b={block:<2} {period}");
        if (period.as_nanos(), block) < best {
            best = (period.as_nanos(), block);
        }
    }
    println!("  train n{n} block sweep: best b={}", best.1);
    best.1
}

/// Pyramid steady-state on a *functional* context, tile skip off vs on:
/// returns the modelled speedup after asserting byte identity.
fn pyramid_tile_skip(group: &str, platform: &Platform, n: u32, levels: u32, reps: usize) -> f64 {
    let workload = GaussianPyramid::new(n, levels, 11);
    let cfg = OptConfig::baseline().without_swap();
    let run = |skip: bool| {
        let mut gl = Gl::new(platform.clone(), n, n);
        gl.set_exec_config(ExecConfig::from_env().with_tile_skip(skip));
        let mut p = workload
            .builder()
            .build(&mut gl, &cfg)
            .expect("pyramid builds");
        let period = steady_period(&mut gl, 1, reps, |gl| p.run_once(gl)).expect("pyramid runs");
        let bytes = p.output_bytes(&mut gl).expect("pyramid output");
        (period, bytes)
    };
    let (off, bytes_off) = run(false);
    let (on, bytes_on) = run(true);
    assert_eq!(
        bytes_on, bytes_off,
        "pyramid tile-skip changed the output bytes"
    );
    emit_bench_json(group, "pyramid_skip/off", &sim_stats(off));
    emit_bench_json(group, "pyramid_skip/on", &sim_stats(on));
    let speedup = off.as_secs_f64() / on.as_secs_f64().max(1e-12);
    println!("  pyramid n{n} l{levels} tile skip: off {off} -> on {on} ({speedup:.2}x)");
    speedup
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let nums: Vec<usize> = args.iter().filter_map(|s| s.parse().ok()).collect();
    let n = *nums.first().unwrap_or(&16) as u32;
    let reps = *nums.get(1).unwrap_or(&3);
    let levels = 3.min(n.ilog2());
    let block = if n >= 4 { 4 } else { 1 };

    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        println!(
            "{}: workload families at n={n}, {reps} steady reps",
            platform.name
        );
        let group = format!("workloads/{}", platform.name);
        let families: Vec<Box<dyn Workload>> = vec![
            Box::new(GaussianPyramid::new(n, levels, 11)),
            Box::new(JacobiInpaint::new(n, 10, 12)),
            Box::new(DenseTraining::new(n, block, 2, 13)),
        ];
        for workload in &families {
            let speedup = tune_family(&group, &platform, workload.as_ref(), reps);
            if gate {
                assert!(
                    speedup >= 1.0,
                    "GATE FAILED: {} {} tuned slower than untuned ({speedup:.2}x)",
                    platform.name,
                    workload.name()
                );
            }
        }
        block_sweep(&group, &platform, n, 2, reps);

        let skip_speedup = pyramid_tile_skip(&group, &platform, n, levels, reps);
        if gate && platform.name.contains("VideoCore") {
            assert!(
                skip_speedup >= 1.0,
                "GATE FAILED: {} pyramid tile-skip regressed ({skip_speedup:.2}x)",
                platform.name
            );
        }
        if gate {
            println!(
                "GATE OK: {} tuned >= untuned for all families",
                platform.name
            );
        }
    }
}
