//! Energy view of the optimisation ladder: the paper's speedups double as
//! energy savings, because vsync idling burns static power and the copy
//! path burns memory-interface energy (tile-based rendering exists "for
//! bandwidth and power reasons" — paper §II).

use mgpu_bench::setup::paper_matrices;
use mgpu_bench::table;
use mgpu_gles::Gl;
use mgpu_gpgpu::{OptConfig, Sum};
use mgpu_tbdr::{EnergyModel, Platform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024u32;
    let iters = 50usize;
    let (a, b) = paper_matrices(n);

    println!("Energy per {iters} sum kernels ({n}x{n}), by configuration\n");
    for platform in Platform::paper_pair() {
        let model = EnergyModel::for_platform(&platform);
        let mut rows = Vec::new();
        for (name, cfg) in [
            ("baseline (vsync)", OptConfig::baseline()),
            ("interval 0", OptConfig::baseline().with_swap_interval_0()),
            ("no swap", OptConfig::baseline().without_swap()),
            (
                "no swap + fp24",
                OptConfig::baseline().without_swap().with_fp24(),
            ),
            (
                "framebuffer + copy",
                OptConfig::baseline()
                    .with_swap_interval_0()
                    .with_framebuffer_rendering(),
            ),
        ] {
            let mut gl = Gl::new(platform.clone(), n, n);
            gl.set_functional(false);
            let mut sum = Sum::builder(n).build(&mut gl, &cfg, a.data(), b.data())?;
            sum.run(&mut gl, iters)?;
            gl.finish();
            let report = gl.report();
            let e = model.estimate(&report, &platform);
            rows.push(vec![
                name.to_owned(),
                format!("{:.1} ms", report.total_time.as_millis_f64()),
                format!("{:.2} mJ", e.dynamic_mj()),
                format!("{:.2} mJ", e.static_mj),
                format!("{:.2} mJ", e.total_mj()),
            ]);
        }
        println!("{}:", platform.name);
        println!(
            "{}",
            table::render(
                &["configuration", "time", "dynamic", "static", "total energy"],
                &rows
            )
        );
    }
    Ok(())
}
