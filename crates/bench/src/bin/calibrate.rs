//! Calibration overview: prints every experiment's measured values next to
//! the paper's reported numbers, so platform-constant tuning is one
//! `cargo run -p mgpu-bench --bin calibrate --release` away.

use mgpu_bench::experiments::{fig3, fig4a, fig4b, fig5, vbo};
use mgpu_bench::setup::Protocol;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    println!("== Fig 3: vsync (speedup over baseline) ==");
    println!("paper: SGX sum 1.00/3.47/3.85  VC sum 9.22/16.11/16.28");
    println!("paper: SGX gem 1.00/1.00/1.13  VC gem 1.24/1.24/1.48");
    for p in Platform::paper_pair() {
        let r = fig3::run(&p, &protocol).expect("fig3");
        println!(
            "{:18} sum {:5.2}/{:5.2}/{:5.2}   sgemm {:4.2}/{:4.2}/{:4.2}",
            r.platform,
            r.sum.interval0,
            r.sum.no_swap,
            r.sum.no_swap_fp24,
            r.sgemm.interval0,
            r.sgemm.no_swap,
            r.sgemm.no_swap_fp24
        );
    }

    println!("\n== Fig 4a: FB vs texture (texture advantage; >1 = texture wins) ==");
    println!("paper: SGX sum ~2237x, VC sum ~10x; sgemm FB wins both; dep-sum: SGX tex, VC FB");
    for p in Platform::paper_pair() {
        let r = fig4a::run(&p, &protocol).expect("fig4a");
        println!(
            "{:18} sum {:9.1}x  dep-sum {:7.3}x  sgemm {:7.3}x   (tex {} fb {} | dep tex {} fb {} | gem tex {} fb {})",
            r.platform,
            r.sum.texture_advantage(),
            r.sum_dependent.texture_advantage(),
            r.sgemm.texture_advantage(),
            r.sum.texture,
            r.sum.framebuffer,
            r.sum_dependent.texture,
            r.sum_dependent.framebuffer,
            r.sgemm.texture,
            r.sgemm.framebuffer,
        );
    }

    println!("\n== Fig 4b: sgemm blocking (time per multiply; FB/tex ratio <1 = FB wins) ==");
    println!(
        "paper: SGX FB >> tex at 1-2, overlap from >=4; VC FB always wins; time falls with block"
    );
    for p in Platform::paper_pair() {
        let r = fig4b::run(&p, &protocol).expect("fig4b");
        print!("{:18}", r.platform);
        for pt in &r.points {
            print!(
                "  b{}: tex {} fb {} ({:.2})",
                pt.block,
                pt.texture,
                pt.framebuffer,
                pt.framebuffer.as_secs_f64() / pt.texture.as_secs_f64()
            );
        }
        println!();
        println!("    block32: {}", r.block32_error);
    }

    println!("\n== Fig 5: texture reuse speedup (reuse vs fresh) ==");
    println!("paper 5a (tex): VC sum ~1.15, SGX sum ~0.93-0.98; 5b (FB): ~1.0, SGX sgemm ~0.70");
    for p in Platform::paper_pair() {
        let r = fig5::run(&p, &protocol).expect("fig5");
        println!(
            "{:18} tex: sum {:5.3} sgemm {:5.3}   fb: sum {:5.3} sgemm {:5.3}",
            r.platform, r.sum_texture, r.sgemm_texture, r.sum_framebuffer, r.sgemm_framebuffer
        );
    }

    println!("\n== VBO hints (speedup over client arrays; paper: up to ~1.5%) ==");
    for p in Platform::paper_pair() {
        let r = vbo::run(&p, &protocol).expect("vbo");
        println!(
            "{:18} static {:6.4} dynamic {:6.4} stream {:6.4}",
            r.platform, r.static_draw, r.dynamic_draw, r.stream_draw
        );
    }
}
