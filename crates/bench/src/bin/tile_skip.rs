//! Tile-redundancy-elimination harness: `MGPU_TILE_SKIP=off` vs `=on` on
//! the paper's steady-state multi-pass loops.
//!
//! Two workloads exercise the two redundancy shapes the signature cache
//! is built for:
//!
//! * `sum_10pass`  — ten independent `c = a + b` kernel invocations per
//!   benchmark-body iteration. The inputs never change and the output
//!   chain ping-pongs between two textures, so after the warm-up every
//!   tile of every pass replays from the cache (render-target identity is
//!   deliberately excluded from the tile key);
//! * `sgemm_redundant` — repeated blocked-sgemm multiplies of the *same*
//!   input matrices. Each multiply reseeds the accumulator and replays
//!   the identical `n / block` pass sequence, so from the second multiply
//!   on every pass's tiles — including the intermediate accumulator
//!   states — hit the cache.
//!
//! The metric is **simulated time** per benchmark-body iteration
//! ([`steady_period`]): skipped tiles trade fragment shading for
//! signature reads on the bus in the cost model, so the speedup reported
//! here is the modelled end-to-end win on the paper platforms, not a host
//! wall-clock artefact. Byte identity of the final results between the
//! two modes is asserted on every run, as is zero signature activity with
//! the knob off — the harness doubles as a determinism check for the
//! skip axis.
//!
//! Skip wins only where fragment shading sits on the critical path. The
//! sum kernel is cheap, so it needs a large grid before shading outruns
//! the per-draw CPU submit cost (450µs on VideoCore, a full 2ms on the
//! SGX) — which is why `sum_n` defaults to 1024 and the SGX sum speedup
//! stays modest (the paper's §IV observation that SGX GPGPU is
//! driver-bound). Blocked sgemm is fragment-bound everywhere; on the SGX
//! its 60-cycle dependent-fetch latency makes re-shading so expensive
//! that skipping is worth orders of magnitude.
//!
//! Usage: `tile_skip [sum_n] [sgemm_n] [reps]` (defaults 1024, 256, 3),
//! or `tile_skip --gate` for the CI smoke configuration: asserts the
//! modelled steady-state speedup reaches 1.5x on the VideoCore 10-pass
//! sum and 1.2x on redundant sgemm on both paper platforms.

use std::time::Duration;

use mgpu_bench::harness::{emit_bench_json, Stats};
use mgpu_gles::{ExecConfig, Gl, TileSkipStats};
use mgpu_gpgpu::{runner::steady_period, OptConfig, Sgemm, Sum};
use mgpu_tbdr::{Platform, SimTime};

/// Steady-state passes per `sum` benchmark-body iteration.
const SUM_PASSES: usize = 10;

struct Measurement {
    /// Steady-state simulated time per benchmark-body iteration.
    period: SimTime,
    /// Final result, bitwise.
    result_bits: Vec<u32>,
    skip: TileSkipStats,
}

fn context(platform: &Platform, n: u32, skip: bool) -> Gl {
    let mut gl = Gl::new(platform.clone(), n, n);
    // Host execution strategy is free: simulated timing is
    // dispatcher-invariant, so take the machine's parallelism and only
    // pin the knob under test.
    gl.set_exec_config(ExecConfig::from_env().with_tile_skip(skip));
    gl
}

fn run_sum(platform: &Platform, n: u32, reps: usize, skip: bool) -> Measurement {
    let len = (n * n) as usize;
    let a: Vec<f32> = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b: Vec<f32> = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();
    let mut gl = context(platform, n, skip);
    let cfg = OptConfig::baseline().without_swap();
    let mut sum = Sum::builder(n)
        .build(&mut gl, &cfg, &a, &b)
        .expect("sum builds");
    let period = steady_period(&mut gl, 1, reps, |gl| {
        for _ in 0..SUM_PASSES {
            sum.step(gl)?;
        }
        Ok(())
    })
    .expect("sum runs");
    let result_bits = sum
        .result(&mut gl)
        .expect("result")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Measurement {
        period,
        result_bits,
        skip: gl.tile_skip_stats(),
    }
}

fn run_sgemm(platform: &Platform, n: u32, reps: usize, skip: bool) -> Measurement {
    let block = 16;
    let len = (n * n) as usize;
    let a: Vec<f32> = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b: Vec<f32> = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();
    let mut gl = context(platform, n, skip);
    let cfg = OptConfig::baseline().with_swap_interval_0();
    let mut sgemm = Sgemm::new(&mut gl, &cfg, n, block, &a, &b).expect("sgemm builds");
    let period = steady_period(&mut gl, 1, reps, |gl| sgemm.multiply(gl)).expect("sgemm runs");
    let result_bits = sgemm
        .result(&mut gl)
        .expect("result")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Measurement {
        period,
        result_bits,
        skip: gl.tile_skip_stats(),
    }
}

fn sim_stats(period: SimTime) -> Stats {
    Stats::from_samples(&[Duration::from_secs_f64(period.as_secs_f64())])
}

/// Runs one workload with the knob off and on; asserts byte identity and
/// clean off-mode counters; returns the modelled speedup.
fn run_workload(group: &str, name: &str, run: impl Fn(bool) -> Measurement) -> f64 {
    let off = run(false);
    let on = run(true);
    emit_bench_json(group, &format!("{name}/skip_off"), &sim_stats(off.period));
    emit_bench_json(group, &format!("{name}/skip_on"), &sim_stats(on.period));

    assert_eq!(
        on.result_bits, off.result_bits,
        "{group}/{name}: skip-on result diverged from skip-off"
    );
    assert_eq!(
        off.skip,
        TileSkipStats::default(),
        "{group}/{name}: skip-off run recorded signature activity"
    );
    assert!(
        on.skip.hits > 0,
        "{group}/{name}: skip-on run never hit the signature cache"
    );
    assert!(
        on.skip.bytes_replayed > 0,
        "{group}/{name}: skip-on run replayed no bytes"
    );

    let speedup = off.period.as_secs_f64() / on.period.as_secs_f64().max(1e-12);
    println!(
        "  {name}: {speedup:.2}x modelled speedup \
         ({} hits, {} misses, {} KiB replayed)\n",
        on.skip.hits,
        on.skip.misses,
        on.skip.bytes_replayed / 1024,
    );
    speedup
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let nums: Vec<usize> = args.iter().filter_map(|s| s.parse().ok()).collect();
    let sum_n = *nums.first().unwrap_or(&1024) as u32;
    let sgemm_n = *nums.get(1).unwrap_or(&256) as u32;
    let reps = *nums.get(2).unwrap_or(&3);

    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        println!(
            "{}: {SUM_PASSES}-pass sum at {sum_n}x{sum_n} + block-16 sgemm at \
             {sgemm_n}x{sgemm_n}, {reps} steady reps",
            platform.name
        );
        let group = format!("tile_skip/{}", platform.name);
        let sum_speedup = run_workload(&group, &format!("sum_10pass/n={sum_n}"), |skip| {
            run_sum(&platform, sum_n, reps, skip)
        });
        let sgemm_speedup = run_workload(&group, &format!("sgemm_redundant/n={sgemm_n}"), |skip| {
            run_sgemm(&platform, sgemm_n, reps, skip)
        });

        if gate {
            // The sum threshold only binds on VideoCore: the SGX's 2ms
            // per-draw submit cost keeps its cheap-kernel loops
            // driver-bound (reported honestly above, gated on >=1x).
            let sum_floor = if platform.name.contains("VideoCore") {
                1.5
            } else {
                1.0
            };
            assert!(
                sum_speedup >= sum_floor,
                "GATE FAILED: {} 10-pass sum speedup {sum_speedup:.2}x < {sum_floor}x",
                platform.name
            );
            assert!(
                sgemm_speedup >= 1.2,
                "GATE FAILED: {} redundant sgemm speedup {sgemm_speedup:.2}x < 1.2x",
                platform.name
            );
            println!(
                "GATE OK: {} sum {sum_speedup:.2}x (>={sum_floor}x), \
                 sgemm {sgemm_speedup:.2}x (>=1.2x)",
                platform.name
            );
        }
    }
}
