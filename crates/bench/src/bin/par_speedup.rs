//! Wall-clock harness for the parallel functional fragment engine:
//! serial vs N-thread execution of blocked sgemm (block 16), with a
//! byte-identity check and a simulated-time invariance check on every
//! measurement.
//!
//! Usage: `par_speedup [n] [threads ...]` — defaults to a 256×256
//! problem at 2, 4 and 8 threads (the acceptance configuration is
//! `par_speedup 1024 8`, worthwhile only on a machine with ≥ 8 cores;
//! this container may have fewer — the harness prints the machine's
//! parallelism so the numbers can be judged in context).

use std::time::Instant;

use mgpu_gles::{ExecConfig, Gl};
use mgpu_gpgpu::{OptConfig, Sgemm};
use mgpu_tbdr::{Platform, SimTime};

struct Measurement {
    wall: f64,
    result_bits: Vec<u32>,
    sim: SimTime,
}

fn run(n: u32, block: u32, threads: usize, a: &[f32], b: &[f32]) -> Measurement {
    let mut gl = Gl::new(Platform::videocore_iv(), n, n);
    gl.set_exec_config(ExecConfig::with_threads(threads));
    let cfg = OptConfig::baseline().with_swap_interval_0();
    let mut sgemm = Sgemm::new(&mut gl, &cfg, n, block, a, b).expect("sgemm builds");
    let start = Instant::now();
    sgemm.multiply(&mut gl).expect("multiply");
    let wall = start.elapsed().as_secs_f64();
    let result_bits = sgemm
        .result(&mut gl)
        .expect("result")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    gl.finish();
    Measurement {
        wall,
        result_bits,
        sim: gl.elapsed(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let thread_list: Vec<usize> = {
        let rest: Vec<usize> = args.filter_map(|s| s.parse().ok()).collect();
        if rest.is_empty() {
            vec![2, 4, 8]
        } else {
            rest
        }
    };
    let block = 16;
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    println!(
        "sgemm block {block}, {n}x{n}, single multiply (batch of {} passes)",
        n / block
    );
    println!("host parallelism: {cores} core(s)\n");

    let len = (n * n) as usize;
    let a: Vec<f32> = (0..len).map(|i| (i % 97) as f32 / 97.0).collect();
    let b: Vec<f32> = (0..len).map(|i| (i % 89) as f32 / 89.0).collect();

    let serial = run(n, block, 1, &a, &b);
    println!(
        "serial: {:8.3} ms (simulated {:?})",
        serial.wall * 1e3,
        serial.sim
    );

    for threads in thread_list {
        let par = run(n, block, threads, &a, &b);
        assert_eq!(
            par.result_bits, serial.result_bits,
            "{threads}-thread output diverged from serial"
        );
        assert_eq!(
            par.sim, serial.sim,
            "{threads}-thread run changed simulated time"
        );
        println!(
            "{threads:>2} threads: {:8.3} ms  speedup {:.2}x  (outputs byte-identical, simulated time unchanged)",
            par.wall * 1e3,
            serial.wall / par.wall
        );
    }
}
