//! Regenerates the paper's Fig. 3 (effect of vsync for `sum` and `sgemm`).

use mgpu_bench::experiments::fig3;
use mgpu_bench::setup::Protocol;
use mgpu_bench::table;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    println!("Fig. 3 — effect of vsync (speedup over OpenGL ES 2 best-practice baseline)");
    println!("paper:  SGX sum 1.00/3.47/3.85   VideoCore sum 9.22/16.11/16.28");
    println!("paper:  SGX sgemm 1.00/1.00/1.13 VideoCore sgemm 1.24/1.24/1.48\n");

    let mut rows = Vec::new();
    for platform in Platform::paper_pair() {
        let r = fig3::run(&platform, &protocol).expect("fig3 experiment");
        rows.push(vec![
            format!("{} sum", r.platform),
            table::speedup_cell(r.sum.interval0),
            table::speedup_cell(r.sum.no_swap),
            table::speedup_cell(r.sum.no_swap_fp24),
        ]);
        rows.push(vec![
            format!("{} sgemm", r.platform),
            table::speedup_cell(r.sgemm.interval0),
            table::speedup_cell(r.sgemm.no_swap),
            table::speedup_cell(r.sgemm.no_swap_fp24),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "benchmark",
                "eglSwapInterval(0)",
                "no eglSwapBuffers",
                "no swap + fp24"
            ],
            &rows
        )
    );
}
