//! Recovery-overhead benchmark: resilient execution under injected faults.
//!
//! Measures the steady-state simulated period of a dependent `sum` chain
//! driven through the [`ResilientRunner`] on both platforms, in three
//! regimes:
//!
//! * `clean`    — no fault plan installed (the no-op baseline);
//! * `verify`   — no faults, CRC-32 verification on (every pass runs
//!   twice: the pure checksum overhead);
//! * `faulted`  — context loss injected at ~1 fault per 100 draws,
//!   recovery on (checkpoint restore + context recreation overhead).
//!
//! Every faulted run's bytes are asserted identical to the clean run's —
//! recovery is only worth benchmarking if it is correct. Per-regime
//! simulated periods are printed as `BENCH {...}` JSON lines
//! (`mean_ns` etc. are **simulated** nanoseconds per run).
//!
//! Usage: `chaos [n] [runs]` — defaults to a 32×32 problem and 120
//! measured runs of 4 chained kernel invocations each.

use std::time::Duration;

use mgpu_bench::harness::{emit_bench_json, Stats};
use mgpu_gles::{FaultPlan, Gl};
use mgpu_gpgpu::{OptConfig, ResilienceConfig, ResilientRunner, SumJob};
use mgpu_tbdr::Platform;

const ITERATIONS: usize = 4;
const WARMUP_RUNS: usize = 5;

struct Regime {
    name: &'static str,
    plan: Option<FaultPlan>,
    verify: bool,
}

fn regimes() -> Vec<Regime> {
    vec![
        Regime {
            name: "clean",
            plan: None,
            verify: false,
        },
        Regime {
            name: "verify",
            plan: None,
            verify: true,
        },
        Regime {
            name: "faulted",
            plan: Some(FaultPlan::seeded(2027).p_ctx_loss(0.01)),
            verify: false,
        },
    ]
}

struct Outcome {
    stats: Stats,
    bytes: Vec<u8>,
    faults: usize,
    recoveries: usize,
}

fn run_regime(platform: &Platform, n: u32, runs: usize, regime: &Regime) -> Outcome {
    let a: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.31) % 0.9).collect();
    let b: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.17) % 0.08).collect();
    let cfg = OptConfig::baseline().without_swap();
    let mut gl = Gl::new(platform.clone(), n, n);
    if let Some(plan) = &regime.plan {
        gl.install_faults(plan.clone());
    }
    let mut job = SumJob::new(&cfg, n, &a, &b, ITERATIONS).dependent(true);
    let resilience = ResilienceConfig {
        verify_checksums: regime.verify,
        ..ResilienceConfig::default()
    };
    let mut runner = ResilientRunner::new(resilience);

    let mut bytes = Vec::new();
    let mut recoveries = 0usize;
    for _ in 0..WARMUP_RUNS {
        bytes = runner.run(&mut gl, &mut job).expect("warm-up run succeeds");
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = gl.elapsed();
        bytes = runner
            .run(&mut gl, &mut job)
            .expect("measured run succeeds");
        gl.finish();
        recoveries += runner.events().len();
        let dt = gl.elapsed() - t0;
        samples.push(Duration::from_nanos(dt.as_nanos()));
    }
    Outcome {
        stats: Stats::from_samples(&samples),
        bytes,
        faults: gl.fault_trail().len(),
        recoveries,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u32 = args.and_parse(32);
    let runs: usize = args.and_parse(120);

    println!("chaos: resilient sum({n}x{n}) x{ITERATIONS}, {runs} measured runs per regime");
    for platform in [Platform::videocore_iv(), Platform::sgx_545()] {
        let mut clean_bytes: Option<Vec<u8>> = None;
        let mut clean_mean = Duration::ZERO;
        for regime in regimes() {
            let out = run_regime(&platform, n, runs, &regime);
            match &clean_bytes {
                None => {
                    clean_bytes = Some(out.bytes.clone());
                    clean_mean = out.stats.mean;
                }
                Some(want) => assert_eq!(
                    &out.bytes, want,
                    "{} bytes diverged from clean run",
                    regime.name
                ),
            }
            let overhead = if clean_mean.as_nanos() > 0 {
                out.stats.mean.as_secs_f64() / clean_mean.as_secs_f64() - 1.0
            } else {
                0.0
            };
            println!(
                "  {}/{}: {} faults injected, {} recovery actions, overhead {:+.1}%",
                platform.name,
                regime.name,
                out.faults,
                out.recoveries,
                overhead * 100.0
            );
            emit_bench_json(
                "chaos_recovery",
                &format!("{}/{}", platform.name, regime.name),
                &out.stats,
            );
        }
    }
}

/// Tiny argv helper: parse the next argument or fall back.
trait AndParse {
    fn and_parse<T: std::str::FromStr>(&mut self, default: T) -> T;
}

impl AndParse for std::iter::Skip<std::env::Args> {
    fn and_parse<T: std::str::FromStr>(&mut self, default: T) -> T {
        self.next().and_then(|s| s.parse().ok()).unwrap_or(default)
    }
}
