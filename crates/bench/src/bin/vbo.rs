//! Regenerates the VBO memory-hint sweep the paper describes in §V-B text
//! ("the plot is omitted for space limitations").

use mgpu_bench::experiments::vbo;
use mgpu_bench::setup::Protocol;
use mgpu_bench::table;
use mgpu_tbdr::Platform;

fn main() {
    let protocol = Protocol::default();
    println!("VBO memory hints — sum speedup over client-side vertex arrays");
    println!("paper: \"VBO improve sum performance in both platforms up to 1.5%");
    println!("        depending on the memory hint provided\"\n");

    let mut rows = Vec::new();
    for platform in Platform::paper_pair() {
        let r = vbo::run(&platform, &protocol).expect("vbo experiment");
        rows.push(vec![
            r.platform.clone(),
            format!("{:+.2}%", (r.static_draw - 1.0) * 100.0),
            format!("{:+.2}%", (r.dynamic_draw - 1.0) * 100.0),
            format!("{:+.2}%", (r.stream_draw - 1.0) * 100.0),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["platform", "STATIC_DRAW", "DYNAMIC_DRAW", "STREAM_DRAW"],
            &rows
        )
    );
}
