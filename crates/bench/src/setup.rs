//! Shared measurement plumbing for the experiment modules.
//!
//! Measurements run the operators in **timing-only** mode (functional pixel
//! execution off) at the paper's full 1024×1024 size: the analytic TBDR
//! scheduler makes simulating the 10 000-iteration protocol cheap, while
//! functional correctness is covered separately by the test suite at
//! smaller sizes.

use mgpu_gles::Gl;
use mgpu_gpgpu::{GpgpuError, OptConfig, Range, Sgemm, Sum};
use mgpu_tbdr::{Platform, SimTime};
use mgpu_workloads::{random_matrix, Matrix};

/// The paper's matrix dimension.
pub const PAPER_N: u32 = 1024;

/// Iterations used to reach and measure the steady state. The paper runs
/// the body 10 000 times; the analytic scheduler converges within tens of
/// iterations, so these defaults keep the harness fast while measuring the
/// same steady-state rate.
#[derive(Debug, Clone, Copy)]
pub struct Protocol {
    /// Matrix dimension.
    pub n: u32,
    /// Warm-up iterations (fill the deferred pipeline).
    pub warmup: usize,
    /// Measured iterations.
    pub iters: usize,
}

impl Default for Protocol {
    fn default() -> Self {
        Protocol {
            n: PAPER_N,
            warmup: 20,
            iters: 100,
        }
    }
}

impl Protocol {
    /// A smaller protocol for the expensive multi-pass sgemm sweeps.
    #[must_use]
    pub fn sgemm() -> Self {
        Protocol {
            n: PAPER_N,
            warmup: 3,
            iters: 8,
        }
    }
}

/// The paper's random input pair, seeded deterministically.
#[must_use]
pub fn paper_matrices(n: u32) -> (Matrix, Matrix) {
    (
        random_matrix(n as usize, 2017, 0.0, 1.0),
        random_matrix(n as usize, 2016, 0.0, 1.0),
    )
}

/// Extra modes of the `sum` benchmark used by individual figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumMode {
    /// Chain iterations (the artificial-dependency variant of Fig. 4a).
    pub dependent: bool,
    /// Re-upload inputs every iteration (the Fig. 5 streaming mode).
    pub reupload: bool,
}

/// Steady-state simulated time per `sum` kernel invocation.
///
/// # Errors
///
/// Propagates operator construction/run failures.
pub fn sum_period(
    platform: &Platform,
    cfg: &OptConfig,
    mode: SumMode,
    protocol: &Protocol,
) -> Result<SimTime, GpgpuError> {
    let n = protocol.n;
    let (a, b) = paper_matrices(n);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_functional(false);
    let mut sum = Sum::builder(n)
        .dependent(mode.dependent)
        .reupload(mode.reupload)
        .range_out(Range::new(0.0, 2.0))
        .build(&mut gl, cfg, a.data(), b.data())?;
    mgpu_gpgpu::steady_period(&mut gl, protocol.warmup, protocol.iters, |gl| sum.step(gl))
}

/// Steady-state simulated time per full `sgemm` multiplication
/// (`n / block` passes).
///
/// # Errors
///
/// Propagates operator construction/run failures — including shader-limit
/// rejections for oversized blocks (check
/// [`GpgpuError::is_shader_limit`]).
pub fn sgemm_period(
    platform: &Platform,
    cfg: &OptConfig,
    block: u32,
    protocol: &Protocol,
) -> Result<SimTime, GpgpuError> {
    let n = protocol.n;
    let (a, b) = paper_matrices(n);
    let mut gl = Gl::new(platform.clone(), n, n);
    gl.set_functional(false);
    let mut sgemm = Sgemm::new(&mut gl, cfg, n, block, a.data(), b.data())?;
    mgpu_gpgpu::steady_period(&mut gl, protocol.warmup, protocol.iters, |gl| {
        sgemm.multiply(gl)
    })
}

/// The optimised configuration for each render-target strategy, following
/// the paper's incremental methodology ("applying the next optimisation on
/// the best performing one"):
///
/// * **texture rendering** pairs with dropping `eglSwapBuffers` entirely
///   (maximum launch rate; nothing needs the window surface);
/// * **framebuffer rendering** *requires* swapping — `eglSwapBuffers` is
///   what alternates the double-buffered surfaces so the copy out of one
///   surface overlaps rendering into the other — so it pairs with
///   `eglSwapInterval(0)`.
#[must_use]
pub fn best_config(target: mgpu_gpgpu::RenderStrategy) -> OptConfig {
    match target {
        mgpu_gpgpu::RenderStrategy::Texture => OptConfig::baseline()
            .without_swap()
            .with_texture_rendering(),
        mgpu_gpgpu::RenderStrategy::Framebuffer => OptConfig::baseline()
            .with_swap_interval_0()
            .with_framebuffer_rendering(),
    }
}
