//! Minimal fixed-width text tables for the harness binaries.

/// Renders rows as a fixed-width table with a header and a rule.
///
/// # Examples
///
/// ```
/// let t = mgpu_bench::table::render(
///     &["config", "speedup"],
///     &[vec!["baseline".into(), "1.00".into()]],
/// );
/// assert!(t.contains("baseline"));
/// assert!(t.lines().count() >= 3);
/// ```
#[must_use]
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<width$}", width = widths[i]));
        }
        line.trim_end().to_owned()
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let rule_len = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a speedup with two decimals, e.g. `3.47x`.
#[must_use]
pub fn speedup_cell(s: f64) -> String {
    format!("{s:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let t = render(
            &["a", "bee"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     "));
        assert!(lines[2].starts_with("x     "));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(speedup_cell(16.277), "16.28x");
    }
}
