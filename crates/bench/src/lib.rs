//! # mgpu-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V):
//! one module per figure under [`experiments`], shared measurement
//! plumbing in [`setup`], and plain-text table rendering in [`table`].
//!
//! Binaries (`cargo run -p mgpu-bench --bin figN`) print the paper-style
//! rows; the bench targets (`cargo bench -p mgpu-bench`) wrap the same
//! functions in the in-tree [`harness`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod harness;
pub mod setup;
pub mod table;
