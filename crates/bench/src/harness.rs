//! A minimal wall-clock benchmark harness with a criterion-shaped API.
//!
//! The workspace builds hermetically (no registry access), so the bench
//! targets cannot link the real `criterion` crate. This module provides
//! the narrow subset they use — `benchmark_group` / `sample_size` /
//! `bench_function` / `Bencher::iter` — timed with [`std::time::Instant`]
//! and reported two ways per benchmark:
//!
//! * a human one-liner with mean / median / p95 / min / max;
//! * a machine-readable `BENCH {...}` JSON line (see [`emit_bench_json`])
//!   so the perf trajectory can be scraped and tracked across commits.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Summary statistics over one benchmark's timed samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Arithmetic mean per iteration.
    pub mean: Duration,
    /// Median (50th percentile) per iteration.
    pub median: Duration,
    /// 95th percentile per iteration (nearest-rank).
    pub p95: Duration,
    /// 99th percentile per iteration (nearest-rank) — the tail-latency
    /// figure service-level gates compare.
    pub p99: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
    /// Number of timed samples.
    pub samples: usize,
}

impl Stats {
    /// Computes summary statistics; an empty sample set yields all zeros.
    #[must_use]
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Stats {
                mean: Duration::ZERO,
                median: Duration::ZERO,
                p95: Duration::ZERO,
                p99: Duration::ZERO,
                min: Duration::ZERO,
                max: Duration::ZERO,
                samples: 0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let total: Duration = sorted.iter().sum();
        // Nearest-rank percentiles: ceil(p * n) - 1, clamped into range.
        let rank = |p: f64| -> Duration {
            let r = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[r - 1]
        };
        Stats {
            mean: total / n as u32,
            median: rank(0.50),
            p95: rank(0.95),
            p99: rank(0.99),
            min: sorted[0],
            max: sorted[n - 1],
            samples: n,
        }
    }

    /// Computes summary statistics from nanosecond samples — the form
    /// per-job **simulated** latencies arrive in (service records carry
    /// `SimTime`, not wall-clock `Duration`).
    #[must_use]
    pub fn from_nanos(samples_ns: &[u64]) -> Self {
        let samples: Vec<Duration> = samples_ns
            .iter()
            .map(|&ns| Duration::from_nanos(ns))
            .collect();
        Stats::from_samples(&samples)
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats one machine-readable benchmark record: a single line starting
/// with `BENCH ` followed by a JSON object with nanosecond statistics.
/// Durations beyond ~584 years saturate at `u64::MAX` nanoseconds.
#[must_use]
pub fn bench_json_line(group: &str, id: &str, stats: &Stats) -> String {
    let ns = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    format!(
        "BENCH {{\"group\":\"{}\",\"id\":\"{}\",\"samples\":{},\"mean_ns\":{},\"median_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"min_ns\":{},\"max_ns\":{}}}",
        json_escape(group),
        json_escape(id),
        stats.samples,
        ns(stats.mean),
        ns(stats.median),
        ns(stats.p95),
        ns(stats.p99),
        ns(stats.min),
        ns(stats.max),
    )
}

/// Prints the human summary line and the `BENCH {...}` JSON line for one
/// benchmark. Bench bins that do their own timing loops (rather than going
/// through [`Criterion`]) call this directly so all output stays scrapable
/// by the same tooling.
pub fn emit_bench_json(group: &str, id: &str, stats: &Stats) {
    println!(
        "  {group}/{id}: mean {:?} median {:?} p95 {:?} p99 {:?} min {:?} max {:?} ({} samples)",
        stats.mean, stats.median, stats.p95, stats.p99, stats.min, stats.max, stats.samples
    );
    println!("{}", bench_json_line(group, id, stats));
}

/// Entry point object handed to each bench target's `bench` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark, printing the summary statistics and the
    /// machine-readable `BENCH {...}` line.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let stats = Stats::from_samples(&b.samples);
        emit_bench_json(&self.name, &id, &stats);
    }

    /// Ends the group (parity with criterion's API; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once, recording its wall-clock duration as one sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_samples() {
        let ms = Duration::from_millis;
        let samples: Vec<Duration> = (1..=10).map(ms).collect();
        let s = Stats::from_samples(&samples);
        assert_eq!(s.samples, 10);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(10));
        assert_eq!(s.median, ms(5)); // nearest-rank: ceil(0.5 * 10) = 5
        assert_eq!(s.p95, ms(10)); // ceil(0.95 * 10) = 10
        assert_eq!(s.p99, ms(10)); // ceil(0.99 * 10) = 10
        assert_eq!(s.mean, Duration::from_micros(5500));
    }

    /// Percentiles against hand-computed nearest-rank values on a sample
    /// set large enough to split p95 from p99 from max.
    #[test]
    fn percentiles_match_hand_computed_ranks() {
        // 200 samples: 1ns..=200ns. Nearest-rank: p50 = sample #100,
        // p95 = #190, p99 = #198 (ceil(0.99 * 200)).
        let ns: Vec<u64> = (1..=200).collect();
        let s = Stats::from_nanos(&ns);
        assert_eq!(s.samples, 200);
        assert_eq!(s.median, Duration::from_nanos(100));
        assert_eq!(s.p95, Duration::from_nanos(190));
        assert_eq!(s.p99, Duration::from_nanos(198));
        assert_eq!(s.max, Duration::from_nanos(200));
        // Order must not matter.
        let mut shuffled = ns.clone();
        shuffled.reverse();
        shuffled.swap(3, 170);
        assert_eq!(Stats::from_nanos(&shuffled), s);
        // A skewed tail: 99 fast samples and one slow one — p95 already
        // sits in the fast cluster, p99 lands on the outlier.
        let mut tail = vec![10u64; 99];
        tail.push(1_000_000);
        let t = Stats::from_nanos(&tail);
        assert_eq!(t.p95, Duration::from_nanos(10));
        assert_eq!(t.p99, Duration::from_nanos(10)); // ceil(0.99*100) = 99
        assert_eq!(t.max, Duration::from_micros(1000));
        let mut tail2 = vec![10u64; 98];
        tail2.extend([500_000, 1_000_000]);
        let t2 = Stats::from_nanos(&tail2);
        assert_eq!(t2.p99, Duration::from_nanos(500_000)); // rank 99 of 100
    }

    #[test]
    fn stats_of_empty_and_single() {
        let s = Stats::from_samples(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean, Duration::ZERO);
        let one = Stats::from_samples(&[Duration::from_nanos(42)]);
        assert_eq!(one.median, Duration::from_nanos(42));
        assert_eq!(one.p95, Duration::from_nanos(42));
    }

    #[test]
    fn bench_line_is_valid_shape() {
        let s = Stats::from_samples(&[Duration::from_nanos(100), Duration::from_nanos(200)]);
        let line = bench_json_line("g", "sum/n=64", &s);
        assert!(line.starts_with("BENCH {\"group\":\"g\""));
        assert!(line.contains("\"id\":\"sum/n=64\""));
        assert!(line.contains("\"samples\":2"));
        assert!(line.contains("\"min_ns\":100"));
        assert!(line.contains("\"max_ns\":200"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn json_escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
