//! A minimal wall-clock benchmark harness with a criterion-shaped API.
//!
//! The workspace builds hermetically (no registry access), so the bench
//! targets cannot link the real `criterion` crate. This module provides
//! the narrow subset they use — `benchmark_group` / `sample_size` /
//! `bench_function` / `Bencher::iter` — timed with [`std::time::Instant`]
//! and reported as a one-line summary per benchmark.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Entry point object handed to each bench target's `bench` function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark and prints mean / min / max per iteration.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // One untimed warm-up pass, then the timed samples.
        f(&mut b);
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let mean = total / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {}/{id}: mean {mean:?} min {min:?} max {max:?} ({n} samples)",
            self.name
        );
    }

    /// Ends the group (parity with criterion's API; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once, recording its wall-clock duration as one sample.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}
