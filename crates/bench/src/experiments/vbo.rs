//! §V-B (text) — vertex buffer objects and memory hints.
//!
//! The paper: "Vertex Buffer Objects (VBO) improve sum performance in both
//! platforms up to 1.5% depending on the memory hint provided, however the
//! plot is omitted for space limitations." This module reconstructs that
//! omitted plot.

use mgpu_gles::BufferUsage;
use mgpu_gpgpu::{speedup, GpgpuError};
use mgpu_tbdr::Platform;

use mgpu_gpgpu::OptConfig;

use crate::setup::{sum_period, Protocol, SumMode};

/// Speedup of each vertex-sourcing choice over client arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct VboResult {
    /// Platform name.
    pub platform: String,
    /// VBO with `StaticDraw`.
    pub static_draw: f64,
    /// VBO with `DynamicDraw`.
    pub dynamic_draw: f64,
    /// VBO with `StreamDraw`.
    pub stream_draw: f64,
}

/// Runs the VBO-hint sweep for `sum` on one platform.
///
/// # Errors
///
/// Propagates operator failures.
pub fn run(platform: &Platform, protocol: &Protocol) -> Result<VboResult, GpgpuError> {
    // Measured with drained frames (swap interval 0): per-draw CPU costs
    // are visible there, matching the small effect the paper reports.
    let mode = SumMode::default();
    let base = OptConfig::baseline().with_swap_interval_0();
    let client = sum_period(platform, &base, mode, protocol)?;
    let with = |usage: BufferUsage| -> Result<f64, GpgpuError> {
        let t = sum_period(platform, &base.with_vbo(usage), mode, protocol)?;
        Ok(speedup(client, t))
    };
    Ok(VboResult {
        platform: platform.name.clone(),
        static_draw: with(BufferUsage::StaticDraw)?,
        dynamic_draw: with(BufferUsage::DynamicDraw)?,
        stream_draw: with(BufferUsage::StreamDraw)?,
    })
}
