//! Fig. 4a — framebuffer vs texture rendering.
//!
//! Compares the two render-target strategies for the optimised versions of
//! `sum` (independent and with artificial inter-pass dependencies) and
//! `sgemm` (block 16).
//!
//! Paper reference shapes: independent `sum` favours texture rendering by
//! ~3 orders of magnitude on the SGX (1/0.000447 ≈ 2237×) and ~1 order on
//! VideoCore; multi-pass `sgemm` favours the framebuffer on both
//! platforms; dependent `sum` favours texture on the SGX but the
//! framebuffer (DMA) on VideoCore.

use mgpu_gpgpu::{GpgpuError, OptConfig};
use mgpu_tbdr::{Platform, SimTime};

use crate::setup::{best_config, sgemm_period, sum_period, Protocol, SumMode};

/// The sgemm block size used (the paper's optimised kernel).
pub const BLOCK: u32 = 16;

/// Per-benchmark timings for both targets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetPair {
    /// Render-to-texture period.
    pub texture: SimTime,
    /// Framebuffer(+copy) period.
    pub framebuffer: SimTime,
}

impl TargetPair {
    /// How many times faster texture rendering is (>1: texture wins).
    #[must_use]
    pub fn texture_advantage(&self) -> f64 {
        self.framebuffer.as_secs_f64() / self.texture.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Fig. 4a results for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4a {
    /// Platform name.
    pub platform: String,
    /// Independent streaming `sum`.
    pub sum: TargetPair,
    /// `sum` with artificial dependencies between consecutive kernels.
    pub sum_dependent: TargetPair,
    /// Multi-pass `sgemm`, block 16.
    pub sgemm: TargetPair,
}

fn pair(run: impl Fn(&OptConfig) -> Result<SimTime, GpgpuError>) -> Result<TargetPair, GpgpuError> {
    use mgpu_gpgpu::RenderStrategy;
    Ok(TargetPair {
        texture: run(&best_config(RenderStrategy::Texture))?,
        framebuffer: run(&best_config(RenderStrategy::Framebuffer))?,
    })
}

/// Runs the Fig. 4a experiment on one platform.
///
/// # Errors
///
/// Propagates operator failures.
pub fn run(platform: &Platform, protocol: &Protocol) -> Result<Fig4a, GpgpuError> {
    let sum = pair(|cfg| sum_period(platform, cfg, SumMode::default(), protocol))?;
    let sum_dependent = pair(|cfg| {
        sum_period(
            platform,
            cfg,
            SumMode {
                dependent: true,
                reupload: false,
            },
            protocol,
        )
    })?;
    let sgemm_protocol = Protocol {
        n: protocol.n,
        ..Protocol::sgemm()
    };
    let sgemm = pair(|cfg| sgemm_period(platform, cfg, BLOCK, &sgemm_protocol))?;
    Ok(Fig4a {
        platform: platform.name.clone(),
        sum,
        sum_dependent,
        sgemm,
    })
}
