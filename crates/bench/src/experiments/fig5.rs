//! Fig. 5 — texture-memory reuse under both render targets.
//!
//! Compares fresh storage (`tex_image_2d` / `copy_tex_image_2d`) against
//! in-place reuse (`tex_sub_image_2d` / `copy_tex_sub_image_2d`) at block
//! size 16, with `sum` in its streaming mode (inputs re-uploaded every
//! iteration).
//!
//! Paper reference shapes (speedup of reuse over fresh): Fig. 5a (texture
//! rendering) — VideoCore `sum` ≈ +15%, SGX ≈ −2…7%; Fig. 5b (framebuffer
//! rendering) — no improvement on either platform, and SGX `sgemm` drops
//! to ≈ 0.70 from copy-destination false sharing.

use mgpu_gpgpu::{speedup, GpgpuError, OptConfig};
use mgpu_tbdr::Platform;

use crate::setup::{best_config, sgemm_period, sum_period, Protocol, SumMode};
use mgpu_gpgpu::RenderStrategy;

/// The block size of the paper's Fig. 5 (its caption: block size 16).
pub const BLOCK: u32 = 16;

/// Speedups of texture reuse over fresh allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Platform name.
    pub platform: String,
    /// `sum` (streaming re-upload mode), texture rendering.
    pub sum_texture: f64,
    /// `sgemm`, texture rendering.
    pub sgemm_texture: f64,
    /// `sum` (streaming re-upload mode), framebuffer rendering.
    pub sum_framebuffer: f64,
    /// `sgemm`, framebuffer rendering.
    pub sgemm_framebuffer: f64,
}

fn reuse_speedup_sum(
    platform: &Platform,
    base: OptConfig,
    reupload: bool,
    protocol: &Protocol,
) -> Result<f64, GpgpuError> {
    let mode = SumMode {
        dependent: false,
        reupload,
    };
    let fresh = sum_period(platform, &base, mode, protocol)?;
    let reused = sum_period(platform, &base.with_texture_reuse(), mode, protocol)?;
    Ok(speedup(fresh, reused))
}

fn reuse_speedup_sgemm(
    platform: &Platform,
    base: OptConfig,
    protocol: &Protocol,
) -> Result<f64, GpgpuError> {
    let fresh = sgemm_period(platform, &base, BLOCK, protocol)?;
    let reused = sgemm_period(platform, &base.with_texture_reuse(), BLOCK, protocol)?;
    Ok(speedup(fresh, reused))
}

/// Runs the Fig. 5a+5b experiment on one platform.
///
/// # Errors
///
/// Propagates operator failures.
pub fn run(platform: &Platform, protocol: &Protocol) -> Result<Fig5, GpgpuError> {
    let sgemm_protocol = Protocol {
        n: protocol.n,
        ..Protocol::sgemm()
    };
    Ok(Fig5 {
        platform: platform.name.clone(),
        // Fig. 5a concerns input-texture reuse: sum streams fresh inputs
        // every iteration so tex_image_2d vs tex_sub_image_2d matters.
        sum_texture: reuse_speedup_sum(
            platform,
            best_config(RenderStrategy::Texture),
            true,
            protocol,
        )?,
        sgemm_texture: reuse_speedup_sgemm(
            platform,
            best_config(RenderStrategy::Texture),
            &sgemm_protocol,
        )?,
        // Fig. 5b concerns the copy destination: inputs upload once, and
        // reuse toggles copy_tex_image_2d vs copy_tex_sub_image_2d.
        sum_framebuffer: reuse_speedup_sum(
            platform,
            best_config(RenderStrategy::Framebuffer),
            false,
            protocol,
        )?,
        sgemm_framebuffer: reuse_speedup_sgemm(
            platform,
            best_config(RenderStrategy::Framebuffer),
            &sgemm_protocol,
        )?,
    })
}
