//! Fig. 3 — effect of vsync for `sum` and `sgemm`.
//!
//! Speedups of three incremental synchronisation optimisations over the
//! baseline (texture rendering, `eglSwapBuffers` at the platform's default
//! interval): `eglSwapInterval(0)`, no `eglSwapBuffers`, and additionally
//! the fp24 kernel.
//!
//! Paper reference values: SGX sum 1.00 / 3.47 / 3.85; VideoCore sum
//! 9.22 / 16.11 / 16.28; SGX sgemm 1.00 / 1.00 / 1.13; VideoCore sgemm
//! 1.24 / 1.24 / 1.48.

use mgpu_gpgpu::{speedup, GpgpuError, OptConfig};
use mgpu_tbdr::Platform;

use crate::setup::{sgemm_period, sum_period, Protocol, SumMode};

/// The sgemm block size the paper's Fig. 3 uses (its optimised kernel).
pub const BLOCK: u32 = 16;

/// Speedups of the three configurations over baseline, for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig3Row {
    /// `eglSwapInterval(0)` speedup.
    pub interval0: f64,
    /// No `eglSwapBuffers` speedup.
    pub no_swap: f64,
    /// No `eglSwapBuffers` + fp24 kernel speedup.
    pub no_swap_fp24: f64,
}

/// Fig. 3 for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Platform {
    /// Platform name.
    pub platform: String,
    /// `sum` speedups.
    pub sum: Fig3Row,
    /// `sgemm` speedups.
    pub sgemm: Fig3Row,
}

/// Runs the Fig. 3 experiment on one platform.
///
/// # Errors
///
/// Propagates operator failures.
pub fn run(platform: &Platform, protocol: &Protocol) -> Result<Fig3Platform, GpgpuError> {
    let configs = [
        OptConfig::baseline(),
        OptConfig::baseline().with_swap_interval_0(),
        OptConfig::baseline().without_swap(),
        OptConfig::baseline().without_swap().with_fp24(),
    ];

    let mode = SumMode::default();
    let mut sum_t = Vec::new();
    for cfg in &configs {
        sum_t.push(sum_period(platform, cfg, mode, protocol)?);
    }
    let sgemm_protocol = Protocol {
        n: protocol.n,
        ..Protocol::sgemm()
    };
    let mut sgemm_t = Vec::new();
    for cfg in &configs {
        sgemm_t.push(sgemm_period(platform, cfg, BLOCK, &sgemm_protocol)?);
    }

    Ok(Fig3Platform {
        platform: platform.name.clone(),
        sum: Fig3Row {
            interval0: speedup(sum_t[0], sum_t[1]),
            no_swap: speedup(sum_t[0], sum_t[2]),
            no_swap_fp24: speedup(sum_t[0], sum_t[3]),
        },
        sgemm: Fig3Row {
            interval0: speedup(sgemm_t[0], sgemm_t[1]),
            no_swap: speedup(sgemm_t[0], sgemm_t[2]),
            no_swap_fp24: speedup(sgemm_t[0], sgemm_t[3]),
        },
    })
}
