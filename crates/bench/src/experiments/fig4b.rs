//! Fig. 4b — blocking in `sgemm`.
//!
//! Sweeps the block size over {1, 2, 4, 8, 16} for both render targets on
//! both platforms, and confirms that block 32 fails shader compilation
//! (the paper: "higher values lead to crashes and shader compilation
//! failures").
//!
//! Paper reference shapes: performance increases with block size on both
//! platforms; on the SGX, framebuffer rendering is much slower than
//! texture rendering for small blocks but overtakes once the kernel
//! outlasts the copy (block ≥ 4–8); on VideoCore the DMA engine keeps the
//! framebuffer ahead at every block size.

use mgpu_gpgpu::GpgpuError;
use mgpu_tbdr::{Platform, SimTime};

use crate::setup::{best_config, sgemm_period, Protocol};
use mgpu_gpgpu::RenderStrategy;

/// Block sizes the paper sweeps.
pub const BLOCKS: [u32; 5] = [1, 2, 4, 8, 16];

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockPoint {
    /// Block size.
    pub block: u32,
    /// Texture-rendering time per multiplication.
    pub texture: SimTime,
    /// Framebuffer-rendering time per multiplication.
    pub framebuffer: SimTime,
}

/// Fig. 4b results for one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4b {
    /// Platform name.
    pub platform: String,
    /// One point per block size.
    pub points: Vec<BlockPoint>,
    /// The driver-style error message block 32 produces.
    pub block32_error: String,
}

/// Runs the Fig. 4b experiment on one platform.
///
/// # Errors
///
/// Propagates operator failures (other than the expected block-32 one).
pub fn run(platform: &Platform, protocol: &Protocol) -> Result<Fig4b, GpgpuError> {
    let protocol = Protocol {
        n: protocol.n,
        ..Protocol::sgemm()
    };
    let mut points = Vec::new();
    for block in BLOCKS {
        let texture = sgemm_period(
            platform,
            &best_config(RenderStrategy::Texture),
            block,
            &protocol,
        )?;
        let framebuffer = sgemm_period(
            platform,
            &best_config(RenderStrategy::Framebuffer),
            block,
            &protocol,
        )?;
        points.push(BlockPoint {
            block,
            texture,
            framebuffer,
        });
    }
    // Block 32 must fail with a shader-limit error.
    let block32_error = match sgemm_period(
        platform,
        &best_config(RenderStrategy::Texture),
        32,
        &protocol,
    ) {
        Err(e) if e.is_shader_limit() => e.to_string(),
        Err(e) => return Err(e),
        Ok(_) => {
            return Err(GpgpuError::Config(
                "block 32 unexpectedly compiled; platform limits too loose".to_owned(),
            ))
        }
    };
    Ok(Fig4b {
        platform: platform.name.clone(),
        points,
        block32_error,
    })
}
