//! One module per paper figure.

pub mod fig3;
pub mod fig4a;
pub mod fig4b;
pub mod fig5;
pub mod vbo;
