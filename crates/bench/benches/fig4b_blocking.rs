//! Bench target around the Fig. 4b experiment (blocking in sgemm).

use mgpu_bench::experiments::fig4b;
use mgpu_bench::harness::Criterion;
use mgpu_bench::setup::{best_config, sgemm_period, Protocol};
use mgpu_gpgpu::RenderStrategy;
use mgpu_tbdr::Platform;

fn bench(c: &mut Criterion) {
    let protocol = Protocol::default();
    for p in Platform::paper_pair() {
        let r = fig4b::run(&p, &protocol).expect("fig4b");
        let summary: Vec<String> = r
            .points
            .iter()
            .map(|pt| {
                format!(
                    "b{}={:.2}",
                    pt.block,
                    pt.framebuffer.as_secs_f64() / pt.texture.as_secs_f64()
                )
            })
            .collect();
        println!(
            "fig4b {}: FB/tex {} ; block32: {}",
            r.platform,
            summary.join(" "),
            r.block32_error
        );
    }

    let mut group = c.benchmark_group("fig4b_blocking");
    group.sample_size(10);
    let small = Protocol {
        n: 256,
        warmup: 2,
        iters: 4,
    };
    for p in Platform::paper_pair() {
        for block in [1u32, 4, 16] {
            group.bench_function(format!("{}/sgemm_b{block}", p.name), |b| {
                b.iter(|| {
                    sgemm_period(&p, &best_config(RenderStrategy::Texture), block, &small)
                        .expect("sgemm period")
                });
            });
        }
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::default());
}
