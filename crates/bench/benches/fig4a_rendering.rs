//! Bench target around the Fig. 4a experiment (FB vs texture rendering).

use mgpu_bench::experiments::fig4a;
use mgpu_bench::harness::Criterion;
use mgpu_bench::setup::{best_config, sum_period, Protocol, SumMode};
use mgpu_gpgpu::RenderStrategy;
use mgpu_tbdr::Platform;

fn bench(c: &mut Criterion) {
    let protocol = Protocol::default();
    for p in Platform::paper_pair() {
        let r = fig4a::run(&p, &protocol).expect("fig4a");
        println!(
            "fig4a {}: sum tex-advantage {:.1}x (paper SGX ~2237x / VC ~10x), \
             dep-sum {:.3}x, sgemm {:.3}x (FB wins when <1)",
            r.platform,
            r.sum.texture_advantage(),
            r.sum_dependent.texture_advantage(),
            r.sgemm.texture_advantage()
        );
    }

    let mut group = c.benchmark_group("fig4a_rendering");
    group.sample_size(10);
    let small = Protocol {
        n: 256,
        warmup: 5,
        iters: 20,
    };
    for p in Platform::paper_pair() {
        for target in [RenderStrategy::Texture, RenderStrategy::Framebuffer] {
            group.bench_function(format!("{}/sum/{target:?}", p.name), |b| {
                b.iter(|| {
                    sum_period(&p, &best_config(target), SumMode::default(), &small)
                        .expect("sum period")
                });
            });
        }
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::default());
}
