//! Bench target around the Fig. 5a/5b experiments (texture reuse).

use mgpu_bench::experiments::fig5;
use mgpu_bench::harness::Criterion;
use mgpu_bench::setup::{best_config, sum_period, Protocol, SumMode};
use mgpu_gpgpu::RenderStrategy;
use mgpu_tbdr::Platform;

fn bench(c: &mut Criterion) {
    let protocol = Protocol::default();
    for p in Platform::paper_pair() {
        let r = fig5::run(&p, &protocol).expect("fig5");
        println!(
            "fig5 {}: 5a tex sum {:.3} sgemm {:.3} | 5b fb sum {:.3} sgemm {:.3} \
             (paper: VC sum ~1.15, SGX sgemm-fb ~0.70)",
            r.platform, r.sum_texture, r.sgemm_texture, r.sum_framebuffer, r.sgemm_framebuffer
        );
    }

    let mut group = c.benchmark_group("fig5_reuse");
    group.sample_size(10);
    let small = Protocol {
        n: 256,
        warmup: 5,
        iters: 20,
    };
    let mode = SumMode {
        dependent: false,
        reupload: true,
    };
    for p in Platform::paper_pair() {
        for (name, reuse) in [("fresh", false), ("reuse", true)] {
            let mut cfg = best_config(RenderStrategy::Texture);
            if reuse {
                cfg = cfg.with_texture_reuse();
            }
            group.bench_function(format!("{}/sum_upload_{name}", p.name), |b| {
                b.iter(|| sum_period(&p, &cfg, mode, &small).expect("sum period"));
            });
        }
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::default());
}
