//! Bench target around the Fig. 3 experiment (effect of vsync).
//!
//! Prints the regenerated figure once, then benchmarks the simulation
//! itself (host time to simulate the steady-state protocol).

use mgpu_bench::experiments::fig3;
use mgpu_bench::harness::Criterion;
use mgpu_bench::setup::{sum_period, Protocol, SumMode};
use mgpu_gpgpu::OptConfig;
use mgpu_tbdr::Platform;

fn bench(c: &mut Criterion) {
    // Regenerate the figure (paper-vs-measured) once per bench run.
    let protocol = Protocol::default();
    for p in Platform::paper_pair() {
        let r = fig3::run(&p, &protocol).expect("fig3");
        println!(
            "fig3 {}: sum {:.2}/{:.2}/{:.2} sgemm {:.2}/{:.2}/{:.2} \
             (paper: sum SGX 1.00/3.47/3.85 VC 9.22/16.11/16.28; \
             sgemm SGX 1.00/1.00/1.13 VC 1.24/1.24/1.48)",
            r.platform,
            r.sum.interval0,
            r.sum.no_swap,
            r.sum.no_swap_fp24,
            r.sgemm.interval0,
            r.sgemm.no_swap,
            r.sgemm.no_swap_fp24
        );
    }

    let mut group = c.benchmark_group("fig3_vsync");
    group.sample_size(10);
    let small = Protocol {
        n: 256,
        warmup: 5,
        iters: 20,
    };
    for p in Platform::paper_pair() {
        for (name, cfg) in [
            ("baseline", OptConfig::baseline()),
            ("interval0", OptConfig::baseline().with_swap_interval_0()),
            ("noswap", OptConfig::baseline().without_swap()),
            (
                "noswap_fp24",
                OptConfig::baseline().without_swap().with_fp24(),
            ),
        ] {
            group.bench_function(format!("{}/{name}", p.name), |b| {
                b.iter(|| sum_period(&p, &cfg, SumMode::default(), &small).expect("sum period"));
            });
        }
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::default());
}
