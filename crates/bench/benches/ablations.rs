//! Ablation benches for the design choices DESIGN.md calls out:
//! deferred overlap, the DMA engine, MAD fusion and tile size.

use mgpu_bench::harness::Criterion;
use mgpu_bench::setup::{best_config, sgemm_period, sum_period, Protocol, SumMode};
use mgpu_gpgpu::RenderStrategy;
use mgpu_tbdr::{Bandwidth, Platform};

fn bench(c: &mut Criterion) {
    let protocol = Protocol::default();
    let small = Protocol {
        n: 256,
        warmup: 5,
        iters: 20,
    };

    // Ablation 1: deferred-pipeline overlap off — quantifies how much of
    // the no-swap win is pipelining vs skipping the vsync wait.
    {
        let vc = Platform::videocore_iv();
        let no_overlap = vc
            .to_builder()
            .deferred(false)
            .name("VC no-deferred")
            .build();
        let cfg = best_config(RenderStrategy::Texture);
        let with_t = sum_period(&vc, &cfg, SumMode::default(), &protocol).expect("period");
        let without_t =
            sum_period(&no_overlap, &cfg, SumMode::default(), &protocol).expect("period");
        println!(
            "ablation deferred-overlap (VC sum noswap): with {} without {} ({:.2}x from overlap)",
            with_t,
            without_t,
            without_t.as_secs_f64() / with_t.as_secs_f64()
        );
    }

    // Ablation 2: VideoCore without its DMA engine — the single mechanism
    // behind the platform divergence in Fig. 4a/4b/5b.
    {
        let vc = Platform::videocore_iv();
        let no_dma = vc
            .to_builder()
            .blocking_copy(Bandwidth::mebi_per_sec(1.31))
            .name("VC no-DMA")
            .build();
        let cfg = best_config(RenderStrategy::Framebuffer);
        let with_t = sum_period(&vc, &cfg, SumMode::default(), &protocol).expect("period");
        let without_t = sum_period(&no_dma, &cfg, SumMode::default(), &protocol).expect("period");
        println!(
            "ablation dma (VC sum FB): with {} without {} ({:.1}x from DMA)",
            with_t,
            without_t,
            without_t.as_secs_f64() / with_t.as_secs_f64()
        );
    }

    // Ablation 3: MAD fusion off — kernel-code optimisation contribution.
    {
        let sgx = Platform::sgx_545();
        let cfg = best_config(RenderStrategy::Texture);
        let fused = sum_period(&sgx, &cfg, SumMode::default(), &protocol).expect("period");
        let plain = sum_period(
            &sgx,
            &cfg.without_mad_fusion(),
            SumMode::default(),
            &protocol,
        )
        .expect("period");
        println!(
            "ablation mad-fusion (SGX sum): fused {} plain {} ({:+.1}% from fusion)",
            fused,
            plain,
            (plain.as_secs_f64() / fused.as_secs_f64() - 1.0) * 100.0
        );
    }

    // Ablation 4: tile-size sweep on the sgemm copy path.
    {
        let cfg = best_config(RenderStrategy::Framebuffer);
        for tile in [16u32, 32, 64] {
            let p = Platform::sgx_545()
                .to_builder()
                .tile_size(tile, tile)
                .name(&format!("SGX {tile}x{tile}"))
                .build();
            let t = sgemm_period(
                &p,
                &cfg,
                16,
                &Protocol {
                    n: protocol.n,
                    ..Protocol::sgemm()
                },
            )
            .expect("period");
            println!("ablation tile-size (sgemm FB, {tile}x{tile} tiles): {t}");
        }
    }

    // Criterion group: host-side cost of the ablated simulations.
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let vc = Platform::videocore_iv();
    let no_overlap = vc
        .to_builder()
        .deferred(false)
        .name("VC-no-deferred")
        .build();
    group.bench_function("deferred_on", |b| {
        let cfg = best_config(RenderStrategy::Texture);
        b.iter(|| sum_period(&vc, &cfg, SumMode::default(), &small).expect("period"));
    });
    group.bench_function("deferred_off", |b| {
        let cfg = best_config(RenderStrategy::Texture);
        b.iter(|| sum_period(&no_overlap, &cfg, SumMode::default(), &small).expect("period"));
    });
    group.finish();
}

fn main() {
    bench(&mut Criterion::default());
}
