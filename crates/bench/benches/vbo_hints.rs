//! Bench target around the VBO memory-hint sweep (§V-B text).

use mgpu_bench::experiments::vbo;
use mgpu_bench::harness::Criterion;
use mgpu_bench::setup::{sum_period, Protocol, SumMode};
use mgpu_gles::BufferUsage;
use mgpu_gpgpu::OptConfig;
use mgpu_tbdr::Platform;

fn bench(c: &mut Criterion) {
    let protocol = Protocol::default();
    for p in Platform::paper_pair() {
        let r = vbo::run(&p, &protocol).expect("vbo");
        println!(
            "vbo {}: static {:+.2}% dynamic {:+.2}% stream {:+.2}% (paper: up to ~1.5%)",
            r.platform,
            (r.static_draw - 1.0) * 100.0,
            (r.dynamic_draw - 1.0) * 100.0,
            (r.stream_draw - 1.0) * 100.0
        );
    }

    let mut group = c.benchmark_group("vbo_hints");
    group.sample_size(10);
    let small = Protocol {
        n: 256,
        warmup: 5,
        iters: 20,
    };
    let base = OptConfig::baseline().with_swap_interval_0();
    for p in Platform::paper_pair() {
        group.bench_function(format!("{}/client_arrays", p.name), |b| {
            b.iter(|| sum_period(&p, &base, SumMode::default(), &small).expect("period"));
        });
        group.bench_function(format!("{}/vbo_static", p.name), |b| {
            let cfg = base.with_vbo(BufferUsage::StaticDraw);
            b.iter(|| sum_period(&p, &cfg, SumMode::default(), &small).expect("period"));
        });
    }
    group.finish();
}

fn main() {
    bench(&mut Criterion::default());
}
