//! Property tests for the generators and the CPU references' edge
//! handling: seed determinism, dimension edges, border-clamp semantics
//! and blocked-vs-naive equivalences.

use mgpu_prop::run_cases;
use mgpu_workloads::{
    conv3x3_ref, jacobi_step_ref, random_image_rgba8, random_matrix, sep_blur3_ref,
    sgemm_blocked_ref, sgemm_ref, Matrix,
};

#[test]
fn same_seed_same_matrix_bytes() {
    run_cases(32, |rng| {
        let n = rng.usize_in(1, 33);
        let seed = rng.next_u64();
        let lo = rng.f32(-4.0, 0.0);
        let hi = lo + rng.f32(0.1, 4.0);
        let a = random_matrix(n, seed, lo, hi);
        let b = random_matrix(n, seed, lo, hi);
        assert_eq!(a, b);
        // And f32s are bitwise equal, not just PartialEq-equal.
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(a.data().iter().all(|v| (lo..hi).contains(v)));
    });
}

#[test]
fn same_seed_same_image_bytes() {
    run_cases(32, |rng| {
        let w = rng.usize_in(1, 48) as u32;
        let h = rng.usize_in(1, 48) as u32;
        let seed = rng.next_u64();
        assert_eq!(
            random_image_rgba8(w, h, seed),
            random_image_rgba8(w, h, seed)
        );
        assert_eq!(random_image_rgba8(w, h, seed).len(), (w * h * 4) as usize);
    });
}

#[test]
fn dimension_edge_cases_hold() {
    // 1×1 everything: references degenerate to scalars without panicking.
    let m = random_matrix(1, 7, 0.0, 1.0);
    assert_eq!(sgemm_ref(&m, &m).size(), 1);
    assert_eq!(sgemm_blocked_ref(&m, &m, 1).size(), 1);
    let u = Matrix::filled(1, 0.5);
    let f = Matrix::filled(1, 0.1);
    // With one cell, all four clamped neighbours are the centre itself.
    let next = jacobi_step_ref(&u, &f, 0.8);
    let relaxed = (0.5f32 + 0.5 + 0.5 + 0.5 + 0.1) * 0.25;
    assert!((next.get(0, 0) - (0.5 * 0.2 + relaxed * 0.8)).abs() < 1e-6);

    let img = random_image_rgba8(1, 1, 3);
    let mut id = [0.0f32; 9];
    id[4] = 1.0;
    let out = conv3x3_ref(&img, 1, 1, &id);
    assert_eq!(&out[..3], &img[..3]);
    assert_eq!(out[3], 255);

    // Zero-sized images are legal no-ops.
    assert!(conv3x3_ref(&[], 0, 0, &id).is_empty());
    assert!(sep_blur3_ref(&[], 0, 4, 1, true).is_empty());
}

/// A padded-image reference: materialise the clamped border explicitly,
/// convolve the interior with no clamping, and compare.
fn conv3x3_padded_ref(image: &[u8], w: usize, h: usize, weights: &[f32; 9]) -> Vec<u8> {
    let pw = w + 2;
    let ph = h + 2;
    let mut padded = vec![0u8; pw * ph * 4];
    for y in 0..ph {
        for x in 0..pw {
            let sx = (x as i64 - 1).clamp(0, w as i64 - 1) as usize;
            let sy = (y as i64 - 1).clamp(0, h as i64 - 1) as usize;
            padded[(y * pw + x) * 4..(y * pw + x) * 4 + 4]
                .copy_from_slice(&image[(sy * w + sx) * 4..(sy * w + sx) * 4 + 4]);
        }
    }
    let mut out = vec![0u8; image.len()];
    for y in 0..h {
        for x in 0..w {
            let mut acc = [0.0f32; 3];
            for (k, wt) in weights.iter().enumerate() {
                let sx = x + k % 3;
                let sy = y + k / 3;
                let idx = (sy * pw + sx) * 4;
                for c in 0..3 {
                    acc[c] += f32::from(padded[idx + c]) / 255.0 * wt;
                }
            }
            let o = (y * w + x) * 4;
            for c in 0..3 {
                out[o + c] = (acc[c].clamp(0.0, 1.0) * 255.0 + 0.5).floor() as u8;
            }
            out[o + 3] = 255;
        }
    }
    out
}

#[test]
fn conv_border_clamp_matches_naive_padded_reference() {
    run_cases(24, |rng| {
        let w = rng.usize_in(1, 12);
        let h = rng.usize_in(1, 12);
        let img = random_image_rgba8(w as u32, h as u32, rng.next_u64());
        let mut weights = [0.0f32; 9];
        for wt in &mut weights {
            *wt = rng.f32(0.0, 0.2);
        }
        assert_eq!(
            conv3x3_ref(&img, w as u32, h as u32, &weights),
            conv3x3_padded_ref(&img, w, h, &weights)
        );
    });
}

/// Jacobi over an explicitly padded grid (clamped border rows/columns
/// materialised), no clamping in the stencil loop.
fn jacobi_step_padded_ref(u: &Matrix, f: &Matrix, omega: f32) -> Matrix {
    let n = u.size();
    let p = n + 2;
    let mut padded = vec![0.0f32; p * p];
    for y in 0..p {
        for x in 0..p {
            let sx = (x as i64 - 1).clamp(0, n as i64 - 1) as usize;
            let sy = (y as i64 - 1).clamp(0, n as i64 - 1) as usize;
            padded[y * p + x] = u.get(sy, sx);
        }
    }
    let mut out = Matrix::filled(n, 0.0);
    for i in 0..n {
        for j in 0..n {
            let (pi, pj) = (i + 1, j + 1);
            let relaxed = (padded[(pi - 1) * p + pj]
                + padded[(pi + 1) * p + pj]
                + padded[pi * p + pj - 1]
                + padded[pi * p + pj + 1]
                + f.get(i, j))
                * 0.25;
            out.set(i, j, u.get(i, j) * (1.0 - omega) + relaxed * omega);
        }
    }
    out
}

#[test]
fn jacobi_boundary_rows_match_padded_reference() {
    run_cases(24, |rng| {
        let n = rng.usize_in(1, 16);
        let u = random_matrix(n, rng.next_u64(), -1.0, 1.0);
        let f = random_matrix(n, rng.next_u64(), -0.25, 0.25);
        let omega = rng.f32(0.1, 1.0);
        let a = jacobi_step_ref(&u, &f, omega);
        let b = jacobi_step_padded_ref(&u, &f, omega);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    });
}

#[test]
fn blocked_sgemm_with_full_block_is_naive_sgemm() {
    run_cases(16, |rng| {
        let n = *rng.pick(&[1usize, 2, 4, 8, 16]);
        let a = random_matrix(n, rng.next_u64(), 0.0, 1.0);
        let b = random_matrix(n, rng.next_u64(), 0.0, 1.0);
        let naive = sgemm_ref(&a, &b);
        let blocked = sgemm_blocked_ref(&a, &b, n);
        // block == n is a single chunk: same k-order, add of a zero
        // initial accumulator — bitwise equal on [0, 1) inputs.
        for (x, y) in naive.data().iter().zip(blocked.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    });
}

#[test]
fn blur_is_separably_consistent() {
    run_cases(16, |rng| {
        let n = rng.usize_in(2, 24) as u32;
        let img = random_image_rgba8(n, n, rng.next_u64());
        // A uniform image is a fixed point of the blur (weights sum to 1).
        let flat: Vec<u8> = img.chunks(4).flat_map(|_| [128u8, 64, 32, 255]).collect();
        let h = sep_blur3_ref(&flat, n, n, 1, true);
        assert_eq!(h, sep_blur3_ref(&h, n, n, 1, false));
        // Dilation beyond the clamp distance still terminates and clamps.
        let _ = sep_blur3_ref(&img, n, n, n * 2, true);
    });
}
