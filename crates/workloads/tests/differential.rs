//! The differential test matrix: every workload family's GPU output
//! compared against its CPU reference across fragment engines {scalar,
//! batched, compiled} × both platforms × tile-skip {on, off}, under each
//! family's declared error policy — plus a cross-point byte-identity
//! assertion that is independent of the CPU tolerance (engines are
//! bit-exact and functional results are platform-invariant, so all
//! twelve matrix points must produce the same bytes).

use mgpu_gles::{Engine, Gl};
use mgpu_gpgpu::OptConfig;
use mgpu_tbdr::Platform;
use mgpu_workloads::{
    run_workload, verify_output, DenseTraining, ErrorPolicy, GaussianPyramid, JacobiInpaint,
    Workload,
};

const ENGINES: [Engine; 3] = [Engine::Scalar, Engine::Batched, Engine::Compiled];

fn platforms() -> [Platform; 2] {
    [Platform::videocore_iv(), Platform::sgx_545()]
}

/// Runs `workload` at every matrix point, checks the declared policy at
/// each, and asserts all points agree byte-for-byte.
fn run_matrix(workload: &dyn Workload) {
    let cfg = OptConfig::baseline().without_swap();
    let mut all: Vec<(String, Vec<u8>)> = Vec::new();
    for platform in platforms() {
        for engine in ENGINES {
            for tile_skip in [false, true] {
                let point = format!("{}/{engine:?}/skip={tile_skip}", platform.name);
                let cfg = cfg.with_engine(engine).with_tile_skip(tile_skip);
                let mut gl = Gl::new(platform.clone(), workload.n(), workload.n());
                let bytes = run_workload(&mut gl, workload, &cfg)
                    .unwrap_or_else(|e| panic!("{point}: {e}"));
                verify_output(workload, &bytes).unwrap_or_else(|e| panic!("{point}: {e}"));
                all.push((point, bytes));
            }
        }
    }
    // Cross-engine (and cross-platform) byte identity, independent of the
    // CPU-reference tolerance.
    let (first_point, first) = &all[0];
    for (point, bytes) in &all[1..] {
        assert_eq!(
            bytes, first,
            "bytes diverged between matrix points {first_point} and {point}"
        );
    }
}

#[test]
fn pyramid_matches_reference_at_every_matrix_point() {
    run_matrix(&GaussianPyramid::new(16, 3, 11));
}

#[test]
fn jacobi_matches_reference_at_every_matrix_point() {
    run_matrix(&JacobiInpaint::new(16, 25, 12));
}

#[test]
fn training_matches_reference_at_every_matrix_point() {
    run_matrix(&DenseTraining::new(8, 4, 3, 13));
}

#[test]
fn training_block_sizes_all_verify() {
    // The tunable: every legal chunk size satisfies the same policy (the
    // reference reproduces each block's accumulation order).
    let cfg = OptConfig::baseline().without_swap();
    for block in [1u32, 2, 4, 8] {
        let w = DenseTraining::new(8, block, 2, 21);
        let mut gl = Gl::new(Platform::videocore_iv(), 8, 8);
        let bytes = run_workload(&mut gl, &w, &cfg).unwrap();
        verify_output(&w, &bytes).unwrap_or_else(|e| panic!("block {block}: {e}"));
    }
}

#[test]
fn declared_policies_are_the_advertised_ones() {
    // The matrix above is only meaningful if the policies stay as
    // documented: byte identity for the raw-RGBA8 pyramid, tolerances
    // for the re-encoding families.
    assert_eq!(
        GaussianPyramid::new(8, 2, 1).policy(),
        ErrorPolicy::ByteIdentity
    );
    assert!(matches!(
        JacobiInpaint::new(8, 5, 1).policy(),
        ErrorPolicy::Tolerance { .. }
    ));
    assert!(matches!(
        DenseTraining::new(8, 2, 1, 1).policy(),
        ErrorPolicy::Tolerance { .. }
    ));
}

#[test]
fn pyramid_under_framebuffer_rendering_still_byte_identical() {
    // The copy-out path (framebuffer strategy) must not perturb the raw
    // image bytes either.
    let w = GaussianPyramid::new(16, 2, 31);
    let cfg = OptConfig::baseline()
        .with_swap_interval_0()
        .with_framebuffer_rendering();
    let mut gl = Gl::new(Platform::sgx_545(), 16, 16);
    let bytes = run_workload(&mut gl, &w, &cfg).unwrap();
    verify_output(&w, &bytes).unwrap();
}
