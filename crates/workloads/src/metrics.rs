//! Error metrics for validating quantised GPU results.

/// Summary statistics of the element-wise error between two slices.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorStats {
    /// Maximum absolute error.
    pub max_abs: f32,
    /// Root-mean-square error.
    pub rms: f32,
    /// Index of the worst element.
    pub argmax: usize,
}

impl ErrorStats {
    /// Computes the error of `got` against `want`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or are zero.
    #[must_use]
    pub fn between(got: &[f32], want: &[f32]) -> Self {
        assert_eq!(got.len(), want.len(), "length mismatch");
        assert!(!got.is_empty(), "empty slices");
        let mut max_abs = 0.0f32;
        let mut argmax = 0usize;
        let mut sq = 0.0f64;
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let e = (g - w).abs();
            if e > max_abs {
                max_abs = e;
                argmax = i;
            }
            sq += f64::from(e) * f64::from(e);
        }
        ErrorStats {
            max_abs,
            rms: (sq / got.len() as f64).sqrt() as f32,
            argmax,
        }
    }
}

/// Maximum absolute element-wise error.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
#[must_use]
pub fn max_abs_error(got: &[f32], want: &[f32]) -> f32 {
    ErrorStats::between(got, want).max_abs
}

/// Root-mean-square element-wise error.
///
/// # Panics
///
/// Panics if lengths differ or are zero.
#[must_use]
pub fn rms_error(got: &[f32], want: &[f32]) -> f32 {
    ErrorStats::between(got, want).rms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_identify_worst_element() {
        let got = [1.0f32, 2.5, 3.0];
        let want = [1.0f32, 2.0, 3.1];
        let s = ErrorStats::between(&got, &want);
        assert_eq!(s.max_abs, 0.5);
        assert_eq!(s.argmax, 1);
        assert!(s.rms > 0.0 && s.rms < 0.5);
    }

    #[test]
    fn identical_slices_have_zero_error() {
        let v = [0.5f32; 10];
        assert_eq!(max_abs_error(&v, &v), 0.0);
        assert_eq!(rms_error(&v, &v), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = max_abs_error(&[1.0], &[1.0, 2.0]);
    }
}
