//! The inpainting-style Jacobi stencil solver: the weighted-Jacobi kernel
//! of `mgpu_gpgpu::kernels` iterated to a fixed count through the
//! pipeline's repeat mechanism — one compiled program, `iterations`
//! passes, the steady-state loop shape of the paper's 10 000-iteration
//! runs.

use mgpu_gpgpu::{kernels, Encoding, Pipeline, PipelineBuilder, Range, Source};

use super::{ErrorPolicy, Expected, Workload};
use crate::gen::{random_matrix, Matrix};
use crate::reference::jacobi_step_ref;

/// Relaxation factor — standard damped Jacobi.
const OMEGA: f32 = 0.8;
/// Source-term magnitude: small enough that the solution stays well
/// inside [`JacobiInpaint::range_u`] and encode clamping never fires.
const F_LO: f32 = -0.05;
const F_HI: f32 = 0.05;

/// A fixed-count weighted-Jacobi solve of `∇²u = -f` over a seeded random
/// source term, from `u₀ = 0`, with clamp-to-edge (zero-flux) boundaries.
///
/// Per-iteration RGBA8 re-encoding rounds differently from the CPU
/// reference's straight-through f32, so the declared policy is a
/// tolerance; cross-engine byte identity still holds exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JacobiInpaint {
    /// Grid dimension.
    pub n: u32,
    /// Iteration count (one pass each).
    pub iterations: u32,
    /// Source-term seed.
    pub seed: u64,
}

impl JacobiInpaint {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `iterations == 0`.
    #[must_use]
    pub fn new(n: u32, iterations: u32, seed: u64) -> Self {
        assert!(iterations > 0, "solver needs at least one iteration");
        JacobiInpaint {
            n,
            iterations,
            seed,
        }
    }

    /// The encoding range of `u` (and the final output).
    #[must_use]
    pub fn range_u(&self) -> Range {
        Range::new(-1.0, 1.0)
    }

    fn range_f(&self) -> Range {
        Range::new(F_LO, F_HI)
    }

    fn f(&self) -> Matrix {
        random_matrix(self.n as usize, self.seed, F_LO, F_HI)
    }
}

impl Workload for JacobiInpaint {
    fn name(&self) -> String {
        format!("jacobi n{} i{}", self.n, self.iterations)
    }

    fn n(&self) -> u32 {
        self.n
    }

    fn builder(&self) -> PipelineBuilder {
        let src = kernels::jacobi_kernel(Encoding::Fp32, &self.range_u(), &self.range_f(), OMEGA);
        let zeros = vec![0.0f32; (self.n * self.n) as usize];
        Pipeline::builder(self.n)
            .input("f", self.f().data(), self.range_f())
            .seed(&zeros, self.range_u())
            .pass(
                &src,
                &[
                    ("u_u", Source::Previous),
                    ("u_f", Source::Input("f".into())),
                ],
                &[("u_texel", 1.0 / self.n as f32)],
            )
            .repeats(self.iterations as usize)
    }

    fn expected(&self) -> Expected {
        let f = self.f();
        let mut u = Matrix::filled(self.n as usize, 0.0);
        for _ in 0..self.iterations {
            u = jacobi_step_ref(&u, &f, OMEGA);
        }
        Expected::Values {
            want: u.data().to_vec(),
            range: self.range_u(),
        }
    }

    fn policy(&self) -> ErrorPolicy {
        // Calibrated in tests/differential.rs: observed max_abs stays an
        // order of magnitude under these bounds at every matrix point.
        ErrorPolicy::Tolerance {
            max_abs: 1e-4,
            rms: 5e-5,
        }
    }
}
