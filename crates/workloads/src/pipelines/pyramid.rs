//! The separable-blur image pyramid — a computer-vision pipeline in the
//! style of mobile OpenCL vision accelerators: each level applies a
//! horizontal then a vertical 3-tap Gaussian pass, with the tap spacing
//! doubling per level (à trous) so deeper levels see a wider footprint
//! without resampling the `n`×`n` surface.

use mgpu_gpgpu::{PipelineBuilder, Source};

use super::kernels::blur3_kernel;
use super::{ErrorPolicy, Expected, Workload};
use crate::gen::random_image_rgba8;
use crate::reference::sep_blur3_ref;
use mgpu_gpgpu::Pipeline;

/// A `levels`-deep Gaussian image pyramid over a seeded random `n`×`n`
/// RGBA8 image (two blur passes per level).
///
/// Every pass works on raw RGBA8 with the same tap order and quantisation
/// as [`sep_blur3_ref`], so the declared policy is byte identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaussianPyramid {
    /// Image dimension.
    pub n: u32,
    /// Pyramid depth (pass count is `2 * levels`).
    pub levels: u32,
    /// Input-image seed.
    pub seed: u64,
}

impl GaussianPyramid {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0` or the dilation of the deepest level
    /// (`2^(levels-1)`) reaches the image dimension.
    #[must_use]
    pub fn new(n: u32, levels: u32, seed: u64) -> Self {
        assert!(levels > 0, "pyramid needs at least one level");
        assert!(
            1u32 << (levels - 1) < n,
            "deepest dilation must stay below the image size"
        );
        GaussianPyramid { n, levels, seed }
    }

    /// The input image this workload blurs.
    #[must_use]
    pub fn image(&self) -> Vec<u8> {
        random_image_rgba8(self.n, self.n, self.seed)
    }
}

impl Workload for GaussianPyramid {
    fn name(&self) -> String {
        format!("pyramid n{} l{}", self.n, self.levels)
    }

    fn n(&self) -> u32 {
        self.n
    }

    fn builder(&self) -> PipelineBuilder {
        let mut b = Pipeline::builder(self.n).input_raw("img", &self.image());
        for level in 0..self.levels {
            let dilation = 1u32 << level;
            let first = if level == 0 {
                Source::Input("img".into())
            } else {
                Source::Previous
            };
            b = b
                .pass(
                    &blur3_kernel(self.n, dilation, true),
                    &[("u_img", first)],
                    &[],
                )
                .pass(
                    &blur3_kernel(self.n, dilation, false),
                    &[("u_img", Source::Previous)],
                    &[],
                );
        }
        b
    }

    fn expected(&self) -> Expected {
        let mut img = self.image();
        for level in 0..self.levels {
            let dilation = 1u32 << level;
            img = sep_blur3_ref(&img, self.n, self.n, dilation, true);
            img = sep_blur3_ref(&img, self.n, self.n, dilation, false);
        }
        Expected::Bytes(img)
    }

    fn policy(&self) -> ErrorPolicy {
        ErrorPolicy::ByteIdentity
    }
}
