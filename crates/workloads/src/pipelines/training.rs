//! The on-device dense-layer training loop, in the style of
//! smartphone-GPU training: each step runs a blocked forward matmul with
//! bias and softsign activation, a backward sweep (output delta, then a
//! blocked `delta · Xᵀ` gradient), and an SGD weight update — every
//! intermediate living in float↔RGBA8-encoded textures.
//!
//! One step is `2·(n/block) + 4` passes; the whole loop is the step chain
//! under [`PipelineBuilder::repeats`], with the weights riding the
//! double-buffered chain between steps and three retained textures
//! (weight copy, pre-activation, delta) reaching past it within a step.

use mgpu_gpgpu::{Pipeline, PipelineBuilder, Range, Source};
use mgpu_prop::Rng;

use super::kernels::{
    copy_kernel, delta_kernel, forward_chunk_kernel, grad_chunk_kernel, softsign_kernel,
    update_kernel,
};
use super::{ErrorPolicy, Expected, Workload};
use crate::gen::{random_matrix, Matrix};

const ENC: mgpu_gpgpu::Encoding = mgpu_gpgpu::Encoding::Fp32;

/// A `steps`-step SGD training loop of one dense `n`×`n` layer on a
/// seeded random batch (`X` of `n` samples as columns, targets `Y`,
/// per-row bias, initial weights `W₀`).
///
/// `block` is the matmul chunk size — the genuine tunable, trading
/// fetches per fragment against pass count exactly like the paper's
/// sgemm. Per-pass RGBA8 re-encoding rounds differently from the CPU
/// reference's f32, so the declared policy is a tolerance; cross-engine
/// byte identity still holds exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseTraining {
    /// Layer dimension.
    pub n: u32,
    /// Matmul chunk size (must divide `n`).
    pub block: u32,
    /// SGD step count.
    pub steps: u32,
    /// Input seed (batch, targets, bias and initial weights).
    pub seed: u64,
}

impl DenseTraining {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`, `block == 0` or `block` does not divide
    /// `n`.
    #[must_use]
    pub fn new(n: u32, block: u32, steps: u32, seed: u64) -> Self {
        assert!(steps > 0, "training needs at least one step");
        assert!(block > 0 && n.is_multiple_of(block), "block must divide n");
        DenseTraining {
            n,
            block,
            steps,
            seed,
        }
    }

    /// The learning rate — scaled by `1/n` so `steps` updates keep the
    /// weights comfortably inside [`DenseTraining::range_w`].
    #[must_use]
    pub fn lr(&self) -> f32 {
        0.1 / self.n as f32
    }

    /// The encoding range of the weights (and the final output).
    #[must_use]
    pub fn range_w(&self) -> Range {
        Range::new(-2.0, 2.0)
    }

    fn range_x(&self) -> Range {
        Range::new(0.0, 1.0)
    }

    fn range_y(&self) -> Range {
        Range::new(-1.0, 1.0)
    }

    fn range_b(&self) -> Range {
        Range::new(-0.5, 0.5)
    }

    fn range_z(&self) -> Range {
        let hi = 2.0 * self.n as f32 + 1.0;
        Range::new(-hi, hi)
    }

    fn range_h(&self) -> Range {
        Range::new(-1.0, 1.0)
    }

    fn range_d(&self) -> Range {
        Range::new(-2.0, 2.0)
    }

    fn range_g(&self) -> Range {
        let hi = 2.0 * self.n as f32;
        Range::new(-hi, hi)
    }

    fn x(&self) -> Matrix {
        random_matrix(self.n as usize, self.seed, 0.0, 1.0)
    }

    fn y(&self) -> Matrix {
        random_matrix(self.n as usize, self.seed ^ 0x59, -0.9, 0.9)
    }

    fn w0(&self) -> Matrix {
        random_matrix(self.n as usize, self.seed ^ 0x57A7, -0.5, 0.5)
    }

    /// Per-row bias broadcast across columns.
    fn bias(&self) -> Matrix {
        let n = self.n as usize;
        let mut rng = Rng::new(self.seed ^ 0xB1A5);
        let rows: Vec<f32> = (0..n).map(|_| rng.f32(-0.5, 0.5)).collect();
        let mut m = Matrix::filled(n, 0.0);
        for (r, v) in rows.iter().enumerate() {
            for c in 0..n {
                m.set(r, c, *v);
            }
        }
        m
    }
}

impl Workload for DenseTraining {
    fn name(&self) -> String {
        format!("train n{} b{} s{}", self.n, self.block, self.steps)
    }

    fn n(&self) -> u32 {
        self.n
    }

    fn builder(&self) -> PipelineBuilder {
        let nb = self.n / self.block;
        let mut b = Pipeline::builder(self.n)
            .input("x", self.x().data(), self.range_x())
            .input("y", self.y().data(), self.range_y())
            .input("bias", self.bias().data(), self.range_b())
            .seed(self.w0().data(), self.range_w());

        // Pass 0: park the step's weights in a retained texture.
        b = b.pass(&copy_kernel(), &[("u_src", Source::Previous)], &[]);

        // Passes 1..=nb: forward chunks, bias as the first intermediate.
        for j in 0..nb {
            let interm_src = if j == 0 {
                Source::Input("bias".into())
            } else {
                Source::Previous
            };
            let interm_range = if j == 0 {
                self.range_b()
            } else {
                self.range_z()
            };
            b = b.pass(
                &forward_chunk_kernel(
                    ENC,
                    self.n,
                    self.block,
                    j * self.block,
                    &self.range_w(),
                    &self.range_x(),
                    &interm_range,
                    &self.range_z(),
                ),
                &[
                    ("u_w", Source::Pass(0)),
                    ("u_x", Source::Input("x".into())),
                    ("u_interm", interm_src),
                ],
                &[],
            );
        }

        // Pass nb+1: activation.
        b = b.pass(
            &softsign_kernel(ENC, &self.range_z(), &self.range_h()),
            &[("u_z", Source::Previous)],
            &[],
        );

        // Pass nb+2: output delta, reading the retained pre-activation.
        b = b.pass(
            &delta_kernel(
                ENC,
                &self.range_h(),
                &self.range_z(),
                &self.range_y(),
                &self.range_d(),
            ),
            &[
                ("u_h", Source::Previous),
                ("u_z", Source::Pass(nb as usize)),
                ("u_y", Source::Input("y".into())),
            ],
            &[],
        );

        // Passes nb+3 .. 2nb+2: gradient chunks.
        for j in 0..nb {
            let mut bindings = vec![
                ("u_d", Source::Pass(nb as usize + 2)),
                ("u_x", Source::Input("x".into())),
            ];
            if j > 0 {
                bindings.push(("u_interm", Source::Previous));
            }
            b = b.pass(
                &grad_chunk_kernel(
                    ENC,
                    self.n,
                    self.block,
                    j * self.block,
                    j == 0,
                    &self.range_d(),
                    &self.range_x(),
                    &self.range_g(),
                ),
                &bindings,
                &[],
            );
        }

        // Pass 2nb+3: SGD update — the chain output the next step copies.
        b = b.pass(
            &update_kernel(ENC, self.lr(), &self.range_w(), &self.range_g()),
            &[("u_w", Source::Pass(0)), ("u_g", Source::Previous)],
            &[],
        );

        b.repeats(self.steps as usize)
    }

    fn expected(&self) -> Expected {
        Expected::Values {
            want: self.reference_weights().data().to_vec(),
            range: self.range_w(),
        }
    }

    fn policy(&self) -> ErrorPolicy {
        // Calibrated in tests/differential.rs: observed max_abs stays an
        // order of magnitude under these bounds at every matrix point.
        ErrorPolicy::Tolerance {
            max_abs: 2e-4,
            rms: 1e-4,
        }
    }
}

impl DenseTraining {
    /// The CPU reference: the same chunked accumulation order as the GPU
    /// passes, in straight f32.
    #[must_use]
    pub fn reference_weights(&self) -> Matrix {
        let n = self.n as usize;
        let nb = (self.n / self.block) as usize;
        let block = self.block as usize;
        let x = self.x();
        let y = self.y();
        let bias = self.bias();
        let mut w = self.w0();
        let lr = self.lr();
        for _ in 0..self.steps {
            // Forward: Z = W·X + B, accumulated chunk by chunk.
            let mut z = bias.clone();
            for j in 0..nb {
                for r in 0..n {
                    for c in 0..n {
                        let mut acc = 0.0f32;
                        for k in j * block..(j + 1) * block {
                            acc += w.get(r, k) * x.get(k, c);
                        }
                        z.set(r, c, acc + z.get(r, c));
                    }
                }
            }
            // Activation and output delta.
            let mut h = Matrix::filled(n, 0.0);
            let mut d = Matrix::filled(n, 0.0);
            for r in 0..n {
                for c in 0..n {
                    let zv = z.get(r, c);
                    let hv = zv / (1.0 + zv.abs());
                    h.set(r, c, hv);
                    let g = 1.0 / (1.0 + zv.abs());
                    d.set(r, c, (hv - y.get(r, c)) * (g * g));
                }
            }
            // Gradient: G = delta · Xᵀ, same chunk order.
            let mut grad = Matrix::filled(n, 0.0);
            for j in 0..nb {
                for r in 0..n {
                    for c in 0..n {
                        let mut acc = 0.0f32;
                        for k in j * block..(j + 1) * block {
                            acc += d.get(r, k) * x.get(c, k);
                        }
                        grad.set(r, c, acc + grad.get(r, c));
                    }
                }
            }
            // Update.
            for r in 0..n {
                for c in 0..n {
                    w.set(r, c, w.get(r, c) - grad.get(r, c) * lr);
                }
            }
        }
        w
    }
}
