//! Kernel source generators for the workload pipelines.
//!
//! Like `mgpu_gpgpu::kernels`, sources are generated rather than
//! hand-written: they bake in operand value ranges, texel sizes, tap
//! dilations and chunk offsets, so every pass is a closed fragment
//! program with no per-draw uniform traffic beyond what genuinely varies.

use mgpu_gpgpu::{Encoding, Range};

/// Formats an f32 so the kernel lexer reparses it exactly.
fn lit(x: f32) -> String {
    let s = format!("{x:?}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// `unpack(texture2D(sampler, coord)) * span + lo` — decode to application
/// values.
fn decode_expr(sampler: &str, coord: &str, range: &Range) -> String {
    format!(
        "unpack(texture2D({sampler}, {coord})) * {} + {}",
        lit(range.span()),
        lit(range.lo)
    )
}

/// `pack((value - lo) * inv_span)` — encode an application value.
fn encode_stmt(value_expr: &str, range: &Range) -> String {
    format!(
        "gl_FragColor = pack(({value_expr} - {}) * {});",
        lit(range.lo),
        lit(1.0 / range.span())
    )
}

/// A separable 3-tap Gaussian blur pass (`[¼, ½, ¼]`) over a raw RGBA8
/// image, along x (`horizontal`) or y, with the outer taps `dilation`
/// texels from the centre (the à-trous footprint-growth scheme).
/// Clamp-to-edge sampling handles the borders; alpha is forced opaque.
/// Taps accumulate in (−d, 0, +d) order to match
/// [`sep_blur3_ref`](crate::reference::sep_blur3_ref) byte-for-byte.
#[must_use]
pub fn blur3_kernel(n: u32, dilation: u32, horizontal: bool) -> String {
    let off = dilation as f32 / n as f32;
    let mut taps = String::new();
    for (tap, w) in [(-off, 0.25f32), (0.0, 0.5), (off, 0.25)] {
        let coord = if tap == 0.0 {
            "v_coord".to_owned()
        } else if horizontal {
            format!("v_coord + vec2({}, 0.0)", lit(tap))
        } else {
            format!("v_coord + vec2(0.0, {})", lit(tap))
        };
        taps.push_str(&format!(
            "    acc = acc + texture2D(u_img, {coord}).xyz * {};\n",
            lit(w)
        ));
    }
    format!(
        "uniform sampler2D u_img;\n\
         varying vec2 v_coord;\n\
         void main() {{\n\
         \x20   vec3 acc = vec3(0.0, 0.0, 0.0);\n\
         {taps}\
         \x20   gl_FragColor = vec4(clamp(acc, 0.0, 1.0), 1.0);\n\
         }}\n"
    )
}

/// A raw texel move: `out = src`. No unpack/pack — encoded values survive
/// bit-exactly, which is what lets the training loop park the current
/// weights in a retained texture at the top of every step.
#[must_use]
pub fn copy_kernel() -> String {
    "uniform sampler2D u_src;\n\
     varying vec2 v_coord;\n\
     void main() {\n\
         gl_FragColor = texture2D(u_src, v_coord);\n\
     }\n"
    .to_owned()
}

/// One forward-matmul chunk of the training step: accumulates `block`
/// products `w[r,k]·x[k,c]` for `k` in `[k0, k0+block)` and adds the
/// running intermediate (the bias on the first chunk, the previous
/// chunk's output after). Taps are unrolled with baked coordinates;
/// `range_interm` is the bias range on chunk 0 and `range_out` later.
#[must_use]
#[allow(clippy::too_many_arguments)] // one Range per sampled/produced texture
pub fn forward_chunk_kernel(
    enc: Encoding,
    n: u32,
    block: u32,
    k0: u32,
    range_w: &Range,
    range_x: &Range,
    range_interm: &Range,
    range_out: &Range,
) -> String {
    let mut taps = String::new();
    for k in k0..k0 + block {
        let kc = lit((k as f32 + 0.5) / n as f32);
        taps.push_str(&format!(
            "    acc = acc + ({w}) * ({x});\n",
            w = decode_expr("u_w", &format!("vec2({kc}, v_coord.y)"), range_w),
            x = decode_expr("u_x", &format!("vec2(v_coord.x, {kc})"), range_x),
        ));
    }
    format!(
        "uniform sampler2D u_w;\n\
         uniform sampler2D u_x;\n\
         uniform sampler2D u_interm;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float acc = 0.0;\n\
         {taps}\
         \x20   float interm = {interm};\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        interm = decode_expr("u_interm", "v_coord", range_interm),
        out = encode_stmt("(acc + interm)", range_out),
    )
}

/// The softsign activation pass: `h = z / (1 + |z|)` — smooth, bounded in
/// (−1, 1), and expressible with the kernel language's native divide so
/// the CPU reference matches its rounding exactly.
#[must_use]
pub fn softsign_kernel(enc: Encoding, range_z: &Range, range_h: &Range) -> String {
    format!(
        "uniform sampler2D u_z;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float z = {z};\n\
         \x20   float h = z / (1.0 + abs(z));\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        z = decode_expr("u_z", "v_coord", range_z),
        out = encode_stmt("h", range_h),
    )
}

/// The output-delta pass of the backward sweep:
/// `delta = (h − y) · (1 / (1 + |z|))²` — the loss gradient `h − y`
/// (squared error) times the softsign derivative, recomputed from the
/// retained pre-activation `z`.
#[must_use]
pub fn delta_kernel(
    enc: Encoding,
    range_h: &Range,
    range_z: &Range,
    range_y: &Range,
    range_d: &Range,
) -> String {
    format!(
        "uniform sampler2D u_h;\n\
         uniform sampler2D u_z;\n\
         uniform sampler2D u_y;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float h = {h};\n\
         \x20   float z = {z};\n\
         \x20   float y = {y};\n\
         \x20   float g = 1.0 / (1.0 + abs(z));\n\
         \x20   float delta = (h - y) * (g * g);\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        h = decode_expr("u_h", "v_coord", range_h),
        z = decode_expr("u_z", "v_coord", range_z),
        y = decode_expr("u_y", "v_coord", range_y),
        out = encode_stmt("delta", range_d),
    )
}

/// One gradient chunk of the backward sweep: `g[r,c] += Σ delta[r,k] ·
/// x[c,k]` for `k` in `[k0, k0+block)` — the `delta · Xᵀ` product, with
/// the transpose realised by swapping the sampling coordinates of `x`
/// (row `c` is this fragment's *column* varying). Chunk 0 bakes a zero
/// intermediate; later chunks add the previous chunk's output.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn grad_chunk_kernel(
    enc: Encoding,
    n: u32,
    block: u32,
    k0: u32,
    first: bool,
    range_d: &Range,
    range_x: &Range,
    range_g: &Range,
) -> String {
    let mut taps = String::new();
    for k in k0..k0 + block {
        let kc = lit((k as f32 + 0.5) / n as f32);
        taps.push_str(&format!(
            "    acc = acc + ({d}) * ({x});\n",
            d = decode_expr("u_d", &format!("vec2({kc}, v_coord.y)"), range_d),
            x = decode_expr("u_x", &format!("vec2({kc}, v_coord.x)"), range_x),
        ));
    }
    let (interm_decl, interm) = if first {
        (String::new(), "0.0".to_owned())
    } else {
        (
            "uniform sampler2D u_interm;\n".to_owned(),
            decode_expr("u_interm", "v_coord", range_g),
        )
    };
    format!(
        "uniform sampler2D u_d;\n\
         uniform sampler2D u_x;\n\
         {interm_decl}\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float acc = 0.0;\n\
         {taps}\
         \x20   float interm = {interm};\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        out = encode_stmt("(acc + interm)", range_g),
    )
}

/// The SGD weight-update pass: `w' = w − lr·g`, reading the step's
/// retained weight copy and the accumulated gradient.
#[must_use]
pub fn update_kernel(enc: Encoding, lr: f32, range_w: &Range, range_g: &Range) -> String {
    format!(
        "uniform sampler2D u_w;\n\
         uniform sampler2D u_g;\n\
         varying vec2 v_coord;\n\
         {unpack}{pack}\
         void main() {{\n\
         \x20   float w = {w};\n\
         \x20   float g = {g};\n\
         \x20   float next = w - g * {lr};\n\
         \x20   {out}\n\
         }}\n",
        unpack = enc.decode_fn_source(),
        pack = enc.encode_fn_source(),
        w = decode_expr("u_w", "v_coord", range_w),
        g = decode_expr("u_g", "v_coord", range_g),
        lr = lit(lr),
        out = encode_stmt("next", range_w),
    )
}
