//! GPU workload pipelines: computer-vision and on-device-training pass
//! chains built on [`mgpu_gpgpu::Pipeline`].
//!
//! The paper evaluates its optimisation space on two kernels (`sum`,
//! `sgemm`). This module widens the workload population with three
//! families that stress what those never touch — deep pass chains, raw
//! image traffic and precision-sensitive accumulation:
//!
//! * [`GaussianPyramid`] — a separable-blur image pyramid (two passes per
//!   level, à-trous dilation), all raw RGBA8;
//! * [`JacobiInpaint`] — an inpainting-style stencil solver iterating
//!   [`jacobi_step_ref`](crate::reference::jacobi_step_ref) to a fixed
//!   count, like the paper's 10 000-iteration steady-state runs;
//! * [`DenseTraining`] — a dense-layer training loop (forward matmul +
//!   bias + activation, backward gradients, SGD update) entirely through
//!   the float↔RGBA8 encoding.
//!
//! Each family implements [`Workload`]: it names itself, declares its
//! expected CPU-reference output and the [`ErrorPolicy`] the comparison
//! must satisfy, and produces a [`PipelineBuilder`] — so one differential
//! harness validates every family at every engine × platform × tile-skip
//! point, and [`WorkloadJob`] runs any of them under the resilient runner
//! or the fleet service.

mod kernels;
mod pyramid;
mod stencil;
mod training;

pub use kernels::{
    blur3_kernel, copy_kernel, delta_kernel, forward_chunk_kernel, grad_chunk_kernel,
    softsign_kernel, update_kernel,
};
pub use pyramid::GaussianPyramid;
pub use stencil::JacobiInpaint;
pub use training::DenseTraining;

use mgpu_gles::{ExecConfig, Gl};
use mgpu_gpgpu::{
    steady_period, Encoding, GpgpuError, OptConfig, PipelineBuilder, PipelineJob, Range,
    RecoverableJob, ResilienceConfig, ResilientRunner, TunePoint, TuneResult,
};
use mgpu_tbdr::Platform;

use crate::metrics::ErrorStats;

/// How a workload's GPU output must relate to its CPU reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorPolicy {
    /// Output bytes equal the reference bytes exactly — declared where the
    /// whole chain shares the reference's quantisation (raw RGBA8 image
    /// passes whose tap order matches the CPU loop).
    ByteIdentity,
    /// Decoded values are within tolerance of the reference — declared
    /// where per-pass RGBA8 re-encoding rounds differently from the
    /// straight-through f32 reference (iterative solvers, training).
    Tolerance {
        /// Maximum tolerated absolute element error.
        max_abs: f32,
        /// Maximum tolerated root-mean-square error.
        rms: f32,
    },
}

/// A workload's expected output, in the domain its policy compares.
#[derive(Debug, Clone, PartialEq)]
pub enum Expected {
    /// Exact output bytes (for [`ErrorPolicy::ByteIdentity`] workloads).
    Bytes(Vec<u8>),
    /// Decoded values plus the range the GPU bytes decode under (for
    /// [`ErrorPolicy::Tolerance`] workloads).
    Values {
        /// The CPU-reference values.
        want: Vec<f32>,
        /// The encoding range of the pipeline's final output.
        range: Range,
    },
}

/// A GPU workload: a named, reproducible pass chain with a CPU reference
/// and an explicit error policy.
pub trait Workload {
    /// Human-readable name (stable — used in bench IDs and job labels).
    fn name(&self) -> String;
    /// Data dimension (the pipeline runs over `n`×`n` surfaces).
    fn n(&self) -> u32;
    /// The pass chain. Building is deterministic: the same workload value
    /// always yields the same kernels, inputs and pass order.
    fn builder(&self) -> PipelineBuilder;
    /// The CPU-reference output this workload's runs are validated
    /// against.
    fn expected(&self) -> Expected;
    /// The declared GPU-vs-CPU comparison policy.
    fn policy(&self) -> ErrorPolicy;
    /// The configuration points this workload's autotuner explores.
    /// The default grid covers the paper's sync/target/reuse/VBO/
    /// invalidation knobs and always includes `"baseline"`, so tuned ≥
    /// untuned holds by construction. fp24 is excluded: raw-image chains
    /// and the RGB8 texel format do not compose.
    fn candidates(&self) -> Vec<(String, OptConfig)> {
        default_candidates()
    }
}

/// The default autotuning grid for workload pipelines.
#[must_use]
pub fn default_candidates() -> Vec<(String, OptConfig)> {
    use mgpu_gles::BufferUsage;
    vec![
        ("baseline".to_owned(), OptConfig::baseline()),
        (
            "interval0+tex".to_owned(),
            OptConfig::baseline().with_swap_interval_0(),
        ),
        (
            "noswap+tex".to_owned(),
            OptConfig::baseline().without_swap(),
        ),
        (
            "noswap+tex+reuse".to_owned(),
            OptConfig::baseline().without_swap().with_texture_reuse(),
        ),
        (
            "interval0+fb".to_owned(),
            OptConfig::baseline()
                .with_swap_interval_0()
                .with_framebuffer_rendering(),
        ),
        (
            "interval0+fb+reuse".to_owned(),
            OptConfig::baseline()
                .with_swap_interval_0()
                .with_framebuffer_rendering()
                .with_texture_reuse(),
        ),
        (
            "noswap+tex+vbo".to_owned(),
            OptConfig::baseline()
                .without_swap()
                .with_vbo(BufferUsage::StaticDraw),
        ),
        (
            "noswap+tex+noinval".to_owned(),
            OptConfig::baseline().without_swap().without_invalidate(),
        ),
    ]
}

/// A [`RecoverableJob`] over any [`Workload`]: a [`PipelineJob`] with the
/// workload's own label, so fleet transcripts and recovery events name
/// the family rather than a generic pass count.
#[derive(Debug)]
pub struct WorkloadJob {
    label: String,
    inner: PipelineJob,
}

impl WorkloadJob {
    /// Wraps `workload` for resilient execution under `cfg`.
    #[must_use]
    pub fn new(cfg: &OptConfig, workload: &dyn Workload) -> Self {
        WorkloadJob {
            label: workload.name(),
            inner: PipelineJob::new(cfg, workload.builder()),
        }
    }
}

impl RecoverableJob for WorkloadJob {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn build(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.inner.build(gl)
    }

    fn passes(&self) -> usize {
        self.inner.passes()
    }

    fn begin_run(&mut self, gl: &mut Gl) -> Result<(), GpgpuError> {
        self.inner.begin_run(gl)
    }

    fn run_pass(&mut self, gl: &mut Gl, pass: usize, bands: u32) -> Result<(), GpgpuError> {
        self.inner.run_pass(gl, pass, bands)
    }

    fn snapshot(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        self.inner.snapshot(gl)
    }

    fn restore(&mut self, gl: &mut Gl, bytes: &[u8]) -> Result<(), GpgpuError> {
        self.inner.restore(gl, bytes)
    }

    fn result_bytes(&mut self, gl: &mut Gl) -> Result<Vec<u8>, GpgpuError> {
        self.inner.result_bytes(gl)
    }
}

/// Runs `workload` once under the resilient runner and returns its output
/// bytes.
///
/// # Errors
///
/// Propagates pipeline build/run failures and retry exhaustion.
pub fn run_workload(
    gl: &mut Gl,
    workload: &dyn Workload,
    cfg: &OptConfig,
) -> Result<Vec<u8>, GpgpuError> {
    let mut job = WorkloadJob::new(cfg, workload);
    ResilientRunner::new(ResilienceConfig::default()).run(gl, &mut job)
}

/// Checks `bytes` against the workload's declared policy and reference.
///
/// # Errors
///
/// A human-readable diagnostic naming the workload, the policy and the
/// observed deviation.
pub fn verify_output(workload: &dyn Workload, bytes: &[u8]) -> Result<(), String> {
    let name = workload.name();
    match (workload.policy(), workload.expected()) {
        (ErrorPolicy::ByteIdentity, Expected::Bytes(want)) => {
            if bytes == want.as_slice() {
                Ok(())
            } else {
                let at = bytes
                    .iter()
                    .zip(&want)
                    .position(|(g, w)| g != w)
                    .unwrap_or(want.len().min(bytes.len()));
                Err(format!(
                    "{name}: byte-identity violated (len {} vs {}, first diff at byte {at})",
                    bytes.len(),
                    want.len()
                ))
            }
        }
        (ErrorPolicy::Tolerance { max_abs, rms }, Expected::Values { want, range }) => {
            let got = Encoding::Fp32.decode(bytes, &range);
            if got.len() != want.len() {
                return Err(format!(
                    "{name}: decoded {} values, reference has {}",
                    got.len(),
                    want.len()
                ));
            }
            let stats = ErrorStats::between(&got, &want);
            if stats.max_abs > max_abs || stats.rms > rms {
                Err(format!(
                    "{name}: tolerance exceeded (max_abs {} > {max_abs} or rms {} > {rms}, argmax {})",
                    stats.max_abs, stats.rms, stats.argmax
                ))
            } else {
                Ok(())
            }
        }
        (policy, _) => Err(format!(
            "{name}: policy {policy:?} does not match its Expected variant"
        )),
    }
}

/// Autotunes `workload` on `platform`: measures every candidate
/// configuration in timing-only mode and returns the ranking, with
/// `exec`'s engine and tile-skip knobs stamped into each point (tuning
/// itself is timing-only, so neither affects the ranking).
///
/// # Errors
///
/// Propagates pipeline build/run failures.
pub fn tune_workload(
    platform: &Platform,
    workload: &dyn Workload,
    warmup: usize,
    iters: usize,
    exec: &ExecConfig,
) -> Result<TuneResult, GpgpuError> {
    let n = workload.n();
    let engine = exec.engine();
    let tile_skip = exec.tile_skip();
    let mut points = Vec::new();
    for (name, cfg) in workload.candidates() {
        let cfg = cfg.with_engine(engine).with_tile_skip(tile_skip);
        let mut gl = Gl::new(platform.clone(), n, n);
        gl.set_functional(false);
        let mut p = workload.builder().build(&mut gl, &cfg)?;
        let period = steady_period(&mut gl, warmup, iters, |gl| p.run_once(gl))?;
        points.push(TunePoint {
            name,
            config: cfg,
            block: 1,
            period,
        });
    }
    points.sort_by_key(|p| p.period);
    Ok(TuneResult { ranked: points })
}
