//! # mgpu-workloads — inputs, CPU references, error metrics and GPU
//! workload pipelines
//!
//! Deterministic workload generators (seeded random matrices like the
//! paper's "random 1024×1024 matrix inputs"), plain-Rust reference
//! implementations of every operator in the suite, the error metrics
//! used to validate the quantised GPU results against them — and the
//! [`pipelines`] module: three GPU workload families (image pyramid,
//! Jacobi stencil solver, dense-layer training loop) validated against
//! those references under explicit per-family error policies.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod gen;
pub mod metrics;
pub mod pipelines;
pub mod reference;

pub use gen::{random_image_rgba8, random_matrix, Matrix};
pub use metrics::{max_abs_error, rms_error, ErrorStats};
pub use pipelines::{
    default_candidates, run_workload, tune_workload, verify_output, DenseTraining, ErrorPolicy,
    Expected, GaussianPyramid, JacobiInpaint, Workload, WorkloadJob,
};
pub use reference::{
    conv3x3_ref, dot_ref, jacobi_step_ref, reduce_sum_ref, saxpy_ref, sep_blur3_ref,
    sgemm_blocked_ref, sgemm_ref, sum_ref, transpose_ref,
};
