//! CPU reference implementations of every operator in the suite.

use crate::gen::Matrix;

/// Element-wise `A + B`.
///
/// # Panics
///
/// Panics if sizes differ.
#[must_use]
pub fn sum_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.size(), b.size(), "size mismatch");
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Matrix::from_data(a.size(), data)
}

/// `alpha * X + Y`.
///
/// # Panics
///
/// Panics if sizes differ.
#[must_use]
pub fn saxpy_ref(alpha: f32, x: &Matrix, y: &Matrix) -> Matrix {
    assert_eq!(x.size(), y.size(), "size mismatch");
    let data = x
        .data()
        .iter()
        .zip(y.data())
        .map(|(xv, yv)| alpha * xv + yv)
        .collect();
    Matrix::from_data(x.size(), data)
}

/// Naive `A × B`.
///
/// # Panics
///
/// Panics if sizes differ.
#[must_use]
pub fn sgemm_ref(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.size(), b.size(), "size mismatch");
    let n = a.size();
    let mut c = Matrix::filled(n, 0.0);
    for i in 0..n {
        for k in 0..n {
            let aik = a.get(i, k);
            for j in 0..n {
                c.set(i, j, c.get(i, j) + aik * b.get(k, j));
            }
        }
    }
    c
}

/// Blocked `A × B` accumulating in `n / block` chunk passes — the exact
/// summation order of the paper's multi-pass GPU kernel, so GPU-vs-CPU
/// differences isolate the encoding error from floating-point reassociation.
///
/// # Panics
///
/// Panics if sizes differ or `block` does not divide the size.
#[must_use]
pub fn sgemm_blocked_ref(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    assert_eq!(a.size(), b.size(), "size mismatch");
    let n = a.size();
    assert!(block > 0 && n.is_multiple_of(block), "block must divide n");
    let mut c = Matrix::filled(n, 0.0);
    for pass in 0..(n / block) {
        let k0 = pass * block;
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in k0..k0 + block {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc + c.get(i, j));
            }
        }
    }
    c
}

/// One weighted-Jacobi iteration for `∇²u = -f` with clamp-to-edge
/// (zero-flux) boundaries, matching the GPU kernel's sampling:
/// `u' = (1-ω)·u + ω·(¼·Σ neighbours + ¼·f)` where `f` is pre-scaled
/// by `h²`.
///
/// # Panics
///
/// Panics if sizes differ.
#[must_use]
pub fn jacobi_step_ref(u: &Matrix, f: &Matrix, omega: f32) -> Matrix {
    assert_eq!(u.size(), f.size(), "size mismatch");
    let n = u.size() as i64;
    let mut out = Matrix::filled(u.size(), 0.0);
    for i in 0..n {
        for j in 0..n {
            let at = |r: i64, c: i64| u.get(r.clamp(0, n - 1) as usize, c.clamp(0, n - 1) as usize);
            let relaxed = (at(i - 1, j)
                + at(i + 1, j)
                + at(i, j - 1)
                + at(i, j + 1)
                + f.get(i as usize, j as usize))
                * 0.25;
            out.set(
                i as usize,
                j as usize,
                u.get(i as usize, j as usize) * (1.0 - omega) + relaxed * omega,
            );
        }
    }
    out
}

/// Matrix transpose: `out[i][j] = m[j][i]`.
#[must_use]
pub fn transpose_ref(m: &Matrix) -> Matrix {
    let n = m.size();
    let mut out = Matrix::filled(n, 0.0);
    for i in 0..n {
        for j in 0..n {
            out.set(i, j, m.get(j, i));
        }
    }
    out
}

/// Inner product `Σ xᵢ·yᵢ` accumulated pairwise over power-of-two halves —
/// the exact summation order of the GPU's log-depth reduction tree, so
/// GPU-vs-CPU differences isolate encoding error from reassociation.
///
/// # Panics
///
/// Panics if sizes differ.
#[must_use]
pub fn dot_ref(x: &Matrix, y: &Matrix) -> f32 {
    assert_eq!(x.size(), y.size(), "size mismatch");
    let products: Vec<f32> = x.data().iter().zip(y.data()).map(|(a, b)| a * b).collect();
    tree_sum(products)
}

/// Total `Σ mᵢ` accumulated pairwise over power-of-two halves, matching
/// the GPU's log-depth reduction tree (each level sums a 2×2 quad, which
/// pairwise-halving reproduces associatively).
#[must_use]
pub fn reduce_sum_ref(m: &Matrix) -> f32 {
    tree_sum(m.data().to_vec())
}

/// Pairwise tree summation: repeatedly folds the upper half onto the lower
/// half until one element remains.
fn tree_sum(mut v: Vec<f32>) -> f32 {
    if v.is_empty() {
        return 0.0;
    }
    while v.len() > 1 {
        let half = v.len().div_ceil(2);
        for i in half..v.len() {
            v[i - half] += v[i];
        }
        v.truncate(half);
    }
    v[0]
}

/// 3×3 convolution over an RGBA8 image with clamp-to-edge addressing,
/// matching the GPU kernel's sampling; the alpha channel is forced opaque.
///
/// # Panics
///
/// Panics if `image.len() != width * height * 4`.
#[must_use]
pub fn conv3x3_ref(image: &[u8], width: u32, height: u32, weights: &[f32; 9]) -> Vec<u8> {
    assert_eq!(
        image.len(),
        width as usize * height as usize * 4,
        "image size mismatch"
    );
    let w = width as i64;
    let h = height as i64;
    let mut out = vec![0u8; image.len()];
    for y in 0..h {
        for x in 0..w {
            let mut acc = [0.0f32; 3];
            for (k, wt) in weights.iter().enumerate() {
                let dx = (k % 3) as i64 - 1;
                let dy = (k / 3) as i64 - 1;
                let sx = (x + dx).clamp(0, w - 1) as usize;
                let sy = (y + dy).clamp(0, h - 1) as usize;
                let idx = (sy * w as usize + sx) * 4;
                for c in 0..3 {
                    acc[c] += f32::from(image[idx + c]) / 255.0 * wt;
                }
            }
            let o = (y as usize * w as usize + x as usize) * 4;
            for c in 0..3 {
                out[o + c] = (acc[c].clamp(0.0, 1.0) * 255.0 + 0.5).floor() as u8;
            }
            out[o + 3] = 255;
        }
    }
    out
}

/// One separable 3-tap Gaussian blur pass (`[¼, ½, ¼]`) over an RGBA8
/// image with clamp-to-edge addressing, along the given `axis`
/// (`horizontal = true` blurs along x). `dilation` spaces the outer taps
/// `dilation` texels from the centre — the à-trous scheme image pyramids
/// use to grow the effective filter footprint per level without resampling.
///
/// Taps accumulate in kernel order (−d, 0, +d) so the result is
/// byte-identical to the GPU pass; the alpha channel is forced opaque.
///
/// # Panics
///
/// Panics if `image.len() != width * height * 4` or `dilation == 0`.
#[must_use]
pub fn sep_blur3_ref(
    image: &[u8],
    width: u32,
    height: u32,
    dilation: u32,
    horizontal: bool,
) -> Vec<u8> {
    assert_eq!(
        image.len(),
        width as usize * height as usize * 4,
        "image size mismatch"
    );
    assert!(dilation > 0, "dilation must be positive");
    let w = width as i64;
    let h = height as i64;
    let d = dilation as i64;
    let mut out = vec![0u8; image.len()];
    for y in 0..h {
        for x in 0..w {
            let mut acc = [0.0f32; 3];
            for (tap, wt) in [(-d, 0.25f32), (0, 0.5), (d, 0.25)] {
                let (sx, sy) = if horizontal {
                    ((x + tap).clamp(0, w - 1), y)
                } else {
                    (x, (y + tap).clamp(0, h - 1))
                };
                let idx = (sy as usize * w as usize + sx as usize) * 4;
                for c in 0..3 {
                    acc[c] += f32::from(image[idx + c]) / 255.0 * wt;
                }
            }
            let o = (y as usize * w as usize + x as usize) * 4;
            for c in 0..3 {
                out[o + c] = (acc[c].clamp(0.0, 1.0) * 255.0 + 0.5).floor() as u8;
            }
            out[o + 3] = 255;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_matrix;

    #[test]
    fn sum_adds() {
        let a = Matrix::filled(2, 1.0);
        let b = Matrix::filled(2, 2.5);
        assert_eq!(sum_ref(&a, &b).get(1, 1), 3.5);
    }

    #[test]
    fn saxpy_scales_and_adds() {
        let x = Matrix::filled(2, 2.0);
        let y = Matrix::filled(2, 1.0);
        assert_eq!(saxpy_ref(0.5, &x, &y).get(0, 0), 2.0);
    }

    #[test]
    fn sgemm_identity() {
        let n = 4;
        let mut eye = Matrix::filled(n, 0.0);
        for i in 0..n {
            eye.set(i, i, 1.0);
        }
        let a = random_matrix(n, 3, 0.0, 1.0);
        let c = sgemm_ref(&a, &eye);
        for i in 0..n {
            for j in 0..n {
                assert!((c.get(i, j) - a.get(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn blocked_matches_naive() {
        let a = random_matrix(8, 1, 0.0, 1.0);
        let b = random_matrix(8, 2, 0.0, 1.0);
        let naive = sgemm_ref(&a, &b);
        for block in [1usize, 2, 4, 8] {
            let blocked = sgemm_blocked_ref(&a, &b, block);
            for (x, y) in naive.data().iter().zip(blocked.data()) {
                assert!((x - y).abs() < 1e-4, "block {block}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn transpose_ref_involutes() {
        let m = random_matrix(8, 9, 0.0, 1.0);
        let t = transpose_ref(&m);
        assert_eq!(t.get(2, 5), m.get(5, 2));
        assert_eq!(transpose_ref(&t).data(), m.data());
    }

    #[test]
    fn tree_sum_matches_sequential_within_noise() {
        let m = random_matrix(16, 10, 0.0, 1.0);
        let seq: f32 = m.data().iter().sum();
        let tree = reduce_sum_ref(&m);
        assert!((tree - seq).abs() < 1e-3, "{tree} vs {seq}");
        assert_eq!(reduce_sum_ref(&Matrix::filled(4, 0.25)), 4.0);
    }

    #[test]
    fn dot_ref_is_the_tree_sum_of_products() {
        let x = random_matrix(4, 11, 0.0, 1.0);
        let y = random_matrix(4, 12, 0.0, 1.0);
        let seq: f32 = x.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        assert!((dot_ref(&x, &y) - seq).abs() < 1e-4);
    }

    #[test]
    fn conv_identity_kernel_is_identity_rgb() {
        let img: Vec<u8> = (0..4 * 4 * 4).map(|i| (i * 7 % 256) as u8).collect();
        let mut id = [0.0f32; 9];
        id[4] = 1.0;
        let out = conv3x3_ref(&img, 4, 4, &id);
        for px in 0..16 {
            for c in 0..3 {
                assert_eq!(out[px * 4 + c], img[px * 4 + c]);
            }
            assert_eq!(out[px * 4 + 3], 255);
        }
    }
}
