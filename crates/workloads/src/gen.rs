//! Deterministic input generation.

use mgpu_prop::Rng;

/// A square row-major f32 matrix.
///
/// # Examples
///
/// ```
/// use mgpu_workloads::Matrix;
///
/// let m = Matrix::filled(4, 1.5);
/// assert_eq!(m.get(3, 3), 1.5);
/// assert_eq!(m.data().len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    #[must_use]
    pub fn from_data(n: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * n, "matrix data size mismatch");
        Matrix { n, data }
    }

    /// Creates an `n`×`n` matrix filled with `value`.
    #[must_use]
    pub fn filled(n: usize, value: f32) -> Self {
        Matrix {
            n,
            data: vec![value; n * n],
        }
    }

    /// The dimension.
    #[must_use]
    pub fn size(&self) -> usize {
        self.n
    }

    /// The row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Element at (row, col).
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        self.data[row * self.n + col]
    }

    /// Mutable element at (row, col).
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        self.data[row * self.n + col] = v;
    }
}

/// Generates a seeded random `n`×`n` matrix with values in `[lo, hi)` —
/// the paper's random matrix inputs, reproducibly.
///
/// # Examples
///
/// ```
/// use mgpu_workloads::random_matrix;
///
/// let a = random_matrix(16, 42, 0.0, 1.0);
/// let b = random_matrix(16, 42, 0.0, 1.0);
/// assert_eq!(a, b); // same seed, same matrix
/// assert!(a.data().iter().all(|&v| (0.0..1.0).contains(&v)));
/// ```
#[must_use]
pub fn random_matrix(n: usize, seed: u64, lo: f32, hi: f32) -> Matrix {
    let mut rng = Rng::new(seed);
    let data = (0..n * n).map(|_| rng.f32(lo, hi)).collect();
    Matrix { n, data }
}

/// Generates a seeded random RGBA8 image.
#[must_use]
pub fn random_image_rgba8(width: u32, height: u32, seed: u64) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    (0..width as usize * height as usize * 4)
        .map(|_| rng.u8())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_matrix(8, 1, 0.0, 1.0), random_matrix(8, 2, 0.0, 1.0));
    }

    #[test]
    fn range_is_respected() {
        let m = random_matrix(32, 7, -2.0, 3.0);
        assert!(m.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn image_is_deterministic() {
        assert_eq!(random_image_rgba8(4, 4, 9), random_image_rgba8(4, 4, 9));
        assert_eq!(random_image_rgba8(4, 4, 9).len(), 64);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_data_validates() {
        let _ = Matrix::from_data(3, vec![0.0; 8]);
    }

    #[test]
    fn get_set_round_trip() {
        let mut m = Matrix::filled(3, 0.0);
        m.set(1, 2, 7.0);
        assert_eq!(m.get(1, 2), 7.0);
        assert_eq!(m.get(2, 1), 0.0);
    }
}
