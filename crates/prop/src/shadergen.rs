//! Seeded random kernel-source and draw-script generation.
//!
//! This module is the *case generator* half of the conformance subsystem
//! (`mgpu-conformance` holds the differential oracle and shrinker). It
//! stays dependency-free like the rest of this crate: shaders are
//! generated as **source text** through a width-typed expression grammar
//! that mirrors the kernel language's type rules, so every generated
//! program compiles; draw scripts are plain data interpreted by the
//! conformance runner against the GL context.
//!
//! Coverage targets, by construction:
//!
//! * the full expression surface — arithmetic with scalar broadcasting,
//!   comparisons/logical ops in conditions, ternaries, swizzles (repeated
//!   letters on reads, unique letters on writes), constructors and splats,
//!   every component-wise builtin, `dot`, `mul24`, `texture2D`, user
//!   helper functions, constant-bounded `for` loops and `if`/`else`;
//! * precision qualifiers (emitted and ignored by the parser);
//! * partial 64-lane batches — surface sizes are deliberately not
//!   multiples of the batch width;
//! * NaN/inf **inputs** through uniform values and varying corners
//!   (never through literals: non-finite literals have no source form);
//! * draw-script churn — texture uploads (fresh and sub-image), program
//!   relinks, uniform rebinding, render-target flips, `CopyTex`
//!   round trips, row-band draws and mid-script readbacks.
//!
//! Everything is a pure function of the [`Rng`](crate::Rng) handed in, so
//! a case is replayable from its seed alone.

use crate::Rng;

/// A generated kernel with the interface metadata the script generator
/// needs (the conformance runner re-derives the same lists by parsing
/// `source`, so `.case` files only store the text).
#[derive(Debug, Clone, PartialEq)]
pub struct ShaderSpec {
    /// Kernel source text. Always compiles and always writes
    /// `gl_FragColor`.
    pub source: String,
    /// Declared numeric uniforms as `(name, component count)`.
    pub uniforms: Vec<(String, u8)>,
    /// Declared `sampler2D` uniforms (each is referenced at least once).
    pub samplers: Vec<String>,
    /// Declared varyings as `(name, component count)`.
    pub varyings: Vec<(String, u8)>,
}

/// Texture storage format of a generated texture slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TexFormat {
    /// 4 bytes per texel.
    Rgba8,
    /// 3 bytes per texel (the paper's fp24 channel layout).
    Rgb8,
}

impl TexFormat {
    /// Bytes per texel.
    #[must_use]
    pub fn channels(self) -> usize {
        match self {
            TexFormat::Rgba8 => 4,
            TexFormat::Rgb8 => 3,
        }
    }
}

/// Initial contents of one texture slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextureSpec {
    /// Storage format.
    pub format: TexFormat,
    /// Seed for [`texels`]; the slot's initial bytes are
    /// `texels(seed, w * h * channels)`.
    pub seed: u64,
}

/// One step of a draw script. Steps that hit an invalid GL state (a
/// feedback loop, a missing uniform after an aggressive shrink) produce a
/// *deterministic* error that becomes part of the case transcript — the
/// oracle compares transcripts, so error paths are differentially tested
/// exactly like pixel paths.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// `use_program` on shader `shader`.
    UseProgram {
        /// Shader index into [`ConfCase::shaders`].
        shader: u8,
    },
    /// Recreate shader `shader`'s program from source (a fresh handle)
    /// and re-apply its current uniform/sampler bindings — relink churn.
    Relink {
        /// Shader index.
        shader: u8,
    },
    /// Set a (possibly vector) uniform; extra components are ignored.
    SetUniform {
        /// Shader index.
        shader: u8,
        /// Uniform name.
        name: String,
        /// Value (may contain NaN/inf — those are inputs under test).
        value: [f32; 4],
    },
    /// Point a sampler uniform at a texture unit.
    SetSampler {
        /// Shader index.
        shader: u8,
        /// Sampler name.
        name: String,
        /// GL texture unit.
        unit: u8,
    },
    /// Bind texture `slot` to texture unit `unit`.
    BindTexture {
        /// GL texture unit.
        unit: u8,
        /// Texture slot index into [`ConfCase::textures`].
        slot: u8,
    },
    /// Upload fresh deterministic texels into `slot` (`tex_image_2d`, or
    /// `tex_sub_image_2d` when `sub` — the paper's reuse optimisation).
    Upload {
        /// Texture slot.
        slot: u8,
        /// Texel-stream seed for [`texels`].
        seed: u64,
        /// Rewrite existing storage instead of allocating fresh.
        sub: bool,
    },
    /// Attach texture `slot` as the render target, or return to the
    /// window surface (`None`).
    Target {
        /// Texture slot, or `None` for the surface.
        slot: Option<u8>,
    },
    /// Clear the current render target.
    Clear {
        /// Clear colour.
        rgba: [f32; 4],
    },
    /// Draw a fullscreen quad (or only rows `y0..y1` when `band` is set).
    Draw {
        /// Optional row band.
        band: Option<(u32, u32)>,
    },
    /// Copy the current render target into texture `slot`
    /// (`copy_tex_image_2d`, or `copy_tex_sub_image_2d` when `sub`).
    CopyOut {
        /// Destination texture slot.
        slot: u8,
        /// Reuse existing storage instead of allocating fresh.
        sub: bool,
    },
    /// `read_pixels` of the current target into the transcript.
    ReadPixels,
    /// Read texture `slot`'s bytes into the transcript.
    ReadTexture {
        /// Texture slot.
        slot: u8,
    },
}

/// A complete generated conformance case: programs, initial textures,
/// per-draw varying corner overrides and the draw script.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfCase {
    /// Render-surface (and texture) width.
    pub width: u32,
    /// Render-surface (and texture) height.
    pub height: u32,
    /// Generated kernels (scripts switch between them).
    pub shaders: Vec<ShaderSpec>,
    /// Texture slots; all sized `width` × `height`.
    pub textures: Vec<TextureSpec>,
    /// Varying corner overrides applied to every draw, by varying name
    /// (filtered to the varyings the current program declares). Corner
    /// order: (0,0), (1,0), (0,1), (1,1).
    pub overrides: Vec<(String, [[f32; 4]; 4])>,
    /// The script.
    pub steps: Vec<Step>,
}

/// Deterministic texel stream: byte `i` of `texels(seed, n)` depends only
/// on `seed` and `i`.
#[must_use]
pub fn texels(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = Rng::new(seed);
    (0..len).map(|_| rng.u8()).collect()
}

// ---------------------------------------------------------------------------
// Expression generation
// ---------------------------------------------------------------------------

/// Variables visible to the expression generator, as `(name, width)`.
struct Scope {
    vars: Vec<(String, u8)>,
    samplers: Vec<String>,
    /// `float -> float` helper functions callable from expressions.
    helpers: Vec<String>,
}

/// Formats a finite float exactly as the AST pretty-printer does, so
/// generated sources and reprinted sources agree on literal spelling.
fn lit_str(v: f32) -> String {
    let s = format!("{v:?}");
    if s.contains('.') || s.contains('e') {
        s
    } else {
        format!("{s}.0")
    }
}

/// A random finite literal, biased toward small magnitudes with
/// occasional extremes (overflow to inf *at runtime* is part of the
/// surface under test; non-finite literals are not, as they have no
/// source spelling).
fn literal(rng: &mut Rng) -> f32 {
    match rng.u32_in(0, 10) {
        0 => *rng.pick(&[0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0]),
        1 => rng.f32(-1.0e3, 1.0e3),
        2 => rng.f32(-1.0e-3, 1.0e-3),
        _ => rng.f32(-4.0, 4.0),
    }
}

const SWIZZLE_LETTERS: [char; 4] = ['x', 'y', 'z', 'w'];

/// `want` swizzle letters valid for a base of width `base`; letters may
/// repeat (legal on reads).
fn read_swizzle(rng: &mut Rng, base: u8, want: u8) -> String {
    (0..want)
        .map(|_| SWIZZLE_LETTERS[rng.usize_in(0, base as usize)])
        .collect()
}

/// `want` *distinct* swizzle letters valid for width `base` (required on
/// assignment targets), in random order.
fn write_swizzle(rng: &mut Rng, base: u8, want: u8) -> String {
    let mut letters: Vec<char> = SWIZZLE_LETTERS[..base as usize].to_vec();
    // Partial Fisher-Yates: the first `want` entries end up uniform.
    for i in 0..want as usize {
        let j = rng.usize_in(i, letters.len());
        letters.swap(i, j);
    }
    letters[..want as usize].iter().collect()
}

/// A leaf expression of width `want`.
fn leaf(rng: &mut Rng, scope: &Scope, want: u8) -> String {
    let candidates: Vec<&(String, u8)> = scope.vars.iter().filter(|(_, w)| *w == want).collect();
    match rng.u32_in(0, 4) {
        // A variable of exactly the right width.
        0 | 1 if !candidates.is_empty() => candidates[rng.usize_in(0, candidates.len())].0.clone(),
        // A swizzle of any vector variable.
        2 if scope.vars.iter().any(|(_, w)| *w >= 2) => {
            let vecs: Vec<&(String, u8)> = scope.vars.iter().filter(|(_, w)| *w >= 2).collect();
            let (name, width) = vecs[rng.usize_in(0, vecs.len())];
            format!("{name}.{}", read_swizzle(rng, *width, want))
        }
        // A literal (splatted through a constructor above width 1).
        _ => {
            if want == 1 {
                lit_str(literal(rng))
            } else {
                let parts: Vec<String> = (0..want).map(|_| lit_str(literal(rng))).collect();
                format!("vec{want}({})", parts.join(", "))
            }
        }
    }
}

/// A boolean condition (scalar comparisons, optionally combined).
fn condition(rng: &mut Rng, scope: &Scope, fuel: &mut i32, depth: u32) -> String {
    *fuel -= 1;
    if depth > 0 && *fuel > 0 && rng.u32_in(0, 4) == 0 {
        let a = condition(rng, scope, fuel, depth - 1);
        let b = condition(rng, scope, fuel, depth - 1);
        let op = if rng.bool() { "&&" } else { "||" };
        return format!("({a} {op} {b})");
    }
    if depth > 0 && *fuel > 0 && rng.u32_in(0, 6) == 0 {
        return format!("(!{})", condition(rng, scope, fuel, depth - 1));
    }
    let cmp = *rng.pick(&["<", "<=", ">", ">=", "==", "!="]);
    let a = expr(rng, scope, 1, fuel, depth.saturating_sub(1));
    let b = expr(rng, scope, 1, fuel, depth.saturating_sub(1));
    format!("({a} {cmp} {b})")
}

/// A width-typed random expression. Always well-typed under the kernel
/// language's rules (scalar broadcasting on arithmetic, width-matched
/// builtins), so the surrounding program always compiles.
fn expr(rng: &mut Rng, scope: &Scope, want: u8, fuel: &mut i32, depth: u32) -> String {
    *fuel -= 1;
    if depth == 0 || *fuel <= 0 {
        return leaf(rng, scope, want);
    }
    let d = depth - 1;
    match rng.u32_in(0, 20) {
        // Binary arithmetic; one side may be a broadcast scalar.
        0..=4 => {
            let op = *rng.pick(&["+", "-", "*", "/"]);
            let (lw, rw) = match rng.u32_in(0, 4) {
                0 if want > 1 => (1, want),
                1 if want > 1 => (want, 1),
                _ => (want, want),
            };
            format!(
                "({} {op} {})",
                expr(rng, scope, lw, fuel, d),
                expr(rng, scope, rw, fuel, d)
            )
        }
        // Unary negation.
        5 => format!("(-{})", expr(rng, scope, want, fuel, d)),
        // Component-wise unary builtin.
        6..=7 => {
            let f = *rng.pick(&[
                "abs",
                "floor",
                "fract",
                "sqrt",
                "sin",
                "cos",
                "exp2",
                "log2",
                "inversesqrt",
                "sign",
            ]);
            format!("{f}({})", expr(rng, scope, want, fuel, d))
        }
        // Two-argument builtin; the second argument may broadcast.
        8..=9 => {
            let f = *rng.pick(&["min", "max", "mod", "pow", "step"]);
            let bw = if want > 1 && rng.bool() { 1 } else { want };
            if f == "step" {
                // step(edge, x): the *edge* is the one that may broadcast.
                format!(
                    "step({}, {})",
                    expr(rng, scope, bw, fuel, d),
                    expr(rng, scope, want, fuel, d)
                )
            } else {
                format!(
                    "{f}({}, {})",
                    expr(rng, scope, want, fuel, d),
                    expr(rng, scope, bw, fuel, d)
                )
            }
        }
        // clamp / mix.
        10 => {
            let bw = if want > 1 && rng.bool() { 1 } else { want };
            let cw = if want > 1 && rng.bool() { 1 } else { want };
            if rng.bool() {
                format!(
                    "clamp({}, {}, {})",
                    expr(rng, scope, want, fuel, d),
                    expr(rng, scope, bw, fuel, d),
                    expr(rng, scope, cw, fuel, d)
                )
            } else {
                format!(
                    "mix({}, {}, {})",
                    expr(rng, scope, want, fuel, d),
                    expr(rng, scope, want, fuel, d),
                    expr(rng, scope, cw, fuel, d)
                )
            }
        }
        // dot and mul24 produce scalars.
        11 if want == 1 => {
            if rng.bool() {
                let w = rng.u32_in(2, 5) as u8;
                format!(
                    "dot({}, {})",
                    expr(rng, scope, w, fuel, d),
                    expr(rng, scope, w, fuel, d)
                )
            } else {
                format!(
                    "mul24({}, {})",
                    expr(rng, scope, 1, fuel, d),
                    expr(rng, scope, 1, fuel, d)
                )
            }
        }
        // Texture fetch (swizzled down to the wanted width).
        12..=13 if !scope.samplers.is_empty() => {
            let t = rng.pick(&scope.samplers).clone();
            let coord = expr(rng, scope, 2, fuel, d);
            let fetch = format!("texture2D({t}, {coord})");
            if want == 4 {
                fetch
            } else {
                format!("{fetch}.{}", read_swizzle(rng, 4, want))
            }
        }
        // Constructor from parts (widths summing to `want`), or a splat.
        14 if want >= 2 => {
            if rng.bool() {
                format!("vec{want}({})", expr(rng, scope, 1, fuel, d))
            } else {
                let mut parts = Vec::new();
                let mut left = want;
                while left > 0 {
                    let w = rng.u32_in(1, u32::from(left) + 1) as u8;
                    parts.push(expr(rng, scope, w, fuel, d));
                    left -= w;
                }
                format!("vec{want}({})", parts.join(", "))
            }
        }
        // Ternary select.
        15 => {
            let c = condition(rng, scope, fuel, d);
            format!(
                "({c} ? {} : {})",
                expr(rng, scope, want, fuel, d),
                expr(rng, scope, want, fuel, d)
            )
        }
        // Helper call (scalar-only).
        16 if want == 1 && !scope.helpers.is_empty() => {
            let h = rng.pick(&scope.helpers).clone();
            format!("{h}({})", expr(rng, scope, 1, fuel, d))
        }
        _ => leaf(rng, scope, want),
    }
}

// ---------------------------------------------------------------------------
// Program generation
// ---------------------------------------------------------------------------

/// Generates one compilable kernel sampling the full language surface.
/// Every declared uniform, sampler and varying is referenced by the final
/// `gl_FragColor` expression, so the interface metadata is never dead.
#[must_use]
pub fn gen_shader(rng: &mut Rng) -> ShaderSpec {
    let mut src = String::new();
    if rng.u32_in(0, 3) == 0 {
        let p = *rng.pick(&["lowp", "mediump", "highp"]);
        src.push_str(&format!("precision {p} float;\n"));
    }

    let widths = [1u8, 2, 3, 4];
    let uniforms: Vec<(String, u8)> = (0..rng.usize_in(0, 4))
        .map(|i| (format!("u{i}"), *rng.pick(&widths)))
        .collect();
    let samplers: Vec<String> = (0..rng.usize_in(0, 3)).map(|i| format!("t{i}")).collect();
    let mut varyings: Vec<(String, u8)> = vec![("v0".to_owned(), 2)];
    if rng.bool() {
        varyings.push(("v1".to_owned(), *rng.pick(&[2u8, 4])));
    }

    for (name, w) in &uniforms {
        src.push_str(&format!("uniform {} {name};\n", ty_kw(*w)));
    }
    for name in &samplers {
        src.push_str(&format!("uniform sampler2D {name};\n"));
    }
    for (name, w) in &varyings {
        src.push_str(&format!("varying {} {name};\n", ty_kw(*w)));
    }
    if rng.u32_in(0, 4) == 0 {
        let c = literal(rng);
        src.push_str(&format!("const float k0 = {};\n", lit_str(c)));
    }
    let has_const = src.contains("const float k0");

    // Optional scalar helper function.
    let mut helpers = Vec::new();
    if rng.u32_in(0, 3) == 0 {
        let mut fuel = 8i32;
        let helper_scope = Scope {
            vars: vec![("p0".to_owned(), 1)],
            samplers: Vec::new(),
            helpers: Vec::new(),
        };
        let body = expr(rng, &helper_scope, 1, &mut fuel, 2);
        src.push_str(&format!("float h0(float p0) {{ return {body}; }}\n"));
        helpers.push("h0".to_owned());
    }

    src.push_str("void main() {\n");

    // Scope starts with the interface; locals accumulate.
    let mut scope = Scope {
        vars: Vec::new(),
        samplers: samplers.clone(),
        helpers,
    };
    for (n, w) in uniforms.iter().chain(varyings.iter()) {
        scope.vars.push((n.clone(), *w));
    }
    if has_const {
        scope.vars.push(("k0".to_owned(), 1));
    }

    let mut fuel = 36i32;
    let n_locals = rng.usize_in(1, 4);
    for i in 0..n_locals {
        let w = *rng.pick(&widths);
        let init = expr(rng, &scope, w, &mut fuel, 3);
        src.push_str(&format!("    {} x{i} = {init};\n", ty_kw(w)));
        scope.vars.push((format!("x{i}"), w));
    }

    // A few statements over the locals.
    let locals: Vec<(String, u8)> = (0..n_locals)
        .map(|i| scope.vars[scope.vars.len() - n_locals + i].clone())
        .collect();
    for _ in 0..rng.usize_in(0, 4) {
        match rng.u32_in(0, 5) {
            // Compound assignment to a local.
            0 | 1 => {
                let (name, w) = rng.pick(&locals).clone();
                let op = *rng.pick(&["=", "+=", "-=", "*=", "/="]);
                let value = expr(rng, &scope, w, &mut fuel, 2);
                src.push_str(&format!("    {name} {op} {value};\n"));
            }
            // Swizzled (unique-letter) write to a vector local.
            2 => {
                let vecs: Vec<(String, u8)> =
                    locals.iter().filter(|(_, w)| *w >= 2).cloned().collect();
                if let Some((name, w)) = vecs.first() {
                    let want = rng.u32_in(1, u32::from(*w) + 1) as u8;
                    let sw = write_swizzle(rng, *w, want);
                    let value = expr(rng, &scope, want, &mut fuel, 2);
                    src.push_str(&format!("    {name}.{sw} = {value};\n"));
                }
            }
            // if / else over scalar conditions.
            3 => {
                let cond = condition(rng, &scope, &mut fuel, 2);
                let (name, w) = rng.pick(&locals).clone();
                let tv = expr(rng, &scope, w, &mut fuel, 2);
                src.push_str(&format!(
                    "    if ({cond}) {{\n        {name} = {tv};\n    }}"
                ));
                if rng.bool() {
                    let ev = expr(rng, &scope, w, &mut fuel, 2);
                    src.push_str(&format!(" else {{\n        {name} = {ev};\n    }}\n"));
                } else {
                    src.push('\n');
                }
            }
            // Constant-bounded for loop accumulating into a local.
            _ => {
                let (name, w) = rng.pick(&locals).clone();
                let n = rng.u32_in(1, 5);
                let op = *rng.pick(&["+=", "*="]);
                // The counter is in scope inside the body.
                let mut body_scope = Scope {
                    vars: scope.vars.clone(),
                    samplers: scope.samplers.clone(),
                    helpers: scope.helpers.clone(),
                };
                body_scope.vars.push(("i0".to_owned(), 1));
                let value = expr(rng, &body_scope, w, &mut fuel, 2);
                src.push_str(&format!(
                    "    for (float i0 = 0.0; i0 < {}; i0 += 1.0) {{\n        {name} {op} {value};\n    }}\n",
                    lit_str(n as f32)
                ));
            }
        }
    }

    // gl_FragColor: a generated base, plus one live use of every declared
    // sampler, uniform and varying so nothing in the interface is dead.
    let mut color = expr(rng, &scope, 4, &mut fuel, 3);
    for t in &samplers {
        let coord = if rng.bool() {
            "v0".to_owned()
        } else {
            let mut f = 4i32;
            expr(rng, &scope, 2, &mut f, 1)
        };
        color = format!("({color} + texture2D({t}, {coord}))");
    }
    for (name, w) in uniforms.iter().chain(varyings.iter()) {
        let term = widen4(name, *w);
        color = format!("({color} + {term})");
    }
    src.push_str(&format!("    gl_FragColor = {color};\n"));
    src.push_str("}\n");

    ShaderSpec {
        source: src,
        uniforms,
        samplers,
        varyings,
    }
}

fn ty_kw(w: u8) -> &'static str {
    match w {
        1 => "float",
        2 => "vec2",
        3 => "vec3",
        _ => "vec4",
    }
}

/// An expression widening `name` (width `w`) to vec4.
fn widen4(name: &str, w: u8) -> String {
    match w {
        1 => format!("vec4({name})"),
        2 => format!("vec4({name}, {name})"),
        3 => format!("vec4({name}, {name}.x)"),
        _ => name.to_owned(),
    }
}

// ---------------------------------------------------------------------------
// Draw-script generation
// ---------------------------------------------------------------------------

/// Number of texture slots every case provisions.
pub const TEXTURE_SLOTS: u8 = 4;

/// A uniform value: usually ordinary, sometimes an edge-case input
/// (signed zero, huge magnitudes, infinities, NaN).
fn uniform_value(rng: &mut Rng) -> [f32; 4] {
    let mut v = [0.0f32; 4];
    for c in &mut v {
        *c = if rng.u32_in(0, 8) == 0 {
            *rng.pick(&[
                0.0f32,
                -0.0,
                1.0e30,
                -1.0e30,
                1.0e-38,
                f32::INFINITY,
                f32::NEG_INFINITY,
                f32::NAN,
            ])
        } else {
            rng.f32(-4.0, 4.0)
        };
    }
    v
}

/// Varying corner values: mostly in-range texcoord-like, occasionally
/// non-finite (NaN/inf interpolation is part of the surface under test).
fn corner_values(rng: &mut Rng) -> [[f32; 4]; 4] {
    let mut corners = [[0.0f32; 4]; 4];
    for corner in &mut corners {
        for c in corner.iter_mut() {
            *c = if rng.u32_in(0, 16) == 0 {
                *rng.pick(&[f32::INFINITY, f32::NEG_INFINITY, f32::NAN, 1.0e20])
            } else {
                rng.f32(-2.0, 2.0)
            };
        }
    }
    corners
}

/// Generates a full conformance case: 1–2 shaders, provisioned textures,
/// a valid prologue (every uniform and sampler bound, every texture
/// uploaded) and a churn body ending in a draw and a readback.
#[must_use]
pub fn gen_case(rng: &mut Rng) -> ConfCase {
    // Deliberately awkward sizes: rarely multiples of the 64-lane batch
    // width or the 16-row dispatch chunk.
    let width = rng.u32_in(3, 20);
    let height = rng.u32_in(2, 17);

    let shaders: Vec<ShaderSpec> = (0..rng.usize_in(1, 3)).map(|_| gen_shader(rng)).collect();
    let textures: Vec<TextureSpec> = (0..TEXTURE_SLOTS)
        .map(|_| TextureSpec {
            format: if rng.u32_in(0, 4) == 0 {
                TexFormat::Rgb8
            } else {
                TexFormat::Rgba8
            },
            seed: rng.next_u64(),
        })
        .collect();

    // Corner overrides for a subset of the declared varying names.
    let mut names: Vec<String> = Vec::new();
    for s in &shaders {
        for (n, _) in &s.varyings {
            if !names.contains(n) {
                names.push(n.clone());
            }
        }
    }
    let mut overrides: Vec<(String, [[f32; 4]; 4])> = Vec::new();
    for n in names {
        if rng.u32_in(0, 3) == 0 {
            let corners = corner_values(rng);
            overrides.push((n, corners));
        }
    }

    let mut steps = Vec::new();

    // Prologue: provision every texture and fully bind every shader.
    for slot in 0..TEXTURE_SLOTS {
        steps.push(Step::Upload {
            slot,
            seed: textures[slot as usize].seed,
            sub: false,
        });
    }
    for (i, spec) in shaders.iter().enumerate() {
        let shader = i as u8;
        steps.push(Step::UseProgram { shader });
        for (name, _) in &spec.uniforms {
            steps.push(Step::SetUniform {
                shader,
                name: name.clone(),
                value: uniform_value(rng),
            });
        }
        for (unit, name) in spec.samplers.iter().enumerate() {
            steps.push(Step::BindTexture {
                unit: unit as u8,
                slot: unit as u8,
            });
            steps.push(Step::SetSampler {
                shader,
                name: name.clone(),
                unit: unit as u8,
            });
        }
    }
    steps.push(Step::UseProgram { shader: 0 });

    // Churn body.
    let mut current = 0u8;
    for _ in 0..rng.usize_in(6, 19) {
        let step = match rng.u32_in(0, 16) {
            // Draws dominate; occasionally as row bands.
            0..=3 => Step::Draw {
                band: if rng.u32_in(0, 5) == 0 && height >= 2 {
                    let y0 = rng.u32_in(0, height);
                    let y1 = rng.u32_in(y0 + 1, height + 1);
                    Some((y0, y1))
                } else {
                    None
                },
            },
            // Uniform churn (the plan cache's hot path).
            4..=7 => {
                let shader = rng.u32_in(0, shaders.len() as u32) as u8;
                let spec = &shaders[shader as usize];
                if spec.uniforms.is_empty() {
                    Step::Draw { band: None }
                } else {
                    let (name, _) = rng.pick(&spec.uniforms).clone();
                    Step::SetUniform {
                        shader,
                        name,
                        value: uniform_value(rng),
                    }
                }
            }
            8 => {
                current = rng.u32_in(0, shaders.len() as u32) as u8;
                Step::UseProgram { shader: current }
            }
            9 => Step::Relink {
                shader: rng.u32_in(0, shaders.len() as u32) as u8,
            },
            10 => Step::Upload {
                slot: rng.u32_in(0, u32::from(TEXTURE_SLOTS)) as u8,
                seed: rng.next_u64(),
                sub: rng.bool(),
            },
            11 => Step::Target {
                slot: if rng.bool() {
                    Some(rng.u32_in(0, u32::from(TEXTURE_SLOTS)) as u8)
                } else {
                    None
                },
            },
            12 => Step::Clear {
                rgba: [rng.f32(0.0, 1.0), rng.f32(0.0, 1.0), rng.f32(0.0, 1.0), 1.0],
            },
            13 => Step::CopyOut {
                slot: rng.u32_in(0, u32::from(TEXTURE_SLOTS)) as u8,
                sub: rng.bool(),
            },
            14 => Step::ReadPixels,
            15 => Step::ReadTexture {
                slot: rng.u32_in(0, u32::from(TEXTURE_SLOTS)) as u8,
            },
            _ => {
                // Rebind a sampled unit to a different slot.
                let spec = &shaders[current as usize];
                if spec.samplers.is_empty() {
                    Step::Draw { band: None }
                } else {
                    Step::BindTexture {
                        unit: rng.u32_in(0, spec.samplers.len() as u32) as u8,
                        slot: rng.u32_in(0, u32::from(TEXTURE_SLOTS)) as u8,
                    }
                }
            }
        };
        steps.push(step);
    }

    // Epilogue: every case ends with at least one draw and a readback.
    steps.push(Step::Draw { band: None });
    steps.push(Step::ReadPixels);

    ConfCase {
        width,
        height,
        shaders,
        textures,
        overrides,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_case(&mut Rng::new(11));
        let b = gen_case(&mut Rng::new(11));
        assert_eq!(a, b);
        let c = gen_case(&mut Rng::new(12));
        assert_ne!(a, c);
    }

    #[test]
    fn cases_are_well_formed() {
        for seed in 0..64 {
            let case = gen_case(&mut Rng::new(seed));
            assert!(case.width >= 1 && case.height >= 1);
            assert!(!case.shaders.is_empty());
            assert_eq!(case.textures.len(), TEXTURE_SLOTS as usize);
            assert!(matches!(case.steps.last(), Some(Step::ReadPixels)));
            assert!(case.steps.iter().any(|s| matches!(s, Step::Draw { .. })));
            for s in &case.shaders {
                assert!(s.source.contains("gl_FragColor"));
                // Every declared sampler is referenced.
                for t in &s.samplers {
                    assert!(s.source.contains(&format!("texture2D({t},")));
                }
            }
        }
    }

    #[test]
    fn texel_streams_are_stable() {
        assert_eq!(texels(5, 16), texels(5, 16));
        assert_ne!(texels(5, 16), texels(6, 16));
        assert_eq!(texels(5, 8), texels(5, 16)[..8].to_vec());
    }

    #[test]
    fn swizzles_respect_widths() {
        let mut rng = Rng::new(3);
        for _ in 0..500 {
            let base = rng.u32_in(2, 5) as u8;
            let want = rng.u32_in(1, u32::from(base) + 1) as u8;
            let r = read_swizzle(&mut rng, base, 4);
            assert!(r
                .chars()
                .all(|c| SWIZZLE_LETTERS[..base as usize].contains(&c)));
            let w = write_swizzle(&mut rng, base, want);
            assert_eq!(w.len(), want as usize);
            let mut seen = std::collections::HashSet::new();
            assert!(w.chars().all(|c| seen.insert(c)), "duplicate in `{w}`");
        }
    }
}
