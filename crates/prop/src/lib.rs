//! Dependency-free deterministic randomness and a tiny property-test
//! harness.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so it cannot pull in `rand` or `proptest`. This crate provides the two
//! pieces those were used for:
//!
//! * [`Rng`] — a seeded [SplitMix64] generator with range helpers, used
//!   both by the workload generators (reproducible paper inputs) and by
//!   tests;
//! * [`run_cases`] — a fixed-seed case runner for property tests: each
//!   case gets its own deterministically derived [`Rng`], and a failing
//!   case reports its index and seed so it can be replayed in isolation
//!   with [`case_rng`].
//!
//! Everything here is deterministic across runs, platforms and thread
//! counts; there is no global state and no entropy source.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

pub mod shadergen;

/// The SplitMix64 increment (the golden-ratio constant).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A seeded SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use mgpu_prop::Rng;
///
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.f32(0.0, 1.0);
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform byte.
    pub fn u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform `bool`.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        // Multiply-shift reduction; bias is < 2^-64 per draw, far below
        // anything a property test can observe.
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform float in the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is non-finite.
    pub fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        let t = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = (f64::from(lo) + t * (f64::from(hi) - f64::from(lo))) as f32;
        // f32 rounding can push the largest draws onto `hi`; keep the
        // interval half-open by wrapping those (astronomically rare) hits.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// A uniform double in the half-open interval `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is non-finite.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
        let t = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let v = lo + t * (hi - lo);
        if v >= hi {
            lo
        } else {
            v
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len())]
    }
}

/// The [`Rng`] that [`run_cases`] hands to case number `case` — use it to
/// replay a single failing case under a debugger.
#[must_use]
pub fn case_rng(case: u64) -> Rng {
    // Decorrelate consecutive case indices through one extra mix step.
    Rng::new(Rng::new(case.wrapping_mul(GOLDEN_GAMMA)).next_u64())
}

/// Runs `cases` property-test cases, each with its own deterministic
/// [`Rng`]. A panicking case is annotated with its index before the panic
/// is propagated, so `run_cases` composes with plain `assert!`s.
///
/// # Examples
///
/// ```
/// mgpu_prop::run_cases(64, |rng| {
///     let x = rng.f32(-8.0, 8.0);
///     assert!(x.abs() <= 8.0);
/// });
/// ```
///
/// # Panics
///
/// Propagates the first case's panic.
pub fn run_cases(cases: u64, mut f: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = case_rng(case);
            f(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at case {case} (replay with mgpu_prop::case_rng({case}))");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let v = r.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = r.f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let d = r.f64(0.0, 1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn floats_cover_the_interval() {
        let mut r = Rng::new(2);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let f = r.f32(0.0, 1.0);
            lo_seen |= f < 0.1;
            hi_seen |= f > 0.9;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn pick_hits_every_element() {
        let mut r = Rng::new(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn run_cases_reports_failures() {
        let hit = std::panic::catch_unwind(|| {
            run_cases(10, |rng| {
                let _ = rng.next_u64();
                panic!("always fails");
            });
        });
        assert!(hit.is_err());
    }

    #[test]
    fn case_rng_matches_run_cases() {
        let mut first = Vec::new();
        run_cases(3, |rng| first.push(rng.next_u64()));
        for (case, &v) in first.iter().enumerate() {
            assert_eq!(case_rng(case as u64).next_u64(), v);
        }
    }
}
