//! Property-based invariants of the TBDR scheduler.

use mgpu_tbdr::{
    AllocKind, CopyOut, FragmentProfile, FrameWork, PipelineSim, Platform, RenderTarget,
    ResourceId, SimTime, SyncOp, Upload,
};
use proptest::prelude::*;

/// Strategy for a small but varied fragment profile.
fn profile_strategy() -> impl Strategy<Value = FragmentProfile> {
    (
        0.0f64..64.0,
        0.0f64..4.0,
        0.0f64..16.0,
        0.0f64..4.0,
        0.0f64..16.0,
        1.0f64..8.0,
    )
        .prop_map(|(alu, sf, sfb, df, dfb, out)| FragmentProfile {
            alu_cycles: alu,
            streaming_fetches: sf,
            streaming_fetch_bytes: sfb,
            dependent_fetches: df,
            dependent_fetch_bytes: dfb,
            output_bytes: out,
        })
}

/// Strategy for one frame with random-ish structure over a handful of
/// resources.
fn frame_strategy() -> impl Strategy<Value = FrameWork> {
    (
        profile_strategy(),
        1u32..3,   // width multiplier (x64)
        1u32..3,   // height multiplier (x64)
        0usize..3, // uploads
        prop::bool::ANY,
        prop::bool::ANY,
        0u8..4,  // sync selector
        0u64..4, // read resource
        prop::bool::ANY,
    )
        .prop_map(
            |(profile, w, h, n_uploads, cleared, to_texture, sync, read, copy)| {
                let width = w * 64;
                let height = h * 64;
                let mut f = FrameWork::simple(width, height, profile);
                f.fragment.cleared = cleared;
                for i in 0..n_uploads {
                    f.uploads.push(if i % 2 == 0 {
                        Upload::fresh(ResourceId::from_raw(100 + i as u64), 4096)
                    } else {
                        Upload::reuse(ResourceId::from_raw(100 + i as u64), 4096)
                    });
                }
                if to_texture {
                    f.target = RenderTarget::Texture {
                        storage: ResourceId::from_raw(50),
                        fresh: false,
                    };
                } else if copy {
                    f.copy_out = Some(CopyOut {
                        dest: ResourceId::from_raw(60),
                        bytes: u64::from(width) * u64::from(height) * 4,
                        alloc: AllocKind::Reuse,
                    });
                }
                f.reads.push(ResourceId::from_raw(read));
                f.sync = match sync {
                    0 => SyncOp::None,
                    1 => SyncOp::Finish,
                    2 => SyncOp::Swap { interval: 0 },
                    _ => SyncOp::Swap { interval: 1 },
                };
                f
            },
        )
}

proptest! {
    /// Every stage of every frame is well-ordered, and per-unit intervals
    /// never overlap across frames.
    #[test]
    fn stages_ordered_and_units_exclusive(
        frames in prop::collection::vec(frame_strategy(), 1..20),
        vc in prop::bool::ANY,
    ) {
        let platform = if vc { Platform::videocore_iv() } else { Platform::sgx_545() };
        let mut sim = PipelineSim::new(platform);
        let mut prev_frag_end = SimTime::ZERO;
        let mut prev_vtx_end = SimTime::ZERO;
        let mut prev_copy_end = SimTime::ZERO;
        for f in &frames {
            let t = sim.submit(f);
            prop_assert!(t.cpu_start <= t.submit);
            prop_assert!(t.submit <= t.vtx_start);
            prop_assert!(t.vtx_start <= t.vtx_end);
            prop_assert!(t.vtx_end <= t.frag_start);
            prop_assert!(t.frag_start <= t.frag_end);
            prop_assert!(t.retire >= t.frag_end);
            // Units are exclusive: each stage starts after the unit's
            // previous occupant finished.
            prop_assert!(t.vtx_start >= prev_vtx_end);
            prop_assert!(t.frag_start >= prev_frag_end);
            if let Some((cs, ce)) = t.copy {
                prop_assert!(cs >= t.frag_end);
                prop_assert!(cs >= prev_copy_end);
                prop_assert!(ce >= cs);
                prev_copy_end = ce;
            }
            prev_vtx_end = t.vtx_end;
            prev_frag_end = t.frag_end;
        }
    }

    /// Submitting more work never makes the simulation end earlier.
    #[test]
    fn total_time_is_monotone(
        frames in prop::collection::vec(frame_strategy(), 2..16),
    ) {
        let platform = Platform::videocore_iv();
        let mut totals = Vec::new();
        for n in 1..=frames.len() {
            let mut sim = PipelineSim::new(platform.clone());
            for f in &frames[..n] {
                sim.submit(f);
            }
            totals.push(sim.finish().total_time);
        }
        for w in totals.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    /// The schedule for a prefix of the frame stream is unaffected by what
    /// comes later (causality).
    #[test]
    fn schedule_is_causal(
        frames in prop::collection::vec(frame_strategy(), 2..12),
    ) {
        let platform = Platform::sgx_545();
        let mut full = PipelineSim::new(platform.clone());
        let full_timings: Vec<_> = frames.iter().map(|f| full.submit(f)).collect();

        let k = frames.len() / 2;
        let mut partial = PipelineSim::new(platform);
        for (i, f) in frames[..k].iter().enumerate() {
            let t = partial.submit(f);
            prop_assert_eq!(&t, &full_timings[i]);
        }
    }

    /// Fragment time grows monotonically with the fragment count.
    #[test]
    fn fragment_time_monotone_in_coverage(profile in profile_strategy()) {
        let sim = PipelineSim::new(Platform::videocore_iv());
        let mut prev = SimTime::ZERO;
        for mult in 1u32..=4 {
            let f = FrameWork::simple(64 * mult, 64, profile);
            let t = sim.fragment_time(&f.fragment, false);
            prop_assert!(t >= prev);
            prev = t;
        }
    }

    /// Vsync never makes a frame finish earlier, and never alters GPU-side
    /// timing of the frame itself.
    #[test]
    fn vsync_only_delays(profile in profile_strategy()) {
        let platform = Platform::videocore_iv();
        let mut swap = FrameWork::simple(128, 128, profile);
        swap.sync = SyncOp::Swap { interval: 1 };
        let mut nosync = swap.clone();
        nosync.sync = SyncOp::Swap { interval: 0 };

        let mut sim_a = PipelineSim::new(platform.clone());
        let ta = sim_a.submit(&swap);
        let mut sim_b = PipelineSim::new(platform);
        let tb = sim_b.submit(&nosync);
        prop_assert_eq!(ta.frag_end, tb.frag_end);
        prop_assert!(ta.next_cpu_free >= tb.next_cpu_free);
    }
}
