//! Property-based invariants of the TBDR scheduler.

use mgpu_prop::{run_cases, Rng};
use mgpu_tbdr::{
    AllocKind, CopyOut, FragmentProfile, FrameWork, PipelineSim, Platform, RenderTarget,
    ResourceId, SimTime, SyncOp, Upload,
};

/// A small but varied fragment profile.
fn gen_profile(rng: &mut Rng) -> FragmentProfile {
    FragmentProfile {
        alu_cycles: rng.f64(0.0, 64.0),
        streaming_fetches: rng.f64(0.0, 4.0),
        streaming_fetch_bytes: rng.f64(0.0, 16.0),
        dependent_fetches: rng.f64(0.0, 4.0),
        dependent_fetch_bytes: rng.f64(0.0, 16.0),
        output_bytes: rng.f64(1.0, 8.0),
    }
}

/// One frame with random-ish structure over a handful of resources.
fn gen_frame(rng: &mut Rng) -> FrameWork {
    let profile = gen_profile(rng);
    let width = rng.u32_in(1, 3) * 64;
    let height = rng.u32_in(1, 3) * 64;
    let n_uploads = rng.usize_in(0, 3);
    let cleared = rng.bool();
    let to_texture = rng.bool();
    let sync = rng.u32_in(0, 4);
    let read = rng.u64_in(0, 4);
    let copy = rng.bool();

    let mut f = FrameWork::simple(width, height, profile);
    f.fragment.cleared = cleared;
    for i in 0..n_uploads {
        f.uploads.push(if i % 2 == 0 {
            Upload::fresh(ResourceId::from_raw(100 + i as u64), 4096)
        } else {
            Upload::reuse(ResourceId::from_raw(100 + i as u64), 4096)
        });
    }
    if to_texture {
        f.target = RenderTarget::Texture {
            storage: ResourceId::from_raw(50),
            fresh: false,
        };
    } else if copy {
        f.copy_out = Some(CopyOut {
            dest: ResourceId::from_raw(60),
            bytes: u64::from(width) * u64::from(height) * 4,
            alloc: AllocKind::Reuse,
        });
    }
    f.reads.push(ResourceId::from_raw(read));
    f.sync = match sync {
        0 => SyncOp::None,
        1 => SyncOp::Finish,
        2 => SyncOp::Swap { interval: 0 },
        _ => SyncOp::Swap { interval: 1 },
    };
    f
}

/// Every stage of every frame is well-ordered, and per-unit intervals
/// never overlap across frames.
#[test]
fn stages_ordered_and_units_exclusive() {
    run_cases(256, |rng| {
        let n = rng.usize_in(1, 20);
        let frames: Vec<FrameWork> = (0..n).map(|_| gen_frame(rng)).collect();
        let platform = if rng.bool() {
            Platform::videocore_iv()
        } else {
            Platform::sgx_545()
        };
        let mut sim = PipelineSim::new(platform);
        let mut prev_frag_end = SimTime::ZERO;
        let mut prev_vtx_end = SimTime::ZERO;
        let mut prev_copy_end = SimTime::ZERO;
        for f in &frames {
            let t = sim.submit(f);
            assert!(t.cpu_start <= t.submit);
            assert!(t.submit <= t.vtx_start);
            assert!(t.vtx_start <= t.vtx_end);
            assert!(t.vtx_end <= t.frag_start);
            assert!(t.frag_start <= t.frag_end);
            assert!(t.retire >= t.frag_end);
            // Units are exclusive: each stage starts after the unit's
            // previous occupant finished.
            assert!(t.vtx_start >= prev_vtx_end);
            assert!(t.frag_start >= prev_frag_end);
            if let Some((cs, ce)) = t.copy {
                assert!(cs >= t.frag_end);
                assert!(cs >= prev_copy_end);
                assert!(ce >= cs);
                prev_copy_end = ce;
            }
            prev_vtx_end = t.vtx_end;
            prev_frag_end = t.frag_end;
        }
    });
}

/// Submitting more work never makes the simulation end earlier.
#[test]
fn total_time_is_monotone() {
    run_cases(64, |rng| {
        let n = rng.usize_in(2, 16);
        let frames: Vec<FrameWork> = (0..n).map(|_| gen_frame(rng)).collect();
        let platform = Platform::videocore_iv();
        let mut totals = Vec::new();
        for n in 1..=frames.len() {
            let mut sim = PipelineSim::new(platform.clone());
            for f in &frames[..n] {
                sim.submit(f);
            }
            totals.push(sim.finish().total_time);
        }
        for w in totals.windows(2) {
            assert!(w[1] >= w[0]);
        }
    });
}

/// The schedule for a prefix of the frame stream is unaffected by what
/// comes later (causality).
#[test]
fn schedule_is_causal() {
    run_cases(128, |rng| {
        let n = rng.usize_in(2, 12);
        let frames: Vec<FrameWork> = (0..n).map(|_| gen_frame(rng)).collect();
        let platform = Platform::sgx_545();
        let mut full = PipelineSim::new(platform.clone());
        let full_timings: Vec<_> = frames.iter().map(|f| full.submit(f)).collect();

        let k = frames.len() / 2;
        let mut partial = PipelineSim::new(platform);
        for (i, f) in frames[..k].iter().enumerate() {
            let t = partial.submit(f);
            assert_eq!(&t, &full_timings[i]);
        }
    });
}

/// Fragment time grows monotonically with the fragment count.
#[test]
fn fragment_time_monotone_in_coverage() {
    run_cases(256, |rng| {
        let profile = gen_profile(rng);
        let sim = PipelineSim::new(Platform::videocore_iv());
        let mut prev = SimTime::ZERO;
        for mult in 1u32..=4 {
            let f = FrameWork::simple(64 * mult, 64, profile);
            let t = sim.fragment_time(&f.fragment, false);
            assert!(t >= prev);
            prev = t;
        }
    });
}

/// Vsync never makes a frame finish earlier, and never alters GPU-side
/// timing of the frame itself.
#[test]
fn vsync_only_delays() {
    run_cases(256, |rng| {
        let profile = gen_profile(rng);
        let platform = Platform::videocore_iv();
        let mut swap = FrameWork::simple(128, 128, profile);
        swap.sync = SyncOp::Swap { interval: 1 };
        let mut nosync = swap.clone();
        nosync.sync = SyncOp::Swap { interval: 0 };

        let mut sim_a = PipelineSim::new(platform.clone());
        let ta = sim_a.submit(&swap);
        let mut sim_b = PipelineSim::new(platform);
        let tb = sim_b.submit(&nosync);
        assert_eq!(ta.frag_end, tb.frag_end);
        assert!(ta.next_cpu_free >= tb.next_cpu_free);
    });
}
