//! Additional scheduler semantics: vsync grids, utilisation accounting,
//! ablation builders, and the steady-state helper.

use mgpu_tbdr::{
    steady_state_period, Bandwidth, FragmentProfile, FrameWork, PipelineSim, Platform, SimTime,
    SyncOp,
};

fn cheap_frame(sync: SyncOp) -> FrameWork {
    let mut f = FrameWork::simple(
        128,
        128,
        FragmentProfile {
            alu_cycles: 8.0,
            output_bytes: 4.0,
            ..FragmentProfile::default()
        },
    );
    f.sync = sync;
    f
}

#[test]
fn swap_interval_two_halves_the_frame_rate() {
    let p = Platform::videocore_iv();
    let measure = |interval: u32| {
        let mut sim = PipelineSim::new(p.clone());
        for _ in 0..20 {
            sim.submit(&cheap_frame(SyncOp::Swap { interval }));
        }
        sim.finish().steady_period(5).unwrap()
    };
    let one = measure(1);
    let two = measure(2);
    // A cheap kernel locks to the grid: interval 2 is exactly twice it.
    assert_eq!(one, p.refresh_period);
    assert_eq!(two, p.refresh_period * 2);
}

#[test]
fn utilisation_is_bounded_and_consistent() {
    let mut sim = PipelineSim::new(Platform::sgx_545());
    // A compute-heavy kernel keeps the fragment unit clearly the busiest.
    let mut frame = FrameWork::simple(
        512,
        512,
        FragmentProfile {
            alu_cycles: 120.0,
            output_bytes: 4.0,
            ..FragmentProfile::default()
        },
    );
    frame.sync = SyncOp::None;
    for _ in 0..50 {
        sim.submit(&frame);
    }
    let report = sim.finish();
    let util = report.utilisation();
    for (name, u) in util {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&u),
            "{name} utilisation {u} out of range"
        );
    }
    // A pipelined stream keeps the fragment unit the busiest GPU unit.
    let get = |n: &str| util.iter().find(|(k, _)| *k == n).unwrap().1;
    assert!(get("fragment") > get("vertex"));
    assert!(get("copy") == 0.0);
}

#[test]
fn steady_state_helper_matches_manual_measurement() {
    let p = Platform::videocore_iv();
    let helper = steady_state_period(&p, 60, |_| vec![cheap_frame(SyncOp::None)]);

    let mut sim = PipelineSim::new(p);
    for _ in 0..60 {
        sim.submit(&cheap_frame(SyncOp::None));
    }
    let manual = sim.finish().steady_period(30).unwrap();
    let (a, b) = (helper.as_secs_f64(), manual.as_secs_f64());
    assert!(((a - b) / b).abs() < 0.05, "{a} vs {b}");
}

#[test]
fn disabling_the_dma_engine_slows_copies_only() {
    let vc = Platform::videocore_iv();
    let no_dma = vc
        .to_builder()
        .blocking_copy(Bandwidth::mebi_per_sec(2.0))
        .build();

    let mk = || {
        let mut f = cheap_frame(SyncOp::None);
        f.copy_out = Some(mgpu_tbdr::CopyOut {
            dest: mgpu_tbdr::ResourceId::from_raw(1000),
            bytes: 128 * 128 * 4,
            alloc: mgpu_tbdr::AllocKind::Fresh,
        });
        f
    };

    let mut a = PipelineSim::new(vc);
    let mut b = PipelineSim::new(no_dma);
    let ta = a.submit(&mk());
    let tb = b.submit(&mk());
    // Fragment timing identical; copy much slower without DMA.
    assert_eq!(ta.frag_end - ta.frag_start, tb.frag_end - tb.frag_start);
    let (cas, cae) = ta.copy.unwrap();
    let (cbs, cbe) = tb.copy.unwrap();
    assert!((cbe - cbs) > (cae - cas) * 10);
}

#[test]
fn bigger_tiles_mean_fewer_binning_cycles() {
    let small = Platform::sgx_545();
    let big = small.to_builder().tile_size(64, 64).build();
    let f = cheap_frame(SyncOp::None);
    let mut sa = PipelineSim::new(small);
    let mut sb = PipelineSim::new(big);
    let ta = sa.submit(&f);
    let tb = sb.submit(&f);
    assert!(tb.vtx_end - tb.vtx_start < ta.vtx_end - ta.vtx_start);
}

#[test]
fn display_formats_cover_magnitudes() {
    assert_eq!(format!("{}", SimTime::from_nanos(999)), "999ns");
    assert_eq!(format!("{}", SimTime::from_micros(1)), "1.000us");
    assert!(format!("{}", SimTime::from_secs_f64(90.0)).ends_with('s'));
}

#[test]
fn upload_stall_is_reported_not_hidden() {
    use mgpu_tbdr::{ResourceId, Upload};
    let p = Platform::sgx_545();
    let mut sim = PipelineSim::new(p);
    let tex = ResourceId::from_raw(7);
    // A heavy reader holds the storage.
    let mut reader = FrameWork::simple(
        1024,
        1024,
        FragmentProfile {
            alu_cycles: 500.0,
            output_bytes: 4.0,
            ..FragmentProfile::default()
        },
    );
    reader.reads.push(tex);
    let mut writer = cheap_frame(SyncOp::None);
    writer.uploads.push(Upload::reuse(tex, 4096));

    let r = sim.submit(&reader);
    let w = sim.submit(&writer);
    assert!(w.upload_stall > SimTime::ZERO);
    assert!(w.submit >= r.frag_end);
    // The report records the same stall.
    let report = sim.finish();
    assert_eq!(report.frames[1].upload_stall, w.upload_stall);
}
