//! Platform descriptors for the simulated mobile GPUs.
//!
//! A [`Platform`] bundles every micro-architectural constant the timing model
//! needs: tile geometry, functional-unit clocks, memory and copy-engine
//! bandwidths, driver overheads, display timing and shader implementation
//! limits. Two presets reproduce the boards evaluated in the paper:
//!
//! * [`Platform::videocore_iv`] — Broadcom VideoCore IV (Raspberry Pi):
//!   64×64 tiles, a DMA engine (~1 GB/s) that offloads framebuffer→texture
//!   copies, deep QPU multithreading that hides texture-fetch latency, and a
//!   60 Hz display with a default swap interval of 1.
//! * [`Platform::sgx_545`] — Imagination PowerVR SGX 545: 16×16 tiles, **no**
//!   DMA assist for `glCopyTexImage2D` (a slow, blocking CPU-side conversion
//!   path), exposed dependent-texture-fetch latency, and an internal
//!   synchronisation rate far above 60 Hz (so `eglSwapInterval(0)` is a
//!   no-op, as the paper observes).
//!
//! All constants are plain public-API knobs so that ablation benches can
//! switch individual mechanisms on and off.

use crate::time::{Bandwidth, Clock, SimTime};

/// GLSL implementation limits advertised by a platform's shader compiler.
///
/// Exceeding either limit makes shader compilation fail, which is what bounds
/// the usable block size in the paper's Fig. 4b.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShaderLimits {
    /// Maximum number of IR instructions in a compiled fragment kernel.
    pub max_instructions: u32,
    /// Maximum number of texture fetches a single fragment may issue.
    pub max_texture_fetches: u32,
    /// Maximum number of `uniform` vec4 slots.
    pub max_uniform_vectors: u32,
    /// Maximum number of `varying` vec4 slots.
    pub max_varying_vectors: u32,
}

impl ShaderLimits {
    /// Permissive limits for tests that should never trip them.
    #[must_use]
    pub const fn unlimited() -> Self {
        ShaderLimits {
            max_instructions: u32::MAX,
            max_texture_fetches: u32::MAX,
            max_uniform_vectors: u32::MAX,
            max_varying_vectors: u32::MAX,
        }
    }
}

/// How the platform executes `glCopyTexImage2D`-style framebuffer→texture
/// copies (step 4 of the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CopyEngine {
    /// A hardware DMA engine: copies run asynchronously on their own unit,
    /// ordered with GPU work by hardware queues, so reusing the destination
    /// texture does not force a CPU-visible synchronisation.
    Dma {
        /// Sustained copy bandwidth.
        bandwidth: Bandwidth,
    },
    /// A blocking, driver-mediated path (CPU conversion into the texture's
    /// internal layout through uncached memory). The CPU is held for the
    /// whole copy, and a reused destination serialises against every
    /// in-flight frame that touches it.
    Blocking {
        /// Effective conversion bandwidth (typically well under 10 MB/s).
        bandwidth: Bandwidth,
    },
}

impl CopyEngine {
    /// The copy bandwidth regardless of engine kind.
    #[must_use]
    pub fn bandwidth(&self) -> Bandwidth {
        match *self {
            CopyEngine::Dma { bandwidth } | CopyEngine::Blocking { bandwidth } => bandwidth,
        }
    }

    /// Whether this engine runs asynchronously with respect to the CPU.
    #[must_use]
    pub fn is_dma(&self) -> bool {
        matches!(self, CopyEngine::Dma { .. })
    }
}

/// A complete micro-architectural description of a simulated mobile GPU
/// platform.
///
/// Construct one with [`Platform::videocore_iv`], [`Platform::sgx_545`] or
/// [`PlatformBuilder`] for custom/ablated configurations.
///
/// # Examples
///
/// ```
/// use mgpu_tbdr::Platform;
///
/// let vc = Platform::videocore_iv();
/// assert_eq!(vc.tile_width, 64);
/// assert!(vc.copy_engine.is_dma());
///
/// let sgx = Platform::sgx_545();
/// assert_eq!(sgx.tile_width, 16);
/// assert!(!sgx.copy_engine.is_dma());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable platform name, e.g. `"VideoCore IV"`.
    pub name: String,
    /// Tile width in pixels.
    pub tile_width: u32,
    /// Tile height in pixels.
    pub tile_height: u32,
    /// Fragment-core clock.
    pub fragment_clock: Clock,
    /// Effective fragment-level parallelism (SIMD lanes × pipes); divides all
    /// throughput-bound per-fragment cycle costs.
    pub fragment_parallelism: f64,
    /// Vertex-unit clock.
    pub vertex_clock: Clock,
    /// Cycles to process one vertex.
    pub cycles_per_vertex: f64,
    /// Main-memory bandwidth seen by tile writeback and preserve-loads.
    pub mem_bandwidth: Bandwidth,
    /// CPU-side `memcpy` bandwidth for buffer/texture uploads.
    pub cpu_copy_bandwidth: Bandwidth,
    /// The framebuffer→texture copy engine.
    pub copy_engine: CopyEngine,
    /// Fixed cost added to every copy operation (drain/setup).
    pub copy_setup: SimTime,
    /// Latency before a consumer may start reading a *freshly allocated* copy
    /// destination while the copy is still streaming (tile-level pipelining).
    pub copy_chunk_latency: SimTime,
    /// Extra latency in cycles for a *dependent* texture fetch (texture
    /// coordinates computed in the shader, defeating prefetch).
    pub dependent_fetch_latency_cycles: f64,
    /// Serial cycles per byte moved by a dependent fetch (cache-line refills
    /// on the critical path; this is the part the fp24 3-byte encoding cuts).
    pub dependent_byte_cycles: f64,
    /// Cycles per byte moved by any texture fetch (throughput side, divided
    /// by [`Platform::fragment_parallelism`]).
    pub fetch_byte_cycles: f64,
    /// Whether deep multithreading hides dependent-fetch latency (VideoCore's
    /// QPUs do; the SGX exposes it).
    pub latency_hidden: bool,
    /// Fixed per-tile scheduling overhead, in fragment-core cycles.
    pub tile_overhead_cycles: f64,
    /// Per-tile binning/parameter-buffer cost charged on the vertex unit
    /// each frame (TBDR tiling pass). Small tiles make this expensive.
    pub binning_cycles_per_tile: f64,
    /// Whether consecutive frames overlap in the deferred pipeline
    /// (vertex of frame *i+1* under fragment of frame *i*).
    pub deferred: bool,
    /// Pipeline penalty charged when a frame samples a texture rendered by a
    /// still-in-flight earlier frame (single-buffered render-to-texture
    /// dependency: drain + intermediate store/reload).
    pub dependency_flush: SimTime,
    /// Base driver cost of allocating fresh texture/buffer storage.
    pub alloc_base: SimTime,
    /// Bandwidth-like cost of initialising fresh storage (page mapping etc.).
    pub alloc_bandwidth: Bandwidth,
    /// CPU stall incurred when uploading into storage the deferred GPU may
    /// still reference (`tex_sub_image_2d` reuse on a driver that cannot
    /// rename storage). Zero on platforms whose driver queues in-band
    /// updates (VideoCore's DMA path).
    pub reuse_upload_stall: SimTime,
    /// Fractional fragment-time surcharge for rendering into *reused*
    /// texture storage on a no-rename driver (deferred command-buffer
    /// patching). Zero where the driver renames freely.
    pub rtt_reuse_sync_frac: f64,
    /// CPU cost of validating and submitting one draw call.
    pub draw_submit_overhead: SimTime,
    /// CPU cost of `eglSwapBuffers` beyond the waits it implies.
    pub swap_overhead: SimTime,
    /// Display refresh period (vsync granularity). The SGX models its
    /// high-rate internal compositor sync with a very short period.
    pub refresh_period: SimTime,
    /// Default `eglSwapInterval` (VideoCore: 1 → 60 Hz; 0 disables vsync).
    pub default_swap_interval: u32,
    /// Number of window-framebuffer surfaces (2 = double buffered).
    pub framebuffer_surfaces: u32,
    /// Shader implementation limits.
    pub shader_limits: ShaderLimits,
}

impl Platform {
    /// Broadcom VideoCore IV, as on the Raspberry Pi.
    ///
    /// Key traits: 64×64 tiles, 1 GB/s DMA copy engine [paper ref 6], deep
    /// QPU multithreading (fetch latency hidden), 60 Hz vsync with default
    /// swap interval 1.
    #[must_use]
    pub fn videocore_iv() -> Self {
        Platform {
            name: "VideoCore IV".to_owned(),
            tile_width: 64,
            tile_height: 64,
            fragment_clock: Clock::mhz(250.0),
            fragment_parallelism: 107.2,
            vertex_clock: Clock::mhz(250.0),
            cycles_per_vertex: 40.0,
            mem_bandwidth: Bandwidth::gibi_per_sec(4.5),
            cpu_copy_bandwidth: Bandwidth::gibi_per_sec(0.9),
            copy_engine: CopyEngine::Dma {
                bandwidth: Bandwidth::gibi_per_sec(1.0),
            },
            copy_setup: SimTime::from_micros(80),
            copy_chunk_latency: SimTime::from_micros(40),
            dependent_fetch_latency_cycles: 2.3,
            dependent_byte_cycles: 7.67,
            fetch_byte_cycles: 0.8,
            latency_hidden: true,
            tile_overhead_cycles: 150.0,
            binning_cycles_per_tile: 146.0,
            deferred: true,
            dependency_flush: SimTime::from_micros(7_200),
            alloc_base: SimTime::from_micros(120),
            alloc_bandwidth: Bandwidth::gibi_per_sec(1.6),
            reuse_upload_stall: SimTime::ZERO,
            rtt_reuse_sync_frac: 0.0,
            draw_submit_overhead: SimTime::from_micros(450),
            swap_overhead: SimTime::from_micros(90),
            refresh_period: SimTime::from_nanos(16_666_667),
            default_swap_interval: 1,
            framebuffer_surfaces: 2,
            shader_limits: ShaderLimits {
                max_instructions: 480,
                max_texture_fetches: 40,
                max_uniform_vectors: 64,
                max_varying_vectors: 8,
            },
        }
    }

    /// Imagination PowerVR SGX 545 (mobile development platform).
    ///
    /// Key traits: 16×16 tiles, no DMA assist — `glCopyTexImage2D` takes a
    /// blocking CPU conversion path at well under 1 MB/s effective — exposed
    /// dependent-fetch latency, and an internal sync rate far above 60 Hz.
    #[must_use]
    pub fn sgx_545() -> Self {
        Platform {
            name: "PowerVR SGX 545".to_owned(),
            tile_width: 16,
            tile_height: 16,
            fragment_clock: Clock::mhz(200.0),
            fragment_parallelism: 96.6,
            vertex_clock: Clock::mhz(200.0),
            cycles_per_vertex: 60.0,
            mem_bandwidth: Bandwidth::gibi_per_sec(1.75),
            cpu_copy_bandwidth: Bandwidth::gibi_per_sec(0.6),
            copy_engine: CopyEngine::Blocking {
                bandwidth: Bandwidth::mebi_per_sec(1.31),
            },
            copy_setup: SimTime::from_millis(2),
            copy_chunk_latency: SimTime::from_micros(60),
            dependent_fetch_latency_cycles: 60.0,
            dependent_byte_cycles: 14.0,
            fetch_byte_cycles: 2.72,
            latency_hidden: false,
            tile_overhead_cycles: 20.0,
            binning_cycles_per_tile: 107.0,
            deferred: true,
            dependency_flush: SimTime::from_millis(48),
            alloc_base: SimTime::from_micros(60),
            alloc_bandwidth: Bandwidth::gibi_per_sec(2.6),
            reuse_upload_stall: SimTime::ZERO,
            rtt_reuse_sync_frac: 0.045,
            draw_submit_overhead: SimTime::from_micros(2_000),
            swap_overhead: SimTime::from_micros(500),
            refresh_period: SimTime::from_micros(400),
            default_swap_interval: 1,
            framebuffer_surfaces: 2,
            shader_limits: ShaderLimits {
                max_instructions: 512,
                max_texture_fetches: 36,
                max_uniform_vectors: 128,
                max_varying_vectors: 8,
            },
        }
    }

    /// Both paper platforms, in the order the paper plots them.
    #[must_use]
    pub fn paper_pair() -> [Platform; 2] {
        [Platform::sgx_545(), Platform::videocore_iv()]
    }

    /// Starts a builder seeded from this platform, for ablations.
    #[must_use]
    pub fn to_builder(&self) -> PlatformBuilder {
        PlatformBuilder {
            platform: self.clone(),
        }
    }

    /// Tile-grid dimensions (columns, rows) covering a `width`×`height`
    /// render target — the single source of the tile ↔ pixel-rect math
    /// shared by the scheduler's tile counts and the driver's per-tile
    /// redundancy elimination.
    #[must_use]
    pub fn tile_grid(&self, width: u32, height: u32) -> (u32, u32) {
        let tw = self.tile_width.max(1);
        let th = self.tile_height.max(1);
        (width.div_ceil(tw), height.div_ceil(th))
    }

    /// Number of tiles covering a `width`×`height` render target.
    #[must_use]
    pub fn tiles_for(&self, width: u32, height: u32) -> u64 {
        let (cols, rows) = self.tile_grid(width, height);
        u64::from(cols) * u64::from(rows)
    }

    /// Iterates the tile rectangles covering a `width`×`height` render
    /// target in row-major order. Edge tiles are clipped to the target, so
    /// non-divisible sizes produce partial rects rather than overhang.
    pub fn tile_rects(&self, width: u32, height: u32) -> impl Iterator<Item = TileRect> {
        self.tile_rects_in_band(width, height, 0, height)
    }

    /// Like [`Platform::tile_rects`], but additionally clips every rect to
    /// the row band `band_y0..band_y1` (the driver's row-band sub-draws),
    /// skipping tiles the band misses entirely.
    pub fn tile_rects_in_band(
        &self,
        width: u32,
        height: u32,
        band_y0: u32,
        band_y1: u32,
    ) -> impl Iterator<Item = TileRect> {
        let tw = self.tile_width.max(1);
        let th = self.tile_height.max(1);
        let (cols, rows) = self.tile_grid(width, height);
        let y_lo = band_y0.min(height);
        let y_hi = band_y1.min(height);
        (0..rows).flat_map(move |row| {
            (0..cols).filter_map(move |col| {
                let rect = TileRect {
                    col,
                    row,
                    x0: col * tw,
                    x1: (col * tw + tw).min(width),
                    y0: (row * th).max(y_lo),
                    y1: (row * th + th).min(y_hi),
                };
                (rect.y0 < rect.y1 && rect.x0 < rect.x1).then_some(rect)
            })
        })
    }

    /// Bytes of on-chip tile memory (RGBA8).
    #[must_use]
    pub fn tile_bytes(&self) -> u64 {
        u64::from(self.tile_width) * u64::from(self.tile_height) * 4
    }
}

/// One tile's pixel rectangle within a render target, as produced by
/// [`Platform::tile_rects`]. Both axes are half-open: the rect covers
/// pixels `x0..x1` × `y0..y1`, already clipped to the target (and, for
/// [`Platform::tile_rects_in_band`], to the row band).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileRect {
    /// Tile column index in the grid.
    pub col: u32,
    /// Tile row index in the grid.
    pub row: u32,
    /// First covered pixel column.
    pub x0: u32,
    /// One past the last covered pixel column.
    pub x1: u32,
    /// First covered pixel row.
    pub y0: u32,
    /// One past the last covered pixel row.
    pub y1: u32,
}

impl TileRect {
    /// Covered width in pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.x1 - self.x0
    }

    /// Covered height in pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.y1 - self.y0
    }

    /// Covered pixel count.
    #[must_use]
    pub fn pixels(&self) -> u64 {
        u64::from(self.width()) * u64::from(self.height())
    }
}

/// Builder for custom or ablated [`Platform`] configurations.
///
/// # Examples
///
/// ```
/// use mgpu_tbdr::{Platform, Bandwidth};
///
/// // Ablation: VideoCore without its DMA engine.
/// let no_dma = Platform::videocore_iv()
///     .to_builder()
///     .blocking_copy(Bandwidth::mebi_per_sec(0.62))
///     .name("VideoCore IV (no DMA)")
///     .build();
/// assert!(!no_dma.copy_engine.is_dma());
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    platform: Platform,
}

impl PlatformBuilder {
    /// Renames the platform (useful for ablation labels).
    #[must_use]
    pub fn name(mut self, name: &str) -> Self {
        self.platform.name = name.to_owned();
        self
    }

    /// Replaces the copy engine with a DMA engine of the given bandwidth.
    #[must_use]
    pub fn dma_copy(mut self, bandwidth: Bandwidth) -> Self {
        self.platform.copy_engine = CopyEngine::Dma { bandwidth };
        self
    }

    /// Replaces the copy engine with a blocking path of the given bandwidth.
    #[must_use]
    pub fn blocking_copy(mut self, bandwidth: Bandwidth) -> Self {
        self.platform.copy_engine = CopyEngine::Blocking { bandwidth };
        self
    }

    /// Enables or disables deferred-pipeline frame overlap.
    #[must_use]
    pub fn deferred(mut self, deferred: bool) -> Self {
        self.platform.deferred = deferred;
        self
    }

    /// Sets the tile dimensions.
    #[must_use]
    pub fn tile_size(mut self, width: u32, height: u32) -> Self {
        self.platform.tile_width = width;
        self.platform.tile_height = height;
        self
    }

    /// Sets the display refresh period.
    #[must_use]
    pub fn refresh_period(mut self, period: SimTime) -> Self {
        self.platform.refresh_period = period;
        self
    }

    /// Sets the default swap interval.
    #[must_use]
    pub fn default_swap_interval(mut self, interval: u32) -> Self {
        self.platform.default_swap_interval = interval;
        self
    }

    /// Sets the single-buffered render-to-texture dependency penalty.
    #[must_use]
    pub fn dependency_flush(mut self, penalty: SimTime) -> Self {
        self.platform.dependency_flush = penalty;
        self
    }

    /// Sets the shader implementation limits.
    #[must_use]
    pub fn shader_limits(mut self, limits: ShaderLimits) -> Self {
        self.platform.shader_limits = limits;
        self
    }

    /// Applies an arbitrary closure to the platform under construction,
    /// for knobs without a dedicated builder method.
    #[must_use]
    pub fn tweak(mut self, f: impl FnOnce(&mut Platform)) -> Self {
        f(&mut self.platform);
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> Platform {
        self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_tile_sizes() {
        assert_eq!(Platform::videocore_iv().tile_width, 64);
        assert_eq!(Platform::videocore_iv().tile_height, 64);
        assert_eq!(Platform::sgx_545().tile_width, 16);
        assert_eq!(Platform::sgx_545().tile_height, 16);
    }

    #[test]
    fn videocore_uses_dma_and_sgx_does_not() {
        assert!(Platform::videocore_iv().copy_engine.is_dma());
        assert!(!Platform::sgx_545().copy_engine.is_dma());
    }

    #[test]
    fn videocore_default_vsync_is_60hz_interval_1() {
        let vc = Platform::videocore_iv();
        assert_eq!(vc.default_swap_interval, 1);
        let hz = 1e9 / vc.refresh_period.as_nanos() as f64;
        assert!((hz - 60.0).abs() < 0.5, "refresh is {hz} Hz");
    }

    #[test]
    fn sgx_internal_sync_is_much_faster_than_60hz() {
        let sgx = Platform::sgx_545();
        assert!(sgx.refresh_period < SimTime::from_millis(2));
    }

    #[test]
    fn tiles_for_rounds_up() {
        let vc = Platform::videocore_iv();
        assert_eq!(vc.tiles_for(1024, 1024), 16 * 16);
        assert_eq!(vc.tiles_for(65, 1), 2);
        let sgx = Platform::sgx_545();
        assert_eq!(sgx.tiles_for(1024, 1024), 64 * 64);
    }

    #[test]
    fn tile_rects_partition_non_divisible_targets() {
        // 100×100 on 64×64 tiles: 2×2 grid with 36-pixel edge remainders.
        let vc = Platform::videocore_iv();
        let rects: Vec<TileRect> = vc.tile_rects(100, 100).collect();
        assert_eq!(rects.len() as u64, vc.tiles_for(100, 100));
        assert_eq!(rects.len(), 4);
        assert_eq!(rects[0].width(), 64);
        assert_eq!(rects[1].width(), 36);
        assert_eq!(
            rects[3],
            TileRect {
                col: 1,
                row: 1,
                x0: 64,
                x1: 100,
                y0: 64,
                y1: 100
            }
        );
        assert_eq!(rects.iter().map(TileRect::pixels).sum::<u64>(), 100 * 100);

        // 100×100 on 16×16 tiles: 7×7 grid with 4-pixel edge remainders.
        let sgx = Platform::sgx_545();
        let rects: Vec<TileRect> = sgx.tile_rects(100, 100).collect();
        assert_eq!(rects.len() as u64, sgx.tiles_for(100, 100));
        assert_eq!(rects.len(), 49);
        assert!(rects.iter().all(|r| r.width() == 16 || r.width() == 4));
        assert!(rects.iter().all(|r| r.x1 <= 100 && r.y1 <= 100));
        assert_eq!(rects.iter().map(TileRect::pixels).sum::<u64>(), 100 * 100);

        // Row-major order, no overlaps: each rect starts where its
        // predecessor ended (within a row) or at a fresh row.
        for w in rects.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(b.row > a.row || (b.row == a.row && b.x0 == a.x1));
        }
    }

    #[test]
    fn tile_rects_in_band_clip_rows_to_the_band() {
        let sgx = Platform::sgx_545();
        // A band covering rows 10..30 of a 100×100 target touches tile rows
        // 0 and 1 only, clipped to the band on both sides.
        let rects: Vec<TileRect> = sgx.tile_rects_in_band(100, 100, 10, 30).collect();
        assert!(rects.iter().all(|r| r.y0 >= 10 && r.y1 <= 30));
        assert!(rects.iter().all(|r| r.row <= 1));
        assert_eq!(
            rects.iter().map(TileRect::pixels).sum::<u64>(),
            100 * (30 - 10)
        );
        // An empty band yields nothing; a full band matches tile_rects.
        assert_eq!(sgx.tile_rects_in_band(100, 100, 40, 40).count(), 0);
        let full: Vec<TileRect> = sgx.tile_rects_in_band(100, 100, 0, 100).collect();
        assert_eq!(full, sgx.tile_rects(100, 100).collect::<Vec<_>>());
    }

    #[test]
    fn builder_ablations_apply() {
        let p = Platform::videocore_iv()
            .to_builder()
            .deferred(false)
            .tile_size(32, 32)
            .name("ablated")
            .build();
        assert!(!p.deferred);
        assert_eq!((p.tile_width, p.tile_height), (32, 32));
        assert_eq!(p.name, "ablated");
    }

    #[test]
    fn tile_bytes_is_rgba8() {
        assert_eq!(Platform::sgx_545().tile_bytes(), 16 * 16 * 4);
    }

    #[test]
    fn clone_preserves_configuration() {
        let p = Platform::sgx_545();
        let q = p.clone();
        assert_eq!(p, q);
    }
}
