//! The pipeline scheduler: turns a stream of [`FrameWork`] descriptions into
//! per-frame timings on a tile-based deferred-rendering GPU.
//!
//! # Model
//!
//! Four units process each frame in order, each becoming free for the next
//! frame as soon as its stage completes (this is what lets consecutive
//! frames overlap on a deferred architecture):
//!
//! 1. **CPU** — application conversions, uploads (with allocation costs and
//!    reuse stalls), draw submission, and the waits implied by
//!    `eglSwapBuffers` / vsync.
//! 2. **Vertex unit** — vertex shading plus the TBDR binning pass
//!    (parameter-buffer construction, proportional to tile count).
//! 3. **Fragment unit** — per-tile shading with the cost profile derived by
//!    the shader compiler, tile writeback on the memory bus, and optional
//!    reload of previous target contents (step 6 of the paper's Fig. 1).
//! 4. **Copy engine** — framebuffer→texture copies (step 4 of Fig. 1),
//!    asynchronous, DMA-assisted or a slow conversion path depending on the
//!    platform.
//!
//! Cross-frame hazards are tracked per *storage* ([`ResourceId`]):
//!
//! * sampling a texture rendered by a still-in-flight frame costs the
//!   platform's [`dependency_flush`](crate::Platform::dependency_flush)
//!   (single-buffered render-to-texture dependency — the deferred-pipeline
//!   bubble of the paper's §II);
//! * reading a copy destination pipelines at tile granularity when the
//!   destination is *fresh* storage (or the copy engine is DMA-ordered), but
//!   waits for copy completion when the destination is reused — the
//!   false-sharing effect of the paper's Fig. 5b;
//! * a framebuffer surface may not be re-rendered until the copy reading it
//!   has drained, which is why the double-buffered window framebuffer keeps
//!   multi-pass pipelines moving while a no-swap loop on a single surface
//!   serialises.

use std::collections::HashMap;

use crate::platform::{CopyEngine, Platform};
use crate::stats::{FrameTiming, SimReport, Traffic, UnitBusy};
use crate::time::SimTime;
use crate::work::{
    AllocKind, FragmentWork, FrameWork, RenderTarget, ResourceId, SyncOp, VertexWork,
};

/// What last wrote a piece of storage, and when the write retires.
#[derive(Debug, Clone, Copy)]
enum LastWrite {
    /// Written by a fragment pass that ends at the given time; `frame` is
    /// the producer's submission index (for consecutive-frame detection).
    Fragment { end: SimTime, frame: usize },
    /// Written by a copy; `pipelined` readers may chase the copy head.
    Copy {
        start: SimTime,
        end: SimTime,
        pipelined: bool,
    },
}

impl LastWrite {
    fn end(&self) -> SimTime {
        match *self {
            LastWrite::Fragment { end, .. } | LastWrite::Copy { end, .. } => end,
        }
    }
}

/// A deterministic, analytic scheduler for frame streams on one platform.
///
/// # Examples
///
/// ```
/// use mgpu_tbdr::{FragmentProfile, FrameWork, PipelineSim, Platform};
///
/// let mut sim = PipelineSim::new(Platform::videocore_iv());
/// let frame = FrameWork::simple(256, 256, FragmentProfile {
///     alu_cycles: 8.0,
///     output_bytes: 4.0,
///     ..FragmentProfile::default()
/// });
/// let t = sim.submit(&frame);
/// assert!(t.frag_end > t.frag_start);
/// ```
#[derive(Debug)]
pub struct PipelineSim {
    platform: Platform,
    cpu_free: SimTime,
    vertex_free: SimTime,
    fragment_free: SimTime,
    copy_free: SimTime,
    /// Per window-framebuffer surface: earliest time it may be re-rendered.
    surface_free: Vec<SimTime>,
    writers: HashMap<ResourceId, LastWrite>,
    /// Latest time each storage finishes being read by a fragment pass.
    readers: HashMap<ResourceId, SimTime>,
    prev_frag_end: SimTime,
    frames: Vec<FrameTiming>,
    traffic: Traffic,
    busy: UnitBusy,
}

impl PipelineSim {
    /// Creates a scheduler for the given platform with an idle pipeline.
    #[must_use]
    pub fn new(platform: Platform) -> Self {
        let surfaces = platform.framebuffer_surfaces.max(1) as usize;
        PipelineSim {
            platform,
            cpu_free: SimTime::ZERO,
            vertex_free: SimTime::ZERO,
            fragment_free: SimTime::ZERO,
            copy_free: SimTime::ZERO,
            surface_free: vec![SimTime::ZERO; surfaces],
            writers: HashMap::new(),
            readers: HashMap::new(),
            prev_frag_end: SimTime::ZERO,
            frames: Vec::new(),
            traffic: Traffic::default(),
            busy: UnitBusy::default(),
        }
    }

    /// The platform this scheduler simulates.
    #[must_use]
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Time the vertex stage of `work` occupies the vertex unit.
    #[must_use]
    pub fn vertex_time(&self, work: &VertexWork, fragment: &FragmentWork) -> SimTime {
        let p = &self.platform;
        let shade = work.vertices as f64 * p.cycles_per_vertex;
        let tiles = p.tiles_for(fragment.width, fragment.height) as f64;
        let binning = tiles * p.binning_cycles_per_tile;
        p.vertex_clock.time_for_cycles_f64(shade + binning)
    }

    /// Time the fragment stage of `work` occupies the fragment unit,
    /// including tile writeback on the memory bus and the optional reload of
    /// previous target contents.
    ///
    /// `reused_target` charges the platform's render-to-reused-storage
    /// surcharge (see [`Platform::rtt_reuse_sync_frac`]).
    #[must_use]
    pub fn fragment_time(&self, work: &FragmentWork, reused_target: bool) -> SimTime {
        let p = &self.platform;
        let prof = &work.profile;
        // Tiles elided by redundancy elimination shade no fragments and pay
        // no per-tile scheduling overhead; instead their input signatures
        // travel the memory bus (charged below). With `work.skip` zero this
        // reduces bit-identically to the pre-skip model.
        let skip = work.skip;
        let frags = work.fragments.saturating_sub(skip.skipped_fragments) as f64;

        // Latency-bound serial cycles: dependent fetches whose misses cannot
        // be hidden by multithreading on this platform.
        let serial_per_frag = prof.dependent_fetches * p.dependent_fetch_latency_cycles
            + prof.dependent_fetch_bytes * p.dependent_byte_cycles;
        // Throughput-bound cycles, divided across the fragment lanes.
        let parallel_per_frag = prof.alu_cycles
            + (prof.streaming_fetch_bytes + prof.dependent_fetch_bytes) * p.fetch_byte_cycles;

        let par = p.fragment_parallelism.max(1.0);
        let cycles = if p.latency_hidden {
            frags * (serial_per_frag + parallel_per_frag) / par
        } else {
            frags * (serial_per_frag + parallel_per_frag / par)
        } + p
            .tiles_for(work.width, work.height)
            .saturating_sub(skip.skipped_tiles) as f64
            * p.tile_overhead_cycles;
        let compute = p.fragment_clock.time_for_cycles_f64(cycles);

        let writeback = (frags * prof.output_bytes) as u64;
        let reload = if work.cleared {
            0
        } else {
            u64::from(work.width) * u64::from(work.height) * 4
        };
        // Writeback streams behind shading (and signature reads stream with
        // it); the preserve-reload sits on the critical path at the start of
        // each tile.
        let mem = p.mem_bandwidth.time_for(writeback + skip.signature_bytes);
        let base = compute.max(mem) + p.mem_bandwidth.time_for(reload);
        if reused_target && p.rtt_reuse_sync_frac > 0.0 {
            base + SimTime::from_secs_f64(base.as_secs_f64() * p.rtt_reuse_sync_frac)
        } else {
            base
        }
    }

    /// Time the copy engine needs to move `bytes` from the framebuffer to a
    /// texture (it reads the source and writes the destination, so the bus
    /// sees twice the payload).
    #[must_use]
    pub fn copy_time(&self, bytes: u64) -> SimTime {
        let p = &self.platform;
        p.copy_setup + p.copy_engine.bandwidth().time_for(bytes.saturating_mul(2))
    }

    /// Estimated GPU occupancy of one draw in isolation: vertex shading and
    /// binning plus fragment shading of the frame's own work, ignoring
    /// cross-frame hazards and queueing.
    ///
    /// This is the quantity a mobile driver's per-draw watchdog compares
    /// against its kill budget — a draw is killed for taking too long on the
    /// GPU, not for waiting behind other work — and is what `mgpu-gles` uses
    /// to drive the injected watchdog fault.
    #[must_use]
    pub fn draw_cost(&self, frame: &FrameWork) -> SimTime {
        let reused_target = matches!(frame.target, RenderTarget::Texture { fresh: false, .. });
        self.vertex_time(&frame.vertex, &frame.fragment)
            + self.fragment_time(&frame.fragment, reused_target)
    }

    /// Schedules one frame and returns its timing.
    pub fn submit(&mut self, frame: &FrameWork) -> FrameTiming {
        let p = self.platform.clone();
        let index = self.frames.len();

        // ---- CPU phase: uploads, conversions, submission --------------
        let cpu_start = self.cpu_free;
        let mut t = cpu_start;
        let mut upload_stall = SimTime::ZERO;
        for up in &frame.uploads {
            match up.alloc {
                AllocKind::Fresh => {
                    // Page population only costs when data is written;
                    // allocate-only calls (e.g. render-target storage)
                    // reserve address space without touching pages.
                    t += p.alloc_base;
                    if up.copy_bytes > 0 {
                        t += p.alloc_bandwidth.time_for(up.alloc_bytes);
                    }
                }
                AllocKind::Reuse => {
                    // Wait until the deferred GPU can no longer reference the
                    // storage, then pay the driver's no-rename stall.
                    let gpu_busy = self
                        .writers
                        .get(&up.resource)
                        .map(LastWrite::end)
                        .unwrap_or(SimTime::ZERO)
                        .max(
                            self.readers
                                .get(&up.resource)
                                .copied()
                                .unwrap_or(SimTime::ZERO),
                        );
                    if gpu_busy > t {
                        upload_stall += gpu_busy - t;
                        t = gpu_busy;
                    }
                    t += p.reuse_upload_stall;
                }
            }
            t += p.cpu_copy_bandwidth.time_for(up.copy_bytes);
            self.traffic.upload_bytes += up.copy_bytes;
            // An upload makes the CPU the last writer of the storage; a CPU
            // write never triggers the deferred-pipeline flush, so it is
            // recorded with a sentinel frame index.
            self.writers.insert(
                up.resource,
                LastWrite::Fragment {
                    end: t,
                    frame: usize::MAX,
                },
            );
        }
        t += frame.cpu_extra + p.draw_submit_overhead;
        let submit = t;
        self.busy.cpu += submit - cpu_start;

        // ---- Vertex stage (with TBDR binning) --------------------------
        let mut vtx_start = submit.max(self.vertex_free);
        if !p.deferred {
            // Immediate-mode ablation: no overlap with the previous frame.
            vtx_start = vtx_start.max(self.prev_frag_end);
        }
        let vtx_time = self.vertex_time(&frame.vertex, &frame.fragment);
        let vtx_end = vtx_start + vtx_time;
        self.vertex_free = vtx_end;
        self.busy.vertex += vtx_time;

        // ---- Fragment stage --------------------------------------------
        let mut frag_ready = vtx_end.max(self.fragment_free);
        let mut reused_target = false;
        match frame.target {
            RenderTarget::Framebuffer { surface } => {
                let s = surface as usize % self.surface_free.len();
                frag_ready = frag_ready.max(self.surface_free[s]);
            }
            RenderTarget::Texture { storage, fresh } => {
                reused_target = !fresh;
                // Single-buffered target: wait for in-flight readers/writers.
                if let Some(w) = self.writers.get(&storage) {
                    frag_ready = frag_ready.max(w.end());
                }
                if let Some(&r) = self.readers.get(&storage) {
                    frag_ready = frag_ready.max(r);
                }
            }
        }

        // Read-after-write hazards on sampled textures.
        let mut dependency_flush = false;
        let mut min_frag_end = SimTime::ZERO;
        for r in &frame.reads {
            if let Some(w) = self.writers.get(r) {
                match *w {
                    LastWrite::Fragment { end, frame: wf } => {
                        // The deferred pipeline only bubbles when the
                        // producer is the immediately preceding frame and
                        // had not drained by submission time (paper §II).
                        if wf != usize::MAX && wf + 1 == index && end > submit {
                            frag_ready = frag_ready.max(end);
                            dependency_flush = true;
                        } else {
                            frag_ready = frag_ready.max(end);
                        }
                    }
                    LastWrite::Copy {
                        start,
                        end,
                        pipelined,
                    } => {
                        if pipelined {
                            frag_ready = frag_ready.max(start + p.copy_chunk_latency);
                            // A consumer cannot outrun its producer.
                            min_frag_end = min_frag_end.max(end);
                        } else {
                            frag_ready = frag_ready.max(end);
                        }
                    }
                }
            }
        }
        if dependency_flush {
            frag_ready += p.dependency_flush;
        }

        let frag_time = self.fragment_time(&frame.fragment, reused_target);
        let frag_start = frag_ready;
        let frag_end = (frag_start + frag_time).max(min_frag_end);
        self.fragment_free = frag_end;
        self.prev_frag_end = frag_end;
        self.busy.fragment += frag_end - frag_start;

        let shaded = frame
            .fragment
            .fragments
            .saturating_sub(frame.fragment.skip.skipped_fragments);
        let out_bytes = (shaded as f64 * frame.fragment.profile.output_bytes) as u64;
        self.traffic.writeback_bytes += out_bytes;
        self.traffic.signature_bytes += frame.fragment.skip.signature_bytes;
        if !frame.fragment.cleared {
            self.traffic.reload_bytes +=
                u64::from(frame.fragment.width) * u64::from(frame.fragment.height) * 4;
        }

        for r in &frame.reads {
            let e = self.readers.entry(*r).or_insert(SimTime::ZERO);
            *e = (*e).max(frag_end);
        }
        if let RenderTarget::Texture { storage, .. } = frame.target {
            self.writers.insert(
                storage,
                LastWrite::Fragment {
                    end: frag_end,
                    frame: index,
                },
            );
        }

        // ---- Copy-out stage (step 4 of Fig. 1) --------------------------
        let mut copy_interval = None;
        let mut copy_end_for_surface = frag_end;
        if let Some(copy) = &frame.copy_out {
            let mut copy_start = frag_end.max(self.copy_free);
            // Destination hazards: a reused destination must wait for every
            // in-flight use of that storage (false sharing).
            if copy.alloc == AllocKind::Reuse {
                if let Some(w) = self.writers.get(&copy.dest) {
                    copy_start = copy_start.max(w.end());
                }
                if let Some(&r) = self.readers.get(&copy.dest) {
                    copy_start = copy_start.max(r);
                }
            }
            let copy_end = copy_start + self.copy_time(copy.bytes);
            self.copy_free = copy_end;
            self.busy.copy += copy_end - copy_start;
            self.traffic.copy_bytes += copy.bytes;
            // DMA queues stay ordered with GPU work, so readers may chase
            // the copy even into reused storage; the blocking path only
            // pipelines into freshly allocated (renameable) destinations.
            let pipelined = match p.copy_engine {
                CopyEngine::Dma { .. } => true,
                CopyEngine::Blocking { .. } => copy.alloc == AllocKind::Fresh,
            };
            self.writers.insert(
                copy.dest,
                LastWrite::Copy {
                    start: copy_start,
                    end: copy_end,
                    pipelined,
                },
            );
            copy_interval = Some((copy_start, copy_end));
            copy_end_for_surface = copy_end;
        }

        // The rendered surface stays busy until the copy has read it out.
        if let RenderTarget::Framebuffer { surface } = frame.target {
            let s = surface as usize % self.surface_free.len();
            self.surface_free[s] = copy_end_for_surface;
        }

        // ---- End-of-frame synchronisation -------------------------------
        let retire = copy_interval.map_or(frag_end, |(_, e)| e.max(frag_end));
        let mut vsync_wait = SimTime::ZERO;
        self.cpu_free = match frame.sync {
            SyncOp::None => submit,
            SyncOp::Finish => submit.max(retire),
            SyncOp::Swap { interval } => {
                // eglSwapBuffers waits for rendering (not the async copy),
                // then for the display tick when an interval is set.
                let done = submit.max(frag_end);
                let after = if interval == 0 {
                    done
                } else {
                    let period = p.refresh_period * u64::from(interval);
                    let ticked = done.round_up_to(period);
                    vsync_wait = ticked - done;
                    ticked
                };
                after + p.swap_overhead
            }
        };

        let timing = FrameTiming {
            index,
            label: frame.label.clone(),
            cpu_start,
            submit,
            vtx_start,
            vtx_end,
            frag_start,
            frag_end,
            copy: copy_interval,
            retire,
            next_cpu_free: self.cpu_free,
            upload_stall,
            dependency_flush,
            vsync_wait,
        };
        self.frames.push(timing.clone());
        timing
    }

    /// Schedules every frame in `frames` in order.
    pub fn run<'a>(&mut self, frames: impl IntoIterator<Item = &'a FrameWork>) {
        for f in frames {
            self.submit(f);
        }
    }

    /// Snapshots the report so far without ending the simulation.
    #[must_use]
    pub fn report(&self) -> SimReport {
        let total = self
            .frames
            .iter()
            .map(|f| f.retire.max(f.next_cpu_free))
            .max()
            .unwrap_or(SimTime::ZERO);
        SimReport {
            platform_name: self.platform.name.clone(),
            frames: self.frames.clone(),
            traffic: self.traffic,
            busy: self.busy,
            total_time: total,
        }
    }

    /// Finishes the simulation and returns the report.
    #[must_use]
    pub fn finish(self) -> SimReport {
        // An earlier frame's asynchronous copy can retire after later
        // frames, so the end of the simulation is the max across all frames.
        let total = self
            .frames
            .iter()
            .map(|f| f.retire.max(f.next_cpu_free))
            .max()
            .unwrap_or(SimTime::ZERO);
        SimReport {
            platform_name: self.platform.name.clone(),
            frames: self.frames,
            traffic: self.traffic,
            busy: self.busy,
            total_time: total,
        }
    }
}

/// Runs `iterations` repetitions of the frame batch produced by `make_batch`
/// (called once per iteration with the iteration index) and returns the
/// steady-state period per iteration, discarding the first half as warm-up.
///
/// This mirrors the paper's measurement protocol of executing the entire
/// benchmark body 10 000 times and reporting the rate.
pub fn steady_state_period(
    platform: &Platform,
    iterations: usize,
    mut make_batch: impl FnMut(usize) -> Vec<FrameWork>,
) -> SimTime {
    assert!(iterations >= 2, "need at least two iterations");
    let mut sim = PipelineSim::new(platform.clone());
    let mut iter_retire = Vec::with_capacity(iterations);
    for i in 0..iterations {
        let batch = make_batch(i);
        let mut last = SimTime::ZERO;
        for frame in &batch {
            let t = sim.submit(frame);
            last = t.retire.max(t.next_cpu_free);
        }
        iter_retire.push(last);
    }
    let half = iterations / 2;
    let span = iter_retire[iterations - 1] - iter_retire[half - 1];
    span / (iterations - half) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{CopyOut, FragmentProfile, Upload};

    fn quick_profile() -> FragmentProfile {
        FragmentProfile {
            alu_cycles: 8.0,
            streaming_fetches: 2.0,
            streaming_fetch_bytes: 8.0,
            dependent_fetches: 0.0,
            dependent_fetch_bytes: 0.0,
            output_bytes: 4.0,
        }
    }

    fn frame(platform_sync: SyncOp) -> FrameWork {
        let mut f = FrameWork::simple(256, 256, quick_profile());
        f.sync = platform_sync;
        f
    }

    #[test]
    fn stages_are_ordered_within_a_frame() {
        let mut sim = PipelineSim::new(Platform::sgx_545());
        let t = sim.submit(&frame(SyncOp::None));
        assert!(t.cpu_start <= t.submit);
        assert!(t.submit <= t.vtx_start);
        assert!(t.vtx_start <= t.vtx_end);
        assert!(t.vtx_end <= t.frag_start);
        assert!(t.frag_start < t.frag_end);
        assert_eq!(t.retire, t.frag_end);
    }

    #[test]
    fn no_sync_lets_frames_pipeline() {
        // With SyncOp::None the CPU should race ahead of the GPU.
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let a = sim.submit(&frame(SyncOp::None));
        let b = sim.submit(&frame(SyncOp::None));
        assert!(b.cpu_start < a.frag_end, "CPU should not wait for the GPU");
    }

    #[test]
    fn finish_serialises_frames() {
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let a = sim.submit(&frame(SyncOp::Finish));
        let b = sim.submit(&frame(SyncOp::Finish));
        assert!(b.cpu_start >= a.frag_end);
    }

    #[test]
    fn swap_with_interval_waits_for_vsync_tick() {
        let p = Platform::videocore_iv();
        let period = p.refresh_period;
        let mut sim = PipelineSim::new(p);
        let t = sim.submit(&frame(SyncOp::Swap { interval: 1 }));
        let next_free = t.next_cpu_free;
        // next_cpu_free = tick + swap_overhead, where tick is on the grid.
        let tick = next_free - sim.platform().swap_overhead;
        assert_eq!(tick, tick.round_up_to(period));
        assert!(t.vsync_wait > SimTime::ZERO);
    }

    #[test]
    fn swap_interval_zero_skips_vsync_wait() {
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let t = sim.submit(&frame(SyncOp::Swap { interval: 0 }));
        assert_eq!(t.vsync_wait, SimTime::ZERO);
    }

    #[test]
    fn dependency_on_rendered_texture_flushes_pipeline() {
        // A heavy kernel keeps the producer in flight when the consumer is
        // submitted — the condition for the deferred-pipeline bubble.
        let p = Platform::videocore_iv();
        let heavy = FragmentProfile {
            alu_cycles: 200.0,
            output_bytes: 4.0,
            ..FragmentProfile::default()
        };
        let mut c = 0;
        let tex = ResourceId::next(&mut c);
        let mut producer = FrameWork::simple(1024, 1024, heavy);
        producer.target = RenderTarget::Texture {
            storage: tex,
            fresh: true,
        };
        let mut consumer = FrameWork::simple(1024, 1024, heavy);
        consumer.reads.push(tex);

        let mut sim = PipelineSim::new(p.clone());
        let a = sim.submit(&producer);
        let b = sim.submit(&consumer);
        assert!(b.dependency_flush);
        assert!(b.frag_start >= a.frag_end + p.dependency_flush);

        // Independent frames do not pay the flush.
        let mut sim2 = PipelineSim::new(p.clone());
        let _ = sim2.submit(&producer);
        let c2 = sim2.submit(&FrameWork::simple(1024, 1024, heavy));
        assert!(!c2.dependency_flush);

        // Nor does a consumer whose producer already drained (the paper's
        // point: the bubble only hurts pipelined execution).
        let mut sim3 = PipelineSim::new(p);
        let mut drained_producer = producer.clone();
        drained_producer.sync = SyncOp::Finish;
        let _ = sim3.submit(&drained_producer);
        let d = sim3.submit(&consumer);
        assert!(!d.dependency_flush);
    }

    #[test]
    fn copy_out_runs_after_fragment_and_occupies_copy_engine() {
        let mut c = 0;
        let dst = ResourceId::next(&mut c);
        let mut f = frame(SyncOp::None);
        f.copy_out = Some(CopyOut {
            dest: dst,
            bytes: 256 * 256 * 4,
            alloc: AllocKind::Fresh,
        });
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let t = sim.submit(&f);
        let (cs, ce) = t.copy.expect("copy scheduled");
        assert!(cs >= t.frag_end);
        assert!(ce > cs);
        assert_eq!(t.retire, ce);
    }

    #[test]
    fn reader_of_fresh_copy_destination_pipelines() {
        // Consumer of a freshly-allocated copy destination starts near the
        // copy start, not its end — even on the blocking SGX path.
        let p = Platform::sgx_545();
        let mut c = 0;
        let dst = ResourceId::next(&mut c);
        let mut producer = frame(SyncOp::None);
        producer.copy_out = Some(CopyOut {
            dest: dst,
            bytes: 256 * 256 * 4,
            alloc: AllocKind::Fresh,
        });
        let mut consumer = frame(SyncOp::None);
        consumer.reads.push(dst);
        // Render to the other double-buffer surface so only the copy hazard
        // is in play.
        consumer.target = RenderTarget::Framebuffer { surface: 1 };

        let mut sim = PipelineSim::new(p.clone());
        let a = sim.submit(&producer);
        let b = sim.submit(&consumer);
        let (cs, ce) = a.copy.unwrap();
        assert!(b.frag_start <= cs + p.copy_chunk_latency + p.dependency_flush);
        // ... but cannot retire before its producer.
        assert!(b.frag_end >= ce);
    }

    #[test]
    fn reader_of_reused_copy_destination_waits_on_blocking_engine() {
        let p = Platform::sgx_545();
        let mut c = 0;
        let dst = ResourceId::next(&mut c);
        let mut producer = frame(SyncOp::None);
        producer.copy_out = Some(CopyOut {
            dest: dst,
            bytes: 256 * 256 * 4,
            alloc: AllocKind::Reuse,
        });
        let mut consumer = frame(SyncOp::None);
        consumer.reads.push(dst);

        let mut sim = PipelineSim::new(p);
        let a = sim.submit(&producer);
        let b = sim.submit(&consumer);
        let (_, ce) = a.copy.unwrap();
        assert!(b.frag_start >= ce, "false sharing must serialise");
    }

    #[test]
    fn reused_upload_waits_for_gpu_readers() {
        let p = Platform::sgx_545();
        let mut c = 0;
        let tex = ResourceId::next(&mut c);
        let mut reader = frame(SyncOp::None);
        reader.reads.push(tex);

        let mut uploader = frame(SyncOp::None);
        uploader.uploads.push(Upload::reuse(tex, 1024));

        let mut sim = PipelineSim::new(p);
        let a = sim.submit(&reader);
        let b = sim.submit(&uploader);
        assert!(b.upload_stall > SimTime::ZERO);
        assert!(b.submit >= a.frag_end);
    }

    #[test]
    fn fresh_upload_does_not_stall() {
        let mut c = 0;
        let tex = ResourceId::next(&mut c);
        let mut reader = frame(SyncOp::None);
        reader.reads.push(tex);
        let mut uploader = frame(SyncOp::None);
        uploader
            .uploads
            .push(Upload::fresh(ResourceId::next(&mut c), 1024));
        let mut sim = PipelineSim::new(Platform::sgx_545());
        let _ = sim.submit(&reader);
        let b = sim.submit(&uploader);
        assert_eq!(b.upload_stall, SimTime::ZERO);
    }

    #[test]
    fn single_surface_serialises_no_swap_framebuffer_loops() {
        // Rendering repeatedly to the same FB surface with a copy-out cannot
        // overlap: the surface is busy until the copy drains.
        let mut c = 0;
        let mk = |c: &mut u64| {
            let mut f = frame(SyncOp::None);
            f.copy_out = Some(CopyOut {
                dest: ResourceId::next(c),
                bytes: 256 * 256 * 4,
                alloc: AllocKind::Fresh,
            });
            f
        };
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        let a = sim.submit(&mk(&mut c));
        let b = sim.submit(&mk(&mut c));
        let (_, a_copy_end) = a.copy.unwrap();
        assert!(b.frag_start >= a_copy_end);

        // Alternating surfaces (as a swap does) restores overlap.
        let mut sim2 = PipelineSim::new(Platform::videocore_iv());
        let mut f0 = mk(&mut c);
        f0.target = RenderTarget::Framebuffer { surface: 0 };
        let mut f1 = mk(&mut c);
        f1.target = RenderTarget::Framebuffer { surface: 1 };
        let a2 = sim2.submit(&f0);
        let b2 = sim2.submit(&f1);
        let (a2_copy_start, _) = a2.copy.unwrap();
        let one_copy = sim2.copy_time(256 * 256 * 4);
        assert!(b2.frag_start < a2_copy_start + one_copy);
    }

    #[test]
    fn non_deferred_ablation_removes_overlap() {
        let p = Platform::videocore_iv()
            .to_builder()
            .deferred(false)
            .build();
        let mut sim = PipelineSim::new(p);
        let a = sim.submit(&frame(SyncOp::None));
        let b = sim.submit(&frame(SyncOp::None));
        assert!(b.vtx_start >= a.frag_end);
    }

    #[test]
    fn preserve_load_costs_more_than_cleared() {
        let sim = PipelineSim::new(Platform::sgx_545());
        let mut w = FrameWork::simple(512, 512, quick_profile()).fragment;
        w.cleared = true;
        let cleared = sim.fragment_time(&w, false);
        w.cleared = false;
        let preserved = sim.fragment_time(&w, false);
        assert!(preserved > cleared);
    }

    #[test]
    fn steady_state_period_is_positive_and_stable() {
        let p = Platform::videocore_iv();
        let period = steady_state_period(&p, 50, |_| vec![frame(SyncOp::None)]);
        assert!(period > SimTime::ZERO);
        let period2 = steady_state_period(&p, 100, |_| vec![frame(SyncOp::None)]);
        // Longer runs should converge to the same steady period (within 1%).
        let a = period.as_secs_f64();
        let b = period2.as_secs_f64();
        assert!((a - b).abs() / b < 0.01, "{a} vs {b}");
    }

    #[test]
    fn skipped_tiles_cost_less_than_shading_them() {
        use crate::work::SkipWork;
        for p in [Platform::videocore_iv(), Platform::sgx_545()] {
            let sim = PipelineSim::new(p.clone());
            let base = FrameWork::simple(256, 256, quick_profile()).fragment;
            let full = sim.fragment_time(&base, false);

            // Explicitly-zero skip is the same expression, bit for bit.
            let mut zero = base;
            zero.skip = SkipWork::default();
            assert_eq!(sim.fragment_time(&zero, false), full);

            // Skipping every tile trades all shading for signature reads.
            let mut skipped = base;
            skipped.skip = SkipWork {
                skipped_fragments: base.fragments,
                skipped_tiles: p.tiles_for(base.width, base.height),
                signature_bytes: p.tiles_for(base.width, base.height) * 128,
            };
            assert!(sim.fragment_time(&skipped, false) < full);

            // Half the tiles skipped lands strictly in between.
            let mut half = base;
            half.skip = SkipWork {
                skipped_fragments: base.fragments / 2,
                skipped_tiles: p.tiles_for(base.width, base.height) / 2,
                signature_bytes: p.tiles_for(base.width, base.height) / 2 * 128,
            };
            let half_t = sim.fragment_time(&half, false);
            assert!(half_t < full);
            assert!(half_t > sim.fragment_time(&skipped, false));
        }
    }

    #[test]
    fn skip_traffic_moves_writeback_to_signatures() {
        use crate::work::SkipWork;
        let mut f = frame(SyncOp::None);
        f.fragment.skip = SkipWork {
            skipped_fragments: 64 * 64,
            skipped_tiles: 1,
            signature_bytes: 640,
        };
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        sim.submit(&f);
        let report = sim.finish();
        // Skipped fragments write nothing back; their signatures are billed.
        assert_eq!(report.traffic.writeback_bytes, (256 * 256 - 64 * 64) * 4);
        assert_eq!(report.traffic.signature_bytes, 640);
    }

    #[test]
    fn report_accumulates_traffic() {
        let mut c = 0;
        let mut f = frame(SyncOp::None);
        f.uploads
            .push(Upload::fresh(ResourceId::next(&mut c), 4096));
        let mut sim = PipelineSim::new(Platform::videocore_iv());
        sim.submit(&f);
        let report = sim.finish();
        assert_eq!(report.traffic.upload_bytes, 4096);
        assert_eq!(report.traffic.writeback_bytes, 256 * 256 * 4);
        assert_eq!(report.frames.len(), 1);
        assert!(report.total_time > SimTime::ZERO);
    }
}
